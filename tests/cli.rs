//! End-to-end tests of the `aprof-cli` binary (spawned as a subprocess).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aprof-cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("cli spawns");
    assert!(
        out.status.success(),
        "`aprof-cli {}` failed: {}\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout),
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn list_shows_all_workloads() {
    let out = run_ok(&["list"]);
    for name in ["producer_consumer", "350.md", "vips", "mysqld", "algo.merge_sort"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn run_profiles_a_workload() {
    let out = run_ok(&["run", "--workload", "producer_consumer", "--size", "20", "--threads", "2"]);
    assert!(out.contains("consumer"), "{out}");
    assert!(out.contains("thread"), "{out}");
}

#[test]
fn plot_and_fit() {
    let out = run_ok(&[
        "run",
        "--workload",
        "mysqld",
        "--size",
        "128",
        "--threads",
        "2",
        "--plot",
        "mysql_select",
    ]);
    assert!(out.contains("fitted growth vs trms: O(n)"), "{out}");
    assert!(out.contains("fitted growth vs rms: O(n^2)"), "{out}");
}

#[test]
fn bottleneck_analysis_flags_the_flush() {
    let out = run_ok(&[
        "run",
        "--workload",
        "mysqld",
        "--size",
        "128",
        "--threads",
        "2",
        "--bottlenecks",
    ]);
    assert!(out.contains("HiddenFromRms"), "{out}");
    assert!(out.contains("buf_flush_buffered_writes"), "{out}");
}

#[test]
fn cct_prints_contexts() {
    let out = run_ok(&["run", "--workload", "dedup", "--size", "32", "--threads", "2", "--cct"]);
    assert!(out.contains("hot calling contexts"), "{out}");
    assert!(out.contains("compress_chunk"), "{out}");
}

#[test]
fn helgrind_tool_reports() {
    let out = run_ok(&[
        "run", "--workload", "372.smithwa", "--size", "32", "--tool", "helgrind",
    ]);
    assert!(out.contains("0 racy accesses"), "{out}");
}

#[test]
fn save_and_replay_roundtrip() {
    let dir = std::env::temp_dir().join("aprof-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.txt");
    let path_s = path.to_str().unwrap();
    let saved = run_ok(&[
        "run",
        "--workload",
        "external_read",
        "--size",
        "12",
        "--save-trace",
        path_s,
    ]);
    assert!(saved.contains("saved"), "{saved}");
    let replayed = run_ok(&["replay", path_s]);
    assert!(replayed.contains("activations"), "{replayed}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = cli().args(["run"]).output().unwrap();
    assert!(!out.status.success());
    let out = cli().args(["run", "--workload", "nope"]).output().unwrap();
    assert!(!out.status.success());
    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn csv_export_writes_summary() {
    let dir = std::env::temp_dir().join("aprof-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("summary.csv");
    run_ok(&[
        "run",
        "--workload",
        "producer_consumer",
        "--size",
        "10",
        "--csv",
        path.to_str().unwrap(),
    ]);
    let csv = std::fs::read_to_string(&path).unwrap();
    assert!(csv.starts_with("routine,calls,cost"), "{csv}");
    assert!(csv.contains("consumer"), "{csv}");
    std::fs::remove_file(&path).ok();
}
