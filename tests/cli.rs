//! End-to-end tests of the `aprof-cli` binary (spawned as a subprocess).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aprof-cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("cli spawns");
    assert!(
        out.status.success(),
        "`aprof-cli {}` failed: {}\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout),
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn list_shows_all_workloads() {
    let out = run_ok(&["list"]);
    for name in ["producer_consumer", "350.md", "vips", "mysqld", "algo.merge_sort"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn run_profiles_a_workload() {
    let out = run_ok(&["run", "--workload", "producer_consumer", "--size", "20", "--threads", "2"]);
    assert!(out.contains("consumer"), "{out}");
    assert!(out.contains("thread"), "{out}");
}

#[test]
fn plot_and_fit() {
    let out = run_ok(&[
        "run",
        "--workload",
        "mysqld",
        "--size",
        "128",
        "--threads",
        "2",
        "--plot",
        "mysql_select",
    ]);
    assert!(out.contains("fitted growth vs trms: O(n)"), "{out}");
    assert!(out.contains("fitted growth vs rms: O(n^2)"), "{out}");
}

#[test]
fn bottleneck_analysis_flags_the_flush() {
    let out = run_ok(&[
        "run",
        "--workload",
        "mysqld",
        "--size",
        "128",
        "--threads",
        "2",
        "--bottlenecks",
    ]);
    assert!(out.contains("HiddenFromRms"), "{out}");
    assert!(out.contains("buf_flush_buffered_writes"), "{out}");
}

#[test]
fn cct_prints_contexts() {
    let out = run_ok(&["run", "--workload", "dedup", "--size", "32", "--threads", "2", "--cct"]);
    assert!(out.contains("hot calling contexts"), "{out}");
    assert!(out.contains("compress_chunk"), "{out}");
}

#[test]
fn helgrind_tool_reports() {
    let out = run_ok(&[
        "run", "--workload", "372.smithwa", "--size", "32", "--tool", "helgrind",
    ]);
    assert!(out.contains("0 racy accesses"), "{out}");
}

#[test]
fn save_and_replay_roundtrip() {
    let dir = std::env::temp_dir().join("aprof-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.txt");
    let path_s = path.to_str().unwrap();
    let saved = run_ok(&[
        "run",
        "--workload",
        "external_read",
        "--size",
        "12",
        "--save-trace",
        path_s,
    ]);
    assert!(saved.contains("saved"), "{saved}");
    let replayed = run_ok(&["replay", path_s]);
    assert!(replayed.contains("activations"), "{replayed}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn record_replay_matches_in_memory_run() {
    let dir = std::env::temp_dir().join("aprof-cli-test-wire");
    std::fs::create_dir_all(&dir).unwrap();
    let wire = dir.join("trace.wire");
    let rec_csv = dir.join("rec.csv");
    let rep_csv = dir.join("rep.csv");
    let run_csv = dir.join("run.csv");

    let recorded = run_ok(&[
        "record",
        wire.to_str().unwrap(),
        "--workload",
        "producer_consumer",
        "--size",
        "30",
        "--threads",
        "2",
        "--csv",
        rec_csv.to_str().unwrap(),
    ]);
    assert!(recorded.contains("recorded"), "{recorded}");

    let replayed = run_ok(&["replay", wire.to_str().unwrap(), "--csv", rep_csv.to_str().unwrap()]);
    assert!(replayed.contains("consumer"), "{replayed}");

    run_ok(&[
        "run",
        "--workload",
        "producer_consumer",
        "--size",
        "30",
        "--threads",
        "2",
        "--csv",
        run_csv.to_str().unwrap(),
    ]);

    let rec = std::fs::read_to_string(&rec_csv).unwrap();
    let rep = std::fs::read_to_string(&rep_csv).unwrap();
    let run = std::fs::read_to_string(&run_csv).unwrap();
    assert_eq!(rec, rep, "live-while-recording profile differs from replayed profile");
    assert_eq!(run, rep, "in-memory profile differs from replayed profile");

    for p in [&wire, &rec_csv, &rep_csv, &run_csv] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn trace_info_describes_a_wire_file() {
    let dir = std::env::temp_dir().join("aprof-cli-test-wire");
    std::fs::create_dir_all(&dir).unwrap();
    let wire = dir.join("info.wire");
    run_ok(&[
        "record",
        wire.to_str().unwrap(),
        "--workload",
        "external_read",
        "--size",
        "16",
        "--chunk-bytes",
        "256",
    ]);
    let info = run_ok(&["trace-info", wire.to_str().unwrap()]);
    assert!(info.contains("format: wire v1"), "{info}");
    assert!(info.contains("events:"), "{info}");
    assert!(info.contains("chunks:"), "{info}");
    assert!(info.contains("Call"), "{info}");
    std::fs::remove_file(&wire).ok();
}

#[test]
fn corrupt_wire_chunk_is_reported_not_fatal() {
    let dir = std::env::temp_dir().join("aprof-cli-test-wire");
    std::fs::create_dir_all(&dir).unwrap();
    let wire = dir.join("corrupt.wire");
    run_ok(&[
        "record",
        wire.to_str().unwrap(),
        "--workload",
        "external_read",
        "--size",
        "16",
        "--chunk-bytes",
        "128",
    ]);

    // Flip a byte inside the first chunk's *payload* (framing damage is
    // fatal by design; payload damage is skippable). The header is
    // magic(8) + version(4) + payload_len(4) + payload + crc(4), then
    // each chunk starts with 13 framing bytes.
    let mut bytes = std::fs::read(&wire).unwrap();
    let header_payload = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let first_chunk_payload = 16 + header_payload + 4 + 13;
    bytes[first_chunk_payload + 2] ^= 0x55;
    std::fs::write(&wire, &bytes).unwrap();

    // Lenient replay still succeeds but warns about the skipped chunk.
    let out = cli().args(["replay", wire.to_str().unwrap()]).output().unwrap();
    assert!(
        out.status.success(),
        "lenient replay should skip-and-report: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("skipped corrupt"), "{stderr}");

    // trace-info flags the damage via a nonzero exit.
    let out = cli().args(["trace-info", wire.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "trace-info should fail on a damaged file");

    // Strict replay refuses outright.
    let out = cli().args(["replay", wire.to_str().unwrap(), "--strict"]).output().unwrap();
    assert!(!out.status.success(), "strict replay should reject a damaged file");

    std::fs::remove_file(&wire).ok();
}

/// The differential crash test behind `aprof-cli recover`: record a durable
/// capture, kill it (simulated by truncating the file) at several points,
/// recover each torn file, and check the recovered replay profiles a prefix
/// of the unkilled run — same tool output format, typed errors only, no
/// panics.
#[test]
fn recover_salvages_a_killed_durable_capture() {
    let dir = std::env::temp_dir().join("aprof-cli-test-recover");
    std::fs::create_dir_all(&dir).unwrap();
    let wire = dir.join("durable.wire");
    let wire_s = wire.to_str().unwrap();

    let recorded = run_ok(&[
        "record", wire_s, "--workload", "producer_consumer", "--size", "30", "--threads", "2",
        "--durable", "--chunk-bytes", "128",
    ]);
    assert!(recorded.contains("recorded"), "{recorded}");
    let pristine = std::fs::read(&wire).unwrap();
    let full_info = run_ok(&["trace-info", wire_s]);

    for fraction in [3usize, 5, 7] {
        let cut = pristine.len() * fraction / 8;
        let torn = dir.join(format!("torn-{fraction}.wire"));
        let torn_s = torn.to_str().unwrap();
        std::fs::write(&torn, &pristine[..cut]).unwrap();

        let salvaged = dir.join(format!("salvaged-{fraction}.wire"));
        let salvaged_s = salvaged.to_str().unwrap();
        let out = run_ok(&["recover", torn_s, salvaged_s]);
        assert!(out.contains("salvaged"), "{out}");

        // The salvage is a fully valid file: strict replay succeeds and
        // trace-info reports zero skipped chunks.
        let replayed = run_ok(&["replay", salvaged_s, "--strict"]);
        assert!(replayed.contains("activations"), "{replayed}");
        let info = run_ok(&["trace-info", salvaged_s, "--strict"]);
        assert!(info.contains("0 skipped"), "{info}");

        // Event count is a prefix: never more than the unkilled capture.
        let events = |text: &str| -> u64 {
            text.lines()
                .find_map(|l| l.strip_prefix("events: "))
                .expect("trace-info prints events")
                .parse()
                .unwrap()
        };
        assert!(events(&info) <= events(&full_info), "salvage exceeds the original:\n{info}");

        std::fs::remove_file(&torn).ok();
        std::fs::remove_file(&salvaged).ok();
    }

    // Recovering the intact capture is lossless.
    let salvaged = dir.join("intact.wire");
    let out = run_ok(&["recover", wire_s, salvaged.to_str().unwrap()]);
    assert!(out.contains("already intact"), "{out}");
    let info = run_ok(&["trace-info", salvaged.to_str().unwrap()]);
    assert_eq!(
        info.lines().find(|l| l.starts_with("events:")),
        full_info.lines().find(|l| l.starts_with("events:")),
        "intact recovery must preserve every event"
    );

    // A file cut inside the header is a typed failure, not a panic.
    let torn = dir.join("headerless.wire");
    std::fs::write(&torn, &pristine[..8]).unwrap();
    let out = cli()
        .args(["recover", torn.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "header damage must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot recover"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    std::fs::remove_file(&wire).ok();
    std::fs::remove_file(&salvaged).ok();
    std::fs::remove_file(&torn).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = cli().args(["run"]).output().unwrap();
    assert!(!out.status.success());
    let out = cli().args(["run", "--workload", "nope"]).output().unwrap();
    assert!(!out.status.success());
    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn csv_export_writes_summary() {
    let dir = std::env::temp_dir().join("aprof-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("summary.csv");
    run_ok(&[
        "run",
        "--workload",
        "producer_consumer",
        "--size",
        "10",
        "--csv",
        path.to_str().unwrap(),
    ]);
    let csv = std::fs::read_to_string(&path).unwrap();
    assert!(csv.starts_with("routine,calls,cost"), "{csv}");
    assert!(csv.contains("consumer"), "{csv}");
    std::fs::remove_file(&path).ok();
}
