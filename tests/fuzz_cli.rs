//! End-to-end tests of `aprof-cli fuzz` (spawned as a subprocess): the
//! seeded differential corpus must pass clean, render byte-identical
//! output regardless of the worker count, and catch a planted profiler
//! bug with a shrunk reproducer and a nonzero exit.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aprof-cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("cli spawns");
    assert!(
        out.status.success(),
        "`aprof-cli {}` failed: {}\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout),
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn fuzz_smoke_passes_all_oracles() {
    let out = run_ok(&["fuzz", "--seed", "1", "--cases", "32"]);
    assert!(out.contains("32/32"), "{out}");
    assert!(out.contains("digest"), "{out}");
    assert!(!out.contains("FAIL"), "{out}");
}

#[test]
fn fuzz_output_is_byte_identical_across_jobs() {
    let reference = run_ok(&["fuzz", "--seed", "7", "--cases", "24", "--jobs", "1"]);
    for jobs in ["2", "5"] {
        let out = run_ok(&["fuzz", "--seed", "7", "--cases", "24", "--jobs", jobs]);
        assert_eq!(reference, out, "jobs={jobs} changed the rendered report");
    }
}

#[test]
fn fuzz_profiles_are_seed_deterministic() {
    for profile in ["mixed", "sequential", "concurrent", "kernel"] {
        let a = run_ok(&["fuzz", "--seed", "3", "--cases", "12", "--profile", profile]);
        let b = run_ok(&["fuzz", "--seed", "3", "--cases", "12", "--profile", profile]);
        assert_eq!(a, b, "profile {profile} is not deterministic");
    }
}

#[test]
fn fuzz_catches_and_shrinks_a_planted_bug() {
    let out = cli()
        .args([
            "fuzz", "--seed", "1", "--cases", "16", "--profile", "kernel", "--mutate",
            "drop-kernel-input",
        ])
        .output()
        .expect("cli spawns");
    assert!(!out.status.success(), "a planted bug must fail the sweep");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("shrunk to"), "{stdout}");
    // The shrunk reproducer must be small enough to eyeball.
    let blocks: u64 = stdout
        .lines()
        .filter_map(|l| l.split("shrunk to ").nth(1))
        .filter_map(|l| l.split(" block").next())
        .filter_map(|n| n.trim().parse().ok())
        .min()
        .expect("a failure reports its shrunk block count");
    assert!(blocks < 20, "reproducer did not shrink below 20 blocks:\n{stdout}");
}

#[test]
fn fuzz_crash_differential_passes() {
    let out = run_ok(&["fuzz", "--seed", "2", "--cases", "12", "--faults"]);
    assert!(out.contains("12/12"), "{out}");
}

#[test]
fn fuzz_bad_usage_fails_cleanly() {
    for args in [
        &["fuzz", "--profile", "nope"][..],
        &["fuzz", "--mutate", "nope"][..],
        &["fuzz", "--cases"][..],
        &["fuzz", "--frobnicate"][..],
    ] {
        let out = cli().args(args).output().unwrap();
        assert!(!out.status.success(), "`aprof-cli {}` should fail", args.join(" "));
    }
}
