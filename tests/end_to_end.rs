//! Cross-crate integration tests: the full pipeline from guest execution
//! through profiling to analysis, plus cross-tool consistency properties.

use aprof::analysis::{fit_best, CostPlot, Metric, PlotKind};
use aprof::core::{NaiveProfiler, TrmsProfiler};
use aprof::tools::{CallgrindTool, HelgrindTool};
use aprof::trace::{RecordingTool, Tool, Trace};
use aprof::workloads::{all, by_name, WorkloadParams};

fn record(name: &str, params: &WorkloadParams) -> (aprof::trace::RoutineTable, Trace) {
    let wl = by_name(name).unwrap();
    let mut machine = wl.build(params);
    let names = machine.program().routines().clone();
    let mut rec = RecordingTool::new();
    machine.run_with(&mut rec).unwrap();
    let mut trace = Trace::new();
    for e in rec.trace() {
        trace.push(e.thread, e.event);
    }
    (names, trace)
}

/// Replaying a recorded trace gives the same profile as live execution —
/// the trace model and the live event stream agree.
#[test]
fn live_and_replayed_profiles_agree() {
    let params = WorkloadParams::new(48, 3);
    let wl = by_name("dedup").unwrap();
    let mut machine = wl.build(&params);
    let names = machine.program().routines().clone();
    let mut live = TrmsProfiler::builder().log_activations(true).build();
    machine.run_with(&mut live).unwrap();

    let (_names2, trace) = record("dedup", &params);
    let mut replayed = TrmsProfiler::builder().log_activations(true).build();
    trace.replay(&mut replayed);

    assert_eq!(live.activations(), replayed.activations());
    let _ = names;
}

/// The timestamping engine agrees with the naive Fig. 10 oracle on real
/// workload traces (not just random ones).
#[test]
fn engine_matches_oracle_on_workloads() {
    for name in ["producer_consumer", "351.bwaves", "dedup", "mysqld"] {
        let (_names, trace) = record(name, &WorkloadParams::new(40, 2));
        let mut engine = TrmsProfiler::builder().log_activations(true).build();
        trace.replay(&mut engine);
        let mut oracle = NaiveProfiler::new();
        trace.replay(&mut oracle);
        let e: Vec<_> =
            engine.activations().iter().map(|r| (r.routine, r.trms, r.rms, r.cost)).collect();
        let o: Vec<_> =
            oracle.activations().iter().map(|r| (r.routine, r.trms, r.rms, r.cost)).collect();
        assert_eq!(e, o, "{name}: engine diverges from the naive oracle");
    }
}

/// Renumbering with a tiny counter limit never changes any workload profile.
#[test]
fn renumbering_transparent_on_workloads() {
    for name in ["vips", "350.md"] {
        let (_names, trace) = record(name, &WorkloadParams::new(64, 4));
        let run = |limit: u64| {
            let mut p = TrmsProfiler::builder()
                .counter_limit(limit)
                .log_activations(true)
                .build();
            trace.replay(&mut p);
            (p.renumberings(), p.activations().to_vec())
        };
        let (n_base, base) = run(u32::MAX as u64);
        let (n_freq, freq) = run(64);
        assert_eq!(n_base, 0);
        assert!(n_freq > 0, "{name}: small limit must trigger renumbering");
        assert_eq!(base, freq, "{name}: renumbering changed results");
    }
}

/// The callgrind analog and the trms profiler agree on total inclusive cost
/// of thread entry routines (both count every basic block exactly once).
#[test]
fn callgrind_and_profiler_costs_agree() {
    let params = WorkloadParams::new(48, 3);
    let wl = by_name("359.botsspar").unwrap();

    let mut m1 = wl.build(&params);
    let names = m1.program().routines().clone();
    let mut cg = CallgrindTool::new();
    let outcome = m1.run_with(&mut cg).unwrap();
    let cg_report = cg.into_report(&names);
    let cg_total: u64 = cg_report
        .edges
        .iter()
        .filter(|e| e.caller.is_none())
        .map(|_| cg_report.costs.values().map(|c| c.inclusive).sum::<u64>())
        .next()
        .unwrap_or(0);
    let _ = cg_total;
    // Entry activations' inclusive cost must sum to all executed blocks.
    let entry_total: u64 = {
        let mut m2 = wl.build(&params);
        let mut prof = TrmsProfiler::builder().log_activations(true).build();
        m2.run_with(&mut prof).unwrap();
        let mut per_thread_max = std::collections::HashMap::new();
        for rec in prof.activations() {
            let e = per_thread_max.entry(rec.thread).or_insert(0u64);
            *e = (*e).max(rec.cost);
        }
        per_thread_max.values().sum()
    };
    assert_eq!(entry_total, outcome.total_blocks);
}

/// Properly synchronized workloads are race-free under the helgrind analog;
/// the pairwise kernel's read/write phases are barrier-separated too.
#[test]
fn synchronized_workloads_are_race_free() {
    for name in ["producer_consumer", "dedup", "372.smithwa"] {
        let wl = by_name(name).unwrap();
        let mut machine = wl.build(&WorkloadParams::new(40, 3));
        let mut hg = HelgrindTool::new();
        machine.run_with(&mut hg).unwrap();
        assert_eq!(hg.report().races, 0, "{name} should be race-free");
    }
}

/// Full-pipeline growth estimation: the quickstart shape (linear scan)
/// fits linear through plots produced from a real profile.
#[test]
fn pipeline_growth_estimation() {
    let wl = by_name("external_read").unwrap();
    let mut machine = wl.build(&WorkloadParams::new(64, 1));
    let names = machine.program().routines().clone();
    let mut profiler = TrmsProfiler::new();
    machine.run_with(&mut profiler).unwrap();
    let report = profiler.into_report(&names);
    let er = report.routine_by_name("externalRead").unwrap();
    let plot = CostPlot::from_report(er, Metric::Trms, PlotKind::WorstCase);
    // One activation -> one point; no fit possible but plot extraction works.
    assert_eq!(plot.len(), 1);
    assert!(fit_best(&plot.xy()).is_none());
}

/// Every workload produces a non-trivial profile under the full pipeline,
/// and the profile's accounting invariants hold.
#[test]
fn profile_accounting_invariants() {
    for wl in all() {
        let params = WorkloadParams::new(32, 2);
        let mut machine = wl.build(&params);
        let names = machine.program().routines().clone();
        let mut profiler = TrmsProfiler::new();
        let outcome = machine.run_with(&mut profiler).unwrap();
        let report = profiler.into_report(&names);
        assert!(report.global.activations > 0, "{}", wl.name);
        let induced = report.global.induced_thread + report.global.induced_external;
        assert!(
            induced <= report.global.reads + report.global.kernel_reads,
            "{}: more induced accesses than reads",
            wl.name
        );
        for routine in &report.routines {
            let total_calls: u64 = routine.per_thread.values().map(|p| p.calls).sum();
            assert_eq!(total_calls, routine.merged.calls, "{}", routine.name);
            let curve_calls: u64 = routine.trms_curve().iter().map(|(_, s)| s.count).sum();
            assert_eq!(curve_calls, routine.merged.calls, "{}", routine.name);
        }
        // Cost conservation: thread entry activations cover all blocks.
        assert!(outcome.total_blocks > 0);
    }
}

/// A tool composed of sub-tools sees the identical stream: recording then
/// splitting equals running twice (determinism across machine rebuilds).
#[test]
fn machine_rebuild_determinism() {
    let params = WorkloadParams::new(40, 4);
    let (_n1, t1) = record("fluidanimate", &params);
    let (_n2, t2) = record("fluidanimate", &params);
    assert_eq!(t1.len(), t2.len());
    let s1 = t1.stats();
    let s2 = t2.stats();
    assert_eq!(s1, s2);
}

/// RecordingTool and direct machine outcome agree on event counts.
#[test]
fn recording_matches_outcome() {
    let wl = by_name("351.bwaves").unwrap();
    let params = WorkloadParams::new(48, 2);
    let mut machine = wl.build(&params);
    let mut rec = RecordingTool::new();
    let outcome = machine.run_with(&mut rec).unwrap();
    let blocks: u64 = rec
        .trace()
        .iter()
        .filter_map(|e| match e.event {
            aprof::trace::Event::BasicBlock { cost } => Some(cost),
            _ => None,
        })
        .sum();
    assert_eq!(blocks, outcome.total_blocks);
    let switches = rec
        .trace()
        .iter()
        .filter(|e| matches!(e.event, aprof::trace::Event::ThreadSwitch))
        .count() as u64;
    assert_eq!(switches, outcome.switches);
    let mut null = aprof::trace::NullTool::new();
    null.finish();
}
