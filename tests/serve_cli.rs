//! End-to-end tests of `aprof-cli serve` / `submit`: a real daemon child
//! process, real sockets, concurrent submissions from separate client
//! processes, byte-identity against `replay --profile-out`, and a hard
//! `kill -9` mid-stream followed by recovery on the same spool.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aprof-cli"))
}

fn scratch(label: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("serve_cli_{label}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("cli spawns");
    assert!(
        out.status.success(),
        "`aprof-cli {}` failed:\n{}{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Records two distinct workload traces into `dir`.
fn record_traces(dir: &Path) -> (PathBuf, PathBuf) {
    let t1 = dir.join("s-001.wire");
    let t2 = dir.join("s-002.wire");
    run_ok(&[
        "record", t1.to_str().unwrap(), "--workload", "algo.insertion_sort", "--size", "40",
    ]);
    run_ok(&["record", t2.to_str().unwrap(), "--workload", "algo.merge_sort", "--size", "24"]);
    (t1, t2)
}

/// Starts a daemon child on a unix socket and waits until it answers pings.
/// The child is reaped by `shutdown_daemon` or an explicit kill + wait.
#[allow(clippy::zombie_processes)]
fn start_daemon(dir: &Path, extra: &[&str]) -> (Child, String) {
    let sock = dir.join("daemon.sock");
    let spool = dir.join("spool");
    let target = format!("unix:{}", sock.display());
    let child = cli()
        .args(["serve", "--spool", spool.to_str().unwrap(), "--unix", sock.to_str().unwrap()])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let ping = cli().args(["submit", "--to", &target, "--ping"]).output().unwrap();
        if ping.status.success() {
            return (child, target);
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn shutdown_daemon(mut child: Child, target: &str) {
    run_ok(&["submit", "--to", target, "--shutdown"]);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if child.try_wait().unwrap().is_some() {
            return;
        }
        assert!(Instant::now() < deadline, "daemon never drained");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn serve_submit_round_trip_matches_one_shot_replay() {
    let dir = scratch("roundtrip");
    let (t1, t2) = record_traces(&dir);
    let (child, target) = start_daemon(&dir, &[]);

    // Concurrent submissions from two separate client processes.
    let c1 = cli()
        .args(["submit", "--to", &target, "--tenant", "web", t1.to_str().unwrap()])
        .spawn()
        .unwrap();
    let c2 = cli()
        .args(["submit", "--to", &target, "--tenant", "web", t2.to_str().unwrap()])
        .spawn()
        .unwrap();
    for mut c in [c1, c2] {
        assert!(c.wait().unwrap().success(), "submission failed");
    }

    // Daemon aggregate vs one-shot replay of the same streams in sorted
    // stream-id order: byte-identical.
    let daemon_profile = dir.join("daemon.profile");
    run_ok(&[
        "submit", "--to", &target, "--profile", "web", "--out", daemon_profile.to_str().unwrap(),
    ]);
    let oneshot_profile = dir.join("oneshot.profile");
    run_ok(&[
        "replay", t1.to_str().unwrap(), t2.to_str().unwrap(),
        "--profile-out", oneshot_profile.to_str().unwrap(),
    ]);
    let daemon = std::fs::read_to_string(&daemon_profile).unwrap();
    let oneshot = std::fs::read_to_string(&oneshot_profile).unwrap();
    assert!(!daemon.is_empty());
    assert_eq!(daemon, oneshot, "daemon aggregate drifted from one-shot replay");

    // Live obs + report endpoints.
    let obs = dir.join("obs.json");
    run_ok(&["submit", "--to", &target, "--obs", "--out", obs.to_str().unwrap()]);
    let obs = std::fs::read_to_string(&obs).unwrap();
    assert!(obs.contains("\"version\": 4"), "daemon obs.json is not schema v4");
    let report = dir.join("report.html");
    run_ok(&["submit", "--to", &target, "--report", "web", "--out", report.to_str().unwrap()]);
    assert!(std::fs::read_to_string(&report).unwrap().contains("<!DOCTYPE html>"));
    let tenants = run_ok(&["submit", "--to", &target, "--tenants"]);
    assert!(tenants.contains("web streams=2"), "unexpected listing: {tenants}");

    // Duplicate resubmission is idempotent.
    let dup = run_ok(&["submit", "--to", &target, "--tenant", "web", t1.to_str().unwrap()]);
    assert!(dup.contains("duplicate"), "resubmission was not a duplicate: {dup}");

    shutdown_daemon(child, &target);
}

#[test]
fn kill_dash_nine_mid_stream_then_restart_loses_no_acked_data() {
    let dir = scratch("kill");
    let (t1, t2) = record_traces(&dir);
    let (mut child, target) = start_daemon(&dir, &[]);

    // Commit two streams, capture the acked aggregate.
    run_ok(&["submit", "--to", &target, "--tenant", "web", t1.to_str().unwrap()]);
    run_ok(&["submit", "--to", &target, "--tenant", "web", t2.to_str().unwrap()]);
    let before = dir.join("before.profile");
    run_ok(&["submit", "--to", &target, "--profile", "web", "--out", before.to_str().unwrap()]);

    // Open a submission, send the header and half a trace, and while the
    // connection is still mid-stream kill the daemon dead.
    {
        use std::io::Write;
        let sock = dir.join("daemon.sock");
        let bytes = std::fs::read(&t1).unwrap();
        let mut conn = std::os::unix::net::UnixStream::connect(&sock).unwrap();
        writeln!(conn, "APROF/1 SUBMIT tenant=web stream=torn").unwrap();
        conn.write_all(&bytes[..bytes.len() / 2]).unwrap();
        conn.flush().unwrap();
        std::thread::sleep(Duration::from_millis(100)); // let ingest spool some of it
        child.kill().unwrap(); // SIGKILL: no destructors, no drain
        child.wait().unwrap();
    }
    let _ = std::fs::remove_file(dir.join("daemon.sock")); // stale socket file

    // Restart on the same spool: every acked stream is recovered, the torn
    // un-acked stream is discarded, and the aggregate is byte-identical.
    let (child, target) = start_daemon(&dir, &[]);
    let after = dir.join("after.profile");
    run_ok(&["submit", "--to", &target, "--profile", "web", "--out", after.to_str().unwrap()]);
    assert_eq!(
        std::fs::read_to_string(&before).unwrap(),
        std::fs::read_to_string(&after).unwrap(),
        "aggregate changed across kill -9 + restart"
    );
    let tenants = run_ok(&["submit", "--to", &target, "--tenants"]);
    assert!(tenants.contains("web streams=2"), "torn stream leaked: {tenants}");
    assert!(!dir.join("spool/web/torn.part").exists(), "torn .part not cleaned up");

    // The torn stream can now be submitted for real.
    let full = run_ok(&[
        "submit", "--to", &target, "--tenant", "web", "--stream", "torn", t1.to_str().unwrap(),
    ]);
    assert!(full.contains("committed"), "torn stream resubmission failed: {full}");

    shutdown_daemon(child, &target);
}

#[test]
fn quota_and_shutdown_now_flags_work() {
    let dir = scratch("flags");
    let (t1, _t2) = record_traces(&dir);
    let (mut child, target) = start_daemon(&dir, &["--max-events", "50"]);

    // The quota refusal surfaces as a failing submit with a quota message.
    let out = cli()
        .args(["submit", "--to", &target, "--tenant", "web", t1.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "oversized stream must be refused");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("quota"), "expected a quota refusal, got: {err}");

    run_ok(&["submit", "--to", &target, "--shutdown-now"]);
    let deadline = Instant::now() + Duration::from_secs(30);
    while child.try_wait().unwrap().is_none() {
        assert!(Instant::now() < deadline, "daemon ignored --shutdown-now");
        std::thread::sleep(Duration::from_millis(50));
    }
}
