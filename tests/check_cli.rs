//! End-to-end tests of `aprof-cli check`: one hand-written bad program per
//! statically-reachable error class, each rejected with a located, coded
//! diagnostic — plus acceptance of every shipped example and workload.
//!
//! The structural classes the assembly front end cannot express (bad block
//! targets `E003`, out-of-range registers `E004`, unknown callees `E005` —
//! all caught at parse time as `E001`) are covered by the unit tests in
//! `crates/check` against hand-built IR.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aprof-cli"))
}

/// Writes `source` to a scratch file and runs `aprof-cli check` on it with
/// `extra` flags, returning (exit code, combined output).
fn check_source(tag: &str, source: &str, extra: &[&str]) -> (i32, String) {
    let mut path = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    path.push(format!("check_cli_{tag}.asm"));
    std::fs::write(&path, source).expect("write scratch asm");
    let out = cli()
        .arg("check")
        .arg(&path)
        .args(extra)
        .output()
        .expect("cli spawns");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

/// Asserts the program is rejected and the diagnostic carries the expected
/// code plus a `file:line` location rendered from the source map.
fn assert_rejected(tag: &str, source: &str, extra: &[&str], code: &str) {
    let (status, out) = check_source(tag, source, extra);
    assert_eq!(status, 1, "`{tag}` should be rejected:\n{out}");
    assert!(out.contains(code), "`{tag}` missing {code}:\n{out}");
    assert!(out.contains(".asm:"), "`{tag}` diagnostic not located:\n{out}");
}

#[test]
fn e001_parse_error_is_located() {
    assert_rejected(
        "e001",
        "func main() {\nentry:\n    r0 = bogus 1\n    ret\n}",
        &[],
        "error[E001]",
    );
}

#[test]
fn e002_use_before_def() {
    assert_rejected(
        "e002",
        "func main() regs=4 {\nentry:\n    r0 = add r2, r2\n    ret r0\n}",
        &[],
        "error[E002]",
    );
}

#[test]
fn e006_entry_takes_params() {
    assert_rejected(
        "e006",
        "func main(2) regs=4 {\nentry:\n    r2 = add r0, r1\n    ret r2\n}",
        &[],
        "error[E006]",
    );
}

#[test]
fn e007_release_of_unheld_lock() {
    assert_rejected(
        "e007",
        "func main() regs=2 {\nentry:\n    r0 = const 5\n    release r0\n    ret\n}",
        &[],
        "error[E007]",
    );
}

#[test]
fn w101_unreachable_block_denied() {
    assert_rejected(
        "w101",
        "func main() {\nentry:\n    ret\nisland:\n    ret\n}",
        &["--deny-lints"],
        "warning[W101]",
    );
}

#[test]
fn w102_unreachable_function_denied() {
    assert_rejected(
        "w102",
        "func main() {\nentry:\n    ret\n}\nfunc orphan() {\nentry:\n    ret\n}",
        &["--deny-lints"],
        "warning[W102]",
    );
}

#[test]
fn w103_unbounded_recursion_denied() {
    assert_rejected(
        "w103",
        "func main() {\nentry:\n    call spin()\n    ret\n}\n\
         func spin() {\nentry:\n    call spin()\n    ret\n}",
        &["--deny-lints"],
        "warning[W103]",
    );
}

#[test]
fn w104_maybe_uninit_denied() {
    assert_rejected(
        "w104",
        "func main() regs=4 {\n\
         entry:\n    r0 = const 1\n    br r0, a, b\n\
         a:\n    r1 = const 2\n    jmp done\n\
         b:\n    jmp done\n\
         done:\n    r2 = add r1, r1\n    ret r2\n}",
        &["--deny-lints"],
        "warning[W104]",
    );
}

#[test]
fn w105_maybe_unheld_release_denied() {
    assert_rejected(
        "w105",
        "func main() regs=4 {\n\
         entry:\n    r0 = const 9\n    br r0, locked, skip\n\
         locked:\n    acquire r0\n    jmp done\n\
         skip:\n    jmp done\n\
         done:\n    release r0\n    ret\n}",
        &["--deny-lints"],
        "warning[W105]",
    );
}

#[test]
fn w107_unjoined_spawn_denied() {
    assert_rejected(
        "w107",
        "func main() regs=2 {\nentry:\n    r0 = spawn worker()\n    ret\n}\n\
         func worker() {\nentry:\n    ret\n}",
        &["--deny-lints"],
        "warning[W107]",
    );
}

#[test]
fn w110_implicit_ret_denied() {
    assert_rejected(
        "w110",
        "func main() {\nentry:\n    r0 = const 1\n}",
        &["--deny-lints"],
        "warning[W110]",
    );
}

#[test]
fn bad_programs_pass_with_no_deny_when_lint_only() {
    // A lint-only program is accepted by default and rejected under
    // --deny-lints — the escalation switch, not the default, is strict.
    let src = "func main() {\nentry:\n    ret\nisland:\n    ret\n}";
    let (status, out) = check_source("lint_only", src, &[]);
    assert_eq!(status, 0, "{out}");
    assert!(out.contains("warning[W101]"), "{out}");
}

#[test]
fn race_candidates_are_notes_and_shown_on_request() {
    let src = "func main() regs=4 {\n\
        entry:\n    r0 = spawn worker()\n    r1 = const 100\n    r2 = const 1\n\
        \n    store r2, r1, 0\n    join r0\n    ret\n}\n\
        func worker() regs=2 {\n\
        entry:\n    r0 = const 100\n    r1 = load r0, 0\n    ret\n}";
    let (status, out) = check_source("races_silent", src, &["--deny-lints"]);
    assert_eq!(status, 0, "notes must not reject:\n{out}");
    assert!(!out.contains("N201"), "notes hidden by default:\n{out}");
    let (status, out) = check_source("races_shown", src, &["--races"]);
    assert_eq!(status, 0, "{out}");
    assert!(out.contains("note[N201]"), "{out}");
    assert!(out.contains("cell 100"), "{out}");
}

#[test]
fn shipped_examples_are_lint_clean() {
    let root = env!("CARGO_MANIFEST_DIR");
    for name in ["sum.asm", "locked_counter.asm", "fork_join.asm"] {
        let path = format!("{root}/examples/asm/{name}");
        let out = cli().args(["check", &path, "--deny-lints"]).output().expect("cli spawns");
        assert!(
            out.status.success(),
            "{name} rejected:\n{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn all_workloads_verify_clean() {
    let out = cli().args(["check", "--workloads", "--deny-lints"]).output().expect("cli spawns");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.status.success(), "{text}");
    assert!(text.contains("mysqld: ok"), "{text}");
    assert!(!text.contains("rejected"), "{text}");
}

#[test]
fn run_refuses_unverifiable_asm_without_no_check() {
    let mut path = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    path.push("check_cli_gate.asm");
    // Uses r2 before any write: E002, but structurally valid so the VM
    // would happily run it (registers are zero-initialized).
    std::fs::write(&path, "func main() regs=4 {\nentry:\n    r0 = add r2, r2\n    ret r0\n}")
        .expect("write scratch asm");
    let out = cli().args(["asm"]).arg(&path).output().expect("cli spawns");
    assert!(!out.status.success(), "gate should refuse");
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("E002"), "{err}");
    assert!(err.contains("--no-check"), "{err}");
    let out = cli().args(["asm"]).arg(&path).arg("--no-check").output().expect("cli spawns");
    assert!(
        out.status.success(),
        "--no-check should run it: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
