//! The paper's worked examples (Figs. 1–3, Examples 1–4, Inequality 1),
//! exercised end-to-end through the public facade: guest programs run on
//! the machine, events flow into the profiler, and the reported metrics
//! match the numbers printed in the paper.

use aprof::core::{InputPolicy, TrmsProfiler};
use aprof::trace::{Addr, Event, RoutineTable, ThreadId, Trace};
use aprof::vm::{asm, Machine};
use aprof::workloads::{by_name, WorkloadParams};

/// Example 1 / Fig. 1a: rms_f = 1 but trms_f = 2 after a cross-thread
/// overwrite between f's two reads.
#[test]
fn example_1_interleaved_overwrite() {
    let mut names = RoutineTable::new();
    let f = names.intern("f");
    let g = names.intern("g");
    let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
    let x = Addr::new(0x1000);
    let mut trace = Trace::new();
    trace.push(t1, Event::Call { routine: f });
    trace.push(t1, Event::Read { addr: x });
    trace.push(t2, Event::ThreadSwitch);
    trace.push(t2, Event::Call { routine: g });
    trace.push(t2, Event::Write { addr: x });
    trace.push(t2, Event::Return { routine: g });
    trace.push(t1, Event::ThreadSwitch);
    trace.push(t1, Event::Read { addr: x });
    trace.push(t1, Event::Return { routine: f });

    let mut profiler = TrmsProfiler::new();
    trace.replay(&mut profiler);
    let report = profiler.into_report(&names);
    let rf = report.routine(f).unwrap();
    assert_eq!(rf.trms_curve()[0].0, 2, "trms_f = 2");
    assert_eq!(rf.rms_curve()[0].0, 1, "rms_f = 1");
}

/// Example 3 / Fig. 2: producer/consumer through one cell — rms(consumer)
/// stays 1 while trms(consumer) equals the number of produced values,
/// all of it thread-induced.
#[test]
fn example_3_producer_consumer() {
    let n = 37;
    let wl = by_name("producer_consumer").unwrap();
    let mut machine = wl.build(&WorkloadParams::new(n, 2));
    let names = machine.program().routines().clone();
    let mut profiler = TrmsProfiler::new();
    machine.run_with(&mut profiler).unwrap();
    let report = profiler.into_report(&names);
    let consumer = report.routine_by_name("consumer").unwrap();
    assert_eq!(consumer.trms_curve()[0].0, n);
    assert_eq!(consumer.rms_curve()[0].0, 1);
    assert!(report.global.induced_thread >= n);
    assert_eq!(report.global.induced_external, 0);
}

/// Example 4 / Fig. 3: buffered external reads — only consumed buffer cells
/// count, so trms = n while 2n cells were transferred, and rms = 1.
#[test]
fn example_4_buffered_external_read() {
    let n = 29;
    let wl = by_name("external_read").unwrap();
    let mut machine = wl.build(&WorkloadParams::new(n, 1));
    let names = machine.program().routines().clone();
    let mut profiler = TrmsProfiler::new();
    machine.run_with(&mut profiler).unwrap();
    let report = profiler.into_report(&names);
    let er = report.routine_by_name("externalRead").unwrap();
    assert_eq!(er.trms_curve()[0].0, n, "only consumed cells are external input");
    assert_eq!(er.rms_curve()[0].0, 1);
    assert_eq!(report.global.kernel_writes, 2 * n, "the kernel transferred 2n cells");
    assert_eq!(report.global.induced_external, n);
}

/// Inequality 1 (trms >= rms) holds across a whole multithreaded guest run.
#[test]
fn inequality_1_end_to_end() {
    for name in ["350.md", "vips", "dedup", "mysqld", "fluidanimate"] {
        let wl = by_name(name).unwrap();
        let mut machine = wl.build(&WorkloadParams::new(64, 3));
        let names = machine.program().routines().clone();
        let mut profiler = TrmsProfiler::builder().log_activations(true).build();
        machine.run_with(&mut profiler).unwrap();
        for rec in profiler.activations() {
            assert!(rec.trms >= rec.rms, "{name}: {rec:?} violates Inequality 1");
        }
        let report = profiler.into_report(&names);
        assert!(report.global.sum_trms >= report.global.sum_rms);
    }
}

/// With every induced source disabled the trms degenerates to the rms —
/// the sequential PLDI 2012 profiler falls out as a special case.
#[test]
fn rms_is_a_special_case_of_trms() {
    let wl = by_name("372.smithwa").unwrap();
    let mut machine = wl.build(&WorkloadParams::new(48, 3));
    let names = machine.program().routines().clone();
    let mut profiler = TrmsProfiler::with_policy(InputPolicy::rms_only());
    machine.run_with(&mut profiler).unwrap();
    let report = profiler.into_report(&names);
    for routine in &report.routines {
        assert_eq!(
            routine.merged.trms, routine.merged.rms,
            "{}: trms/rms curves must coincide under the rms-only policy",
            routine.name
        );
    }
}

/// The running example of the guest substrate: a program written in the
/// textual assembly, profiled end to end.
#[test]
fn assembly_program_profiles() {
    let program = asm::parse(
        r#"
func main() {
e:
    r0 = const 6
    r1 = alloc r0
    r2 = call touch(r1, r0)
    ret r2
}
func touch(2) {
e:
    r2 = const 0
    jmp head
head:
    r3 = clt r2, r1
    br r3, body, out
body:
    r4 = add r0, r2
    store r2, r4, 0
    r5 = load r4, 0
    r6 = const 1
    r2 = add r2, r6
    jmp head
out:
    ret r2
}
"#,
    )
    .unwrap();
    let names = program.routines().clone();
    let mut machine = Machine::new(program);
    let mut profiler = TrmsProfiler::new();
    let outcome = machine.run_with(&mut profiler).unwrap();
    assert_eq!(outcome.exit_value, Some(6));
    let report = profiler.into_report(&names);
    let touch = report.routine_by_name("touch").unwrap();
    // Every cell is written before it is read: no input at all.
    assert_eq!(touch.trms_curve()[0].0, 0);
    assert_eq!(report.global.writes, 6);
    assert_eq!(report.global.reads, 6);
}
