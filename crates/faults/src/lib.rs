//! Seeded, replayable fault injection for the aprof stack.
//!
//! Long capture runs die in predictable ways — a flaky disk fails a write, a
//! worker panics mid-sweep, a pathological workload runs away — and the only
//! way to trust the recovery paths is to exercise them on purpose. This crate
//! is the shared fault plan the rest of the workspace injects from: sink
//! wrappers that fail or shorten writes, worker-level panics and delays for
//! the hardened bench driver, and instruction budgets for the VM's resource
//! limits.
//!
//! Every decision is a pure function of `(seed, site, ordinal)`, hashed with
//! splitmix64, so a fault schedule replays identically across runs and is
//! independent of thread interleaving: worker faults key off the *job index*,
//! sink faults off the *write ordinal*, never off wall-clock or scheduling
//! order. Disabled plans ([`FaultPlan::disabled`]) answer every query with a
//! single boolean test and are never installed on production paths at all —
//! the default capture and driver paths do not construct this crate's types.
//!
//! # Example
//!
//! ```
//! use aprof_faults::{FaultConfig, FaultPlan, WorkerFault};
//!
//! let plan = FaultPlan::new(FaultConfig { panic_per_mille: 1000, ..FaultConfig::off(7) });
//! assert!(matches!(plan.worker_fault(0, 1), Some(WorkerFault::Panic)));
//! // Replayable: the same (job, attempt) always draws the same fault.
//! assert_eq!(plan.worker_fault(3, 2).is_some(), plan.worker_fault(3, 2).is_some());
//!
//! let quiet = FaultPlan::disabled();
//! assert!(quiet.worker_fault(0, 1).is_none());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::any::Any;
use std::io::{self, Write};
use std::panic;
use std::sync::Once;
use std::time::Duration;

use aprof_obs::counters;

/// Fault rates and budgets for one plan. All rates are probabilities in
/// per-mille (`0..=1000`); a rate of 0 disables that fault class and 1000
/// makes it unconditional.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for every decision stream. Two plans with the same config inject
    /// the identical fault schedule.
    pub seed: u64,
    /// Probability that an individual sink write fails with an I/O error.
    pub io_error_per_mille: u32,
    /// Probability that an individual sink write is short (partial), which
    /// exercises `write_all`-style retry loops without failing.
    pub short_write_per_mille: u32,
    /// Probability that a worker attempt panics.
    pub panic_per_mille: u32,
    /// Probability that a worker attempt is delayed by [`FaultConfig::delay`].
    pub delay_per_mille: u32,
    /// Length of an injected worker delay.
    pub delay: Duration,
    /// Probability that a job's guest run gets
    /// [`FaultConfig::vm_instruction_budget`] imposed on it. Keyed by job
    /// only (not attempt), so a budgeted job fails deterministically across
    /// retries.
    pub budget_per_mille: u32,
    /// The instruction budget imposed on selected jobs.
    pub vm_instruction_budget: u64,
}

impl FaultConfig {
    /// A config with every fault class disabled, keeping only the seed.
    pub fn off(seed: u64) -> Self {
        Self {
            seed,
            io_error_per_mille: 0,
            short_write_per_mille: 0,
            panic_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::from_millis(1),
            budget_per_mille: 0,
            vm_instruction_budget: u64::MAX,
        }
    }

    /// The mixed-fault config used by `repro --faults`: moderate rates of
    /// every fault class, tuned so a ~dozen-job sweep sees panics, delays and
    /// budget traps without drowning in them.
    pub fn smoke(seed: u64) -> Self {
        Self {
            io_error_per_mille: 4,
            short_write_per_mille: 120,
            panic_per_mille: 250,
            delay_per_mille: 200,
            delay: Duration::from_millis(2),
            budget_per_mille: 220,
            vm_instruction_budget: 20_000,
            ..Self::off(seed)
        }
    }
}

/// Decision-stream site tags: mixed into the hash so distinct fault classes
/// draw from independent streams even at the same ordinal.
mod site {
    pub const IO_ERROR: u64 = 0x10;
    pub const SHORT_WRITE: u64 = 0x20;
    pub const PANIC: u64 = 0x30;
    pub const DELAY: u64 = 0x40;
    pub const VM_BUDGET: u64 = 0x50;
}

/// A seeded fault schedule. Cheap to copy; every query is a pure hash of the
/// plan's seed and the caller-supplied coordinates.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    cfg: FaultConfig,
    active: bool,
}

impl FaultPlan {
    /// A plan that injects according to `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        Self { cfg, active: true }
    }

    /// A plan that never injects anything. All queries short-circuit on one
    /// boolean.
    pub fn disabled() -> Self {
        Self { cfg: FaultConfig::off(0), active: false }
    }

    /// Whether this plan can inject at all.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Draws the `(site, ordinal)` decision against a per-mille rate.
    /// Deterministic: same plan + coordinates → same answer.
    fn decide(&self, site_tag: u64, ordinal: u64, per_mille: u32) -> bool {
        if !self.active || per_mille == 0 {
            return false;
        }
        let h = splitmix64(
            self.cfg
                .seed
                .wrapping_add(site_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(ordinal.wrapping_mul(0xBF58_476D_1CE4_E5B9)),
        );
        (h % 1000) < u64::from(per_mille.min(1000))
    }

    /// The fault (if any) to inject into worker `job` on its `attempt`-th
    /// try (1-based). Panic and delay draws are independent; panic wins when
    /// both fire. Counters are bumped by the *injection* sites
    /// ([`injected_panic`], [`FaultyWrite`]), not by this query.
    pub fn worker_fault(&self, job: u64, attempt: u32) -> Option<WorkerFault> {
        let ordinal = job.wrapping_mul(97).wrapping_add(u64::from(attempt));
        if self.decide(site::PANIC, ordinal, self.cfg.panic_per_mille) {
            return Some(WorkerFault::Panic);
        }
        if self.decide(site::DELAY, ordinal, self.cfg.delay_per_mille) {
            return Some(WorkerFault::Delay(self.cfg.delay));
        }
        None
    }

    /// The VM instruction budget (if any) to impose on `job`'s guest run.
    /// Keyed by job only, so the trap reproduces on every retry.
    pub fn vm_budget(&self, job: u64) -> Option<u64> {
        self.decide(site::VM_BUDGET, job, self.cfg.budget_per_mille)
            .then_some(self.cfg.vm_instruction_budget)
    }

    /// Wraps a sink so its writes are subject to this plan's I/O faults.
    pub fn wrap_writer<W: Write>(&self, inner: W) -> FaultyWrite<W> {
        FaultyWrite { inner, plan: *self, writes: 0 }
    }
}

/// One fault drawn for a worker attempt by [`FaultPlan::worker_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The attempt should panic (use [`injected_panic`] so the quiet hook
    /// recognises it).
    Panic,
    /// The attempt should sleep for the given duration first.
    Delay(Duration),
}

/// A `Write` adapter that injects I/O errors and short writes according to a
/// [`FaultPlan`]. Decisions key off the write ordinal, so a single-threaded
/// writer replays the identical fault schedule every run.
#[derive(Debug)]
pub struct FaultyWrite<W> {
    inner: W,
    plan: FaultPlan,
    writes: u64,
}

impl<W> FaultyWrite<W> {
    /// Consumes the adapter, returning the wrapped sink.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Number of `write` calls observed (including failed ones).
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let ordinal = self.writes;
        self.writes += 1;
        let cfg = self.plan.cfg;
        if self.plan.decide(site::IO_ERROR, ordinal, cfg.io_error_per_mille) {
            counters::FAULTS_INJECTED_IO_ERRORS.incr();
            return Err(io::Error::other(format!(
                "injected fault: sink i/o error at write #{ordinal}"
            )));
        }
        if buf.len() > 1 && self.plan.decide(site::SHORT_WRITE, ordinal, cfg.short_write_per_mille)
        {
            counters::FAULTS_INJECTED_SHORT_WRITES.incr();
            return self.inner.write(&buf[..buf.len() / 2]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The payload type carried by panics raised via [`injected_panic`]. The
/// quiet hook installed by [`install_quiet_hook`] suppresses the default
/// "thread panicked" banner for exactly this type, so deliberately injected
/// panics don't spray stderr during tests and smoke runs.
#[derive(Debug)]
pub struct InjectedPanic(pub String);

/// Raises a deliberately injected panic carrying `msg`. Pair with
/// [`install_quiet_hook`] to keep test output clean, and with
/// [`panic_message`] to recover the message at the catch site.
pub fn injected_panic(msg: impl Into<String>) -> ! {
    counters::FAULTS_INJECTED_PANICS.incr();
    panic::panic_any(InjectedPanic(msg.into()))
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// [`InjectedPanic`] payloads and forwards everything else to the previous
/// hook. Safe to call from parallel tests; only the first call installs.
pub fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Extracts a human-readable message from a caught panic payload
/// (`std::thread::Result`'s error half): handles [`InjectedPanic`], `String`
/// and `&str` payloads, and falls back to a placeholder for opaque ones.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(p) = payload.downcast_ref::<InjectedPanic>() {
        p.0.clone()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The splitmix64 mixer: a full-avalanche hash over one `u64`, the same
/// generator the vendored proptest uses for its deterministic streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_injects() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_active());
        for job in 0..256 {
            assert_eq!(plan.worker_fault(job, 1), None);
            assert_eq!(plan.vm_budget(job), None);
        }
        let mut out = Vec::new();
        let mut w = plan.wrap_writer(&mut out);
        for _ in 0..64 {
            w.write_all(&[0xAB; 32]).unwrap();
        }
        assert_eq!(out.len(), 64 * 32);
    }

    #[test]
    fn decisions_are_replayable() {
        let plan_a = FaultPlan::new(FaultConfig::smoke(42));
        let plan_b = FaultPlan::new(FaultConfig::smoke(42));
        for job in 0..512 {
            for attempt in 1..4 {
                assert_eq!(plan_a.worker_fault(job, attempt), plan_b.worker_fault(job, attempt));
            }
            assert_eq!(plan_a.vm_budget(job), plan_b.vm_budget(job));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let plan_a = FaultPlan::new(FaultConfig::smoke(1));
        let plan_b = FaultPlan::new(FaultConfig::smoke(2));
        let schedule = |p: &FaultPlan| (0..512).map(|j| p.worker_fault(j, 1)).collect::<Vec<_>>();
        assert_ne!(schedule(&plan_a), schedule(&plan_b));
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let cfg = FaultConfig { panic_per_mille: 250, ..FaultConfig::off(9) };
        let plan = FaultPlan::new(cfg);
        let hits = (0..4000)
            .filter(|&j| matches!(plan.worker_fault(j, 1), Some(WorkerFault::Panic)))
            .count();
        // 250‰ of 4000 = 1000 expected; allow a generous deterministic band.
        assert!((700..1300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn faulty_writer_injects_and_shortens() {
        let cfg = FaultConfig {
            io_error_per_mille: 100,
            short_write_per_mille: 200,
            ..FaultConfig::off(3)
        };
        let plan = FaultPlan::new(cfg);
        let mut out = Vec::new();
        let mut w = plan.wrap_writer(&mut out);
        let mut errors = 0;
        let mut short = 0;
        for _ in 0..2000 {
            match w.write(&[0xCD; 16]) {
                Err(_) => errors += 1,
                Ok(n) if n < 16 => short += 1,
                Ok(_) => {}
            }
        }
        assert!(errors > 0, "no injected errors at 100 per mille");
        assert!(short > 0, "no injected short writes at 200 per mille");
        // Short writes must still write a non-empty prefix.
        assert!(!out.is_empty());
    }

    #[test]
    fn panic_message_handles_common_payloads() {
        install_quiet_hook();
        let caught = std::panic::catch_unwind(|| injected_panic("boom")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "boom");
        let caught = std::panic::catch_unwind(|| panic!("plain {}", 7)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "plain 7");
    }
}
