//! Seeded, replayable fault injection for the aprof stack.
//!
//! Long capture runs die in predictable ways — a flaky disk fails a write, a
//! worker panics mid-sweep, a pathological workload runs away — and the only
//! way to trust the recovery paths is to exercise them on purpose. This crate
//! is the shared fault plan the rest of the workspace injects from: sink
//! wrappers that fail or shorten writes, worker-level panics and delays for
//! the hardened bench driver, and instruction budgets for the VM's resource
//! limits.
//!
//! Every decision is a pure function of `(seed, site, ordinal)`, hashed with
//! splitmix64, so a fault schedule replays identically across runs and is
//! independent of thread interleaving: worker faults key off the *job index*,
//! sink faults off the *write ordinal*, never off wall-clock or scheduling
//! order. Disabled plans ([`FaultPlan::disabled`]) answer every query with a
//! single boolean test and are never installed on production paths at all —
//! the default capture and driver paths do not construct this crate's types.
//!
//! # Example
//!
//! ```
//! use aprof_faults::{FaultConfig, FaultPlan, WorkerFault};
//!
//! let plan = FaultPlan::new(FaultConfig { panic_per_mille: 1000, ..FaultConfig::off(7) });
//! assert!(matches!(plan.worker_fault(0, 1), Some(WorkerFault::Panic)));
//! // Replayable: the same (job, attempt) always draws the same fault.
//! assert_eq!(plan.worker_fault(3, 2).is_some(), plan.worker_fault(3, 2).is_some());
//!
//! let quiet = FaultPlan::disabled();
//! assert!(quiet.worker_fault(0, 1).is_none());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::any::Any;
use std::io::{self, Read, Write};
use std::panic;
use std::sync::Once;
use std::thread;
use std::time::Duration;

use aprof_obs::counters;

/// Fault rates and budgets for one plan. All rates are probabilities in
/// per-mille (`0..=1000`); a rate of 0 disables that fault class and 1000
/// makes it unconditional.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for every decision stream. Two plans with the same config inject
    /// the identical fault schedule.
    pub seed: u64,
    /// Probability that an individual sink write fails with an I/O error.
    pub io_error_per_mille: u32,
    /// Probability that an individual sink write is short (partial), which
    /// exercises `write_all`-style retry loops without failing.
    pub short_write_per_mille: u32,
    /// Probability that a worker attempt panics.
    pub panic_per_mille: u32,
    /// Probability that a worker attempt is delayed by [`FaultConfig::delay`].
    pub delay_per_mille: u32,
    /// Length of an injected worker delay.
    pub delay: Duration,
    /// Probability that a job's guest run gets
    /// [`FaultConfig::vm_instruction_budget`] imposed on it. Keyed by job
    /// only (not attempt), so a budgeted job fails deterministically across
    /// retries.
    pub budget_per_mille: u32,
    /// The instruction budget imposed on selected jobs.
    pub vm_instruction_budget: u64,
    /// Probability that an accept loop panics right after accepting a
    /// connection (exercises listener supervision; the connection is lost).
    pub accept_panic_per_mille: u32,
    /// Probability that a spool-stage `fsync` fails with a disk-full error
    /// ([`FaultPlan::sync_fault`]).
    pub sync_error_per_mille: u32,
    /// Probability that a spool commit rename fails with a disk-full error
    /// ([`FaultPlan::rename_fault`]).
    pub rename_error_per_mille: u32,
}

impl FaultConfig {
    /// A config with every fault class disabled, keeping only the seed.
    pub fn off(seed: u64) -> Self {
        Self {
            seed,
            io_error_per_mille: 0,
            short_write_per_mille: 0,
            panic_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::from_millis(1),
            budget_per_mille: 0,
            vm_instruction_budget: u64::MAX,
            accept_panic_per_mille: 0,
            sync_error_per_mille: 0,
            rename_error_per_mille: 0,
        }
    }

    /// The mixed-fault config used by `repro --faults`: moderate rates of
    /// every fault class, tuned so a ~dozen-job sweep sees panics, delays and
    /// budget traps without drowning in them.
    pub fn smoke(seed: u64) -> Self {
        Self {
            io_error_per_mille: 4,
            short_write_per_mille: 120,
            panic_per_mille: 250,
            delay_per_mille: 200,
            delay: Duration::from_millis(2),
            budget_per_mille: 220,
            vm_instruction_budget: 20_000,
            ..Self::off(seed)
        }
    }

    /// The chaos-soak config used by `repro --chaos`: the smoke rates plus
    /// the service-only fault classes (listener panics, spool-stage
    /// disk-full at fsync and rename). Worker panics are dialled down a bit
    /// from [`FaultConfig::smoke`] so chaotic submissions still make
    /// progress under bounded retries.
    pub fn chaos(seed: u64) -> Self {
        Self {
            io_error_per_mille: 25,
            short_write_per_mille: 120,
            panic_per_mille: 160,
            delay_per_mille: 150,
            delay: Duration::from_millis(2),
            accept_panic_per_mille: 60,
            sync_error_per_mille: 25,
            rename_error_per_mille: 25,
            ..Self::off(seed)
        }
    }
}

/// Decision-stream site tags: mixed into the hash so distinct fault classes
/// draw from independent streams even at the same ordinal.
mod site {
    pub const IO_ERROR: u64 = 0x10;
    pub const SHORT_WRITE: u64 = 0x20;
    pub const PANIC: u64 = 0x30;
    pub const DELAY: u64 = 0x40;
    pub const VM_BUDGET: u64 = 0x50;
    pub const ACCEPT_PANIC: u64 = 0x60;
    pub const SPOOL_SYNC: u64 = 0x70;
    pub const SPOOL_RENAME: u64 = 0x80;
    pub const NET_RESET: u64 = 0x90;
    pub const NET_SHORT_READ: u64 = 0xA0;
    pub const NET_SHORT_WRITE: u64 = 0xB0;
    pub const NET_DRIBBLE: u64 = 0xC0;
    pub const NET_GARBAGE: u64 = 0xD0;
}

/// Draws one `(seed, site, ordinal)` decision against a per-mille rate.
/// The shared primitive behind both [`FaultPlan`] and [`NetFaultPlan`]:
/// deterministic, full-avalanche, independent per site.
fn decide(seed: u64, site_tag: u64, ordinal: u64, per_mille: u32) -> bool {
    if per_mille == 0 {
        return false;
    }
    let h = splitmix64(
        seed.wrapping_add(site_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(ordinal.wrapping_mul(0xBF58_476D_1CE4_E5B9)),
    );
    (h % 1000) < u64::from(per_mille.min(1000))
}

/// A seeded fault schedule. Cheap to copy; every query is a pure hash of the
/// plan's seed and the caller-supplied coordinates.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    cfg: FaultConfig,
    active: bool,
}

impl FaultPlan {
    /// A plan that injects according to `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        Self { cfg, active: true }
    }

    /// A plan that never injects anything. All queries short-circuit on one
    /// boolean.
    pub fn disabled() -> Self {
        Self { cfg: FaultConfig::off(0), active: false }
    }

    /// Whether this plan can inject at all.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Draws the `(site, ordinal)` decision against a per-mille rate.
    /// Deterministic: same plan + coordinates → same answer.
    fn decide(&self, site_tag: u64, ordinal: u64, per_mille: u32) -> bool {
        self.active && decide(self.cfg.seed, site_tag, ordinal, per_mille)
    }

    /// The fault (if any) to inject into worker `job` on its `attempt`-th
    /// try (1-based). Panic and delay draws are independent; panic wins when
    /// both fire. Counters are bumped by the *injection* sites
    /// ([`injected_panic`], [`FaultyWrite`]), not by this query.
    pub fn worker_fault(&self, job: u64, attempt: u32) -> Option<WorkerFault> {
        let ordinal = job.wrapping_mul(97).wrapping_add(u64::from(attempt));
        if self.decide(site::PANIC, ordinal, self.cfg.panic_per_mille) {
            return Some(WorkerFault::Panic);
        }
        if self.decide(site::DELAY, ordinal, self.cfg.delay_per_mille) {
            return Some(WorkerFault::Delay(self.cfg.delay));
        }
        None
    }

    /// The VM instruction budget (if any) to impose on `job`'s guest run.
    /// Keyed by job only, so the trap reproduces on every retry.
    pub fn vm_budget(&self, job: u64) -> Option<u64> {
        self.decide(site::VM_BUDGET, job, self.cfg.budget_per_mille)
            .then_some(self.cfg.vm_instruction_budget)
    }

    /// Wraps a sink so its writes are subject to this plan's I/O faults.
    pub fn wrap_writer<W: Write>(&self, inner: W) -> FaultyWrite<W> {
        FaultyWrite { inner, plan: *self, writes: 0 }
    }

    /// Whether the accept loop should panic right after accepting
    /// connection `ordinal` (exercises listener supervision). Bumps no
    /// counter — the injection site raises via [`injected_panic`].
    pub fn accept_fault(&self, ordinal: u64) -> bool {
        self.decide(site::ACCEPT_PANIC, ordinal, self.cfg.accept_panic_per_mille)
    }

    /// The disk-full error (if any) to inject in place of the spool-stage
    /// `fsync` keyed by `ordinal` (callers key it off a stable name hash so
    /// the schedule is independent of arrival order). Bumps
    /// `faults.injected_commit_errors` when it injects.
    pub fn sync_fault(&self, ordinal: u64) -> Option<io::Error> {
        self.decide(site::SPOOL_SYNC, ordinal, self.cfg.sync_error_per_mille).then(|| {
            counters::FAULTS_INJECTED_COMMIT_ERRORS.incr();
            io::Error::new(
                io::ErrorKind::StorageFull,
                "injected fault: disk full during spool fsync",
            )
        })
    }

    /// The disk-full error (if any) to inject in place of the spool commit
    /// rename keyed by `ordinal`. Bumps `faults.injected_commit_errors`
    /// when it injects.
    pub fn rename_fault(&self, ordinal: u64) -> Option<io::Error> {
        self.decide(site::SPOOL_RENAME, ordinal, self.cfg.rename_error_per_mille).then(|| {
            counters::FAULTS_INJECTED_COMMIT_ERRORS.incr();
            io::Error::new(
                io::ErrorKind::StorageFull,
                "injected fault: disk full during spool commit rename",
            )
        })
    }
}

/// Deterministic jittered exponential backoff: attempt 0 draws from
/// `[base/2, base]`, each further attempt doubles the window, and the
/// window never exceeds `cap`. The jitter is a pure function of
/// `(seed, attempt)`, so retry schedules replay exactly — no wall clock,
/// no global RNG.
pub fn jittered_backoff(base: Duration, cap: Duration, seed: u64, attempt: u32) -> Duration {
    let exp = base.saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX));
    let window = exp.min(cap).max(Duration::from_micros(1));
    let h = splitmix64(seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let half = window / 2;
    // half + (0..=half scaled by the hash) ∈ [window/2, window].
    half + window.mul_f64((h % 1024) as f64 / 2048.0)
}

/// One fault drawn for a worker attempt by [`FaultPlan::worker_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The attempt should panic (use [`injected_panic`] so the quiet hook
    /// recognises it).
    Panic,
    /// The attempt should sleep for the given duration first.
    Delay(Duration),
}

/// A `Write` adapter that injects I/O errors and short writes according to a
/// [`FaultPlan`]. Decisions key off the write ordinal, so a single-threaded
/// writer replays the identical fault schedule every run.
#[derive(Debug)]
pub struct FaultyWrite<W> {
    inner: W,
    plan: FaultPlan,
    writes: u64,
}

impl<W> FaultyWrite<W> {
    /// Consumes the adapter, returning the wrapped sink.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Number of `write` calls observed (including failed ones).
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let ordinal = self.writes;
        self.writes += 1;
        let cfg = self.plan.cfg;
        if self.plan.decide(site::IO_ERROR, ordinal, cfg.io_error_per_mille) {
            counters::FAULTS_INJECTED_IO_ERRORS.incr();
            // Injected write failures carry the disk-full kind so callers
            // exercising ENOSPC handling see a realistic error class.
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                format!("injected fault: sink i/o error (disk full) at write #{ordinal}"),
            ));
        }
        if buf.len() > 1 && self.plan.decide(site::SHORT_WRITE, ordinal, cfg.short_write_per_mille)
        {
            counters::FAULTS_INJECTED_SHORT_WRITES.incr();
            return self.inner.write(&buf[..buf.len() / 2]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Fault rates for one network plan. Like [`FaultConfig`], all rates are
/// per-mille; decisions are pure functions of
/// `(seed, site, connection, op ordinal)`, so a given connection id replays
/// the identical fault schedule regardless of scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultConfig {
    /// Seed for every decision stream.
    pub seed: u64,
    /// Probability that an individual read/write finds the connection
    /// reset mid-stream. Once a connection draws a reset, every later op
    /// on it fails too (the socket is gone).
    pub reset_per_mille: u32,
    /// Probability that a read is shortened to half the requested buffer
    /// (exercises callers that assume full reads).
    pub short_read_per_mille: u32,
    /// Probability that a write is short (partial), exercising
    /// `write_all`-style retry loops.
    pub short_write_per_mille: u32,
    /// Probability that an op dribbles: sleep [`NetFaultConfig::dribble_delay`],
    /// then move a single byte — the slow-loris shape.
    pub dribble_per_mille: u32,
    /// Length of one dribble stall.
    pub dribble_delay: Duration,
    /// Probability that a write's bytes are replaced with garbage of the
    /// same length (protocol corruption; CRC framing must refuse it).
    pub garbage_per_mille: u32,
}

impl NetFaultConfig {
    /// A config with every network fault class disabled.
    pub fn off(seed: u64) -> Self {
        Self {
            seed,
            reset_per_mille: 0,
            short_read_per_mille: 0,
            short_write_per_mille: 0,
            dribble_per_mille: 0,
            dribble_delay: Duration::from_millis(1),
            garbage_per_mille: 0,
        }
    }

    /// The mixed-network-fault config used by `repro --chaos`: enough
    /// resets, short ops, dribbles and garbage that a few dozen connections
    /// see every class, while bounded retries still converge.
    pub fn chaos(seed: u64) -> Self {
        Self {
            reset_per_mille: 25,
            short_read_per_mille: 120,
            short_write_per_mille: 120,
            dribble_per_mille: 60,
            dribble_delay: Duration::from_millis(1),
            garbage_per_mille: 18,
            ..Self::off(seed)
        }
    }
}

/// A seeded network fault schedule. Cheap to copy; wrap each socket with
/// [`NetFaultPlan::wrap`] under a distinct connection id and the plan
/// replays the identical per-connection fault sequence every run.
#[derive(Debug, Clone, Copy)]
pub struct NetFaultPlan {
    cfg: NetFaultConfig,
    active: bool,
}

impl NetFaultPlan {
    /// A plan that injects according to `cfg`.
    pub fn new(cfg: NetFaultConfig) -> Self {
        Self { cfg, active: true }
    }

    /// A plan that never injects anything.
    pub fn disabled() -> Self {
        Self { cfg: NetFaultConfig::off(0), active: false }
    }

    /// Whether this plan can inject at all.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &NetFaultConfig {
        &self.cfg
    }

    fn decide(&self, site_tag: u64, conn: u64, op: u64, per_mille: u32) -> bool {
        // Decorrelate connections by folding the connection id into the
        // ordinal stream with an odd multiplier.
        let ordinal = conn.wrapping_mul(0x0001_0003).wrapping_add(op);
        self.active && decide(self.cfg.seed, site_tag, ordinal, per_mille)
    }

    /// Wraps a socket (anything `Read + Write`) so its ops are subject to
    /// this plan's faults, keyed by `conn` (the caller-chosen connection
    /// id — reuse an id to replay that connection's schedule exactly).
    pub fn wrap<S>(&self, inner: S, conn: u64) -> FaultyConn<S> {
        FaultyConn {
            inner,
            plan: *self,
            conn,
            reads: 0,
            writes: 0,
            reset: false,
            counts: NetFaultCounts::default(),
        }
    }
}

/// Per-instance tally of the faults a [`FaultyConn`] actually injected,
/// kept independently of the global obs counters so harnesses can
/// reconcile the two.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultCounts {
    /// Connection resets injected (at most one per connection).
    pub resets: u64,
    /// Reads shortened to half the requested buffer.
    pub short_reads: u64,
    /// Writes shortened to half the provided buffer.
    pub short_writes: u64,
    /// Single-byte dribble ops (reads + writes) with an injected stall.
    pub dribbles: u64,
    /// Writes whose bytes were replaced with garbage.
    pub garbage_writes: u64,
}

impl NetFaultCounts {
    /// Sum of every injected fault class.
    pub fn total(&self) -> u64 {
        self.resets + self.short_reads + self.short_writes + self.dribbles + self.garbage_writes
    }

    /// Field-wise accumulation (for summing per-connection tallies).
    pub fn absorb(&mut self, other: &NetFaultCounts) {
        self.resets += other.resets;
        self.short_reads += other.short_reads;
        self.short_writes += other.short_writes;
        self.dribbles += other.dribbles;
        self.garbage_writes += other.garbage_writes;
    }
}

/// A `Read + Write` adapter that injects connection resets, short
/// reads/writes, byte-dribble slow-loris stalls and garbage protocol bytes
/// according to a [`NetFaultPlan`]. Decisions key off
/// `(connection id, op ordinal)`, so a connection's schedule replays
/// identically across runs. Each injection bumps both the global
/// `faults.net.*` obs counters and a per-instance [`NetFaultCounts`].
#[derive(Debug)]
pub struct FaultyConn<S> {
    inner: S,
    plan: NetFaultPlan,
    conn: u64,
    reads: u64,
    writes: u64,
    reset: bool,
    counts: NetFaultCounts,
}

impl<S> FaultyConn<S> {
    /// The wrapped socket (e.g. to half-close it out of band).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Consumes the adapter, returning the wrapped socket.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The faults this instance actually injected so far.
    pub fn counts(&self) -> NetFaultCounts {
        self.counts
    }

    fn inject_reset(&mut self) -> io::Error {
        if !self.reset {
            self.reset = true;
            self.counts.resets += 1;
            counters::FAULTS_NET_RESETS.incr();
        }
        io::Error::new(io::ErrorKind::ConnectionReset, "injected fault: connection reset")
    }
}

impl<S: Read> Read for FaultyConn<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.reset {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected fault: connection already reset",
            ));
        }
        let op = self.reads;
        self.reads += 1;
        let cfg = self.plan.cfg;
        if self.plan.decide(site::NET_RESET, self.conn, op, cfg.reset_per_mille) {
            return Err(self.inject_reset());
        }
        if !buf.is_empty() && self.plan.decide(site::NET_DRIBBLE, self.conn, op, cfg.dribble_per_mille)
        {
            self.counts.dribbles += 1;
            counters::FAULTS_NET_DRIBBLES.incr();
            thread::sleep(cfg.dribble_delay);
            return self.inner.read(&mut buf[..1]);
        }
        if buf.len() > 1
            && self.plan.decide(site::NET_SHORT_READ, self.conn, op, cfg.short_read_per_mille)
        {
            self.counts.short_reads += 1;
            counters::FAULTS_NET_SHORT_READS.incr();
            let half = buf.len() / 2;
            return self.inner.read(&mut buf[..half]);
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultyConn<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.reset {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected fault: connection already reset",
            ));
        }
        let op = self.writes;
        self.writes += 1;
        let cfg = self.plan.cfg;
        if self.plan.decide(site::NET_RESET, self.conn, op, cfg.reset_per_mille) {
            return Err(self.inject_reset());
        }
        if !buf.is_empty()
            && self.plan.decide(site::NET_GARBAGE, self.conn, op, cfg.garbage_per_mille)
        {
            // Replace the payload with seeded garbage of the same length:
            // the bytes on the wire are wrong but the caller believes the
            // write succeeded — exactly a corrupting middlebox. CRC-framed
            // protocols must refuse the stream, never mis-aggregate it.
            self.counts.garbage_writes += 1;
            counters::FAULTS_NET_GARBAGE.incr();
            let mut garbage = vec![0u8; buf.len()];
            let mut x = splitmix64(cfg.seed ^ self.conn.wrapping_mul(0x51_7C_C1)) | 1;
            for b in &mut garbage {
                x = splitmix64(x);
                *b = (x & 0xFF) as u8;
            }
            self.inner.write_all(&garbage)?;
            return Ok(buf.len());
        }
        if !buf.is_empty()
            && self.plan.decide(site::NET_DRIBBLE, self.conn, op, cfg.dribble_per_mille)
        {
            self.counts.dribbles += 1;
            counters::FAULTS_NET_DRIBBLES.incr();
            thread::sleep(cfg.dribble_delay);
            return self.inner.write(&buf[..1]);
        }
        if buf.len() > 1
            && self.plan.decide(site::NET_SHORT_WRITE, self.conn, op, cfg.short_write_per_mille)
        {
            self.counts.short_writes += 1;
            counters::FAULTS_NET_SHORT_WRITES.incr();
            return self.inner.write(&buf[..buf.len() / 2]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The payload type carried by panics raised via [`injected_panic`]. The
/// quiet hook installed by [`install_quiet_hook`] suppresses the default
/// "thread panicked" banner for exactly this type, so deliberately injected
/// panics don't spray stderr during tests and smoke runs.
#[derive(Debug)]
pub struct InjectedPanic(pub String);

/// Raises a deliberately injected panic carrying `msg`. Pair with
/// [`install_quiet_hook`] to keep test output clean, and with
/// [`panic_message`] to recover the message at the catch site.
pub fn injected_panic(msg: impl Into<String>) -> ! {
    counters::FAULTS_INJECTED_PANICS.incr();
    panic::panic_any(InjectedPanic(msg.into()))
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// [`InjectedPanic`] payloads and forwards everything else to the previous
/// hook. Safe to call from parallel tests; only the first call installs.
pub fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Extracts a human-readable message from a caught panic payload
/// (`std::thread::Result`'s error half): handles [`InjectedPanic`], `String`
/// and `&str` payloads, and falls back to a placeholder for opaque ones.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(p) = payload.downcast_ref::<InjectedPanic>() {
        p.0.clone()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The splitmix64 mixer: a full-avalanche hash over one `u64`, the same
/// generator the vendored proptest uses for its deterministic streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_injects() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_active());
        for job in 0..256 {
            assert_eq!(plan.worker_fault(job, 1), None);
            assert_eq!(plan.vm_budget(job), None);
        }
        let mut out = Vec::new();
        let mut w = plan.wrap_writer(&mut out);
        for _ in 0..64 {
            w.write_all(&[0xAB; 32]).unwrap();
        }
        assert_eq!(out.len(), 64 * 32);
    }

    #[test]
    fn decisions_are_replayable() {
        let plan_a = FaultPlan::new(FaultConfig::smoke(42));
        let plan_b = FaultPlan::new(FaultConfig::smoke(42));
        for job in 0..512 {
            for attempt in 1..4 {
                assert_eq!(plan_a.worker_fault(job, attempt), plan_b.worker_fault(job, attempt));
            }
            assert_eq!(plan_a.vm_budget(job), plan_b.vm_budget(job));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let plan_a = FaultPlan::new(FaultConfig::smoke(1));
        let plan_b = FaultPlan::new(FaultConfig::smoke(2));
        let schedule = |p: &FaultPlan| (0..512).map(|j| p.worker_fault(j, 1)).collect::<Vec<_>>();
        assert_ne!(schedule(&plan_a), schedule(&plan_b));
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let cfg = FaultConfig { panic_per_mille: 250, ..FaultConfig::off(9) };
        let plan = FaultPlan::new(cfg);
        let hits = (0..4000)
            .filter(|&j| matches!(plan.worker_fault(j, 1), Some(WorkerFault::Panic)))
            .count();
        // 250‰ of 4000 = 1000 expected; allow a generous deterministic band.
        assert!((700..1300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn faulty_writer_injects_and_shortens() {
        let cfg = FaultConfig {
            io_error_per_mille: 100,
            short_write_per_mille: 200,
            ..FaultConfig::off(3)
        };
        let plan = FaultPlan::new(cfg);
        let mut out = Vec::new();
        let mut w = plan.wrap_writer(&mut out);
        let mut errors = 0;
        let mut short = 0;
        for _ in 0..2000 {
            match w.write(&[0xCD; 16]) {
                Err(_) => errors += 1,
                Ok(n) if n < 16 => short += 1,
                Ok(_) => {}
            }
        }
        assert!(errors > 0, "no injected errors at 100 per mille");
        assert!(short > 0, "no injected short writes at 200 per mille");
        // Short writes must still write a non-empty prefix.
        assert!(!out.is_empty());
    }

    #[test]
    fn net_plan_is_replayable_and_disabled_is_quiet() {
        let quiet = NetFaultPlan::disabled();
        assert!(!quiet.is_active());
        let mut conn = quiet.wrap(io::Cursor::new(vec![0u8; 4096]), 7);
        let mut buf = [0u8; 64];
        for _ in 0..64 {
            assert_eq!(conn.read(&mut buf).unwrap(), 64);
        }
        assert_eq!(conn.counts(), NetFaultCounts::default());

        // Same seed + same connection id → identical injected schedule.
        let run = |seed| {
            let plan = NetFaultPlan::new(NetFaultConfig::chaos(seed));
            let mut conn = plan.wrap(io::Cursor::new(vec![0u8; 1 << 16]), 3);
            let mut log = Vec::new();
            let mut buf = [0u8; 32];
            for _ in 0..512 {
                match conn.read(&mut buf) {
                    Ok(n) => log.push(n as i64),
                    Err(_) => log.push(-1),
                }
            }
            (log, conn.counts())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn faulty_conn_injects_every_class() {
        let plan = NetFaultPlan::new(NetFaultConfig {
            reset_per_mille: 15,
            short_read_per_mille: 150,
            short_write_per_mille: 150,
            dribble_per_mille: 100,
            dribble_delay: Duration::from_micros(1),
            garbage_per_mille: 100,
            ..NetFaultConfig::off(5)
        });
        let mut total = NetFaultCounts::default();
        for conn_id in 0..64 {
            let mut conn = plan.wrap(io::Cursor::new(vec![0u8; 1 << 16]), conn_id);
            let mut buf = [0u8; 32];
            for _ in 0..32 {
                if conn.read(&mut buf).is_err() {
                    break;
                }
            }
            let mut sink = plan.wrap(io::Cursor::new(Vec::new()), 1000 + conn_id);
            for _ in 0..32 {
                if sink.write(&[0xEE; 32]).is_err() {
                    break;
                }
            }
            total.absorb(&conn.counts());
            total.absorb(&sink.counts());
        }
        assert!(total.resets > 0, "no resets: {total:?}");
        assert!(total.short_reads > 0, "no short reads: {total:?}");
        assert!(total.short_writes > 0, "no short writes: {total:?}");
        assert!(total.dribbles > 0, "no dribbles: {total:?}");
        assert!(total.garbage_writes > 0, "no garbage: {total:?}");
    }

    #[test]
    fn garbage_write_claims_full_length_but_corrupts() {
        let plan = NetFaultPlan::new(NetFaultConfig {
            garbage_per_mille: 1000,
            ..NetFaultConfig::off(9)
        });
        let mut out = Vec::new();
        let payload = [0x41u8; 64];
        {
            let mut conn = plan.wrap(&mut out, 0);
            assert_eq!(conn.write(&payload).unwrap(), 64);
            assert_eq!(conn.counts().garbage_writes, 1);
        }
        assert_eq!(out.len(), 64);
        assert_ne!(out, payload.to_vec(), "garbage write left the payload intact");
    }

    #[test]
    fn reset_latches_for_the_connection() {
        let plan = NetFaultPlan::new(NetFaultConfig {
            reset_per_mille: 1000,
            ..NetFaultConfig::off(2)
        });
        let mut conn = plan.wrap(io::Cursor::new(vec![0u8; 64]), 0);
        let mut buf = [0u8; 8];
        assert!(conn.read(&mut buf).is_err());
        assert!(conn.read(&mut buf).is_err());
        assert!(conn.write(&[1, 2, 3]).is_err());
        // Exactly one reset is counted however many ops fail after it.
        assert_eq!(conn.counts().resets, 1);
    }

    #[test]
    fn commit_stage_faults_inject_disk_full() {
        let plan = FaultPlan::new(FaultConfig {
            sync_error_per_mille: 1000,
            rename_error_per_mille: 1000,
            ..FaultConfig::off(4)
        });
        let e = plan.sync_fault(0).expect("1000 per mille always injects");
        assert_eq!(e.kind(), io::ErrorKind::StorageFull);
        let e = plan.rename_fault(1).expect("1000 per mille always injects");
        assert_eq!(e.kind(), io::ErrorKind::StorageFull);
        assert!(FaultPlan::disabled().sync_fault(0).is_none());
        assert!(FaultPlan::disabled().rename_fault(0).is_none());
        assert!(FaultPlan::new(FaultConfig::off(4)).sync_fault(0).is_none());
    }

    #[test]
    fn backoff_is_bounded_jittered_and_deterministic() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        for attempt in 0..20 {
            let d = jittered_backoff(base, cap, 77, attempt);
            let window = base.saturating_mul(1u32 << attempt.min(16)).min(cap);
            assert!(d >= window / 2, "attempt {attempt}: {d:?} under half-window");
            assert!(d <= cap + cap, "attempt {attempt}: {d:?} way past cap");
            assert_eq!(d, jittered_backoff(base, cap, 77, attempt));
        }
        // Different seeds jitter differently somewhere in the schedule.
        let a: Vec<_> = (0..8).map(|i| jittered_backoff(base, cap, 1, i)).collect();
        let b: Vec<_> = (0..8).map(|i| jittered_backoff(base, cap, 2, i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn panic_message_handles_common_payloads() {
        install_quiet_hook();
        let caught = std::panic::catch_unwind(|| injected_panic("boom")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "boom");
        let caught = std::panic::catch_unwind(|| panic!("plain {}", 7)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "plain 7");
    }
}
