//! Case execution, seed derivation and regression-file persistence.

use crate::{ProptestConfig, TestRng};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Derives a stable per-test base seed from the test's name.
fn base_seed(test_name: &str) -> u64 {
    // FNV-1a over the name, mixed with a fixed harness constant so renaming
    // a test reshuffles its cases but re-running never does.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ 0x05ee_dab1_e0dd_ba11
}

/// The regressions file sitting next to the test source, mirroring
/// proptest's `<test-file>.proptest-regressions` convention. Resolved
/// through `CARGO_MANIFEST_DIR` because `file!()` is workspace-relative
/// while tests run from the package directory.
fn regressions_path(source_file: &str) -> Option<PathBuf> {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    let name = std::path::Path::new(source_file).file_stem()?.to_str()?;
    let dir = if source_file.contains("tests/") { "tests" } else { "src" };
    Some(PathBuf::from(manifest).join(dir).join(format!("{name}.proptest-regressions")))
}

/// Parses `cc <16-hex-digit-seed>` lines; other lines (comments, legacy
/// upstream-proptest hash entries) are skipped.
fn read_seeds(path: &PathBuf) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    text.lines()
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            if parts.next()? != "cc" {
                return None;
            }
            u64::from_str_radix(parts.next()?, 16).ok()
        })
        .collect()
}

fn persist_seed(path: &PathBuf, test_name: &str, seed: u64) {
    let mut text = std::fs::read_to_string(path).unwrap_or_else(|_| {
        "# Seeds for failure cases the harness has generated in the past.\n\
         # Automatically read and re-run before any novel cases; check this\n\
         # file in to source control so every run benefits from saved cases.\n"
            .to_owned()
    });
    let entry = format!("cc {seed:016x} # seed of a failing case of `{test_name}`\n");
    if !text.contains(&format!("cc {seed:016x}")) {
        text.push_str(&entry);
        let _ = std::fs::write(path, text);
    }
}

fn configured_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
}

/// Runs one property test: replays persisted regression seeds first, then
/// `config.cases` fresh cases. On failure the seed is persisted and the
/// panic is re-raised with the seed in its context.
pub fn run<F>(config: &ProptestConfig, source_file: &str, test_name: &str, body: F)
where
    F: Fn(&mut TestRng),
{
    let regressions = regressions_path(source_file);
    let mut replay = Vec::new();
    if let Some(path) = &regressions {
        replay = read_seeds(path);
    }
    let base = base_seed(test_name);
    let fresh = (0..configured_cases(config)).map(|i| base.wrapping_add(i as u64 * 2 + 1));
    for (kind, seed) in replay
        .into_iter()
        .map(|s| ("regression", s))
        .chain(fresh.map(|s| ("random", s)))
    {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = TestRng::from_seed(seed);
            body(&mut rng);
        }));
        if let Err(panic) = result {
            if kind == "random" {
                if let Some(path) = &regressions {
                    persist_seed(path, test_name, seed);
                }
            }
            eprintln!(
                "proptest: `{test_name}` failed on {kind} case with seed {seed:016x} \
                 (re-run replays it from the regressions file)"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(base_seed("a"), base_seed("b"));
        assert_eq!(base_seed("a"), base_seed("a"));
    }

    #[test]
    fn legacy_hash_entries_are_skipped() {
        let dir = std::env::temp_dir().join("aprof-proptest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.proptest-regressions");
        std::fs::write(
            &path,
            "# comment\ncc 8b28f427d6e9b703dfd49cd1d1d37557fa5ef5e1a3a301e8a192df7fd984a4c1\ncc 00000000deadbeef # ours\n",
        )
        .unwrap();
        assert_eq!(read_seeds(&path), vec![0xdead_beef]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failing_case_reports_seed() {
        let config = ProptestConfig::with_cases(16);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run(&config, "nonexistent.rs", "always_fails", |_rng| panic!("boom"));
        }));
        assert!(caught.is_err());
        // `run` persists the failing seed next to the (fictitious) test
        // source; remove the artifact so test runs don't dirty the tree.
        if let Some(path) = regressions_path("nonexistent.rs") {
            let _ = std::fs::remove_file(path);
        }
    }
}
