//! Failure shrinking: reduce a failing value to a (locally) minimal one.
//!
//! Upstream proptest shrinks through its strategy tree; this stand-in keeps
//! the API surface small instead: a value type opts into shrinking by
//! implementing [`Shrink`], proposing a bounded list of strictly-simpler
//! candidates, and [`shrink_to_minimal`] drives a greedy descent — replace
//! the current failure with the first candidate that still fails, repeat
//! until no candidate fails (a local minimum) or the step budget runs out.
//!
//! The contract on [`Shrink::shrink_candidates`] is that every candidate is
//! *simpler* than `self` under some well-founded measure (fewer elements,
//! smaller magnitude, shallower nesting). The driver does not verify this;
//! a candidate as complex as its parent risks a non-terminating descent,
//! which is why the driver also enforces `max_steps`.
//!
//! # Example
//!
//! ```
//! use proptest::shrink::{shrink_to_minimal, Shrink};
//!
//! // Failure: the vector contains at least 3 elements >= 10.
//! let fails = |v: &Vec<u64>| v.iter().filter(|&&x| x >= 10).count() >= 3;
//! let start = vec![1, 17, 2, 30, 99, 4, 12, 8];
//! assert!(fails(&start));
//! let minimal = shrink_to_minimal(start, 10_000, fails);
//! assert!(minimal.iter().filter(|&&x| x >= 10).count() >= 3);
//! assert_eq!(minimal.len(), 3, "every irrelevant element was removed");
//! ```

/// Types that can propose strictly-simpler variants of themselves.
pub trait Shrink: Sized {
    /// Proposes candidates simpler than `self`, most aggressive first.
    ///
    /// Returning an empty vector means `self` cannot be simplified further.
    fn shrink_candidates(&self) -> Vec<Self>;
}

/// Greedily shrinks `value` while `still_fails` keeps returning `true`.
///
/// `value` must itself be failing (`still_fails(&value)` is not
/// re-checked). At most `max_steps` candidates are *tested*; the budget
/// bounds total work when the predicate is expensive (each test of a
/// candidate counts, not each accepted step).
pub fn shrink_to_minimal<T: Shrink>(
    mut value: T,
    max_steps: usize,
    mut still_fails: impl FnMut(&T) -> bool,
) -> T {
    let mut budget = max_steps;
    'outer: loop {
        for candidate in value.shrink_candidates() {
            if budget == 0 {
                return value;
            }
            budget -= 1;
            if still_fails(&candidate) {
                value = candidate;
                continue 'outer;
            }
        }
        return value;
    }
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            /// Candidates: 0, the half, then a bisection ladder
            /// `v - v/4, v - v/8, …, v - 1` — so a monotone failure
            /// boundary is found in O(log²) predicate tests instead of a
            /// linear −1 descent.
            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2];
                let mut delta = v / 4;
                while delta > 0 {
                    out.push(v - delta);
                    delta /= 2;
                }
                out.push(v - 1);
                out.retain(|&c| c < v);
                out.dedup();
                out
            }
        }
    )*};
}

impl_shrink_uint!(u8, u16, u32, u64, usize);

impl<T: Shrink + Clone> Shrink for Vec<T> {
    /// Candidates: drop the whole tail half, drop each element, then
    /// shrink each element in place.
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        if self.len() > 1 {
            out.push(self[..self.len() / 2].to_vec());
        }
        for i in 0..self.len() {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        for i in 0..self.len() {
            for c in self[i].shrink_candidates() {
                let mut v = self.clone();
                v[i] = c;
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_shrink_to_smallest_failing() {
        // Failure: value >= 13. Minimum is exactly 13.
        let min = shrink_to_minimal(200u64, 10_000, |&v| v >= 13);
        assert_eq!(min, 13);
    }

    #[test]
    fn zero_has_no_candidates() {
        assert!(0u32.shrink_candidates().is_empty());
        assert_eq!(shrink_to_minimal(0u32, 100, |_| true), 0);
    }

    #[test]
    fn vectors_drop_irrelevant_elements() {
        // Failure: contains a 7. Minimal failing vector is [7] (element
        // shrinking cannot remove the 7 itself without passing).
        let start = vec![1u64, 9, 7, 3, 7, 2];
        let min = shrink_to_minimal(start, 100_000, |v: &Vec<u64>| v.contains(&7));
        assert_eq!(min, vec![7]);
    }

    #[test]
    fn vector_elements_shrink_in_place() {
        // Failure: sum >= 10; greedy descent reaches a local minimum where
        // nothing can be removed or reduced.
        let start = vec![50u64, 60];
        let min = shrink_to_minimal(start, 100_000, |v: &Vec<u64>| v.iter().sum::<u64>() >= 10);
        assert_eq!(min.iter().sum::<u64>(), 10, "local minimum: {min:?}");
        assert_eq!(min.len(), 1, "one element suffices to reach 10");
    }

    #[test]
    fn step_budget_bounds_work() {
        // With a zero budget the value comes back untouched.
        let min = shrink_to_minimal(vec![5u64; 8], 0, |_| true);
        assert_eq!(min, vec![5u64; 8]);
        // Tiny budgets stop mid-descent without panicking.
        let min = shrink_to_minimal(1024u64, 3, |&v| v >= 1);
        assert!(min >= 1);
    }

    /// The shrinker itself, property-tested: the result always still fails
    /// and never got more complex (for integers: never larger).
    #[test]
    fn result_still_fails_and_never_grows() {
        for seed in 0..200u64 {
            let start = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) | 1;
            let threshold = start / 3 + 1;
            let min = shrink_to_minimal(start, 10_000, |&v| v >= threshold);
            assert!(min >= threshold, "shrunk value passed: {min} < {threshold}");
            assert!(min <= start, "shrunk value grew: {min} > {start}");
            assert_eq!(min, threshold, "greedy integer descent finds the boundary");
        }
    }
}
