//! A vendored, dependency-free property-testing harness.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the real `proptest` crate cannot be fetched. This crate
//! reimplements the (small) subset of its API that the workspace's tests
//! use, keeping the test sources source-compatible:
//!
//! * [`Strategy`] with [`prop_map`](Strategy::prop_map) and
//!   [`boxed`](Strategy::boxed);
//! * range, tuple, [`Just`], [`any`], `prop::collection::{vec, btree_map}`
//!   and `prop::option::of` strategies;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`ProptestConfig::with_cases`] and the `PROPTEST_CASES` environment
//!   override;
//! * `*.proptest-regressions` files: failing seeds are appended as
//!   `cc <16-hex-digit-seed>` lines and replayed before fresh cases.
//!
//! Differences from upstream: generation is driven by a splitmix64 PRNG
//! seeded deterministically per test (so CI runs are reproducible without a
//! seed file), and the `proptest!` runner does *not* shrink — the panic
//! message carries the seed, which the regressions file persists for
//! replay. Shrinking is available out-of-band instead: value types that
//! implement [`shrink::Shrink`] can be reduced to a locally-minimal failing
//! value with [`shrink::shrink_to_minimal`] (the fuzz corpus uses this to
//! report minimal failing guest CFGs).

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::rc::Rc;

pub mod runner;
pub mod shrink;

/// Deterministic splitmix64 generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // test-data generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy { gen: Rc::new(move |rng| self.generate(rng)) }
    }
}

/// A type-erased [`Strategy`].
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical full-domain strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T` (`any::<T>()`).
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// A weighted choice among boxed alternatives (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positively-weighted arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum checked in constructor")
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors of values of `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A strategy for `BTreeMap<K, V>`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Generates maps with approximately `size` entries (key collisions may
    /// produce fewer, as with upstream proptest).
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            let mut map = BTreeMap::new();
            for _ in 0..len {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// A strategy yielding `None` about a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner`'s values in `Some`, interleaving `None`s.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The `prop::` paths used by `use proptest::prelude::*` consumers.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test (before the `PROPTEST_CASES`
    /// environment override).
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::shrink::{shrink_to_minimal, Shrink};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Each function body runs once per generated
/// case; the binding before `in` receives a value from the strategy
/// expression after it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::runner::run(&config, file!(), stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn union_respects_zero_weighted_arms() {
        let mut rng = TestRng::from_seed(7);
        let s = prop_oneof![1 => Just(1u32), 0 => Just(2u32)];
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng), 1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = prop::collection::vec((0u32..9, any::<u64>()), 1..50);
        let a: Vec<_> = {
            let mut rng = TestRng::from_seed(99);
            strat.generate(&mut rng)
        };
        let b: Vec<_> = {
            let mut rng = TestRng::from_seed(99);
            strat.generate(&mut rng)
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_smoke(v in prop::collection::vec(0u64..100, 1..20)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn multiple_bindings(a in 0u32..10, b in 10u32..20) {
            prop_assert!(a < b);
        }
    }
}
