//! The guest intermediate representation: a small register machine.
//!
//! Programs are collections of [`Function`]s made of [`BasicBlock`]s over an
//! unbounded register file of 64-bit integers. Guest memory is word-granular
//! (one [`aprof_trace::Addr`] names one `i64` cell). The instruction set is
//! deliberately VEX-flavoured: straight-line arithmetic within blocks,
//! explicit terminators, calls and returns as instructions (so the
//! instrumentation sees every activation), plus threading and kernel-I/O
//! primitives matching the events of §4 of the paper.

use aprof_trace::RoutineTable;
use std::fmt;

/// A virtual register of a function (64-bit integer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Dense index of the function.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Dense index of the block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Binary arithmetic/logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Min,
    Max,
}

impl BinOp {
    /// Evaluates the operation with guest semantics (wrapping arithmetic;
    /// division/remainder by zero yield 0, like a forgiving guest ABI).
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    /// Mnemonic used by the assembly syntax.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// Comparison operations; results are 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let r = match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        };
        r as i64
    }

    /// Mnemonic used by the assembly syntax.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "ceq",
            CmpOp::Ne => "cne",
            CmpOp::Lt => "clt",
            CmpOp::Le => "cle",
            CmpOp::Gt => "cgt",
            CmpOp::Ge => "cge",
        }
    }
}

/// One guest instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = value`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = lhs <op> rhs`.
    Bin {
        /// The operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = lhs <cmp> rhs` (0 or 1).
    Cmp {
        /// The comparison.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = memory[addr + offset]` — generates a `Read` event.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        addr: Reg,
        /// Constant cell offset.
        offset: i64,
    },
    /// `memory[addr + offset] = src` — generates a `Write` event.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        addr: Reg,
        /// Constant cell offset.
        offset: i64,
    },
    /// `dst = base address of a fresh allocation of len cells`.
    Alloc {
        /// Destination register (receives the base address).
        dst: Reg,
        /// Register holding the cell count.
        len: Reg,
    },
    /// Call `func` with `args`; the return value (if any) lands in `dst`.
    Call {
        /// Destination for the callee's return value.
        dst: Option<Reg>,
        /// Callee.
        func: FuncId,
        /// Argument registers, copied into the callee's first registers.
        args: Vec<Reg>,
    },
    /// Spawn a thread running `func(args)`; `dst` receives a thread handle.
    Spawn {
        /// Destination for the thread handle.
        dst: Reg,
        /// Thread entry function.
        func: FuncId,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// Block until the thread whose handle is in `thread` terminates.
    Join {
        /// Register holding a thread handle from [`Instr::Spawn`].
        thread: Reg,
    },
    /// Acquire the mutex identified by the value of `lock` (blocking).
    Acquire {
        /// Register holding the lock key.
        lock: Reg,
    },
    /// Release the mutex identified by the value of `lock`.
    Release {
        /// Register holding the lock key.
        lock: Reg,
    },
    /// Initialize semaphore `sem` to `value`.
    SemInit {
        /// Register holding the semaphore key.
        sem: Reg,
        /// Register holding the initial value.
        value: Reg,
    },
    /// V (post) on semaphore `sem`.
    SemPost {
        /// Register holding the semaphore key.
        sem: Reg,
    },
    /// P (wait) on semaphore `sem` (blocking).
    SemWait {
        /// Register holding the semaphore key.
        sem: Reg,
    },
    /// Voluntarily yield the processor.
    Yield,
    /// `dst = cells read` — the kernel fills `len` cells at `buf` with data
    /// from the device behind file descriptor `fd`, generating one
    /// `KernelWrite` event per cell (§4.3: a thread *external read*).
    SysRead {
        /// Destination for the number of cells transferred.
        dst: Reg,
        /// Register holding the file descriptor.
        fd: Reg,
        /// Register holding the buffer base address.
        buf: Reg,
        /// Register holding the requested cell count.
        len: Reg,
    },
    /// `dst = cells written` — the kernel sends `len` cells at `buf` to the
    /// device behind `fd`, generating one `KernelRead` event per cell
    /// (§4.3: a thread *external write*).
    SysWrite {
        /// Destination for the number of cells transferred.
        dst: Reg,
        /// Register holding the file descriptor.
        fd: Reg,
        /// Register holding the buffer base address.
        buf: Reg,
        /// Register holding the cell count.
        len: Reg,
    },
}

impl Instr {
    /// The register this instruction defines (writes), if any.
    ///
    /// Mirrors the interpreter exactly: `Call` only defines its destination
    /// when one was requested, and `Store`/sync instructions define nothing.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::Alloc { dst, .. }
            | Instr::Spawn { dst, .. }
            | Instr::SysRead { dst, .. }
            | Instr::SysWrite { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            Instr::Store { .. }
            | Instr::Join { .. }
            | Instr::Acquire { .. }
            | Instr::Release { .. }
            | Instr::SemInit { .. }
            | Instr::SemPost { .. }
            | Instr::SemWait { .. }
            | Instr::Yield => None,
        }
    }

    /// Appends the registers this instruction reads to `out`, in operand
    /// order (the order the interpreter evaluates them).
    pub fn uses_into(&self, out: &mut Vec<Reg>) {
        match self {
            Instr::Const { .. } | Instr::Yield => {}
            Instr::Mov { src, .. } => out.push(*src),
            Instr::Bin { lhs, rhs, .. } | Instr::Cmp { lhs, rhs, .. } => {
                out.extend([*lhs, *rhs])
            }
            Instr::Load { addr, .. } => out.push(*addr),
            Instr::Store { src, addr, .. } => out.extend([*addr, *src]),
            Instr::Alloc { len, .. } => out.push(*len),
            Instr::Call { args, .. } | Instr::Spawn { args, .. } => {
                out.extend(args.iter().copied())
            }
            Instr::Join { thread } => out.push(*thread),
            Instr::Acquire { lock } | Instr::Release { lock } => out.push(*lock),
            Instr::SemInit { sem, value } => out.extend([*sem, *value]),
            Instr::SemPost { sem } | Instr::SemWait { sem } => out.push(*sem),
            Instr::SysRead { fd, buf, len, .. } | Instr::SysWrite { fd, buf, len, .. } => {
                out.extend([*fd, *buf, *len])
            }
        }
    }

    /// The called or spawned function, if this instruction transfers to one.
    pub fn callee(&self) -> Option<(FuncId, &[Reg])> {
        match self {
            Instr::Call { func, args, .. } | Instr::Spawn { func, args, .. } => {
                Some((*func, args))
            }
            _ => None,
        }
    }
}

/// The closing control transfer of a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Two-way branch on `cond != 0`.
    Br {
        /// Condition register.
        cond: Reg,
        /// Target when the condition is non-zero.
        then_to: BlockId,
        /// Target when the condition is zero.
        else_to: BlockId,
    },
    /// Return from the current activation.
    Ret {
        /// Optional result register.
        value: Option<Reg>,
    },
}

/// A straight-line sequence of instructions ending in a [`Terminator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// The block body.
    pub instrs: Vec<Instr>,
    /// The closing control transfer.
    pub term: Terminator,
}

/// A guest function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (interned into the program's routine table).
    pub name: String,
    /// Number of parameters, passed in registers `r0..rN`.
    pub params: u16,
    /// Size of the register file.
    pub regs: u16,
    /// Basic blocks; execution starts at block 0.
    pub blocks: Vec<BasicBlock>,
}

/// A complete guest program.
#[derive(Debug, Clone)]
pub struct Program {
    functions: Vec<Function>,
    entry: FuncId,
    routines: RoutineTable,
}

impl Program {
    /// Assembles a program from its functions; `entry` is the function where
    /// the main thread starts (it must take no parameters).
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if the program is malformed: unknown
    /// entry, register/block/function references out of range, argument
    /// count mismatches, or an entry function with parameters.
    pub fn new(functions: Vec<Function>, entry: FuncId) -> Result<Program, ProgramError> {
        let mut routines = RoutineTable::new();
        for f in &functions {
            routines.intern(&f.name);
        }
        let program = Program { functions, entry, routines };
        program.validate()?;
        Ok(program)
    }

    /// The functions, indexed by [`FuncId`].
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// One function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// The entry function.
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// The routine-name table shared with profilers and reports.
    ///
    /// Function `FuncId(i)` is interned as `RoutineId(i)` — the two id
    /// spaces coincide by construction.
    pub fn routines(&self) -> &RoutineTable {
        &self.routines
    }

    /// Finds a function by name.
    pub fn find(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    fn validate(&self) -> Result<(), ProgramError> {
        let err = |f: &Function, what: String| {
            Err(ProgramError { function: f.name.clone(), message: what })
        };
        if self.functions.get(self.entry.index()).is_none() {
            return Err(ProgramError {
                function: String::new(),
                message: format!("entry function {:?} does not exist", self.entry),
            });
        }
        if self.function(self.entry).params != 0 {
            return err(self.function(self.entry), "entry function must take no parameters".into());
        }
        for f in &self.functions {
            if f.params > f.regs {
                return err(f, format!("{} params but only {} regs", f.params, f.regs));
            }
            if f.blocks.is_empty() {
                return err(f, "function has no basic blocks".into());
            }
            let check_reg = |r: Reg| r.0 < f.regs;
            let check_block = |b: BlockId| b.index() < f.blocks.len();
            let check_callee = |id: FuncId, args: &[Reg]| -> Option<String> {
                match self.functions.get(id.index()) {
                    None => Some(format!("call to unknown function {id:?}")),
                    Some(callee) if callee.params as usize != args.len() => Some(format!(
                        "call to {} with {} args, expected {}",
                        callee.name,
                        args.len(),
                        callee.params
                    )),
                    _ => None,
                }
            };
            for (bi, block) in f.blocks.iter().enumerate() {
                let mut regs: Vec<Reg> = Vec::new();
                for instr in &block.instrs {
                    regs.clear();
                    match instr {
                        Instr::Const { dst, .. } => regs.push(*dst),
                        Instr::Mov { dst, src } => regs.extend([*dst, *src]),
                        Instr::Bin { dst, lhs, rhs, .. } | Instr::Cmp { dst, lhs, rhs, .. } => {
                            regs.extend([*dst, *lhs, *rhs])
                        }
                        Instr::Load { dst, addr, .. } => regs.extend([*dst, *addr]),
                        Instr::Store { src, addr, .. } => regs.extend([*src, *addr]),
                        Instr::Alloc { dst, len } => regs.extend([*dst, *len]),
                        Instr::Call { dst, func, args } => {
                            if let Some(msg) = check_callee(*func, args) {
                                return err(f, msg);
                            }
                            regs.extend(dst.iter().copied());
                            regs.extend(args.iter().copied());
                        }
                        Instr::Spawn { dst, func, args } => {
                            if let Some(msg) = check_callee(*func, args) {
                                return err(f, msg);
                            }
                            regs.push(*dst);
                            regs.extend(args.iter().copied());
                        }
                        Instr::Join { thread } => regs.push(*thread),
                        Instr::Acquire { lock } | Instr::Release { lock } => regs.push(*lock),
                        Instr::SemInit { sem, value } => regs.extend([*sem, *value]),
                        Instr::SemPost { sem } | Instr::SemWait { sem } => regs.push(*sem),
                        Instr::Yield => {}
                        Instr::SysRead { dst, fd, buf, len }
                        | Instr::SysWrite { dst, fd, buf, len } => {
                            regs.extend([*dst, *fd, *buf, *len])
                        }
                    }
                    if let Some(&bad) = regs.iter().find(|r| !check_reg(**r)) {
                        return err(f, format!("bb{bi}: register {bad} out of range"));
                    }
                }
                match &block.term {
                    Terminator::Jmp(b) => {
                        if !check_block(*b) {
                            return err(f, format!("bb{bi}: jump to unknown {b}"));
                        }
                    }
                    Terminator::Br { cond, then_to, else_to } => {
                        if !check_reg(*cond) {
                            return err(f, format!("bb{bi}: branch condition {cond} out of range"));
                        }
                        for b in [then_to, else_to] {
                            if !check_block(*b) {
                                return err(f, format!("bb{bi}: branch to unknown {b}"));
                            }
                        }
                    }
                    Terminator::Ret { value: Some(r) } => {
                        if !check_reg(*r) {
                            return err(f, format!("bb{bi}: return register {r} out of range"));
                        }
                    }
                    Terminator::Ret { value: None } => {}
                }
            }
        }
        Ok(())
    }
}

/// A structural error in a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramError {
    /// The offending function (empty for program-level errors).
    pub function: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "invalid program: {}", self.message)
        } else {
            write!(f, "invalid function `{}`: {}", self.function, self.message)
        }
    }
}

impl std::error::Error for ProgramError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ret0() -> Terminator {
        Terminator::Ret { value: None }
    }

    #[test]
    fn binop_eval() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::Rem.eval(7, 0), 0);
        assert_eq!(BinOp::Min.eval(-2, 5), -2);
        assert_eq!(BinOp::Max.eval(-2, 5), 5);
        assert_eq!(BinOp::Shl.eval(1, 65), 2, "shift masked to 6 bits");
        assert_eq!(BinOp::Mul.eval(i64::MAX, 2), -2, "wrapping");
    }

    #[test]
    fn cmpop_eval() {
        assert_eq!(CmpOp::Lt.eval(1, 2), 1);
        assert_eq!(CmpOp::Ge.eval(1, 2), 0);
        assert_eq!(CmpOp::Eq.eval(4, 4), 1);
        assert_eq!(CmpOp::Ne.eval(4, 4), 0);
        assert_eq!(CmpOp::Le.eval(2, 2), 1);
        assert_eq!(CmpOp::Gt.eval(3, 2), 1);
    }

    #[test]
    fn validate_rejects_bad_register() {
        let f = Function {
            name: "main".into(),
            params: 0,
            regs: 1,
            blocks: vec![BasicBlock {
                instrs: vec![Instr::Const { dst: Reg(5), value: 0 }],
                term: ret0(),
            }],
        };
        let e = Program::new(vec![f], FuncId(0)).unwrap_err();
        assert!(e.message.contains("register"), "{e}");
    }

    #[test]
    fn validate_rejects_bad_block() {
        let f = Function {
            name: "main".into(),
            params: 0,
            regs: 1,
            blocks: vec![BasicBlock { instrs: vec![], term: Terminator::Jmp(BlockId(9)) }],
        };
        assert!(Program::new(vec![f], FuncId(0)).is_err());
    }

    #[test]
    fn validate_rejects_arity_mismatch() {
        let callee = Function {
            name: "g".into(),
            params: 2,
            regs: 2,
            blocks: vec![BasicBlock { instrs: vec![], term: ret0() }],
        };
        let main = Function {
            name: "main".into(),
            params: 0,
            regs: 1,
            blocks: vec![BasicBlock {
                instrs: vec![Instr::Call { dst: None, func: FuncId(0), args: vec![Reg(0)] }],
                term: ret0(),
            }],
        };
        assert!(Program::new(vec![callee, main], FuncId(1)).is_err());
    }

    #[test]
    fn validate_rejects_entry_with_params() {
        let f = Function {
            name: "main".into(),
            params: 1,
            regs: 1,
            blocks: vec![BasicBlock { instrs: vec![], term: ret0() }],
        };
        assert!(Program::new(vec![f], FuncId(0)).is_err());
    }

    #[test]
    fn routine_ids_match_func_ids() {
        let mk = |name: &str| Function {
            name: name.into(),
            params: 0,
            regs: 1,
            blocks: vec![BasicBlock { instrs: vec![], term: ret0() }],
        };
        let p = Program::new(vec![mk("main"), mk("worker")], FuncId(0)).unwrap();
        assert_eq!(p.routines().lookup("worker").unwrap().index(), 1);
        assert_eq!(p.find("worker"), Some(FuncId(1)));
        assert_eq!(p.find("nope"), None);
    }
}
