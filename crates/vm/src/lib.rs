//! An instrumented guest machine: the dynamic-binary-instrumentation
//! substrate of `aprof-rs`.
//!
//! The paper's profiler is a Valgrind tool: Valgrind translates the binary
//! into the VEX intermediate representation, serializes guest threads under
//! a fair scheduler, and delivers instruction-level events (memory accesses,
//! calls/returns, basic blocks, wrapped system calls) to analysis plugins.
//! Binding Valgrind from Rust is impractical, so this crate provides the
//! same *observable interface* from scratch:
//!
//! * a small register-based [IR](ir) of functions and basic blocks
//!   (a VEX stand-in), with a [builder] API and a textual
//!   [assembly](asm) front end;
//! * an [interpreter](Machine) that executes multithreaded guest programs —
//!   threads, locks, semaphores, join — **serialized** under a fair
//!   round-robin scheduler, exactly like Valgrind's thread model (§5);
//! * a [device] layer whose `sys_read`/`sys_write` instructions
//!   model kernel-mediated I/O, generating the `kernelWrite`/`kernelRead`
//!   events of §4.3;
//! * full instrumentation: every executed basic block, memory access,
//!   call/return, thread switch and kernel-mediated access is delivered to
//!   an [`aprof_trace::Tool`].
//!
//! Two execution paths exist so tool overhead can be measured the way the
//! paper does: [`Machine::run_native`] executes without any instrumentation
//! (the "native" column of Table 1), while [`Machine::run_with`] dispatches
//! events to a tool through dynamic dispatch (so even the do-nothing
//! `NullTool` pays the instrumentation cost, like `nulgrind`).
//!
//! # Example
//!
//! ```
//! use aprof_vm::{asm, Machine};
//! use aprof_trace::{RecordingTool};
//!
//! let program = asm::parse(
//!     r#"
//!     func main() regs=3 {
//!     bb0:
//!         r0 = const 40
//!         r1 = const 2
//!         r2 = add r0, r1
//!         ret r2
//!     }
//!     "#,
//! )?;
//! let mut machine = Machine::new(program);
//! let outcome = machine.run_native()?;
//! assert_eq!(outcome.exit_value, Some(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod asm;
pub mod builder;
pub mod device;
mod dispatch;
mod error;
pub mod ir;
mod machine;
mod memory;

pub use error::{ResourceKind, VmError};
pub use machine::{
    Machine, MachineConfig, ResourceLimits, ResourceTrap, RunOutcome, ThreadOutcome,
};
pub use memory::GuestMemory;
