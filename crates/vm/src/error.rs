//! Runtime errors of the guest machine.

use crate::ir::{FuncId, Reg};
use aprof_trace::ThreadId;
use std::fmt;

/// A runtime error raised while executing a guest program.
///
/// Structural errors are rejected earlier, at [`Program::new`] time; this
/// type covers dynamic conditions: deadlock, lock misuse, bad file
/// descriptors, runaway executions.
///
/// [`Program::new`]: crate::ir::Program::new
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// All live threads are blocked — the guest program deadlocked.
    Deadlock {
        /// Threads alive (and blocked) at detection time.
        blocked: Vec<ThreadId>,
    },
    /// A thread released a lock it does not hold.
    LockNotHeld {
        /// The offending thread.
        thread: ThreadId,
        /// The lock key.
        lock: i64,
    },
    /// A system call referenced an unknown file descriptor.
    BadFileDescriptor {
        /// The offending thread.
        thread: ThreadId,
        /// The descriptor value.
        fd: i64,
    },
    /// `join` on a value that is not a live or finished thread handle.
    BadThreadHandle {
        /// The offending thread.
        thread: ThreadId,
        /// The handle value.
        handle: i64,
    },
    /// The execution exceeded the configured basic-block budget
    /// ([`MachineConfig::max_blocks`](crate::MachineConfig)).
    BlockBudgetExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// The execution exceeded a configured resource budget
    /// ([`ResourceLimits`](crate::ResourceLimits)).
    ///
    /// Only surfaced as an error when
    /// [`ResourceLimits::trap`](crate::ResourceLimits::trap) is off; with
    /// trapping on, exhaustion ends the run gracefully with
    /// [`RunOutcome::trap`](crate::RunOutcome::trap) set instead.
    ResourceExhausted {
        /// Which budget ran out.
        resource: ResourceKind,
        /// The budget that was exhausted.
        limit: u64,
    },
    /// A spawn would exceed the configured thread limit.
    TooManyThreads {
        /// The limit in force.
        limit: usize,
        /// The function the spawn targeted.
        func: FuncId,
    },
    /// A register was read before any write in the current activation.
    ///
    /// Only raised under
    /// [`MachineConfig::strict_regs`](crate::MachineConfig::strict_regs);
    /// the default machine zero-initializes registers instead.
    UseBeforeDef {
        /// The offending thread.
        thread: ThreadId,
        /// The function whose activation read the register.
        func: FuncId,
        /// The register that was never written.
        reg: Reg,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Deadlock { blocked } => {
                write!(f, "deadlock: all live threads blocked ({blocked:?})")
            }
            VmError::LockNotHeld { thread, lock } => {
                write!(f, "{thread} released lock {lock} it does not hold")
            }
            VmError::BadFileDescriptor { thread, fd } => {
                write!(f, "{thread} used unknown file descriptor {fd}")
            }
            VmError::BadThreadHandle { thread, handle } => {
                write!(f, "{thread} joined invalid thread handle {handle}")
            }
            VmError::BlockBudgetExceeded { limit } => {
                write!(f, "execution exceeded the {limit} basic-block budget")
            }
            VmError::ResourceExhausted { resource, limit } => {
                write!(f, "execution exceeded the {limit} {resource} budget")
            }
            VmError::TooManyThreads { limit, func } => {
                write!(f, "spawn of {func:?} exceeds the {limit}-thread limit")
            }
            VmError::UseBeforeDef { thread, func, reg } => {
                write!(f, "{thread} read r{} of {func:?} before any write", reg.0)
            }
        }
    }
}

impl std::error::Error for VmError {}

/// The budgeted resource classes of
/// [`ResourceLimits`](crate::ResourceLimits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Instructions executed across all threads.
    Instructions,
    /// Cells allocated by `alloc` across the run.
    AllocCells,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Instructions => write!(f, "instruction"),
            ResourceKind::AllocCells => write!(f, "allocation-cell"),
        }
    }
}
