//! Pre-decoded opcode streams for the direct-threaded interpreter.
//!
//! The interpreter's original hot loop re-resolved the current function,
//! block and instruction on every step and dispatched through a 18-arm
//! `match` on [`Instr`]. This module flattens each basic block into a
//! contiguous array of fixed-size [`DecodedOp`]s — operands pre-extracted,
//! opcode reduced to a dense table index — which `machine.rs` drives
//! through a function-pointer handler table (see `Tbl` there), one handler
//! per opcode, plus *superinstruction* handlers for the statically fused
//! hot pairs listed in [`fuse_code`].
//!
//! Invariants the interpreter relies on:
//!
//! * **1:1 slots** — `ops[i]` always describes `block.instrs[i]`; fusing a
//!   pair rewrites slot `i` but keeps the plain decoded op in slot `i + 1`
//!   as a *filler*, so `ActFrame::idx` remains an instruction index and the
//!   blocked-instruction protocol (`Exec::advance` by wakers) is untouched.
//! * **No control into a filler** — control enters a block at index 0
//!   (branches) or just past a *blocking* instruction (waker resume).
//!   Only non-blocking ops are fused, so a filler index is never a resume
//!   point.
//! * **Fused = plain ∘ plain** — a fused handler runs the same effect
//!   functions as the two plain handlers, in order, each preceded by its
//!   own instruction-budget charge, so traces, profiles and resource traps
//!   are bit-identical with and without fusion.
//! * Complex opcodes (calls, threading, I/O, allocation) decode to
//!   [`C_COMPLEX`] and take the original `Instr` interpretation path.

use crate::ir::{BinOp, CmpOp, Instr, Program};
use std::collections::HashMap;

/// Dense opcode: register-file constant load.
pub(crate) const C_CONST: u8 = 0;
/// Dense opcode: register-to-register move.
pub(crate) const C_MOV: u8 = 1;
/// Dense opcode: guest memory load (emits a `read` event).
pub(crate) const C_LOAD: u8 = 2;
/// Dense opcode: guest memory store (emits a `write` event).
pub(crate) const C_STORE: u8 = 3;
/// First of the 12 binary-arithmetic opcodes (`BinOp` declaration order).
pub(crate) const C_BIN0: u8 = 4;
/// First of the 6 comparison opcodes (`CmpOp` declaration order).
pub(crate) const C_CMP0: u8 = 16;
/// Number of plain (unfused) table opcodes.
pub(crate) const N_PLAIN: u8 = 22;

/// Superinstruction opcodes — the measured hottest pairs, in table order
/// after the plain opcodes. See [`fuse_code`] for the selection and
/// `DESIGN.md` §14 for the census numbers behind it.
pub(crate) const C_FUSE_CONST_CONST: u8 = N_PLAIN;
pub(crate) const C_FUSE_ADD_LOAD: u8 = N_PLAIN + 1;
pub(crate) const C_FUSE_ADD_ADD: u8 = N_PLAIN + 2;
pub(crate) const C_FUSE_CONST_ADD: u8 = N_PLAIN + 3;
pub(crate) const C_FUSE_CONST_CGT: u8 = N_PLAIN + 4;

/// Total handler-table size (plain + fused opcodes).
pub(crate) const N_CODES: usize = N_PLAIN as usize + 5;

/// Escape opcode: interpret `block.instrs[idx]` through the original
/// `match`-based path (anything that can block, spawn, allocate or touch
/// devices). Deliberately *not* a table index.
pub(crate) const C_COMPLEX: u8 = 0xFF;

/// One pre-decoded instruction slot: a dense opcode plus pre-extracted
/// operands. 16 bytes, `Copy`, one per instruction index.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedOp {
    /// Handler-table index, or [`C_COMPLEX`].
    pub code: u8,
    /// Instruction indexes consumed on successful dispatch: 1, or 2 for a
    /// fused pair.
    pub adv: u8,
    /// Destination register.
    pub dst: u16,
    /// First source register (base address for loads/stores).
    pub a: u16,
    /// Second source register (value register for stores).
    pub b: u16,
    /// Immediate: `Const` value or load/store offset.
    pub imm: i64,
}

impl DecodedOp {
    fn complex() -> Self {
        DecodedOp { code: C_COMPLEX, adv: 1, dst: 0, a: 0, b: 0, imm: 0 }
    }
}

/// How a program is decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DecodeMode {
    /// Dense opcodes with superinstruction fusion — the production path.
    Fused,
    /// Dense opcodes, no fusion. Used while taking a pair census (fusion
    /// would hide exactly the pairs being counted).
    Plain,
    /// Everything decodes to [`C_COMPLEX`]: the original interpretation
    /// path. Used under `strict_regs`, whose per-operand use-before-def
    /// checks live only there.
    Original,
}

/// A program flattened into per-block [`DecodedOp`] arrays, indexed
/// `funcs[func][block][instr]` in lockstep with the [`Program`].
#[derive(Debug)]
pub(crate) struct DecodedProgram {
    funcs: Vec<Vec<Box<[DecodedOp]>>>,
}

impl DecodedProgram {
    /// Decodes every block of `program` under `mode`.
    pub(crate) fn build(program: &Program, mode: DecodeMode) -> Self {
        let funcs = program
            .functions()
            .iter()
            .map(|f| f.blocks.iter().map(|b| decode_block(&b.instrs, mode)).collect())
            .collect();
        DecodedProgram { funcs }
    }

    /// The decoded ops of one block (same indexes as `block.instrs`).
    #[inline]
    pub(crate) fn block(&self, func: usize, block: usize) -> &[DecodedOp] {
        &self.funcs[func][block]
    }
}

fn decode_block(instrs: &[Instr], mode: DecodeMode) -> Box<[DecodedOp]> {
    let mut ops: Vec<DecodedOp> = instrs
        .iter()
        .map(|i| if mode == DecodeMode::Original { DecodedOp::complex() } else { decode(i) })
        .collect();
    if mode == DecodeMode::Fused {
        let mut i = 0;
        while i + 1 < ops.len() {
            if let Some(code) = fuse_code(ops[i].code, ops[i + 1].code) {
                // Slot i becomes the superinstruction; slot i + 1 keeps its
                // plain decoding — the fused handler reads its operands
                // there, and index arithmetic stays 1:1 with `instrs`.
                ops[i].code = code;
                ops[i].adv = 2;
                i += 2;
            } else {
                i += 1;
            }
        }
    }
    ops.into_boxed_slice()
}

fn decode(instr: &Instr) -> DecodedOp {
    let mut op = DecodedOp::complex();
    match instr {
        Instr::Const { dst, value } => {
            op.code = C_CONST;
            op.dst = dst.0;
            op.imm = *value;
        }
        Instr::Mov { dst, src } => {
            op.code = C_MOV;
            op.dst = dst.0;
            op.a = src.0;
        }
        Instr::Bin { op: bin, dst, lhs, rhs } => {
            op.code = C_BIN0 + bin_index(*bin);
            op.dst = dst.0;
            op.a = lhs.0;
            op.b = rhs.0;
        }
        Instr::Cmp { op: cmp, dst, lhs, rhs } => {
            op.code = C_CMP0 + cmp_index(*cmp);
            op.dst = dst.0;
            op.a = lhs.0;
            op.b = rhs.0;
        }
        Instr::Load { dst, addr, offset } => {
            op.code = C_LOAD;
            op.dst = dst.0;
            op.a = addr.0;
            op.imm = *offset;
        }
        Instr::Store { src, addr, offset } => {
            op.code = C_STORE;
            op.a = addr.0;
            op.b = src.0;
            op.imm = *offset;
        }
        // Everything that can block, yield, spawn, allocate, call or touch
        // devices interprets through the original path.
        _ => {}
    }
    op
}

fn bin_index(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
        BinOp::Min => 10,
        BinOp::Max => 11,
    }
}

fn cmp_index(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

/// The superinstruction selection: maps a consecutive plain-opcode pair to
/// its fused opcode.
///
/// Chosen from a dynamic pair census over all 31 bundled workloads at
/// size 48 / 2 threads (`APROF_VM_PAIR_CENSUS=1`, see [`PairCensus`];
/// ~405k adjacent simple-op pairs total): const→const 16.7%,
/// add→load 12.6%, add→add 10.9%, const→add 8.4%, const→cgt 8.1% —
/// together 56.7% of all dynamically executed simple-op pairs. Only
/// non-blocking register/memory ops appear here — see the module invariants.
fn fuse_code(c1: u8, c2: u8) -> Option<u8> {
    const ADD: u8 = C_BIN0;
    const CGT: u8 = C_CMP0 + 4;
    match (c1, c2) {
        (C_CONST, C_CONST) => Some(C_FUSE_CONST_CONST),
        (ADD, C_LOAD) => Some(C_FUSE_ADD_LOAD),
        (ADD, ADD) => Some(C_FUSE_ADD_ADD),
        (C_CONST, ADD) => Some(C_FUSE_CONST_ADD),
        (C_CONST, CGT) => Some(C_FUSE_CONST_CGT),
        _ => None,
    }
}

/// Human-readable opcode name (census reports).
pub(crate) fn code_name(code: u8) -> &'static str {
    const BIN: [&str; 12] = [
        "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "min", "max",
    ];
    const CMP: [&str; 6] = ["ceq", "cne", "clt", "cle", "cgt", "cge"];
    match code {
        C_CONST => "const",
        C_MOV => "mov",
        C_LOAD => "load",
        C_STORE => "store",
        C_COMPLEX => "complex",
        c if (C_BIN0..C_CMP0).contains(&c) => BIN[(c - C_BIN0) as usize],
        c if (C_CMP0..N_PLAIN).contains(&c) => CMP[(c - C_CMP0) as usize],
        _ => "fused",
    }
}

/// Dynamic census of consecutive simple-op pairs, the evidence behind the
/// [`fuse_code`] selection. Enabled by setting `APROF_VM_PAIR_CENSUS` in
/// the environment: the machine then decodes without fusion, counts every
/// adjacent pair of simple opcodes it executes, and prints the ranking to
/// stderr when the run ends.
#[derive(Debug, Default)]
pub(crate) struct PairCensus {
    counts: HashMap<(u8, u8), u64>,
    total: u64,
}

impl PairCensus {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records one executed adjacent pair.
    #[inline]
    pub(crate) fn record(&mut self, prev: u8, cur: u8) {
        *self.counts.entry((prev, cur)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Renders the ranking, hottest pair first, with cumulative shares.
    pub(crate) fn report(&self) -> String {
        let mut pairs: Vec<(&(u8, u8), &u64)> = self.counts.iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let mut out = format!("vm pair census: {} adjacent simple-op pairs\n", self.total);
        let mut cum = 0u64;
        for (&(a, b), &n) in pairs.into_iter().take(20) {
            cum += n;
            out.push_str(&format!(
                "  {:>6} -> {:<6} {:>12}  ({:5.1}% cum {:5.1}%)\n",
                code_name(a),
                code_name(b),
                n,
                n as f64 / self.total.max(1) as f64 * 100.0,
                cum as f64 / self.total.max(1) as f64 * 100.0,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    #[test]
    fn decode_is_slot_for_slot() {
        let program = asm::parse(
            "func main() regs=4 {\n
             bb0:\n
               r0 = const 10\n
               r1 = const 0\n
               r2 = alloc r0\n
               store r1, r2, 0\n
               r3 = load r2, 0\n
               r3 = add r3, r1\n
               ret r3\n
             }",
        )
        .unwrap();
        for mode in [DecodeMode::Fused, DecodeMode::Plain, DecodeMode::Original] {
            let dp = DecodedProgram::build(&program, mode);
            assert_eq!(dp.block(0, 0).len(), 6, "{mode:?} keeps 1:1 slots");
        }
        let original = DecodedProgram::build(&program, DecodeMode::Original);
        assert!(original.block(0, 0).iter().all(|op| op.code == C_COMPLEX));
        let plain = DecodedProgram::build(&program, DecodeMode::Plain);
        assert_eq!(plain.block(0, 0)[0].code, C_CONST);
        assert_eq!(plain.block(0, 0)[2].code, C_COMPLEX, "alloc stays on the original path");
        assert_eq!(plain.block(0, 0)[3].code, C_STORE);
        assert!(plain.block(0, 0).iter().all(|op| op.adv == 1));
    }

    #[test]
    fn fusion_rewrites_head_and_keeps_filler() {
        let program = asm::parse(
            "func main() regs=3 {\n
             bb0:\n
               r0 = const 1\n
               r1 = const 2\n
               r2 = add r0, r1\n
               r2 = add r2, r1\n
               ret r2\n
             }",
        )
        .unwrap();
        let fused = DecodedProgram::build(&program, DecodeMode::Fused);
        let ops = fused.block(0, 0);
        assert_eq!(ops[0].code, C_FUSE_CONST_CONST);
        assert_eq!(ops[0].adv, 2);
        assert_eq!(ops[2].code, C_FUSE_ADD_ADD);
        assert_eq!(ops[2].adv, 2);
        // The fillers keep the second ops' plain decoding.
        assert_eq!(ops[1].code, C_CONST);
        assert_eq!(ops[1].adv, 1);
        assert_eq!(ops[3].code, C_BIN0);
        assert_eq!(ops[3].adv, 1);
    }

    #[test]
    fn fusion_does_not_overlap() {
        // mov keeps the first add unfused; then add,add,add: the first two
        // fuse and the third must stay plain (it would otherwise
        // double-execute as both filler and pair head).
        let program = asm::parse(
            "func main() regs=2 {\n
             bb0:\n
               r0 = const 1\n
               r1 = mov r0\n
               r1 = add r1, r0\n
               r1 = add r1, r0\n
               r1 = add r1, r0\n
               ret r1\n
             }",
        )
        .unwrap();
        let ops_owner = DecodedProgram::build(&program, DecodeMode::Fused);
        let ops = ops_owner.block(0, 0);
        assert_eq!(ops[0].code, C_CONST, "const -> mov is not a fused pair");
        assert_eq!(ops[2].code, C_FUSE_ADD_ADD);
        assert_eq!(ops[3].code, C_BIN0);
        assert_eq!(ops[4].code, C_BIN0);
        assert_eq!(ops[4].adv, 1);
    }

    #[test]
    fn census_report_ranks_pairs() {
        let mut census = PairCensus::new();
        for _ in 0..3 {
            census.record(C_BIN0, C_CMP0 + 2);
        }
        census.record(C_LOAD, C_BIN0);
        let report = census.report();
        let add_clt = report.find("add -> clt").expect("hottest pair listed");
        let load_add = report.find("load -> add").expect("second pair listed");
        assert!(add_clt < load_add, "sorted by count:\n{report}");
    }
}
