//! A textual assembly front end for guest programs.
//!
//! The syntax mirrors the IR one-to-one — one instruction per line, blocks
//! introduced by `label:` lines, `#` comments:
//!
//! ```text
//! # sum the first n naturals
//! func main() regs=4 {
//! entry:
//!     r0 = const 10
//!     r1 = call sum(r0)
//!     ret r1
//! }
//!
//! func sum(1) {
//! entry:
//!     r1 = const 0          # acc
//!     r2 = const 0          # i
//!     jmp head
//! head:
//!     r3 = clt r2, r0
//!     br r3, body, exit
//! body:
//!     r1 = add r1, r2
//!     r3 = const 1
//!     r2 = add r2, r3
//!     jmp head
//! exit:
//!     ret r1
//! }
//! ```
//!
//! `regs=N` is optional; the register file is sized from the highest
//! register mentioned. The entry point is the function named `main`
//! (or the first function if none is named `main`).
//!
//! [`parse`] yields a validated [`Program`]; [`parse_module`] stops before
//! validation and additionally returns a [`SourceMap`] tying every IR
//! coordinate back to its source line, which is what lets `aprof check`
//! render rustc-style diagnostics over the original listing.

use crate::ir::{
    BasicBlock, BinOp, BlockId, CmpOp, FuncId, Function, Instr, Program, Reg, Terminator,
};
use std::collections::HashMap;
use std::fmt;

/// A parse or resolution error, with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending line (0 for whole-program
    /// errors, e.g. an empty source).
    pub line: usize,
    /// 1-based column of the offending token within the line (0 when the
    /// error has no narrower span than the whole line).
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.col) {
            (0, _) => write!(f, "assembly error: {}", self.message),
            (l, 0) => write!(f, "assembly error at line {l}: {}", self.message),
            (l, c) => write!(f, "assembly error at line {l}:{c}: {}", self.message),
        }
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, col: 0, message: message.into() })
}

/// Source-position context for a parse: the raw (uncommented, untrimmed)
/// lines, which every token handed to the sub-parsers is a sub-slice of.
/// Columns are recovered by pointer offset instead of being threaded
/// through every splitting step.
struct SrcCtx<'a> {
    raw: Vec<&'a str>,
}

impl SrcCtx<'_> {
    /// 1-based column of `tok` within line `ln`; 0 if `tok` is not a
    /// sub-slice of that line (defensive — never panics).
    fn col(&self, ln: usize, tok: &str) -> usize {
        let tok = tok.trim_start();
        let Some(line) = self.raw.get(ln.wrapping_sub(1)) else { return 0 };
        let (start, end) = (line.as_ptr() as usize, line.as_ptr() as usize + line.len());
        let at = tok.as_ptr() as usize;
        if at >= start && at + tok.len() <= end {
            at - start + 1
        } else {
            0
        }
    }

    /// An error located at `tok` on line `ln`.
    fn err<T>(&self, ln: usize, tok: &str, message: impl Into<String>) -> Result<T, AsmError> {
        Err(AsmError { line: ln, col: self.col(ln, tok), message: message.into() })
    }
}

/// Source positions of one parsed basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSpans {
    /// Line of the `label:` introducing the block.
    pub label_line: usize,
    /// Line of each instruction, in block order.
    pub instr_lines: Vec<usize>,
    /// Line of the terminator; `None` when the block ends in the implicit
    /// bare `ret` the parser inserts.
    pub term_line: Option<usize>,
}

/// Source positions of one parsed function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSpans {
    /// Line of the `func name(...) {` header.
    pub header_line: usize,
    /// Per-block spans, indexed like `Function::blocks`.
    pub blocks: Vec<BlockSpans>,
}

/// Maps IR coordinates (function, block, instruction) back to 1-based
/// source lines of the listing they were parsed from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    /// Per-function spans, indexed like `Program::functions`.
    pub functions: Vec<FuncSpans>,
}

impl SourceMap {
    /// The source line of instruction `instr` of block `block` of function
    /// `func`; instruction indices past the last instruction resolve to the
    /// terminator line (falling back to the block label, then the header).
    pub fn line_of(&self, func: usize, block: usize, instr: Option<usize>) -> Option<usize> {
        let f = self.functions.get(func)?;
        let Some(b) = f.blocks.get(block) else { return Some(f.header_line) };
        match instr {
            Some(i) if i < b.instr_lines.len() => Some(b.instr_lines[i]),
            _ => Some(b.term_line.unwrap_or(b.label_line)),
        }
    }
}

/// A parsed-but-unvalidated module: what the listing said, before
/// [`Program::new`] structural validation. The static verifier consumes
/// this form so it can diagnose programs `Program::new` would reject.
#[derive(Debug, Clone)]
pub struct Module {
    /// The functions, in declaration order.
    pub functions: Vec<Function>,
    /// The entry point (`main`, or the first function).
    pub entry: FuncId,
    /// Source positions of every function/block/instruction.
    pub map: SourceMap,
}

impl Module {
    /// Validates the module into a runnable [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] (located at the offending function's header
    /// line) if [`Program::new`] rejects the module.
    pub fn into_program(self) -> Result<Program, AsmError> {
        let header_of: Vec<(String, usize)> = self
            .functions
            .iter()
            .zip(&self.map.functions)
            .map(|(f, s)| (f.name.clone(), s.header_line))
            .collect();
        Program::new(self.functions, self.entry).map_err(|e| {
            let line = header_of
                .iter()
                .find(|(n, _)| *n == e.function)
                .map(|&(_, l)| l)
                .unwrap_or(0);
            AsmError { line, col: 0, message: e.to_string() }
        })
    }
}

/// Parses an assembly listing into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] on syntax errors, references to unknown
/// functions/labels/registers, or if the assembled program fails
/// [`Program::new`] validation.
///
/// # Example
///
/// ```
/// let p = aprof_vm::asm::parse("func main() {\n e:\n ret\n }")?;
/// assert_eq!(p.functions().len(), 1);
/// # Ok::<(), aprof_vm::asm::AsmError>(())
/// ```
pub fn parse(source: &str) -> Result<Program, AsmError> {
    parse_module(source)?.into_program()
}

/// Parses an assembly listing into an unvalidated [`Module`] plus its
/// [`SourceMap`].
///
/// Unlike [`parse`] this does not run [`Program::new`] validation, so it
/// can return structurally invalid modules — the form the static verifier
/// wants, since rejecting those with located diagnostics is its job.
///
/// # Errors
///
/// Returns an [`AsmError`] on syntax errors or references to unknown
/// functions/labels.
pub fn parse_module(source: &str) -> Result<Module, AsmError> {
    let ctx = SrcCtx { raw: source.lines().collect() };
    let lines: Vec<(usize, &str)> = source
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let l = match l.find('#') {
                Some(p) => &l[..p],
                None => l,
            };
            (i + 1, l.trim())
        })
        .filter(|(_, l)| !l.is_empty())
        .collect();

    // Pass 1: function signatures.
    let mut sigs: Vec<(String, u16)> = Vec::new();
    for &(ln, line) in &lines {
        if let Some(rest) = line.strip_prefix("func ") {
            let (name, params) = parse_signature(&ctx, ln, rest)?;
            if sigs.iter().any(|(n, _)| *n == name) {
                return ctx.err(ln, rest, format!("duplicate function `{name}`"));
            }
            sigs.push((name, params));
        }
    }
    if sigs.is_empty() {
        return err(0, "no functions in source");
    }
    let func_ids: HashMap<String, FuncId> =
        sigs.iter().enumerate().map(|(i, (n, _))| (n.clone(), FuncId(i as u32))).collect();

    // Pass 2: bodies.
    let mut functions: Vec<Function> = Vec::new();
    let mut spans: Vec<FuncSpans> = Vec::new();
    let mut i = 0usize;
    while i < lines.len() {
        let (ln, line) = lines[i];
        let rest = match line.strip_prefix("func ") {
            Some(r) => r,
            None => return ctx.err(ln, line, format!("expected `func`, found `{line}`")),
        };
        let (name, params) = parse_signature(&ctx, ln, rest)?;
        let declared_regs = parse_regs_clause(&ctx, ln, rest)?;
        if !rest.trim_end().ends_with('{') {
            return ctx.err(ln, rest, "expected `{` at end of func header");
        }
        i += 1;
        // Collect raw body lines until `}`.
        let mut body: Vec<(usize, &str)> = Vec::new();
        loop {
            if i >= lines.len() {
                return ctx.err(ln, line, format!("unterminated function `{name}`"));
            }
            let (bln, bline) = lines[i];
            i += 1;
            if bline == "}" {
                break;
            }
            body.push((bln, bline));
        }
        let (function, block_spans) =
            parse_body(&ctx, &name, ln, params, declared_regs, &body, &func_ids, &sigs)?;
        functions.push(function);
        spans.push(FuncSpans { header_line: ln, blocks: block_spans });
    }

    let entry = func_ids.get("main").copied().unwrap_or(FuncId(0));
    Ok(Module { functions, entry, map: SourceMap { functions: spans } })
}

fn parse_signature(ctx: &SrcCtx, ln: usize, rest: &str) -> Result<(String, u16), AsmError> {
    let open = match rest.find('(') {
        Some(p) => p,
        None => return ctx.err(ln, rest, "expected `(` in func header"),
    };
    let close = match rest.find(')') {
        Some(p) => p,
        None => return ctx.err(ln, rest, "expected `)` in func header"),
    };
    let name_tok = rest[..open].trim();
    let name = name_tok.to_owned();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_' || c == ':') {
        return ctx.err(ln, if name.is_empty() { rest } else { name_tok }, format!("bad function name `{name}`"));
    }
    let inside = rest[open + 1..close].trim();
    let params: u16 = if inside.is_empty() {
        0
    } else {
        match inside.parse() {
            Ok(p) => p,
            Err(_) => return ctx.err(ln, inside, format!("bad parameter count `{inside}`")),
        }
    };
    Ok((name, params))
}

fn parse_regs_clause(ctx: &SrcCtx, ln: usize, rest: &str) -> Result<Option<u16>, AsmError> {
    match rest.find("regs=") {
        None => Ok(None),
        Some(p) => {
            let tail = &rest[p + 5..];
            let num: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
            num.parse().map(Some).map_err(|_| AsmError {
                line: ln,
                col: ctx.col(ln, tail),
                message: format!("bad regs clause `{tail}`"),
            })
        }
    }
}

struct RawBlock<'a> {
    label_line: usize,
    lines: Vec<(usize, &'a str)>,
}

#[allow(clippy::too_many_arguments)]
fn parse_body(
    ctx: &SrcCtx,
    name: &str,
    header_ln: usize,
    params: u16,
    declared_regs: Option<u16>,
    body: &[(usize, &str)],
    func_ids: &HashMap<String, FuncId>,
    sigs: &[(String, u16)],
) -> Result<(Function, Vec<BlockSpans>), AsmError> {
    // Split into labelled blocks.
    let mut labels: HashMap<String, BlockId> = HashMap::new();
    let mut raw_blocks: Vec<RawBlock<'_>> = Vec::new();
    for &(ln, line) in body {
        if let Some(label) = line.strip_suffix(':') {
            if !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return ctx.err(ln, label, format!("bad label `{label}`"));
            }
            let id = BlockId(raw_blocks.len() as u32);
            if labels.insert(label.to_owned(), id).is_some() {
                return ctx.err(ln, label, format!("duplicate label `{label}`"));
            }
            raw_blocks.push(RawBlock { label_line: ln, lines: Vec::new() });
        } else {
            match raw_blocks.last_mut() {
                Some(b) => b.lines.push((ln, line)),
                None => return ctx.err(ln, line, "instruction before first label"),
            }
        }
    }
    if raw_blocks.is_empty() {
        return err(header_ln, format!("function `{name}` has no blocks"));
    }

    let mut max_reg: u16 = params.saturating_sub(1);
    let mut blocks = Vec::with_capacity(raw_blocks.len());
    let mut spans = Vec::with_capacity(raw_blocks.len());
    for raw in &raw_blocks {
        let mut instrs = Vec::new();
        let mut instr_lines = Vec::new();
        let mut term: Option<Terminator> = None;
        let mut term_line: Option<usize> = None;
        for (idx, &(ln, line)) in raw.lines.iter().enumerate() {
            let is_last = idx + 1 == raw.lines.len();
            match parse_line(ctx, ln, line, func_ids, sigs, &labels, &mut max_reg)? {
                Parsed::Instr(i) => {
                    if term.is_some() {
                        return ctx.err(ln, line, "instruction after terminator");
                    }
                    instrs.push(i);
                    instr_lines.push(ln);
                }
                Parsed::Term(t) => {
                    if !is_last {
                        return ctx.err(ln, line, "terminator must end the block");
                    }
                    term = Some(t);
                    term_line = Some(ln);
                }
            }
        }
        let term = match term {
            Some(t) => t,
            None => Terminator::Ret { value: None },
        };
        blocks.push(BasicBlock { instrs, term });
        spans.push(BlockSpans { label_line: raw.label_line, instr_lines, term_line });
    }

    let inferred = max_reg.saturating_add(1).max(params).max(1);
    let regs = match declared_regs {
        Some(d) if d < inferred => {
            return err(
                header_ln,
                format!("function `{name}`: regs={d} but r{} is used", inferred - 1),
            )
        }
        Some(d) => d,
        None => inferred,
    };
    Ok((Function { name: name.to_owned(), params, regs, blocks }, spans))
}

enum Parsed {
    Instr(Instr),
    Term(Terminator),
}

fn parse_reg(ctx: &SrcCtx, ln: usize, tok: &str, max_reg: &mut u16) -> Result<Reg, AsmError> {
    let tok = tok.trim();
    let digits = match tok.strip_prefix('r') {
        Some(d) => d,
        None => return ctx.err(ln, tok, format!("expected register, found `{tok}`")),
    };
    let n: u16 = digits.parse().map_err(|_| AsmError {
        line: ln,
        col: ctx.col(ln, tok),
        message: format!("bad register `{tok}`"),
    })?;
    *max_reg = (*max_reg).max(n);
    Ok(Reg(n))
}

fn parse_int(ctx: &SrcCtx, ln: usize, tok: &str) -> Result<i64, AsmError> {
    tok.trim().parse().map_err(|_| AsmError {
        line: ln,
        col: ctx.col(ln, tok),
        message: format!("bad integer `{tok}`"),
    })
}

fn parse_call_like(
    ctx: &SrcCtx,
    ln: usize,
    text: &str,
    func_ids: &HashMap<String, FuncId>,
    sigs: &[(String, u16)],
    max_reg: &mut u16,
) -> Result<(FuncId, Vec<Reg>), AsmError> {
    let open = match text.find('(') {
        Some(p) => p,
        None => return ctx.err(ln, text, "expected `(` in call"),
    };
    let close = match text.rfind(')') {
        Some(p) => p,
        None => return ctx.err(ln, text, "expected `)` in call"),
    };
    let name = text[..open].trim();
    let func = match func_ids.get(name) {
        Some(&f) => f,
        None => return ctx.err(ln, name, format!("call to unknown function `{name}`")),
    };
    let inside = text[open + 1..close].trim();
    let args: Vec<Reg> = if inside.is_empty() {
        Vec::new()
    } else {
        inside
            .split(',')
            .map(|a| parse_reg(ctx, ln, a, max_reg))
            .collect::<Result<_, _>>()?
    };
    let expected = sigs[func.index()].1 as usize;
    if args.len() != expected {
        return ctx.err(ln, name, format!("`{name}` takes {expected} args, {} given", args.len()));
    }
    Ok((func, args))
}

fn parse_line(
    ctx: &SrcCtx,
    ln: usize,
    line: &str,
    func_ids: &HashMap<String, FuncId>,
    sigs: &[(String, u16)],
    labels: &HashMap<String, BlockId>,
    max_reg: &mut u16,
) -> Result<Parsed, AsmError> {
    let label_of = |ln: usize, tok: &str| -> Result<BlockId, AsmError> {
        labels.get(tok.trim()).copied().ok_or_else(|| AsmError {
            line: ln,
            col: ctx.col(ln, tok),
            message: format!("unknown label `{}`", tok.trim()),
        })
    };

    // Terminators and dst-less instructions first.
    let mut words = line.split_whitespace();
    let head = words.next().unwrap_or("");
    match head {
        "jmp" => {
            let target = line[3..].trim();
            return Ok(Parsed::Term(Terminator::Jmp(label_of(ln, target)?)));
        }
        "br" => {
            let rest: Vec<&str> = line[2..].split(',').collect();
            if rest.len() != 3 {
                return ctx.err(ln, line, "br needs `cond, then, else`");
            }
            return Ok(Parsed::Term(Terminator::Br {
                cond: parse_reg(ctx, ln, rest[0], max_reg)?,
                then_to: label_of(ln, rest[1])?,
                else_to: label_of(ln, rest[2])?,
            }));
        }
        "ret" => {
            let rest = line[3..].trim();
            let value =
                if rest.is_empty() { None } else { Some(parse_reg(ctx, ln, rest, max_reg)?) };
            return Ok(Parsed::Term(Terminator::Ret { value }));
        }
        "store" => {
            let rest: Vec<&str> = line[5..].split(',').collect();
            if rest.len() != 3 {
                return ctx.err(ln, line, "store needs `src, addr, offset`");
            }
            return Ok(Parsed::Instr(Instr::Store {
                src: parse_reg(ctx, ln, rest[0], max_reg)?,
                addr: parse_reg(ctx, ln, rest[1], max_reg)?,
                offset: parse_int(ctx, ln, rest[2])?,
            }));
        }
        "join" => {
            return Ok(Parsed::Instr(Instr::Join {
                thread: parse_reg(ctx, ln, &line[4..], max_reg)?,
            }))
        }
        "acquire" => {
            return Ok(Parsed::Instr(Instr::Acquire {
                lock: parse_reg(ctx, ln, &line[7..], max_reg)?,
            }))
        }
        "release" => {
            return Ok(Parsed::Instr(Instr::Release {
                lock: parse_reg(ctx, ln, &line[7..], max_reg)?,
            }))
        }
        "sem_init" => {
            let rest: Vec<&str> = line[8..].split(',').collect();
            if rest.len() != 2 {
                return ctx.err(ln, line, "sem_init needs `sem, value`");
            }
            return Ok(Parsed::Instr(Instr::SemInit {
                sem: parse_reg(ctx, ln, rest[0], max_reg)?,
                value: parse_reg(ctx, ln, rest[1], max_reg)?,
            }));
        }
        "sem_post" => {
            return Ok(Parsed::Instr(Instr::SemPost {
                sem: parse_reg(ctx, ln, &line[8..], max_reg)?,
            }))
        }
        "sem_wait" => {
            return Ok(Parsed::Instr(Instr::SemWait {
                sem: parse_reg(ctx, ln, &line[8..], max_reg)?,
            }))
        }
        "yield" => return Ok(Parsed::Instr(Instr::Yield)),
        "call" => {
            let (func, args) = parse_call_like(ctx, ln, &line[4..], func_ids, sigs, max_reg)?;
            return Ok(Parsed::Instr(Instr::Call { dst: None, func, args }));
        }
        _ => {}
    }

    // `dst = op ...` forms.
    let eq = match line.find('=') {
        Some(p) => p,
        None => return ctx.err(ln, line, format!("cannot parse `{line}`")),
    };
    let dst = parse_reg(ctx, ln, &line[..eq], max_reg)?;
    let rhs = line[eq + 1..].trim();
    let mut rhs_words = rhs.split_whitespace();
    let op = rhs_words.next().unwrap_or("");
    let operands = rhs[op.len()..].trim();
    let two_regs = |max_reg: &mut u16| -> Result<(Reg, Reg), AsmError> {
        let parts: Vec<&str> = operands.split(',').collect();
        if parts.len() != 2 {
            return ctx.err(ln, rhs, format!("`{op}` needs two operands"));
        }
        Ok((parse_reg(ctx, ln, parts[0], max_reg)?, parse_reg(ctx, ln, parts[1], max_reg)?))
    };
    let bin = |op: BinOp, max_reg: &mut u16| -> Result<Parsed, AsmError> {
        let (lhs, rhs) = two_regs(max_reg)?;
        Ok(Parsed::Instr(Instr::Bin { op, dst, lhs, rhs }))
    };
    let cmp = |op: CmpOp, max_reg: &mut u16| -> Result<Parsed, AsmError> {
        let (lhs, rhs) = two_regs(max_reg)?;
        Ok(Parsed::Instr(Instr::Cmp { op, dst, lhs, rhs }))
    };
    match op {
        "const" => {
            Ok(Parsed::Instr(Instr::Const { dst, value: parse_int(ctx, ln, operands)? }))
        }
        "mov" => {
            Ok(Parsed::Instr(Instr::Mov { dst, src: parse_reg(ctx, ln, operands, max_reg)? }))
        }
        "add" => bin(BinOp::Add, max_reg),
        "sub" => bin(BinOp::Sub, max_reg),
        "mul" => bin(BinOp::Mul, max_reg),
        "div" => bin(BinOp::Div, max_reg),
        "rem" => bin(BinOp::Rem, max_reg),
        "and" => bin(BinOp::And, max_reg),
        "or" => bin(BinOp::Or, max_reg),
        "xor" => bin(BinOp::Xor, max_reg),
        "shl" => bin(BinOp::Shl, max_reg),
        "shr" => bin(BinOp::Shr, max_reg),
        "min" => bin(BinOp::Min, max_reg),
        "max" => bin(BinOp::Max, max_reg),
        "ceq" => cmp(CmpOp::Eq, max_reg),
        "cne" => cmp(CmpOp::Ne, max_reg),
        "clt" => cmp(CmpOp::Lt, max_reg),
        "cle" => cmp(CmpOp::Le, max_reg),
        "cgt" => cmp(CmpOp::Gt, max_reg),
        "cge" => cmp(CmpOp::Ge, max_reg),
        "load" => {
            let parts: Vec<&str> = operands.split(',').collect();
            if parts.len() != 2 {
                return ctx.err(ln, rhs, "load needs `addr, offset`");
            }
            Ok(Parsed::Instr(Instr::Load {
                dst,
                addr: parse_reg(ctx, ln, parts[0], max_reg)?,
                offset: parse_int(ctx, ln, parts[1])?,
            }))
        }
        "alloc" => {
            Ok(Parsed::Instr(Instr::Alloc { dst, len: parse_reg(ctx, ln, operands, max_reg)? }))
        }
        "call" => {
            let (func, args) = parse_call_like(ctx, ln, operands, func_ids, sigs, max_reg)?;
            Ok(Parsed::Instr(Instr::Call { dst: Some(dst), func, args }))
        }
        "spawn" => {
            let (func, args) = parse_call_like(ctx, ln, operands, func_ids, sigs, max_reg)?;
            Ok(Parsed::Instr(Instr::Spawn { dst, func, args }))
        }
        "sys_read" | "sys_write" => {
            let parts: Vec<&str> = operands.split(',').collect();
            if parts.len() != 3 {
                return ctx.err(ln, rhs, format!("{op} needs `fd, buf, len`"));
            }
            let fd = parse_reg(ctx, ln, parts[0], max_reg)?;
            let buf = parse_reg(ctx, ln, parts[1], max_reg)?;
            let len = parse_reg(ctx, ln, parts[2], max_reg)?;
            Ok(Parsed::Instr(if op == "sys_read" {
                Instr::SysRead { dst, fd, buf, len }
            } else {
                Instr::SysWrite { dst, fd, buf, len }
            }))
        }
        _ => ctx.err(ln, op, format!("unknown operation `{op}`")),
    }
}

/// Renders a [`Program`] back to assembly text; `parse(&print(p))`
/// reproduces a structurally identical program (block labels are
/// canonicalized to `bbN`).
pub fn print(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let fname = |id: FuncId| program.function(id).name.clone();
    for f in program.functions() {
        let _ = writeln!(out, "func {}({}) regs={} {{", f.name, f.params, f.regs);
        for (bi, block) in f.blocks.iter().enumerate() {
            let _ = writeln!(out, "bb{bi}:");
            for i in &block.instrs {
                let line = match i {
                    Instr::Const { dst, value } => format!("{dst} = const {value}"),
                    Instr::Mov { dst, src } => format!("{dst} = mov {src}"),
                    Instr::Bin { op, dst, lhs, rhs } => {
                        format!("{dst} = {} {lhs}, {rhs}", op.mnemonic())
                    }
                    Instr::Cmp { op, dst, lhs, rhs } => {
                        format!("{dst} = {} {lhs}, {rhs}", op.mnemonic())
                    }
                    Instr::Load { dst, addr, offset } => format!("{dst} = load {addr}, {offset}"),
                    Instr::Store { src, addr, offset } => format!("store {src}, {addr}, {offset}"),
                    Instr::Alloc { dst, len } => format!("{dst} = alloc {len}"),
                    Instr::Call { dst, func, args } => {
                        let args =
                            args.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(", ");
                        match dst {
                            Some(d) => format!("{d} = call {}({args})", fname(*func)),
                            None => format!("call {}({args})", fname(*func)),
                        }
                    }
                    Instr::Spawn { dst, func, args } => {
                        let args =
                            args.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(", ");
                        format!("{dst} = spawn {}({args})", fname(*func))
                    }
                    Instr::Join { thread } => format!("join {thread}"),
                    Instr::Acquire { lock } => format!("acquire {lock}"),
                    Instr::Release { lock } => format!("release {lock}"),
                    Instr::SemInit { sem, value } => format!("sem_init {sem}, {value}"),
                    Instr::SemPost { sem } => format!("sem_post {sem}"),
                    Instr::SemWait { sem } => format!("sem_wait {sem}"),
                    Instr::Yield => "yield".to_owned(),
                    Instr::SysRead { dst, fd, buf, len } => {
                        format!("{dst} = sys_read {fd}, {buf}, {len}")
                    }
                    Instr::SysWrite { dst, fd, buf, len } => {
                        format!("{dst} = sys_write {fd}, {buf}, {len}")
                    }
                };
                let _ = writeln!(out, "    {line}");
            }
            let term = match &block.term {
                Terminator::Jmp(b) => format!("jmp {b}"),
                Terminator::Br { cond, then_to, else_to } => {
                    format!("br {cond}, {then_to}, {else_to}")
                }
                Terminator::Ret { value: Some(r) } => format!("ret {r}"),
                Terminator::Ret { value: None } => "ret".to_owned(),
            };
            let _ = writeln!(out, "    {term}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    const SUM: &str = r#"
# sum of 0..n
func main() {
entry:
    r0 = const 10
    r1 = call sum(r0)
    ret r1
}
func sum(1) {
entry:
    r1 = const 0
    r2 = const 0
    jmp head
head:
    r3 = clt r2, r0
    br r3, body, exit
body:
    r1 = add r1, r2
    r3 = const 1
    r2 = add r2, r3
    jmp head
exit:
    ret r1
}
"#;

    #[test]
    fn parse_and_run_sum() {
        let p = parse(SUM).unwrap();
        let mut m = Machine::new(p);
        assert_eq!(m.run_native().unwrap().exit_value, Some(45));
    }

    #[test]
    fn roundtrip_print_parse() {
        let p = parse(SUM).unwrap();
        let printed = print(&p);
        let p2 = parse(&printed).unwrap();
        assert_eq!(print(&p2), printed, "printing is a fixed point after one roundtrip");
    }

    #[test]
    fn unknown_function_is_reported() {
        let e = parse("func main() {\n e:\n r0 = call nope()\n ret\n }").unwrap_err();
        assert!(e.message.contains("unknown function"), "{e}");
        assert!(e.line > 0);
    }

    #[test]
    fn unknown_label_is_reported() {
        let e = parse("func main() {\n e:\n jmp nowhere\n }").unwrap_err();
        assert!(e.message.contains("unknown label"), "{e}");
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let src = "func main() {\n e:\n r0 = call f()\n ret\n }\nfunc f(2) {\n e:\n ret\n }";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("takes 2 args"), "{e}");
    }

    #[test]
    fn instruction_after_terminator_rejected() {
        let e = parse("func main() {\n e:\n ret\n r0 = const 1\n }").unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn regs_clause_too_small_rejected() {
        let e = parse("func main() regs=1 {\n e:\n r5 = const 1\n ret\n }").unwrap_err();
        assert!(e.message.contains("regs=1"), "{e}");
        assert_eq!(e.line, 1, "located at the function header");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = parse("# header\n\nfunc main() { # trailing\ne:\n ret # done\n}\n").unwrap();
        assert_eq!(p.functions().len(), 1);
    }

    #[test]
    fn duplicate_function_rejected() {
        let src = "func f() {\n e:\n ret\n }\nfunc f() {\n e:\n ret\n }";
        assert!(parse(src).unwrap_err().message.contains("duplicate"));
    }

    #[test]
    fn missing_main_defaults_to_first() {
        let p = parse("func start() {\n e:\n r0 = const 3\n ret r0\n }").unwrap();
        let mut m = Machine::new(p);
        assert_eq!(m.run_native().unwrap().exit_value, Some(3));
    }

    #[test]
    fn errors_carry_columns() {
        // `bogus` starts at column 10 of line 3 ("    r0 = bogus 1, 2").
        let src = "func main() {\nentry:\n    r0 = bogus 1, 2\n    ret\n}";
        let e = parse(src).unwrap_err();
        assert_eq!((e.line, e.col), (3, 10), "{e}");

        // An unknown call target points at the name, not the line start.
        let src = "func main() {\nentry:\n    r0 = call nope()\n    ret\n}";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.col, 15, "column of `nope`: {e}");

        // Bad register inside an operand list points at the token.
        let src = "func main() {\nentry:\n    r0 = add r1, x2\n    ret\n}";
        let e = parse(src).unwrap_err();
        assert_eq!((e.line, e.col), (3, 18), "{e}");
    }

    #[test]
    fn source_map_tracks_lines() {
        let m = parse_module(SUM).unwrap();
        assert_eq!(m.functions.len(), 2);
        let main = &m.map.functions[0];
        assert_eq!(main.header_line, 3);
        assert_eq!(main.blocks[0].label_line, 4);
        assert_eq!(main.blocks[0].instr_lines, vec![5, 6]);
        assert_eq!(main.blocks[0].term_line, Some(7));
        // `sum` spans the second half of the listing.
        let sum = &m.map.functions[1];
        assert_eq!(sum.header_line, 9);
        assert_eq!(sum.blocks.len(), 4);
        assert_eq!(m.map.line_of(1, 3, None), Some(23), "exit block terminator");
    }

    #[test]
    fn implicit_ret_has_no_term_line() {
        let m = parse_module("func main() {\nentry:\n    r0 = const 1\n}").unwrap();
        let b = &m.map.functions[0].blocks[0];
        assert_eq!(b.term_line, None, "implicit ret is unspanned");
        assert_eq!(m.functions[0].blocks[0].term, Terminator::Ret { value: None });
    }
}
