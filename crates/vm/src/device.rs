//! External devices: the sources and sinks behind guest file descriptors.
//!
//! The paper's external input (§4.3) comes from kernel system calls moving
//! data between guest memory and disks, sockets or pipes. Real devices are
//! not available to a simulated guest, so this module provides synthetic
//! equivalents that exercise the same code path: a `sys_read` drains an
//! input [`Device`] into a guest buffer (one `kernelWrite` event per cell),
//! a `sys_write` pushes a guest buffer into the device (one `kernelRead`
//! event per cell). Deterministic generators stand in for file contents and
//! network payloads.

use std::collections::VecDeque;
use std::fmt::Debug;

/// A device reachable through a guest file descriptor.
///
/// Both directions are optional: an input-only device can refuse writes by
/// ignoring them, and an exhausted source returns `None` (EOF).
pub trait Device: Debug {
    /// Produces the next cell of device data, or `None` at end of stream.
    fn read_cell(&mut self) -> Option<i64>;

    /// Consumes one cell written by the guest.
    fn write_cell(&mut self, value: i64);

    /// Total cells produced so far.
    fn cells_read(&self) -> u64;

    /// Total cells consumed so far.
    fn cells_written(&self) -> u64;
}

/// A finite in-memory "file": reads walk the content once, writes append.
///
/// # Example
///
/// ```
/// use aprof_vm::device::{Device, FileDevice};
/// let mut f = FileDevice::new(vec![10, 20]);
/// assert_eq!(f.read_cell(), Some(10));
/// f.write_cell(99);
/// assert_eq!(f.written(), &[99]);
/// ```
#[derive(Debug, Default)]
pub struct FileDevice {
    content: Vec<i64>,
    cursor: usize,
    written: Vec<i64>,
}

impl FileDevice {
    /// Creates a file with the given contents.
    pub fn new(content: Vec<i64>) -> Self {
        FileDevice { content, cursor: 0, written: Vec::new() }
    }

    /// Everything the guest wrote to this file.
    pub fn written(&self) -> &[i64] {
        &self.written
    }
}

impl Device for FileDevice {
    fn read_cell(&mut self) -> Option<i64> {
        let v = self.content.get(self.cursor).copied();
        if v.is_some() {
            self.cursor += 1;
        }
        v
    }

    fn write_cell(&mut self, value: i64) {
        self.written.push(value);
    }

    fn cells_read(&self) -> u64 {
        self.cursor as u64
    }

    fn cells_written(&self) -> u64 {
        self.written.len() as u64
    }
}

/// An unbounded deterministic data source (a stand-in for a network socket
/// or a huge input file): produces `length` cells from a cheap xorshift
/// stream seeded explicitly, so runs are reproducible.
#[derive(Debug)]
pub struct SyntheticSource {
    state: u64,
    remaining: u64,
    produced: u64,
    consumed: u64,
}

impl SyntheticSource {
    /// Creates a source yielding `length` pseudo-random cells from `seed`.
    pub fn new(seed: u64, length: u64) -> Self {
        SyntheticSource { state: seed.max(1), remaining: length, produced: 0, consumed: 0 }
    }
}

impl Device for SyntheticSource {
    fn read_cell(&mut self) -> Option<i64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.produced += 1;
        // xorshift64
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        Some((x >> 16) as i64)
    }

    fn write_cell(&mut self, _value: i64) {
        self.consumed += 1;
    }

    fn cells_read(&self) -> u64 {
        self.produced
    }

    fn cells_written(&self) -> u64 {
        self.consumed
    }
}

/// A write-only sink that counts what it swallows (a `/dev/null` with a
/// meter) and produces nothing.
#[derive(Debug, Default)]
pub struct SinkDevice {
    consumed: u64,
}

impl SinkDevice {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Device for SinkDevice {
    fn read_cell(&mut self) -> Option<i64> {
        None
    }

    fn write_cell(&mut self, _value: i64) {
        self.consumed += 1;
    }

    fn cells_read(&self) -> u64 {
        0
    }

    fn cells_written(&self) -> u64 {
        self.consumed
    }
}

/// A bidirectional FIFO (a loopback pipe): reads pop what writes pushed.
#[derive(Debug, Default)]
pub struct PipeDevice {
    queue: VecDeque<i64>,
    produced: u64,
    consumed: u64,
}

impl PipeDevice {
    /// Creates an empty pipe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-loads the pipe with data.
    pub fn preload<I: IntoIterator<Item = i64>>(mut self, data: I) -> Self {
        self.queue.extend(data);
        self
    }
}

impl Device for PipeDevice {
    fn read_cell(&mut self) -> Option<i64> {
        let v = self.queue.pop_front();
        if v.is_some() {
            self.produced += 1;
        }
        v
    }

    fn write_cell(&mut self, value: i64) {
        self.consumed += 1;
        self.queue.push_back(value);
    }

    fn cells_read(&self) -> u64 {
        self.produced
    }

    fn cells_written(&self) -> u64 {
        self.consumed
    }
}

/// The guest's file-descriptor table.
#[derive(Debug, Default)]
pub struct DeviceTable {
    devices: Vec<Box<dyn Device>>,
}

impl DeviceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a device, returning its file descriptor.
    pub fn register(&mut self, device: Box<dyn Device>) -> i64 {
        self.devices.push(device);
        (self.devices.len() - 1) as i64
    }

    /// Looks up a descriptor.
    pub fn get_mut(&mut self, fd: i64) -> Option<&mut Box<dyn Device>> {
        if fd < 0 {
            return None;
        }
        self.devices.get_mut(fd as usize)
    }

    /// Immutable lookup (for post-run inspection).
    pub fn get(&self, fd: i64) -> Option<&(dyn Device + 'static)> {
        if fd < 0 {
            return None;
        }
        self.devices.get(fd as usize).map(|b| &**b)
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether no device is registered.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_device_eof() {
        let mut f = FileDevice::new(vec![1, 2]);
        assert_eq!(f.read_cell(), Some(1));
        assert_eq!(f.read_cell(), Some(2));
        assert_eq!(f.read_cell(), None);
        assert_eq!(f.cells_read(), 2);
    }

    #[test]
    fn synthetic_source_is_deterministic_and_finite() {
        let collect = |seed, n| {
            let mut s = SyntheticSource::new(seed, n);
            std::iter::from_fn(|| s.read_cell()).collect::<Vec<_>>()
        };
        let a = collect(42, 10);
        let b = collect(42, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let c = collect(43, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn pipe_roundtrip() {
        let mut p = PipeDevice::new().preload([7]);
        assert_eq!(p.read_cell(), Some(7));
        p.write_cell(8);
        assert_eq!(p.read_cell(), Some(8));
        assert_eq!(p.read_cell(), None);
        assert_eq!((p.cells_read(), p.cells_written()), (2, 1));
    }

    #[test]
    fn sink_counts() {
        let mut s = SinkDevice::new();
        s.write_cell(1);
        s.write_cell(2);
        assert_eq!(s.cells_written(), 2);
        assert_eq!(s.read_cell(), None);
    }

    #[test]
    fn device_table_fds() {
        let mut t = DeviceTable::new();
        let fd0 = t.register(Box::new(SinkDevice::new()));
        let fd1 = t.register(Box::new(FileDevice::new(vec![5])));
        assert_eq!((fd0, fd1), (0, 1));
        assert!(t.get_mut(2).is_none());
        assert!(t.get_mut(-1).is_none());
        assert_eq!(t.get_mut(1).unwrap().read_cell(), Some(5));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
