//! The interpreter: serialized multithreaded execution with instrumentation.
//!
//! The hot loop is **direct-threaded**: guest blocks are pre-decoded into
//! flat [`DecodedOp`] arrays (see [`crate::dispatch`]) and executed through
//! a function-pointer handler table ([`Tbl`]), monomorphized per event
//! [`Sink`]. Anything that can block, spawn, allocate or touch devices
//! escapes to the original `match`-based [`Exec::instr`] path, which keeps
//! the blocking/waker protocol in one place.

use crate::device::DeviceTable;
use crate::dispatch::{
    DecodeMode, DecodedOp, DecodedProgram, PairCensus, C_COMPLEX, N_CODES,
};
use crate::error::{ResourceKind, VmError};
use crate::ir::{BinOp, CmpOp, FuncId, Instr, Program, Reg, Terminator};
use crate::memory::GuestMemory;
use aprof_trace::{Addr, Event, RoutineId, ThreadId, Tool};
use aprof_wire::WireWriter;
use std::collections::{HashMap, VecDeque};
use std::io::Write;

/// Tunables of a [`Machine`].
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Scheduler quantum in basic blocks: a thread runs at most this many
    /// blocks before the (fair, round-robin) scheduler rotates to the next
    /// runnable thread, mirroring Valgrind's fair thread scheduler (§5).
    pub quantum: u64,
    /// Execution budget in basic blocks; exceeded budgets abort the run
    /// with [`VmError::BlockBudgetExceeded`] (a runaway-guest backstop).
    pub max_blocks: u64,
    /// Maximum number of threads ever spawned.
    pub max_threads: usize,
    /// When set, reading a register that was never written in the current
    /// activation raises [`VmError::UseBeforeDef`] instead of silently
    /// yielding the zero the register file is initialized with. Off by
    /// default — guest programs may rely on zero-initialized registers;
    /// the static verifier's differential tests turn it on to observe
    /// use-before-def dynamically.
    pub strict_regs: bool,
    /// Resource budgets (instructions, allocation cells) and whether their
    /// exhaustion traps gracefully or errors. Unlimited by default.
    pub limits: ResourceLimits,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            quantum: 64,
            max_blocks: u64::MAX,
            max_threads: 1 << 16,
            strict_regs: false,
            limits: ResourceLimits::default(),
        }
    }
}

/// Resource budgets enforced while a guest runs. Used as per-workload
/// watchdogs by the hardened measurement driver: a pathological or runaway
/// workload is stopped after a bounded amount of work instead of hanging a
/// whole sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Instruction budget across all threads (`u64::MAX` = unlimited).
    pub max_instructions: u64,
    /// Total cells the guest may `alloc` across the run (`u64::MAX` =
    /// unlimited).
    pub max_alloc_cells: u64,
    /// How exhaustion surfaces. `false` (the default): the run aborts with
    /// [`VmError::ResourceExhausted`]. `true`: the scheduler stops
    /// dispatching and the run returns `Ok` with [`RunOutcome::trap`] set —
    /// a *graceful trap* that keeps the partial per-thread totals, so
    /// callers can report a degraded measurement instead of losing the run.
    pub trap: bool,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits { max_instructions: u64::MAX, max_alloc_cells: u64::MAX, trap: false }
    }
}

impl ResourceLimits {
    /// A trapping instruction budget — the hardened driver's watchdog shape.
    pub fn instruction_watchdog(max_instructions: u64) -> Self {
        ResourceLimits { max_instructions, trap: true, ..Self::default() }
    }
}

/// The typed record of a graceful resource trap (see
/// [`ResourceLimits::trap`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceTrap {
    /// Which budget ran out.
    pub resource: ResourceKind,
    /// The budget that was exhausted.
    pub limit: u64,
}

impl std::fmt::Display for ResourceTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "guest stopped at the {} {} budget", self.limit, self.resource)
    }
}

/// Result of one guest run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Return value of the entry function (`None` for a bare `ret`).
    pub exit_value: Option<i64>,
    /// Basic blocks executed across all threads (the cost metric).
    pub total_blocks: u64,
    /// Thread switches performed by the scheduler.
    pub switches: u64,
    /// Per-thread outcomes, indexed by thread id.
    pub threads: Vec<ThreadOutcome>,
    /// Set when the run was stopped gracefully by a resource budget
    /// ([`ResourceLimits::trap`]); the totals above then cover the partial
    /// run up to the trap.
    pub trap: Option<ResourceTrap>,
}

/// Per-thread summary of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadOutcome {
    /// The thread.
    pub thread: ThreadId,
    /// Basic blocks it executed.
    pub blocks: u64,
    /// Its entry function's return value.
    pub result: Option<i64>,
}

/// Internal event sink; monomorphized away for the native path, forwarding
/// through dynamic dispatch for the instrumented path (so even a do-nothing
/// tool pays the same dispatch cost `nulgrind` pays under Valgrind).
trait Sink {
    fn thread_start(&mut self, _t: ThreadId) {}
    fn thread_exit(&mut self, _t: ThreadId) {}
    fn thread_switch(&mut self, _t: ThreadId) {}
    fn basic_block(&mut self, _t: ThreadId, _cost: u64) {}
    fn call(&mut self, _t: ThreadId, _r: RoutineId) {}
    fn ret(&mut self, _t: ThreadId, _r: RoutineId) {}
    fn read(&mut self, _t: ThreadId, _a: Addr) {}
    fn write(&mut self, _t: ThreadId, _a: Addr) {}
    fn kernel_read(&mut self, _t: ThreadId, _a: Addr) {}
    fn kernel_write(&mut self, _t: ThreadId, _a: Addr) {}
    fn spawned(&mut self, _parent: ThreadId, _child: ThreadId) {}
    fn joined(&mut self, _t: ThreadId, _target: ThreadId) {}
    fn lock_acquired(&mut self, _t: ThreadId, _lock: i64) {}
    fn lock_released(&mut self, _t: ThreadId, _lock: i64) {}
    fn sem_posted(&mut self, _t: ThreadId, _sem: i64) {}
    fn sem_waited(&mut self, _t: ThreadId, _sem: i64) {}
}

/// The uninstrumented ("native") sink.
struct NoSink;
impl Sink for NoSink {}

/// Adapter delivering events to a [`Tool`] through dynamic dispatch.
struct ToolSink<'a>(&'a mut dyn Tool);

impl Sink for ToolSink<'_> {
    fn thread_start(&mut self, t: ThreadId) {
        self.0.thread_start(t);
    }
    fn thread_exit(&mut self, t: ThreadId) {
        self.0.thread_exit(t);
    }
    fn thread_switch(&mut self, t: ThreadId) {
        self.0.thread_switch(t);
    }
    fn basic_block(&mut self, t: ThreadId, cost: u64) {
        self.0.basic_block(t, cost);
    }
    fn call(&mut self, t: ThreadId, r: RoutineId) {
        self.0.call(t, r);
    }
    fn ret(&mut self, t: ThreadId, r: RoutineId) {
        self.0.ret(t, r);
    }
    fn read(&mut self, t: ThreadId, a: Addr) {
        self.0.read(t, a);
    }
    fn write(&mut self, t: ThreadId, a: Addr) {
        self.0.write(t, a);
    }
    fn kernel_read(&mut self, t: ThreadId, a: Addr) {
        self.0.kernel_read(t, a);
    }
    fn kernel_write(&mut self, t: ThreadId, a: Addr) {
        self.0.kernel_write(t, a);
    }
    fn spawned(&mut self, parent: ThreadId, child: ThreadId) {
        self.0.spawned(parent, child);
    }
    fn joined(&mut self, t: ThreadId, target: ThreadId) {
        self.0.joined(t, target);
    }
    fn lock_acquired(&mut self, t: ThreadId, lock: i64) {
        self.0.lock_acquired(t, lock);
    }
    fn lock_released(&mut self, t: ThreadId, lock: i64) {
        self.0.lock_released(t, lock);
    }
    fn sem_posted(&mut self, t: ThreadId, sem: i64) {
        self.0.sem_posted(t, sem);
    }
    fn sem_waited(&mut self, t: ThreadId, sem: i64) {
        self.0.sem_waited(t, sem);
    }
}

/// Adapter that tees the event stream: every event goes to the tool (live
/// profiling) *and* into a wire-trace writer (streaming capture). Sync
/// events (spawn/join/lock/sem) are forwarded to the tool only — they are
/// scheduling metadata, not part of the wire event vocabulary, and the
/// profiling algorithms ignore them, which is what keeps live and replayed
/// profiles identical.
struct RecordSink<'a, W: Write> {
    tool: &'a mut dyn Tool,
    writer: &'a mut WireWriter<W>,
}

impl<W: Write> Sink for RecordSink<'_, W> {
    fn thread_start(&mut self, t: ThreadId) {
        self.tool.thread_start(t);
        self.writer.record(t, Event::ThreadStart);
    }
    fn thread_exit(&mut self, t: ThreadId) {
        self.tool.thread_exit(t);
        self.writer.record(t, Event::ThreadExit);
    }
    fn thread_switch(&mut self, t: ThreadId) {
        self.tool.thread_switch(t);
        self.writer.record(t, Event::ThreadSwitch);
    }
    fn basic_block(&mut self, t: ThreadId, cost: u64) {
        self.tool.basic_block(t, cost);
        self.writer.record(t, Event::BasicBlock { cost });
    }
    fn call(&mut self, t: ThreadId, r: RoutineId) {
        self.tool.call(t, r);
        self.writer.record(t, Event::Call { routine: r });
    }
    fn ret(&mut self, t: ThreadId, r: RoutineId) {
        self.tool.ret(t, r);
        self.writer.record(t, Event::Return { routine: r });
    }
    fn read(&mut self, t: ThreadId, a: Addr) {
        self.tool.read(t, a);
        self.writer.record(t, Event::Read { addr: a });
    }
    fn write(&mut self, t: ThreadId, a: Addr) {
        self.tool.write(t, a);
        self.writer.record(t, Event::Write { addr: a });
    }
    fn kernel_read(&mut self, t: ThreadId, a: Addr) {
        self.tool.kernel_read(t, a);
        self.writer.record(t, Event::KernelRead { addr: a });
    }
    fn kernel_write(&mut self, t: ThreadId, a: Addr) {
        self.tool.kernel_write(t, a);
        self.writer.record(t, Event::KernelWrite { addr: a });
    }
    fn spawned(&mut self, parent: ThreadId, child: ThreadId) {
        self.tool.spawned(parent, child);
    }
    fn joined(&mut self, t: ThreadId, target: ThreadId) {
        self.tool.joined(t, target);
    }
    fn lock_acquired(&mut self, t: ThreadId, lock: i64) {
        self.tool.lock_acquired(t, lock);
    }
    fn lock_released(&mut self, t: ThreadId, lock: i64) {
        self.tool.lock_released(t, lock);
    }
    fn sem_posted(&mut self, t: ThreadId, sem: i64) {
        self.tool.sem_posted(t, sem);
    }
    fn sem_waited(&mut self, t: ThreadId, sem: i64) {
        self.tool.sem_waited(t, sem);
    }
}

/// Wrapper sink installed under `--observe`: counts blocks/events/switches
/// into plain locals and folds them into the global [`aprof_obs`] counters
/// (plus a rate-limited stderr heartbeat) once per [`OBS_FLUSH_BLOCKS`]
/// blocks and at drop. Per-event cost while observing is a local integer
/// bump; when observability is disabled this type is never constructed.
struct ObsSink<'a, S: Sink> {
    inner: &'a mut S,
    blocks: u64,
    events: u64,
    switches: u64,
    heartbeat: aprof_obs::Heartbeat,
}

const OBS_FLUSH_BLOCKS: u64 = 4096;

impl<'a, S: Sink> ObsSink<'a, S> {
    fn new(inner: &'a mut S) -> Self {
        ObsSink {
            inner,
            blocks: 0,
            events: 0,
            switches: 0,
            heartbeat: aprof_obs::Heartbeat::per_second(),
        }
    }

    fn flush(&mut self) {
        use aprof_obs::counters as c;
        c::VM_BLOCKS.add(self.blocks);
        c::VM_EVENTS.add(self.events);
        c::VM_THREAD_SWITCHES.add(self.switches);
        self.blocks = 0;
        self.events = 0;
        self.switches = 0;
        self.heartbeat.tick(|| {
            format!(
                "vm: {} blocks, {} events, {} thread switches",
                c::VM_BLOCKS.get(),
                c::VM_EVENTS.get(),
                c::VM_THREAD_SWITCHES.get()
            )
        });
    }
}

impl<S: Sink> Drop for ObsSink<'_, S> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl<S: Sink> Sink for ObsSink<'_, S> {
    fn thread_start(&mut self, t: ThreadId) {
        self.events += 1;
        self.inner.thread_start(t);
    }
    fn thread_exit(&mut self, t: ThreadId) {
        self.events += 1;
        self.inner.thread_exit(t);
    }
    fn thread_switch(&mut self, t: ThreadId) {
        self.events += 1;
        self.switches += 1;
        self.inner.thread_switch(t);
    }
    fn basic_block(&mut self, t: ThreadId, cost: u64) {
        self.events += 1;
        self.blocks += 1;
        if self.blocks >= OBS_FLUSH_BLOCKS {
            self.flush();
        }
        self.inner.basic_block(t, cost);
    }
    fn call(&mut self, t: ThreadId, r: RoutineId) {
        self.events += 1;
        self.inner.call(t, r);
    }
    fn ret(&mut self, t: ThreadId, r: RoutineId) {
        self.events += 1;
        self.inner.ret(t, r);
    }
    fn read(&mut self, t: ThreadId, a: Addr) {
        self.events += 1;
        self.inner.read(t, a);
    }
    fn write(&mut self, t: ThreadId, a: Addr) {
        self.events += 1;
        self.inner.write(t, a);
    }
    fn kernel_read(&mut self, t: ThreadId, a: Addr) {
        self.events += 1;
        self.inner.kernel_read(t, a);
    }
    fn kernel_write(&mut self, t: ThreadId, a: Addr) {
        self.events += 1;
        self.inner.kernel_write(t, a);
    }
    fn spawned(&mut self, parent: ThreadId, child: ThreadId) {
        self.events += 1;
        self.inner.spawned(parent, child);
    }
    fn joined(&mut self, t: ThreadId, target: ThreadId) {
        self.events += 1;
        self.inner.joined(t, target);
    }
    fn lock_acquired(&mut self, t: ThreadId, lock: i64) {
        self.events += 1;
        self.inner.lock_acquired(t, lock);
    }
    fn lock_released(&mut self, t: ThreadId, lock: i64) {
        self.events += 1;
        self.inner.lock_released(t, lock);
    }
    fn sem_posted(&mut self, t: ThreadId, sem: i64) {
        self.events += 1;
        self.inner.sem_posted(t, sem);
    }
    fn sem_waited(&mut self, t: ThreadId, sem: i64) {
        self.events += 1;
        self.inner.sem_waited(t, sem);
    }
}

#[derive(Debug, Clone)]
struct ActFrame {
    func: FuncId,
    block: usize,
    idx: usize,
    bb_counted: bool,
    regs: Vec<i64>,
    /// Which registers have been written in this activation. Empty unless
    /// [`MachineConfig::strict_regs`] is set.
    init: Vec<bool>,
    ret_dst: Option<Reg>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Blocked,
    Done,
}

#[derive(Debug)]
struct ThreadCtx {
    id: ThreadId,
    frames: Vec<ActFrame>,
    status: Status,
    started: bool,
    result: Option<i64>,
    blocks: u64,
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<usize>,
    waiters: VecDeque<usize>,
}

#[derive(Debug, Default)]
struct SemState {
    value: i64,
    waiters: VecDeque<usize>,
}

/// What a scheduling slice ended with.
enum Slice {
    /// Quantum exhausted; thread still runnable.
    Preempted,
    /// Thread blocked on a lock/semaphore/join.
    Blocked,
    /// Thread finished.
    Exited,
}

/// An instrumented interpreter for guest [`Program`]s.
///
/// Threads are **serialized**: exactly one guest thread executes at a time,
/// under a deterministic fair round-robin scheduler, so analysis tools never
/// see concurrent callbacks — the same execution model Valgrind gives the
/// paper's profiler (§5). Determinism makes every experiment reproducible:
/// the same program, devices and configuration yield the identical event
/// stream.
///
/// # Example
///
/// Run a program under the trms profiler:
///
/// ```
/// use aprof_core::TrmsProfiler;
/// use aprof_vm::{asm, Machine};
///
/// let program = asm::parse(
///     "func main() regs=2 {\n
///      bb0:\n
///        r0 = const 123\n
///        r1 = alloc r0\n
///        store r0, r1, 0\n
///        r0 = load r1, 0\n
///        ret r0\n
///      }",
/// )?;
/// let names = program.routines().clone();
/// let mut machine = Machine::new(program);
/// let mut profiler = TrmsProfiler::new();
/// let outcome = machine.run_with(&mut profiler)?;
/// assert_eq!(outcome.exit_value, Some(123));
/// let report = profiler.into_report(&names);
/// assert_eq!(report.global.writes, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Machine {
    program: Program,
    memory: GuestMemory,
    devices: DeviceTable,
    config: MachineConfig,
}

impl Machine {
    /// Creates a machine for `program` with default configuration and no
    /// devices.
    pub fn new(program: Program) -> Self {
        Machine {
            program,
            memory: GuestMemory::new(),
            devices: DeviceTable::new(),
            config: MachineConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: MachineConfig) -> Self {
        self.config = config;
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> MachineConfig {
        self.config
    }

    /// Registers a device, returning the file descriptor guests use.
    pub fn add_device(&mut self, device: Box<dyn crate::device::Device>) -> i64 {
        self.devices.register(device)
    }

    /// The device table (for post-run inspection of sinks/files).
    pub fn devices(&self) -> &DeviceTable {
        &self.devices
    }

    /// The guest memory (for post-run inspection).
    pub fn memory(&self) -> &GuestMemory {
        &self.memory
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Runs the program without instrumentation — the "native" baseline of
    /// Table 1.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on guest deadlock, lock misuse, bad file
    /// descriptors or an exceeded block budget.
    pub fn run_native(&mut self) -> Result<RunOutcome, VmError> {
        self.run_inner(&mut NoSink)
    }

    /// Runs the program delivering every instrumentation event to `tool`
    /// (and calling [`Tool::finish`] at the end).
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_native`](Machine::run_native).
    pub fn run_with(&mut self, tool: &mut dyn Tool) -> Result<RunOutcome, VmError> {
        let outcome = {
            let mut sink = ToolSink(tool);
            self.run_inner(&mut sink)
        };
        tool.finish();
        outcome
    }

    /// Runs the program delivering every instrumentation event to `tool`
    /// *and* capturing the wire-format events into `writer` as they happen
    /// (streaming capture: chunks are sealed and written while the guest
    /// runs, so the trace never resides in memory).
    ///
    /// The caller should create `writer` from
    /// [`Program::routines`](crate::ir::Program::routines) so routine names
    /// travel with the trace, and must call `writer.finish()` after the run
    /// to seal the file — that is also where any capture i/o error latched
    /// during the run is reported.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_native`](Machine::run_native). Capture i/o
    /// failures do not abort the guest.
    pub fn run_recording<W: Write>(
        &mut self,
        tool: &mut dyn Tool,
        writer: &mut WireWriter<W>,
    ) -> Result<RunOutcome, VmError> {
        let outcome = {
            let mut sink = RecordSink { tool, writer };
            self.run_inner(&mut sink)
        };
        tool.finish();
        outcome
    }

    fn run_inner<S: Sink>(&mut self, sink: &mut S) -> Result<RunOutcome, VmError> {
        if aprof_obs::is_enabled() {
            let _span = aprof_obs::span!("vm.run");
            let mut obs = ObsSink::new(sink);
            return self.run_exec(&mut obs);
        }
        self.run_exec(sink)
    }

    fn run_exec<S: Sink>(&mut self, sink: &mut S) -> Result<RunOutcome, VmError> {
        // Census runs decode without fusion — fusing would hide exactly the
        // pairs being counted. Strict-register mode interprets through the
        // original path, where the per-operand use-before-def checks live.
        let census = std::env::var_os("APROF_VM_PAIR_CENSUS").is_some();
        let mode = if self.config.strict_regs {
            DecodeMode::Original
        } else if census {
            DecodeMode::Plain
        } else {
            DecodeMode::Fused
        };
        let decoded = DecodedProgram::build(&self.program, mode);
        let mut exec = Exec {
            program: &self.program,
            memory: &mut self.memory,
            devices: &mut self.devices,
            config: self.config,
            threads: Vec::new(),
            locks: HashMap::new(),
            sems: HashMap::new(),
            joiners: HashMap::new(),
            runq: VecDeque::new(),
            total_blocks: 0,
            switches: 0,
            instructions: 0,
            alloc_cells: 0,
            census: census.then(PairCensus::new),
        };
        exec.spawn_thread(self.program.entry(), Vec::new())
            .expect("first thread is always under the limit");
        let outcome = exec.run(&decoded, sink);
        if let Some(census) = &exec.census {
            eprintln!("{}", census.report());
        }
        outcome
    }
}

struct Exec<'m> {
    program: &'m Program,
    memory: &'m mut GuestMemory,
    devices: &'m mut DeviceTable,
    config: MachineConfig,
    threads: Vec<ThreadCtx>,
    locks: HashMap<i64, LockState>,
    sems: HashMap<i64, SemState>,
    joiners: HashMap<usize, Vec<usize>>,
    runq: VecDeque<usize>,
    total_blocks: u64,
    switches: u64,
    instructions: u64,
    alloc_cells: u64,
    /// Adjacent-pair census, allocated only under `APROF_VM_PAIR_CENSUS`.
    census: Option<PairCensus>,
}

impl<'m> Exec<'m> {
    fn spawn_thread(&mut self, func: FuncId, args: Vec<i64>) -> Result<usize, VmError> {
        if self.threads.len() >= self.config.max_threads {
            return Err(VmError::TooManyThreads { limit: self.config.max_threads, func });
        }
        let idx = self.threads.len();
        let f = self.program.function(func);
        let mut regs = vec![0i64; f.regs as usize];
        regs[..args.len()].copy_from_slice(&args);
        let init = self.init_set(f.regs as usize, args.len());
        self.threads.push(ThreadCtx {
            id: ThreadId::new(idx as u32),
            frames: vec![ActFrame {
                func,
                block: 0,
                idx: 0,
                bb_counted: false,
                regs,
                init,
                ret_dst: None,
            }],
            status: Status::Ready,
            started: false,
            result: None,
            blocks: 0,
        });
        self.runq.push_back(idx);
        Ok(idx)
    }

    /// Builds the written-register set for a fresh activation: the first
    /// `args` registers hold parameters and count as written. Empty (no
    /// tracking) unless strict-register mode is on.
    fn init_set(&self, regs: usize, args: usize) -> Vec<bool> {
        if !self.config.strict_regs {
            return Vec::new();
        }
        let mut init = vec![false; regs];
        init[..args].fill(true);
        init
    }

    /// In strict-register mode, errors if `reg` was never written in the
    /// top activation of thread `t`.
    fn strict_read(&self, t: usize, tid: ThreadId, reg: Reg) -> Result<(), VmError> {
        if !self.config.strict_regs {
            return Ok(());
        }
        let frame = self.threads[t].frames.last().expect("live thread has a frame");
        if frame.init[reg.0 as usize] {
            Ok(())
        } else {
            Err(VmError::UseBeforeDef { thread: tid, func: frame.func, reg })
        }
    }

    /// In strict-register mode, marks `reg` written in the top activation.
    fn strict_write(&mut self, t: usize, reg: Reg) {
        if !self.config.strict_regs {
            return;
        }
        let frame = self.threads[t].frames.last_mut().expect("live thread has a frame");
        frame.init[reg.0 as usize] = true;
    }

    fn wake(&mut self, t: usize) {
        self.threads[t].status = Status::Ready;
        self.runq.push_back(t);
    }

    fn run<S: Sink>(&mut self, dp: &DecodedProgram, sink: &mut S) -> Result<RunOutcome, VmError> {
        let mut last: Option<usize> = None;
        let mut trap: Option<ResourceTrap> = None;
        while let Some(t) = self.runq.pop_front() {
            debug_assert_eq!(self.threads[t].status, Status::Ready);
            if last.is_some() && last != Some(t) {
                self.switches += 1;
                sink.thread_switch(self.threads[t].id);
            }
            last = Some(t);
            if !self.threads[t].started {
                self.threads[t].started = true;
                sink.thread_start(self.threads[t].id);
                // The entry function of a thread is an activation too.
                let func = self.threads[t].frames[0].func;
                sink.call(self.threads[t].id, RoutineId::new(func.0));
            }
            let sliced = match self.slice(t, dp, sink) {
                Ok(s) => s,
                Err(VmError::ResourceExhausted { resource, limit })
                    if self.config.limits.trap =>
                {
                    // Graceful trap: stop scheduling and keep the partial
                    // run; threads still blocked at this point are the
                    // trap's fault, not a guest deadlock.
                    aprof_obs::counters::VM_RESOURCE_TRAPS.incr();
                    trap = Some(ResourceTrap { resource, limit });
                    break;
                }
                Err(e) => return Err(e),
            };
            match sliced {
                Slice::Preempted => self.runq.push_back(t),
                Slice::Blocked => {}
                Slice::Exited => {
                    sink.thread_exit(self.threads[t].id);
                    if let Some(waiters) = self.joiners.remove(&t) {
                        for w in waiters {
                            // The join instruction has completed.
                            self.advance(w);
                            self.wake(w);
                            sink.joined(self.threads[w].id, self.threads[t].id);
                        }
                    }
                }
            }
        }
        if trap.is_none() {
            if let Some(blocked) = self.deadlocked() {
                return Err(VmError::Deadlock { blocked });
            }
        }
        Ok(RunOutcome {
            exit_value: self.threads[0].result,
            total_blocks: self.total_blocks,
            switches: self.switches,
            threads: self
                .threads
                .iter()
                .map(|t| ThreadOutcome { thread: t.id, blocks: t.blocks, result: t.result })
                .collect(),
            trap,
        })
    }

    fn deadlocked(&self) -> Option<Vec<ThreadId>> {
        let blocked: Vec<ThreadId> = self
            .threads
            .iter()
            .filter(|t| t.status == Status::Blocked)
            .map(|t| t.id)
            .collect();
        if blocked.is_empty() {
            None
        } else {
            Some(blocked)
        }
    }

    /// Advances the blocked-instruction pointer of `t` past the instruction
    /// it was blocked on (used when a wake-up completes the instruction on
    /// the blocked thread's behalf).
    fn advance(&mut self, t: usize) {
        let frame = self.threads[t].frames.last_mut().expect("blocked thread has a frame");
        frame.idx += 1;
    }

    /// Runs thread `t` for up to one quantum.
    ///
    /// The inner loop is the direct-threaded dispatch: decoded simple ops
    /// go through the [`Tbl`] function-pointer table without re-resolving
    /// the frame position; [`C_COMPLEX`] slots (and every op under
    /// `strict_regs`) escape to [`Exec::instr`]. The loop keeps the
    /// instruction index in a local and writes it back to the frame only at
    /// escape points — before a complex op (whose blocking/waker protocol
    /// reads `frame.idx`) and at the terminator.
    fn slice<S: Sink>(
        &mut self,
        t: usize,
        dp: &DecodedProgram,
        sink: &mut S,
    ) -> Result<Slice, VmError> {
        let tid = self.threads[t].id;
        let mut budget = self.config.quantum;
        'blocks: loop {
            // Charge the basic block on first entry (not on re-entry after
            // an intra-block blocking instruction).
            {
                let frame = self.threads[t].frames.last_mut().expect("live thread has a frame");
                if !frame.bb_counted {
                    frame.bb_counted = true;
                    self.threads[t].blocks += 1;
                    self.total_blocks += 1;
                    if self.total_blocks > self.config.max_blocks {
                        return Err(VmError::BlockBudgetExceeded {
                            limit: self.config.max_blocks,
                        });
                    }
                    sink.basic_block(tid, 1);
                }
            }
            let (func, block, mut idx) = {
                let frame = self.threads[t].frames.last().expect("frame");
                (frame.func, frame.block, frame.idx)
            };
            let ops = dp.block(func.index(), block);
            let mut prev: Option<u8> = None;
            while idx < ops.len() {
                let (code, adv) = (ops[idx].code, ops[idx].adv);
                if code == C_COMPLEX {
                    // The original interpretation path reads and advances
                    // `frame.idx` itself (and wakers advance it for blocked
                    // instructions), so sync the local index first.
                    self.threads[t].frames.last_mut().expect("frame").idx = idx;
                    let program = self.program;
                    let instr = &program.function(func).blocks[block].instrs[idx];
                    match self.instr(t, tid, instr, sink)? {
                        // Control may have moved (call pushed a frame);
                        // re-resolve from the top.
                        Flow::Next => continue 'blocks,
                        Flow::Blocked => {
                            self.threads[t].status = Status::Blocked;
                            return Ok(Slice::Blocked);
                        }
                        Flow::Yielded => return Ok(Slice::Preempted),
                    }
                }
                if let Some(census) = &mut self.census {
                    if let Some(p) = prev {
                        census.record(p, code);
                    }
                    prev = Some(code);
                }
                (Tbl::<S>::TABLE[code as usize])(self, sink, t, tid, ops, idx)?;
                idx += adv as usize;
            }
            self.threads[t].frames.last_mut().expect("frame").idx = idx;
            // Terminator — charged against the instruction budget too, so a
            // pure-jump loop cannot outrun the watchdog.
            self.charge_instruction()?;
            let bb = &self.program.function(func).blocks[block];
            match &bb.term {
                Terminator::Jmp(b) => {
                    let frame = self.threads[t].frames.last_mut().expect("frame");
                    frame.block = b.index();
                    frame.idx = 0;
                    frame.bb_counted = false;
                }
                Terminator::Br { cond, then_to, else_to } => {
                    self.strict_read(t, tid, *cond)?;
                    let frame = self.threads[t].frames.last_mut().expect("frame");
                    let taken = if frame.regs[cond.0 as usize] != 0 { then_to } else { else_to };
                    frame.block = taken.index();
                    frame.idx = 0;
                    frame.bb_counted = false;
                }
                Terminator::Ret { value } => {
                    if let Some(r) = value {
                        self.strict_read(t, tid, *r)?;
                    }
                    let frame = self.threads[t].frames.pop().expect("frame");
                    let result = value.map(|r| frame.regs[r.0 as usize]);
                    sink.ret(tid, RoutineId::new(frame.func.0));
                    match self.threads[t].frames.last_mut() {
                        Some(caller) => {
                            if let (Some(dst), Some(v)) = (frame.ret_dst, result) {
                                caller.regs[dst.0 as usize] = v;
                                if self.config.strict_regs {
                                    caller.init[dst.0 as usize] = true;
                                }
                            }
                        }
                        None => {
                            self.threads[t].result = result;
                            self.threads[t].status = Status::Done;
                            return Ok(Slice::Exited);
                        }
                    }
                }
            }
            budget -= 1;
            if budget == 0 {
                return Ok(Slice::Preempted);
            }
        }
    }

    /// Counts one executed instruction (or terminator) against the
    /// instruction budget.
    fn charge_instruction(&mut self) -> Result<(), VmError> {
        self.instructions += 1;
        if self.instructions > self.config.limits.max_instructions {
            return Err(VmError::ResourceExhausted {
                resource: ResourceKind::Instructions,
                limit: self.config.limits.max_instructions,
            });
        }
        Ok(())
    }

    fn instr<S: Sink>(
        &mut self,
        t: usize,
        tid: ThreadId,
        instr: &Instr,
        sink: &mut S,
    ) -> Result<Flow, VmError> {
        self.charge_instruction()?;
        if self.config.strict_regs {
            // Operand checks happen up front, before any side effect. A
            // blocked instruction re-checks on resume; that is idempotent.
            let mut uses = Vec::new();
            instr.uses_into(&mut uses);
            for r in uses {
                self.strict_read(t, tid, r)?;
            }
        }
        // Most instructions complete and advance the pointer; blocking ones
        // leave it in place so they re-execute (or are completed by a waker).
        macro_rules! regs {
            () => {
                self.threads[t].frames.last_mut().expect("frame").regs
            };
        }
        match instr {
            Instr::Const { dst, value } => {
                regs!()[dst.0 as usize] = *value;
            }
            Instr::Mov { dst, src } => {
                let v = regs!()[src.0 as usize];
                regs!()[dst.0 as usize] = v;
            }
            Instr::Bin { op, dst, lhs, rhs } => {
                let (a, b) = {
                    let r = &regs!();
                    (r[lhs.0 as usize], r[rhs.0 as usize])
                };
                regs!()[dst.0 as usize] = op.eval(a, b);
            }
            Instr::Cmp { op, dst, lhs, rhs } => {
                let (a, b) = {
                    let r = &regs!();
                    (r[lhs.0 as usize], r[rhs.0 as usize])
                };
                regs!()[dst.0 as usize] = op.eval(a, b);
            }
            Instr::Load { dst, addr, offset } => {
                let base = regs!()[addr.0 as usize];
                let a = Addr::new(base.wrapping_add(*offset) as u64);
                sink.read(tid, a);
                let v = self.memory.read(a);
                regs!()[dst.0 as usize] = v;
            }
            Instr::Store { src, addr, offset } => {
                let (base, v) = {
                    let r = &regs!();
                    (r[addr.0 as usize], r[src.0 as usize])
                };
                let a = Addr::new(base.wrapping_add(*offset) as u64);
                sink.write(tid, a);
                self.memory.write(a, v);
            }
            Instr::Alloc { dst, len } => {
                let n = regs!()[len.0 as usize].max(0) as u64;
                self.alloc_cells = self.alloc_cells.saturating_add(n);
                if self.alloc_cells > self.config.limits.max_alloc_cells {
                    // Checked before touching guest memory, so a single
                    // absurd request cannot force the allocation through.
                    return Err(VmError::ResourceExhausted {
                        resource: ResourceKind::AllocCells,
                        limit: self.config.limits.max_alloc_cells,
                    });
                }
                let base = self.memory.alloc(n);
                regs!()[dst.0 as usize] = base.raw() as i64;
            }
            Instr::Call { dst, func, args } => {
                let argv: Vec<i64> = {
                    let r = &regs!();
                    args.iter().map(|a| r[a.0 as usize]).collect()
                };
                // The caller resumes after the call.
                self.advance(t);
                let f = self.program.function(*func);
                let mut regs = vec![0i64; f.regs as usize];
                regs[..argv.len()].copy_from_slice(&argv);
                sink.call(tid, RoutineId::new(func.0));
                let init = self.init_set(f.regs as usize, argv.len());
                self.threads[t].frames.push(ActFrame {
                    func: *func,
                    block: 0,
                    idx: 0,
                    bb_counted: false,
                    regs,
                    init,
                    ret_dst: *dst,
                });
                return Ok(Flow::Next);
            }
            Instr::Spawn { dst, func, args } => {
                let argv: Vec<i64> = {
                    let r = &regs!();
                    args.iter().map(|a| r[a.0 as usize]).collect()
                };
                let handle = self.spawn_thread(*func, argv)?;
                sink.spawned(tid, ThreadId::new(handle as u32));
                regs!()[dst.0 as usize] = handle as i64;
            }
            Instr::Join { thread } => {
                let handle = regs!()[thread.0 as usize];
                let target = usize::try_from(handle)
                    .ok()
                    .filter(|&h| h < self.threads.len())
                    .ok_or(VmError::BadThreadHandle { thread: tid, handle })?;
                if self.threads[target].status != Status::Done {
                    self.joiners.entry(target).or_default().push(t);
                    return Ok(Flow::Blocked);
                }
                sink.joined(tid, self.threads[target].id);
            }
            Instr::Acquire { lock } => {
                let key = regs!()[lock.0 as usize];
                let state = self.locks.entry(key).or_default();
                match state.holder {
                    None => {
                        state.holder = Some(t);
                        sink.lock_acquired(tid, key);
                    }
                    Some(_) => {
                        state.waiters.push_back(t);
                        return Ok(Flow::Blocked);
                    }
                }
            }
            Instr::Release { lock } => {
                let key = regs!()[lock.0 as usize];
                let state = self.locks.entry(key).or_default();
                if state.holder != Some(t) {
                    return Err(VmError::LockNotHeld { thread: tid, lock: key });
                }
                let next = match state.waiters.pop_front() {
                    Some(next) => {
                        state.holder = Some(next);
                        Some(next)
                    }
                    None => {
                        state.holder = None;
                        None
                    }
                };
                sink.lock_released(tid, key);
                if let Some(next) = next {
                    // Complete the waiter's Acquire on its behalf.
                    self.advance(next);
                    self.wake(next);
                    sink.lock_acquired(self.threads[next].id, key);
                }
            }
            Instr::SemInit { sem, value } => {
                let (key, v) = {
                    let r = &regs!();
                    (r[sem.0 as usize], r[value.0 as usize])
                };
                self.sems.insert(key, SemState { value: v, waiters: VecDeque::new() });
            }
            Instr::SemPost { sem } => {
                let key = regs!()[sem.0 as usize];
                let state = self.sems.entry(key).or_default();
                let next = match state.waiters.pop_front() {
                    Some(next) => Some(next),
                    None => {
                        state.value += 1;
                        None
                    }
                };
                sink.sem_posted(tid, key);
                if let Some(next) = next {
                    // Hand the permit straight to a waiter.
                    self.advance(next);
                    self.wake(next);
                    sink.sem_waited(self.threads[next].id, key);
                }
            }
            Instr::SemWait { sem } => {
                let key = regs!()[sem.0 as usize];
                let state = self.sems.entry(key).or_default();
                if state.value > 0 {
                    state.value -= 1;
                    sink.sem_waited(tid, key);
                } else {
                    state.waiters.push_back(t);
                    return Ok(Flow::Blocked);
                }
            }
            Instr::Yield => {
                self.advance(t);
                return Ok(Flow::Yielded);
            }
            Instr::SysRead { dst, fd, buf, len } => {
                let (fdv, base, n) = {
                    let r = &regs!();
                    (r[fd.0 as usize], r[buf.0 as usize], r[len.0 as usize])
                };
                let device = self
                    .devices
                    .get_mut(fdv)
                    .ok_or(VmError::BadFileDescriptor { thread: tid, fd: fdv })?;
                let mut moved = 0i64;
                for i in 0..n.max(0) {
                    match device.read_cell() {
                        Some(v) => {
                            let a = Addr::new((base.wrapping_add(i)) as u64);
                            sink.kernel_write(tid, a);
                            self.memory.write(a, v);
                            moved += 1;
                        }
                        None => break,
                    }
                }
                regs!()[dst.0 as usize] = moved;
            }
            Instr::SysWrite { dst, fd, buf, len } => {
                let (fdv, base, n) = {
                    let r = &regs!();
                    (r[fd.0 as usize], r[buf.0 as usize], r[len.0 as usize])
                };
                if self.devices.get_mut(fdv).is_none() {
                    return Err(VmError::BadFileDescriptor { thread: tid, fd: fdv });
                }
                let mut moved = 0i64;
                for i in 0..n.max(0) {
                    let a = Addr::new((base.wrapping_add(i)) as u64);
                    sink.kernel_read(tid, a);
                    let v = self.memory.read(a);
                    let device = self.devices.get_mut(fdv).expect("checked above");
                    device.write_cell(v);
                    moved += 1;
                }
                regs!()[dst.0 as usize] = moved;
            }
        }
        if self.config.strict_regs {
            // `Call` returned early above: its destination only becomes
            // defined when the callee returns a value (see the `Ret` arm).
            if let Some(d) = instr.def() {
                self.strict_write(t, d);
            }
        }
        self.advance(t);
        Ok(Flow::Next)
    }
}

enum Flow {
    Next,
    Blocked,
    Yielded,
}

// ---------------------------------------------------------------------------
// Direct-threaded dispatch: effect functions, handlers and the table.
//
// Every *simple* (non-blocking, infallible-but-for-the-budget) opcode has an
// `e_*` effect function holding just its semantics, a `h_*` plain handler
// (charge + effect), and possibly membership in a `h_fuse_*` superinstruction
// handler (charge + effect, twice, reading the second op's operands from the
// filler slot — see `crate::dispatch` for the invariants). Handlers never
// touch `ActFrame::idx`; the dispatch loop in `slice` advances by
// `DecodedOp::adv` on success.
// ---------------------------------------------------------------------------

/// Uniform signature of a table handler: execute the decoded op(s) at
/// `ops[idx]` for thread `t`, charging the instruction budget.
type Handler<S> =
    fn(&mut Exec<'_>, &mut S, usize, ThreadId, &[DecodedOp], usize) -> Result<(), VmError>;

/// The handler table, monomorphized per [`Sink`] (generics cannot carry
/// `static`s, but associated consts work).
struct Tbl<S>(std::marker::PhantomData<S>);

impl<S: Sink> Tbl<S> {
    /// Indexed by decoded opcode; order must match the `C_*` constants in
    /// [`crate::dispatch`] (`table_order_matches_codes` pins it).
    const TABLE: [Handler<S>; N_CODES] = [
        h_const::<S>,
        h_mov::<S>,
        h_load::<S>,
        h_store::<S>,
        h_add::<S>,
        h_sub::<S>,
        h_mul::<S>,
        h_div::<S>,
        h_rem::<S>,
        h_and::<S>,
        h_or::<S>,
        h_xor::<S>,
        h_shl::<S>,
        h_shr::<S>,
        h_min::<S>,
        h_max::<S>,
        h_ceq::<S>,
        h_cne::<S>,
        h_clt::<S>,
        h_cle::<S>,
        h_cgt::<S>,
        h_cge::<S>,
        h_fuse_const_const::<S>,
        h_fuse_add_load::<S>,
        h_fuse_add_add::<S>,
        h_fuse_const_add::<S>,
        h_fuse_const_cgt::<S>,
    ];
}

#[inline(always)]
fn frame_mut<'a>(ex: &'a mut Exec<'_>, t: usize) -> &'a mut ActFrame {
    ex.threads[t].frames.last_mut().expect("live thread has a frame")
}

#[inline(always)]
fn e_const<S: Sink>(ex: &mut Exec<'_>, _sink: &mut S, t: usize, _tid: ThreadId, op: &DecodedOp) {
    frame_mut(ex, t).regs[op.dst as usize] = op.imm;
}

#[inline(always)]
fn e_mov<S: Sink>(ex: &mut Exec<'_>, _sink: &mut S, t: usize, _tid: ThreadId, op: &DecodedOp) {
    let f = frame_mut(ex, t);
    let v = f.regs[op.a as usize];
    f.regs[op.dst as usize] = v;
}

#[inline(always)]
fn e_load<S: Sink>(ex: &mut Exec<'_>, sink: &mut S, t: usize, tid: ThreadId, op: &DecodedOp) {
    let base = frame_mut(ex, t).regs[op.a as usize];
    let a = Addr::new(base.wrapping_add(op.imm) as u64);
    sink.read(tid, a);
    let v = ex.memory.read(a);
    frame_mut(ex, t).regs[op.dst as usize] = v;
}

#[inline(always)]
fn e_store<S: Sink>(ex: &mut Exec<'_>, sink: &mut S, t: usize, tid: ThreadId, op: &DecodedOp) {
    let f = frame_mut(ex, t);
    let (base, v) = (f.regs[op.a as usize], f.regs[op.b as usize]);
    let a = Addr::new(base.wrapping_add(op.imm) as u64);
    sink.write(tid, a);
    ex.memory.write(a, v);
}

/// Generates one effect function per arithmetic/comparison opcode, so the
/// `eval` match constant-folds away inside each handler.
macro_rules! arith_effects {
    ($($name:ident = $op:expr;)*) => {$(
        #[inline(always)]
        fn $name<S: Sink>(
            ex: &mut Exec<'_>,
            _sink: &mut S,
            t: usize,
            _tid: ThreadId,
            op: &DecodedOp,
        ) {
            let f = frame_mut(ex, t);
            let (a, b) = (f.regs[op.a as usize], f.regs[op.b as usize]);
            f.regs[op.dst as usize] = $op.eval(a, b);
        }
    )*};
}

arith_effects! {
    e_add = BinOp::Add;
    e_sub = BinOp::Sub;
    e_mul = BinOp::Mul;
    e_div = BinOp::Div;
    e_rem = BinOp::Rem;
    e_and = BinOp::And;
    e_or = BinOp::Or;
    e_xor = BinOp::Xor;
    e_shl = BinOp::Shl;
    e_shr = BinOp::Shr;
    e_min = BinOp::Min;
    e_max = BinOp::Max;
    e_ceq = CmpOp::Eq;
    e_cne = CmpOp::Ne;
    e_clt = CmpOp::Lt;
    e_cle = CmpOp::Le;
    e_cgt = CmpOp::Gt;
    e_cge = CmpOp::Ge;
}

macro_rules! plain_handlers {
    ($($h:ident = $e:ident;)*) => {$(
        fn $h<S: Sink>(
            ex: &mut Exec<'_>,
            sink: &mut S,
            t: usize,
            tid: ThreadId,
            ops: &[DecodedOp],
            idx: usize,
        ) -> Result<(), VmError> {
            ex.charge_instruction()?;
            $e(ex, sink, t, tid, &ops[idx]);
            Ok(())
        }
    )*};
}

plain_handlers! {
    h_const = e_const;
    h_mov = e_mov;
    h_load = e_load;
    h_store = e_store;
    h_add = e_add;
    h_sub = e_sub;
    h_mul = e_mul;
    h_div = e_div;
    h_rem = e_rem;
    h_and = e_and;
    h_or = e_or;
    h_xor = e_xor;
    h_shl = e_shl;
    h_shr = e_shr;
    h_min = e_min;
    h_max = e_max;
    h_ceq = e_ceq;
    h_cne = e_cne;
    h_clt = e_clt;
    h_cle = e_cle;
    h_cgt = e_cgt;
    h_cge = e_cge;
}

/// Superinstruction handlers: charge → effect → charge → effect, exactly the
/// sequence the two plain handlers would produce, so event order and
/// trap-at-budget behavior are identical with and without fusion. The second
/// op's operands come from the filler slot at `idx + 1`.
macro_rules! fused_handlers {
    ($($h:ident = $e1:ident + $e2:ident;)*) => {$(
        fn $h<S: Sink>(
            ex: &mut Exec<'_>,
            sink: &mut S,
            t: usize,
            tid: ThreadId,
            ops: &[DecodedOp],
            idx: usize,
        ) -> Result<(), VmError> {
            ex.charge_instruction()?;
            $e1(ex, sink, t, tid, &ops[idx]);
            ex.charge_instruction()?;
            $e2(ex, sink, t, tid, &ops[idx + 1]);
            Ok(())
        }
    )*};
}

fused_handlers! {
    h_fuse_const_const = e_const + e_const;
    h_fuse_add_load = e_add + e_load;
    h_fuse_add_add = e_add + e_add;
    h_fuse_const_add = e_const + e_add;
    h_fuse_const_cgt = e_const + e_cgt;
}
