//! Ergonomic construction of guest programs from Rust.
//!
//! Writing [`ir`](crate::ir) structures by hand is verbose; the builders in
//! this module let workload crates assemble guest programs fluently:
//!
//! ```
//! use aprof_vm::builder::ProgramBuilder;
//! use aprof_vm::Machine;
//!
//! let mut p = ProgramBuilder::new();
//! let main = p.declare("main", 0);
//! {
//!     let mut f = p.function(main);
//!     let acc = f.temp();
//!     let i = f.temp();
//!     f.const_(acc, 0);
//!     f.const_(i, 0);
//!     let ten = f.const_temp(10);
//!     f.loop_while(i, |f, i| {
//!         // acc += i
//!         f.add(acc, acc, i);
//!         f.add_imm(i, i, 1);
//!         let c = f.scratch();
//!         f.cmp_lt(c, i, ten)
//!     });
//!     f.ret(Some(acc));
//! }
//! let program = p.build()?;
//! let mut m = Machine::new(program);
//! assert_eq!(m.run_native()?.exit_value, Some(45));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::ir::{
    BasicBlock, BinOp, BlockId, CmpOp, FuncId, Function, Instr, Program, ProgramError, Reg,
    Terminator,
};

/// Builds a [`Program`] function by function.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Option<Function>>,
    names: Vec<(String, u16)>,
    entry: Option<FuncId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a function (name + parameter count) and returns its id.
    /// Declarations come first so functions can call each other regardless
    /// of definition order. The first function named `main` (or the first
    /// declared function, if none is) becomes the entry point.
    pub fn declare(&mut self, name: &str, params: u16) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(None);
        self.names.push((name.to_owned(), params));
        if self.entry.is_none() && (name == "main" || self.functions.len() == 1) {
            self.entry = Some(id);
        }
        if name == "main" {
            self.entry = Some(id);
        }
        id
    }

    /// Opens a [`FunctionBuilder`] for a declared function.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared by this builder.
    pub fn function(&mut self, id: FuncId) -> FunctionBuilder<'_> {
        let (name, params) = self.names[id.index()].clone();
        FunctionBuilder {
            parent: self,
            id,
            name,
            params,
            next_reg: params,
            scratch: None,
            blocks: vec![BasicBlock { instrs: Vec::new(), term: Terminator::Ret { value: None } }],
            current: BlockId(0),
            sealed: vec![false],
        }
    }

    /// Overrides the entry function.
    pub fn set_entry(&mut self, id: FuncId) {
        self.entry = Some(id);
    }

    /// Finalizes and validates the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if a declared function was never defined
    /// or the assembled program fails validation.
    pub fn build(self) -> Result<Program, ProgramError> {
        let mut functions = Vec::with_capacity(self.functions.len());
        for (i, f) in self.functions.into_iter().enumerate() {
            match f {
                Some(f) => functions.push(f),
                None => {
                    return Err(ProgramError {
                        function: self.names[i].0.clone(),
                        message: "declared but never defined".into(),
                    })
                }
            }
        }
        let entry = self.entry.ok_or_else(|| ProgramError {
            function: String::new(),
            message: "program has no functions".into(),
        })?;
        Program::new(functions, entry)
    }
}

/// Builds one function; instructions are appended to the *current block*,
/// which starts as block 0.
///
/// Dropping the builder commits the function back to its
/// [`ProgramBuilder`]. Registers are allocated with [`temp`](Self::temp);
/// parameters occupy `r0..rparams` and are returned by
/// [`param`](Self::param).
#[derive(Debug)]
pub struct FunctionBuilder<'p> {
    parent: &'p mut ProgramBuilder,
    id: FuncId,
    name: String,
    params: u16,
    next_reg: u16,
    scratch: Option<Reg>,
    blocks: Vec<BasicBlock>,
    current: BlockId,
    sealed: Vec<bool>,
}

impl<'p> FunctionBuilder<'p> {
    /// The `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i >= params`.
    pub fn param(&self, i: u16) -> Reg {
        assert!(i < self.params, "parameter {i} out of range");
        Reg(i)
    }

    /// Allocates a fresh register.
    pub fn temp(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = self.next_reg.checked_add(1).expect("register file overflow");
        r
    }

    /// A dedicated scratch register for throwaway results (allocated once).
    pub fn scratch(&mut self) -> Reg {
        match self.scratch {
            Some(r) => r,
            None => {
                let r = self.temp();
                self.scratch = Some(r);
                r
            }
        }
    }

    /// Allocates a register initialized with a constant.
    pub fn const_temp(&mut self, value: i64) -> Reg {
        let r = self.temp();
        self.const_(r, value);
        r
    }

    fn push(&mut self, instr: Instr) {
        assert!(
            !self.sealed[self.current.index()],
            "appending to sealed block {} of `{}`",
            self.current,
            self.name
        );
        self.blocks[self.current.index()].instrs.push(instr);
    }

    /// `dst = value`.
    pub fn const_(&mut self, dst: Reg, value: i64) {
        self.push(Instr::Const { dst, value });
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.push(Instr::Mov { dst, src });
    }

    /// `dst = lhs <op> rhs`.
    pub fn bin(&mut self, op: BinOp, dst: Reg, lhs: Reg, rhs: Reg) {
        self.push(Instr::Bin { op, dst, lhs, rhs });
    }

    /// `dst = lhs + rhs`.
    pub fn add(&mut self, dst: Reg, lhs: Reg, rhs: Reg) {
        self.bin(BinOp::Add, dst, lhs, rhs);
    }

    /// `dst = src + imm` (allocates a constant register).
    pub fn add_imm(&mut self, dst: Reg, src: Reg, imm: i64) {
        let c = self.const_temp(imm);
        self.add(dst, src, c);
    }

    /// `dst = lhs - rhs`.
    pub fn sub(&mut self, dst: Reg, lhs: Reg, rhs: Reg) {
        self.bin(BinOp::Sub, dst, lhs, rhs);
    }

    /// `dst = lhs * rhs`.
    pub fn mul(&mut self, dst: Reg, lhs: Reg, rhs: Reg) {
        self.bin(BinOp::Mul, dst, lhs, rhs);
    }

    /// `dst = lhs / rhs` (0 on division by zero).
    pub fn div(&mut self, dst: Reg, lhs: Reg, rhs: Reg) {
        self.bin(BinOp::Div, dst, lhs, rhs);
    }

    /// `dst = lhs % rhs` (0 on zero divisor).
    pub fn rem(&mut self, dst: Reg, lhs: Reg, rhs: Reg) {
        self.bin(BinOp::Rem, dst, lhs, rhs);
    }

    /// `dst = (lhs < rhs)`, returning `dst` for use as a loop condition.
    pub fn cmp_lt(&mut self, dst: Reg, lhs: Reg, rhs: Reg) -> Reg {
        self.push(Instr::Cmp { op: CmpOp::Lt, dst, lhs, rhs });
        dst
    }

    /// `dst = lhs <cmp> rhs`, returning `dst`.
    pub fn cmp(&mut self, op: CmpOp, dst: Reg, lhs: Reg, rhs: Reg) -> Reg {
        self.push(Instr::Cmp { op, dst, lhs, rhs });
        dst
    }

    /// `dst = memory[addr + offset]`.
    pub fn load(&mut self, dst: Reg, addr: Reg, offset: i64) {
        self.push(Instr::Load { dst, addr, offset });
    }

    /// `memory[addr + offset] = src`.
    pub fn store(&mut self, src: Reg, addr: Reg, offset: i64) {
        self.push(Instr::Store { src, addr, offset });
    }

    /// `dst = base of len fresh cells`.
    pub fn alloc(&mut self, dst: Reg, len: Reg) {
        self.push(Instr::Alloc { dst, len });
    }

    /// Calls `func(args…)`, optionally receiving its result.
    pub fn call(&mut self, dst: Option<Reg>, func: FuncId, args: &[Reg]) {
        self.push(Instr::Call { dst, func, args: args.to_vec() });
    }

    /// Spawns `func(args…)` on a new thread; `dst` receives the handle.
    pub fn spawn(&mut self, dst: Reg, func: FuncId, args: &[Reg]) {
        self.push(Instr::Spawn { dst, func, args: args.to_vec() });
    }

    /// Joins the thread whose handle is in `thread`.
    pub fn join(&mut self, thread: Reg) {
        self.push(Instr::Join { thread });
    }

    /// Acquires the mutex keyed by the value of `lock`.
    pub fn acquire(&mut self, lock: Reg) {
        self.push(Instr::Acquire { lock });
    }

    /// Releases the mutex keyed by the value of `lock`.
    pub fn release(&mut self, lock: Reg) {
        self.push(Instr::Release { lock });
    }

    /// Initializes semaphore `sem` to `value`.
    pub fn sem_init(&mut self, sem: Reg, value: Reg) {
        self.push(Instr::SemInit { sem, value });
    }

    /// V on `sem`.
    pub fn sem_post(&mut self, sem: Reg) {
        self.push(Instr::SemPost { sem });
    }

    /// P on `sem`.
    pub fn sem_wait(&mut self, sem: Reg) {
        self.push(Instr::SemWait { sem });
    }

    /// Voluntarily yields the processor.
    pub fn yield_(&mut self) {
        self.push(Instr::Yield);
    }

    /// `dst = sys_read(fd, buf, len)`.
    pub fn sys_read(&mut self, dst: Reg, fd: Reg, buf: Reg, len: Reg) {
        self.push(Instr::SysRead { dst, fd, buf, len });
    }

    /// `dst = sys_write(fd, buf, len)`.
    pub fn sys_write(&mut self, dst: Reg, fd: Reg, buf: Reg, len: Reg) {
        self.push(Instr::SysWrite { dst, fd, buf, len });
    }

    /// Creates a new (empty) block and returns its id without switching.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock { instrs: Vec::new(), term: Terminator::Ret { value: None } });
        self.sealed.push(false);
        id
    }

    /// Switches instruction emission to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The block currently receiving instructions.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    fn seal(&mut self, term: Terminator) {
        assert!(
            !self.sealed[self.current.index()],
            "block {} of `{}` already sealed",
            self.current,
            self.name
        );
        self.blocks[self.current.index()].term = term;
        self.sealed[self.current.index()] = true;
    }

    /// Ends the current block with an unconditional jump.
    pub fn jmp(&mut self, to: BlockId) {
        self.seal(Terminator::Jmp(to));
    }

    /// Ends the current block with a conditional branch.
    pub fn br(&mut self, cond: Reg, then_to: BlockId, else_to: BlockId) {
        self.seal(Terminator::Br { cond, then_to, else_to });
    }

    /// Ends the current block with a return.
    pub fn ret(&mut self, value: Option<Reg>) {
        self.seal(Terminator::Ret { value });
    }

    /// Structured while-loop: emits
    /// `head: body; cond = body(); br cond head exit; exit:` —
    /// the closure appends the body to the loop block and returns the
    /// continuation condition register (loop repeats while it is non-zero).
    /// Emission continues in the exit block. `ctr` is passed back to the
    /// closure for convenience (commonly the induction variable).
    pub fn loop_while<F>(&mut self, ctr: Reg, body: F)
    where
        F: FnOnce(&mut Self, Reg) -> Reg,
    {
        let head = self.new_block();
        let exit = self.new_block();
        self.jmp(head);
        self.switch_to(head);
        let cond = body(self, ctr);
        self.br(cond, head, exit);
        self.switch_to(exit);
    }

    /// Structured counted loop: runs `body(i)` for `i` in `0..n` where `n`
    /// is the value of the `n` register at loop entry. Returns the
    /// induction register. Emission continues after the loop.
    pub fn for_range<F>(&mut self, n: Reg, body: F) -> Reg
    where
        F: FnOnce(&mut Self, Reg),
    {
        let i = self.temp();
        self.const_(i, 0);
        let head = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.jmp(head);
        self.switch_to(head);
        let cond = self.scratch();
        self.cmp_lt(cond, i, n);
        self.br(cond, body_bb, exit);
        self.switch_to(body_bb);
        body(self, i);
        self.add_imm(i, i, 1);
        self.jmp(head);
        self.switch_to(exit);
        i
    }
}

impl Drop for FunctionBuilder<'_> {
    fn drop(&mut self) {
        // Unsealed blocks keep their default `ret` terminator, which makes
        // straight-line functions pleasant to write.
        let f = Function {
            name: std::mem::take(&mut self.name),
            params: self.params,
            regs: self.next_reg.max(1),
            blocks: std::mem::take(&mut self.blocks),
        };
        self.parent.functions[self.id.index()] = Some(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    #[test]
    fn straight_line_function() {
        let mut p = ProgramBuilder::new();
        let main = p.declare("main", 0);
        {
            let mut f = p.function(main);
            let a = f.const_temp(20);
            let b = f.const_temp(22);
            let c = f.temp();
            f.add(c, a, b);
            f.ret(Some(c));
        }
        let mut m = Machine::new(p.build().unwrap());
        assert_eq!(m.run_native().unwrap().exit_value, Some(42));
    }

    #[test]
    fn for_range_counts() {
        let mut p = ProgramBuilder::new();
        let main = p.declare("main", 0);
        {
            let mut f = p.function(main);
            let acc = f.const_temp(0);
            let n = f.const_temp(7);
            f.for_range(n, |f, i| {
                f.add(acc, acc, i);
            });
            f.ret(Some(acc));
        }
        let mut m = Machine::new(p.build().unwrap());
        assert_eq!(m.run_native().unwrap().exit_value, Some(21));
    }

    #[test]
    fn call_between_functions() {
        let mut p = ProgramBuilder::new();
        let main = p.declare("main", 0);
        let twice = p.declare("twice", 1);
        {
            let mut f = p.function(twice);
            let x = f.param(0);
            let d = f.temp();
            f.add(d, x, x);
            f.ret(Some(d));
        }
        {
            let mut f = p.function(main);
            let a = f.const_temp(21);
            let r = f.temp();
            f.call(Some(r), twice, &[a]);
            f.ret(Some(r));
        }
        let mut m = Machine::new(p.build().unwrap());
        assert_eq!(m.run_native().unwrap().exit_value, Some(42));
    }

    #[test]
    fn undeclared_function_fails_build() {
        let mut p = ProgramBuilder::new();
        let _main = p.declare("main", 0);
        assert!(p.build().is_err());
    }

    #[test]
    fn memory_roundtrip_through_builder() {
        let mut p = ProgramBuilder::new();
        let main = p.declare("main", 0);
        {
            let mut f = p.function(main);
            let n = f.const_temp(8);
            let buf = f.temp();
            f.alloc(buf, n);
            f.for_range(n, |f, i| {
                let addr = f.temp();
                f.add(addr, buf, i);
                f.store(i, addr, 0);
            });
            let acc = f.const_temp(0);
            f.for_range(n, |f, i| {
                let addr = f.temp();
                f.add(addr, buf, i);
                let v = f.temp();
                f.load(v, addr, 0);
                f.add(acc, acc, v);
            });
            f.ret(Some(acc));
        }
        let mut m = Machine::new(p.build().unwrap());
        assert_eq!(m.run_native().unwrap().exit_value, Some(28));
    }
}
