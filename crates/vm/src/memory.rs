//! Sparse guest memory with a bump allocator.

use aprof_trace::Addr;
use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_CELLS: usize = 1 << PAGE_BITS;

/// Word-granular guest memory: a sparse map from 64-bit cell addresses to
/// `i64` values, paged in 4096-cell pages. Never-written cells read as 0.
///
/// Allocation is a monotone bump pointer starting above a reserved low
/// region, so every `alloc` returns fresh, never-aliased addresses — which
/// keeps profiling results independent of any allocator reuse policy.
///
/// # Example
///
/// ```
/// use aprof_vm::GuestMemory;
/// use aprof_trace::Addr;
/// let mut m = GuestMemory::new();
/// let base = m.alloc(16);
/// m.write(base, 7);
/// assert_eq!(m.read(base), 7);
/// assert_eq!(m.read(base.offset(1)), 0);
/// ```
#[derive(Debug, Default)]
pub struct GuestMemory {
    pages: HashMap<u64, Box<[i64; PAGE_CELLS]>>,
    brk: u64,
}

/// Base of the allocatable region; lower addresses are available to guest
/// programs as "static" storage.
const HEAP_BASE: u64 = 0x1_0000;

impl GuestMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        GuestMemory { pages: HashMap::new(), brk: HEAP_BASE }
    }

    /// Reads one cell (0 if never written).
    pub fn read(&self, addr: Addr) -> i64 {
        let page = addr.raw() >> PAGE_BITS;
        let cell = (addr.raw() & (PAGE_CELLS as u64 - 1)) as usize;
        self.pages.get(&page).map(|p| p[cell]).unwrap_or(0)
    }

    /// Writes one cell.
    pub fn write(&mut self, addr: Addr, value: i64) {
        let page = addr.raw() >> PAGE_BITS;
        let cell = (addr.raw() & (PAGE_CELLS as u64 - 1)) as usize;
        self.pages.entry(page).or_insert_with(|| Box::new([0; PAGE_CELLS]))[cell] = value;
    }

    /// Allocates `cells` fresh cells and returns the base address.
    pub fn alloc(&mut self, cells: u64) -> Addr {
        let base = self.brk;
        self.brk += cells.max(1);
        Addr::new(base)
    }

    /// Number of resident pages (for space-overhead accounting).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Approximate resident bytes of guest data.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * PAGE_CELLS * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_default_is_zero() {
        let m = GuestMemory::new();
        assert_eq!(m.read(Addr::new(12345)), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn alloc_is_monotone_and_fresh() {
        let mut m = GuestMemory::new();
        let a = m.alloc(10);
        let b = m.alloc(10);
        assert!(b.raw() >= a.raw() + 10);
        let c = m.alloc(0);
        let d = m.alloc(1);
        assert!(d.raw() > c.raw(), "zero-size allocations still get unique bases");
    }

    #[test]
    fn write_read_across_pages() {
        let mut m = GuestMemory::new();
        for i in 0..10u64 {
            m.write(Addr::new(i * 5000), i as i64 + 1);
        }
        for i in 0..10u64 {
            assert_eq!(m.read(Addr::new(i * 5000)), i as i64 + 1);
        }
        assert!(m.resident_bytes() > 0);
    }
}
