//! Integration tests for the guest machine: threading, synchronization,
//! kernel I/O, determinism, and instrumentation-event delivery.

use aprof_trace::{EventKind, RecordingTool, Tool};
use aprof_vm::builder::ProgramBuilder;
use aprof_vm::device::{FileDevice, SinkDevice};
use aprof_vm::{asm, Machine, MachineConfig, ResourceKind, ResourceLimits, VmError};

/// N workers each add their id into a shared cell under a lock; main joins
/// them all and returns the cell.
fn locked_adders(workers: i64) -> aprof_vm::ir::Program {
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let worker = p.declare("worker", 2); // (shared_addr, my_value)
    {
        let mut f = p.function(worker);
        let addr = f.param(0);
        let v = f.param(1);
        let lock = f.const_temp(1);
        f.acquire(lock);
        let cur = f.temp();
        f.load(cur, addr, 0);
        f.add(cur, cur, v);
        f.store(cur, addr, 0);
        f.release(lock);
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let one = f.const_temp(1);
        let shared = f.temp();
        f.alloc(shared, one);
        let zero = f.const_temp(0);
        f.store(zero, shared, 0);
        let n = f.const_temp(workers);
        let handles = f.temp();
        f.alloc(handles, n);
        f.for_range(n, |f, i| {
            let h = f.temp();
            f.spawn(h, worker, &[shared, i]);
            let slot = f.temp();
            f.add(slot, handles, i);
            f.store(h, slot, 0);
        });
        f.for_range(n, |f, i| {
            let slot = f.temp();
            f.add(slot, handles, i);
            let h = f.temp();
            f.load(h, slot, 0);
            f.join(h);
        });
        let out = f.temp();
        f.load(out, shared, 0);
        f.ret(Some(out));
    }
    p.build().unwrap()
}

#[test]
fn spawn_join_and_locks() {
    let mut m = Machine::new(locked_adders(8));
    let out = m.run_native().unwrap();
    assert_eq!(out.exit_value, Some((0..8).sum::<i64>()));
    assert_eq!(out.threads.len(), 9);
    assert!(out.switches > 0, "workers must actually interleave");
}

#[test]
fn execution_is_deterministic() {
    let run = || {
        let mut m = Machine::new(locked_adders(4));
        let mut rec = RecordingTool::new();
        m.run_with(&mut rec).unwrap();
        rec.into_trace()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    assert_eq!(a, b);
}

#[test]
fn quantum_controls_interleaving() {
    let switches = |quantum| {
        let mut m = Machine::new(locked_adders(4))
            .with_config(MachineConfig { quantum, ..MachineConfig::default() });
        m.run_native().unwrap().switches
    };
    assert!(
        switches(1) > switches(1024),
        "a smaller quantum must cause more thread switches"
    );
}

#[test]
fn deadlock_is_detected() {
    // Two threads acquire two locks in opposite order, with yields to force
    // the interleaving that deadlocks.
    let src = r#"
func main() {
e:
    r0 = const 1
    r1 = const 2
    r2 = spawn ab(r0, r1)
    r3 = spawn ab(r1, r0)
    join r2
    join r3
    ret
}
func ab(2) {
e:
    acquire r0
    yield
    acquire r1
    release r1
    release r0
    ret
}
"#;
    let mut m = Machine::new(asm::parse(src).unwrap())
        .with_config(MachineConfig { quantum: 1, ..MachineConfig::default() });
    match m.run_native() {
        Err(VmError::Deadlock { blocked }) => assert!(blocked.len() >= 2),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn release_without_hold_is_an_error() {
    let src = "func main() {\ne:\n r0 = const 7\n release r0\n ret\n}";
    let mut m = Machine::new(asm::parse(src).unwrap());
    assert!(matches!(m.run_native(), Err(VmError::LockNotHeld { lock: 7, .. })));
}

#[test]
fn bad_fd_is_an_error() {
    let src = "func main() {\ne:\n r0 = const 9\n r1 = sys_read r0, r0, r0\n ret\n}";
    let mut m = Machine::new(asm::parse(src).unwrap());
    assert!(matches!(m.run_native(), Err(VmError::BadFileDescriptor { fd: 9, .. })));
}

#[test]
fn bad_join_handle_is_an_error() {
    let src = "func main() {\ne:\n r0 = const 99\n join r0\n ret\n}";
    let mut m = Machine::new(asm::parse(src).unwrap());
    assert!(matches!(m.run_native(), Err(VmError::BadThreadHandle { handle: 99, .. })));
}

#[test]
fn block_budget_aborts_runaway_loops() {
    let src = "func main() {\nloop:\n jmp loop\n}";
    let mut m = Machine::new(asm::parse(src).unwrap())
        .with_config(MachineConfig { max_blocks: 1000, ..MachineConfig::default() });
    assert!(matches!(m.run_native(), Err(VmError::BlockBudgetExceeded { limit: 1000 })));
}

#[test]
fn instruction_budget_aborts_runaway_loops() {
    // A pure-jump loop executes no `Instr`s at all: the budget must charge
    // terminators too, or this would spin forever.
    let src = "func main() {\nloop:\n jmp loop\n}";
    let limits = ResourceLimits { max_instructions: 500, ..ResourceLimits::default() };
    let mut m = Machine::new(asm::parse(src).unwrap())
        .with_config(MachineConfig { limits, ..MachineConfig::default() });
    assert!(matches!(
        m.run_native(),
        Err(VmError::ResourceExhausted { resource: ResourceKind::Instructions, limit: 500 })
    ));
}

#[test]
fn instruction_watchdog_traps_gracefully_with_partial_totals() {
    let src = "func main() {\nloop:\n r0 = const 1\n jmp loop\n}";
    let mut m = Machine::new(asm::parse(src).unwrap()).with_config(MachineConfig {
        limits: ResourceLimits::instruction_watchdog(1000),
        ..MachineConfig::default()
    });
    let outcome = m.run_native().expect("trap mode must not error");
    let trap = outcome.trap.expect("budget must have tripped");
    assert_eq!(trap.resource, ResourceKind::Instructions);
    assert_eq!(trap.limit, 1000);
    // The partial run still carries its totals up to the trap.
    assert!(outcome.total_blocks > 0);
    assert!(outcome.total_blocks <= 1001);
    assert_eq!(outcome.exit_value, None);
}

#[test]
fn graceful_trap_is_deterministic() {
    let run = || {
        let mut m = Machine::new(locked_adders(4)).with_config(MachineConfig {
            limits: ResourceLimits::instruction_watchdog(30),
            ..MachineConfig::default()
        });
        m.run_native().unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "trapped runs must stop at the identical point");
    assert!(a.trap.is_some());
}

#[test]
fn trapped_multithreaded_run_is_not_misreported_as_deadlock() {
    // Workers block on the lock when the budget trips; without the trap
    // carve-out the scheduler would call that a deadlock.
    let mut m = Machine::new(locked_adders(8)).with_config(MachineConfig {
        quantum: 1,
        limits: ResourceLimits::instruction_watchdog(60),
        ..MachineConfig::default()
    });
    let outcome = m.run_native().expect("trap, not deadlock");
    assert!(outcome.trap.is_some());
}

#[test]
fn alloc_budget_stops_allocation_storms() {
    let src = r#"
func main() {
loop:
    r0 = const 4096
    r1 = alloc r0
    jmp loop
}
"#;
    let limits = ResourceLimits { max_alloc_cells: 1 << 20, ..ResourceLimits::default() };
    let mut m = Machine::new(asm::parse(src).unwrap())
        .with_config(MachineConfig { limits, ..MachineConfig::default() });
    assert!(matches!(
        m.run_native(),
        Err(VmError::ResourceExhausted { resource: ResourceKind::AllocCells, .. })
    ));

    // Same storm under trap mode: a graceful partial outcome.
    let limits =
        ResourceLimits { max_alloc_cells: 1 << 20, trap: true, ..ResourceLimits::default() };
    let mut m = Machine::new(asm::parse(src).unwrap())
        .with_config(MachineConfig { limits, ..MachineConfig::default() });
    let outcome = m.run_native().unwrap();
    assert_eq!(outcome.trap.unwrap().resource, ResourceKind::AllocCells);
}

#[test]
fn unlimited_runs_report_no_trap() {
    let mut m = Machine::new(locked_adders(4));
    let outcome = m.run_native().unwrap();
    assert_eq!(outcome.trap, None);
    assert_eq!(outcome.exit_value, Some(1 + 2 + 3));
}

#[test]
fn sys_read_moves_device_data_into_memory() {
    let src = r#"
func main() {
e:
    r0 = const 0      # fd
    r1 = const 4      # len
    r2 = alloc r1
    r3 = sys_read r0, r2, r1
    r4 = load r2, 0
    r5 = load r2, 3
    r6 = add r4, r5
    ret r6
}
"#;
    let mut m = Machine::new(asm::parse(src).unwrap());
    m.add_device(Box::new(FileDevice::new(vec![10, 20, 30, 40])));
    let out = m.run_native().unwrap();
    assert_eq!(out.exit_value, Some(50));
}

#[test]
fn sys_read_stops_at_eof() {
    let src = r#"
func main() {
e:
    r0 = const 0
    r1 = const 10
    r2 = alloc r1
    r3 = sys_read r0, r2, r1
    ret r3
}
"#;
    let mut m = Machine::new(asm::parse(src).unwrap());
    m.add_device(Box::new(FileDevice::new(vec![1, 2, 3])));
    assert_eq!(m.run_native().unwrap().exit_value, Some(3));
}

#[test]
fn sys_write_pushes_memory_to_device() {
    let src = r#"
func main() {
e:
    r0 = const 0
    r1 = const 3
    r2 = alloc r1
    r3 = const 7
    store r3, r2, 0
    store r3, r2, 1
    store r3, r2, 2
    r4 = sys_write r0, r2, r1
    ret r4
}
"#;
    let mut m = Machine::new(asm::parse(src).unwrap());
    let fd = m.add_device(Box::new(SinkDevice::new()));
    let out = m.run_native().unwrap();
    assert_eq!(out.exit_value, Some(3));
    assert_eq!(m.devices().get(fd).unwrap().cells_written(), 3);
}

#[test]
fn kernel_events_are_delivered() {
    let src = r#"
func main() {
e:
    r0 = const 0
    r1 = const 2
    r2 = alloc r1
    r3 = sys_read r0, r2, r1
    r4 = sys_write r0, r2, r1
    ret
}
"#;
    let mut m = Machine::new(asm::parse(src).unwrap());
    m.add_device(Box::new(FileDevice::new(vec![5, 6])));
    let mut rec = RecordingTool::new();
    m.run_with(&mut rec).unwrap();
    let stats_of = |kind: EventKind| {
        rec.trace().iter().filter(|e| e.event.kind() == kind).count()
    };
    assert_eq!(stats_of(EventKind::KernelWrite), 2, "sys_read fills two cells");
    assert_eq!(stats_of(EventKind::KernelRead), 2, "sys_write drains two cells");
}

#[test]
fn call_and_return_events_balance() {
    let p = locked_adders(3);
    let mut m = Machine::new(p);
    let mut rec = RecordingTool::new();
    m.run_with(&mut rec).unwrap();
    let calls = rec.trace().iter().filter(|e| e.event.kind() == EventKind::Call).count();
    let rets = rec.trace().iter().filter(|e| e.event.kind() == EventKind::Return).count();
    assert_eq!(calls, rets, "every activation completes");
    assert!(calls >= 4, "main + 3 workers at minimum");
}

#[test]
fn basic_block_costs_match_outcome() {
    let mut m = Machine::new(locked_adders(2));
    struct BbCounter(u64);
    impl Tool for BbCounter {
        fn name(&self) -> &'static str {
            "bb-counter"
        }
        fn basic_block(&mut self, _t: aprof_trace::ThreadId, cost: u64) {
            self.0 += cost;
        }
    }
    let mut counter = BbCounter(0);
    let out = m.run_with(&mut counter).unwrap();
    assert_eq!(counter.0, out.total_blocks);
    let per_thread: u64 = out.threads.iter().map(|t| t.blocks).sum();
    assert_eq!(per_thread, out.total_blocks);
}

#[test]
fn native_and_instrumented_agree() {
    let run_native = {
        let mut m = Machine::new(locked_adders(5));
        m.run_native().unwrap()
    };
    let run_instr = {
        let mut m = Machine::new(locked_adders(5));
        let mut rec = RecordingTool::new();
        m.run_with(&mut rec).unwrap()
    };
    assert_eq!(run_native, run_instr, "instrumentation must not perturb execution");
}

/// The semaphore-based producer/consumer of the paper's Fig. 2, as a guest
/// program: produce n values through a single shared cell.
#[test]
fn semaphore_producer_consumer() {
    let src = r#"
func main() {
e:
    r0 = const 100    # empty sem key
    r1 = const 101    # full sem key
    r9 = const 1
    sem_init r0, r9   # empty = 1
    r8 = const 0
    sem_init r1, r8   # full = 0
    r2 = alloc r9     # shared cell x
    r3 = const 12     # n items
    r4 = spawn producer(r2, r3)
    r5 = spawn consumer(r2, r3)
    join r4
    join r5
    ret r3
}
func producer(2) {
e:
    r2 = const 0      # i
    jmp head
head:
    r3 = clt r2, r1
    br r3, body, exit
body:
    r4 = const 100
    sem_wait r4
    store r2, r0, 0   # produceData: write x
    r4 = const 101
    sem_post r4
    r5 = const 1
    r2 = add r2, r5
    jmp head
exit:
    ret
}
func consumer(2) {
e:
    r2 = const 0
    r6 = const 0      # acc
    jmp head
head:
    r3 = clt r2, r1
    br r3, body, exit
body:
    r4 = const 101
    sem_wait r4
    r5 = load r0, 0   # consumeData: read x
    r6 = add r6, r5
    r4 = const 100
    sem_post r4
    r7 = const 1
    r2 = add r2, r7
    jmp head
exit:
    ret r6
}
"#;
    let mut m = Machine::new(asm::parse(src).unwrap())
        .with_config(MachineConfig { quantum: 3, ..MachineConfig::default() });
    let out = m.run_native().unwrap();
    assert_eq!(out.exit_value, Some(12));
    // The consumer thread accumulated 0+1+...+11.
    assert_eq!(out.threads[2].result, Some((0..12).sum::<i64>()));
}

/// Fairness: with a 1-block quantum, every runnable thread makes progress —
/// no thread is starved while others run (round-robin guarantee).
#[test]
fn scheduler_is_fair_round_robin() {
    // Three independent spinners, no synchronization at all.
    let src = r#"
func main() {
e:
    r9 = const 400
    r0 = spawn spin(r9)
    r1 = spawn spin(r9)
    r2 = spawn spin(r9)
    join r0
    join r1
    join r2
    ret
}
func spin(1) {
e:
    r1 = const 0
    jmp head
head:
    r2 = clt r1, r0
    br r2, body, out
body:
    r3 = const 1
    r1 = add r1, r3
    jmp head
out:
    ret
}
"#;
    struct Progress {
        seen: Vec<u64>,
        max_gap: u64,
        counter: u64,
        last: std::collections::HashMap<u32, u64>,
    }
    impl Tool for Progress {
        fn name(&self) -> &'static str {
            "progress"
        }
        fn basic_block(&mut self, t: aprof_trace::ThreadId, _cost: u64) {
            self.counter += 1;
            let idx = t.index() as u32;
            if (1..=3).contains(&idx) {
                if let Some(&prev) = self.last.get(&idx) {
                    self.max_gap = self.max_gap.max(self.counter - prev);
                }
                self.last.insert(idx, self.counter);
            }
            if (idx as usize) >= self.seen.len() {
                self.seen.resize(idx as usize + 1, 0);
            }
            self.seen[idx as usize] += 1;
        }
    }
    let mut m = Machine::new(asm::parse(src).unwrap())
        .with_config(MachineConfig { quantum: 1, ..MachineConfig::default() });
    let mut p = Progress {
        seen: Vec::new(),
        max_gap: 0,
        counter: 0,
        last: std::collections::HashMap::new(),
    };
    m.run_with(&mut p).unwrap();
    // All three spinners executed the same number of blocks.
    assert_eq!(p.seen[1], p.seen[2]);
    assert_eq!(p.seen[2], p.seen[3]);
    // While all three were live, no spinner waited more than ~one full
    // rotation of the run queue (4 threads x 1-block quantum + slack).
    assert!(p.max_gap <= 16, "a thread was starved: gap {}", p.max_gap);
}

#[test]
fn recording_run_replays_to_an_identical_profile() {
    use aprof_core::TrmsProfiler;
    use aprof_wire::{WireOptions, WireReader, WireWriter};

    let program = locked_adders(4);
    let names = program.routines().clone();

    // Live run, capturing the event stream to a wire trace on the side.
    let mut live = TrmsProfiler::new();
    let mut writer = WireWriter::create(
        Vec::new(),
        &names,
        WireOptions { chunk_bytes: 64, ..Default::default() },
    )
    .unwrap();
    let outcome = Machine::new(program.clone())
        .run_recording(&mut live, &mut writer)
        .unwrap();
    let (bytes, summary) = writer.finish().unwrap();
    assert!(summary.events > 0);
    assert!(summary.chunks > 1, "expected multiple chunks, got {}", summary.chunks);

    // The capture is a bystander: the live run matches an unrecorded run.
    let mut unrecorded = TrmsProfiler::new();
    let plain_outcome = Machine::new(program).run_with(&mut unrecorded).unwrap();
    assert_eq!(outcome, plain_outcome);
    assert_eq!(
        live.into_report(&names),
        unrecorded.into_report(&names),
        "recording must not perturb the live profile"
    );

    // Replaying the wire trace yields the identical profile. The embedded
    // routine table stands in for the program's.
    let mut reader = WireReader::new(&bytes[..]).unwrap();
    assert_eq!(reader.routines().len(), names.len());
    let mut replayed = TrmsProfiler::new();
    replayed.consume_stream(&mut reader).unwrap();
    let mut live2 = TrmsProfiler::new();
    let mut m = Machine::new(locked_adders(4));
    m.run_with(&mut live2).unwrap();
    assert_eq!(replayed.into_report(&names), live2.into_report(&names));
}
