//! Differential tests for the interpreter's superinstructions: every fused
//! pair must produce the exact exit value and instrumentation-event stream
//! of the original `match`-based interpretation path (forced here via
//! `strict_regs`, which decodes everything to the escape opcode), and must
//! trap at the same instruction when a resource budget lands between the
//! two halves of a pair.

use aprof_trace::RecordingTool;
use aprof_vm::{asm, Machine, MachineConfig, ResourceLimits};

/// Runs `src` under both decode paths and asserts identical outcomes and
/// identical recorded traces.
fn assert_fused_matches_original(src: &str, expect_exit: Option<i64>) {
    let fused_cfg = MachineConfig::default();
    let original_cfg = MachineConfig { strict_regs: true, ..MachineConfig::default() };
    let mut traces = Vec::new();
    for cfg in [fused_cfg, original_cfg] {
        let mut m = Machine::new(asm::parse(src).unwrap()).with_config(cfg);
        let mut tool = RecordingTool::new();
        let outcome = m.run_with(&mut tool).unwrap();
        assert_eq!(outcome.exit_value, expect_exit);
        traces.push((outcome, tool.into_trace()));
    }
    let (fused_outcome, fused_trace) = &traces[0];
    let (original_outcome, original_trace) = &traces[1];
    assert_eq!(fused_outcome.total_blocks, original_outcome.total_blocks);
    assert_eq!(fused_trace, original_trace, "event streams must be identical");
}

#[test]
fn fused_const_const_matches_original() {
    assert_fused_matches_original(
        "func main() regs=3 {\n
         bb0:\n
           r0 = const 40\n
           r1 = const 2\n
           r2 = add r0, r1\n
           ret r2\n
         }",
        Some(42),
    );
}

#[test]
fn fused_add_load_matches_original() {
    // store→add breaks fusion before the add, so add→load fuses; the load
    // must still emit its read event and see the stored cell.
    assert_fused_matches_original(
        "func main() regs=6 {\n
         bb0:\n
           r0 = const 4\n
           r3 = const 2\n
           r1 = alloc r0\n
           r2 = const 7\n
           store r2, r1, 2\n
           r4 = add r1, r3\n
           r5 = load r4, 0\n
           ret r5\n
         }",
        Some(7),
    );
}

#[test]
fn fused_add_add_matches_original() {
    assert_fused_matches_original(
        "func main() regs=3 {\n
         bb0:\n
           r0 = const 3\n
           r1 = mov r0\n
           r2 = add r0, r1\n
           r2 = add r2, r0\n
           ret r2\n
         }",
        Some(9),
    );
}

#[test]
fn fused_const_add_matches_original() {
    assert_fused_matches_original(
        "func main() regs=4 {\n
         bb0:\n
           r0 = const 5\n
           r1 = mov r0\n
           r2 = const 10\n
           r3 = add r2, r0\n
           ret r3\n
         }",
        Some(15),
    );
}

#[test]
fn fused_const_cgt_matches_original() {
    assert_fused_matches_original(
        "func main() regs=4 {\n
         bb0:\n
           r0 = const 5\n
           r1 = mov r0\n
           r2 = const 3\n
           r3 = cgt r0, r2\n
           ret r3\n
         }",
        Some(1),
    );
}

#[test]
fn fusion_survives_control_flow_back_edges() {
    // A counted loop whose body and header both contain fusable pairs;
    // block re-entry must re-dispatch from slot 0, never into a filler.
    assert_fused_matches_original(
        "func main() regs=4 {\n
         bb0:\n
           r0 = const 0\n
           r1 = const 10\n
           jmp bb1\n
         bb1:\n
           r2 = const 1\n
           r0 = add r0, r2\n
           r3 = clt r0, r1\n
           br r3, bb1, bb2\n
         bb2:\n
           ret r0\n
         }",
        Some(10),
    );
}

/// A budget that exhausts between the two halves of a fused pair must trap
/// at the same point as the unfused path: the first half's effects applied,
/// the second's not, identical partial traces.
#[test]
fn budget_trap_lands_mid_pair_identically() {
    let src = "func main() regs=6 {\n
         bb0:\n
           r0 = const 4\n
           r3 = const 2\n
           r1 = alloc r0\n
           r2 = const 7\n
           store r2, r1, 2\n
           r4 = add r1, r3\n
           r5 = load r4, 0\n
           ret r5\n
         }";
    // Charges: const, const, alloc, const, store, add (6) — the 7th charge
    // (the load, second half of the fused add→load) exceeds the budget.
    let limits = ResourceLimits { max_instructions: 6, trap: true, ..ResourceLimits::default() };
    let mut traces = Vec::new();
    for strict in [false, true] {
        let cfg = MachineConfig { strict_regs: strict, limits, ..MachineConfig::default() };
        let mut m = Machine::new(asm::parse(src).unwrap()).with_config(cfg);
        let mut tool = RecordingTool::new();
        let outcome = m.run_with(&mut tool).unwrap();
        assert!(outcome.trap.is_some(), "budget must trap (strict={strict})");
        traces.push((outcome.total_blocks, tool.into_trace()));
    }
    assert_eq!(traces[0], traces[1], "trap point must not depend on fusion");
}
