//! The paper's didactic micro-examples as guest programs.

use crate::{Family, Workload, WorkloadParams};
use aprof_vm::builder::ProgramBuilder;
use aprof_vm::device::SyntheticSource;
use aprof_vm::{Machine, MachineConfig};

/// Registry entries for this module.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "producer_consumer",
            family: Family::Micro,
            description: "Fig. 2: semaphore producer/consumer; rms(consumer)=1, trms=n",
            build: producer_consumer,
        },
        Workload {
            name: "external_read",
            family: Family::Micro,
            description: "Fig. 3: buffered reads from a device; rms=1, trms=n",
            build: external_read,
        },
        Workload {
            name: "half_induced",
            family: Family::Micro,
            description: "§3 synthetic: activation i costs i, half first- and half induced accesses",
            build: half_induced,
        },
        Workload {
            name: "planted_exp",
            family: Family::Micro,
            description: "planted exponential: branching decrement recursion, cost ~2^rms",
            build: planted_exp,
        },
    ]
}

const SEM_EMPTY: i64 = 1;
const SEM_FULL: i64 = 2;
const SEM_GO: i64 = 3;
const SEM_DONE: i64 = 4;

/// Fig. 2: a producer thread writes `n` values into one shared cell, a
/// consumer thread reads each one, synchronized by two semaphores. The
/// consumer's single long activation re-reads the same cell `n` times, so
/// its rms is 1 while its trms is `n`.
pub fn producer_consumer(params: &WorkloadParams) -> Machine {
    let n = params.size as i64;
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let producer = p.declare("producer", 2);
    let consumer = p.declare("consumer", 2);
    let produce_data = p.declare("produceData", 2);
    let consume_data = p.declare("consumeData", 1);
    {
        let mut f = p.function(produce_data); // (x_addr, value)
        let x = f.param(0);
        let v = f.param(1);
        f.store(v, x, 0);
        f.ret(None);
    }
    {
        let mut f = p.function(consume_data); // (x_addr) -> value
        let x = f.param(0);
        let v = f.temp();
        f.load(v, x, 0);
        f.ret(Some(v));
    }
    {
        let mut f = p.function(producer); // (x_addr, n)
        let x = f.param(0);
        let n = f.param(1);
        let empty = f.const_temp(SEM_EMPTY);
        let full = f.const_temp(SEM_FULL);
        f.for_range(n, |f, i| {
            f.sem_wait(empty);
            f.call(None, produce_data, &[x, i]);
            f.sem_post(full);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(consumer); // (x_addr, n) -> sum
        let x = f.param(0);
        let n = f.param(1);
        let empty = f.const_temp(SEM_EMPTY);
        let full = f.const_temp(SEM_FULL);
        let acc = f.const_temp(0);
        f.for_range(n, |f, _| {
            f.sem_wait(full);
            let v = f.temp();
            f.call(Some(v), consume_data, &[x]);
            f.add(acc, acc, v);
            f.sem_post(empty);
        });
        f.ret(Some(acc));
    }
    {
        let mut f = p.function(main);
        let one = f.const_temp(1);
        let zero = f.const_temp(0);
        let empty = f.const_temp(SEM_EMPTY);
        let full = f.const_temp(SEM_FULL);
        f.sem_init(empty, one);
        f.sem_init(full, zero);
        let x = f.temp();
        f.alloc(x, one);
        let n = f.const_temp(n);
        let hp = f.temp();
        f.spawn(hp, producer, &[x, n]);
        let hc = f.temp();
        f.spawn(hc, consumer, &[x, n]);
        f.join(hp);
        f.join(hc);
        f.ret(Some(n));
    }
    Machine::new(p.build().expect("valid program"))
        .with_config(MachineConfig { quantum: 8, ..MachineConfig::default() })
}

/// Fig. 3: `externalRead` loads `2n` values from a device through a 2-cell
/// buffer but only consumes `buf[0]` each round: rms = 1, trms = n, and all
/// induced input is external.
pub fn external_read(params: &WorkloadParams) -> Machine {
    let n = params.size as i64;
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let ext = p.declare("externalRead", 2);
    {
        let mut f = p.function(ext); // (fd, n) -> acc
        let fd = f.param(0);
        let n = f.param(1);
        let two = f.const_temp(2);
        let buf = f.temp();
        f.alloc(buf, two);
        let acc = f.const_temp(0);
        f.for_range(n, |f, _| {
            let got = f.temp();
            f.sys_read(got, fd, buf, two);
            let v = f.temp();
            f.load(v, buf, 0); // only b[0] is processed
            f.add(acc, acc, v);
        });
        f.ret(Some(acc));
    }
    {
        let mut f = p.function(main);
        let fd = f.const_temp(0);
        let n = f.const_temp(n);
        let r = f.temp();
        f.call(Some(r), ext, &[fd, n]);
        f.ret(Some(r));
    }
    let mut m = Machine::new(p.build().expect("valid program"));
    m.add_device(Box::new(SyntheticSource::new(params.seed, 2 * params.size)));
    m
}

/// The §3 synthetic scenario: activation `i` performs ⌈i/2⌉ reads of fresh
/// cells (plain first-accesses) and ⌊i/2⌋ re-reads of a shared cell that a
/// helper thread rewrites between reads (induced first-accesses), with cost
/// proportional to `i`. The rms-based worst-case plot therefore appears to
/// grow twice as fast as the trms-based one.
pub fn half_induced(params: &WorkloadParams) -> Machine {
    let n = params.size as i64;
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let r = p.declare("r", 3);
    let dirtier = p.declare("dirtier", 2);
    {
        // r(arena, x_addr, i): read ceil(i/2) arena cells, then floor(i/2)
        // handshaked re-reads of *x.
        let mut f = p.function(r);
        let arena = f.param(0);
        let x = f.param(1);
        let i = f.param(2);
        let one = f.const_temp(1);
        let two = f.const_temp(2);
        let fresh = f.temp();
        f.add(fresh, i, one);
        f.div(fresh, fresh, two); // ceil(i/2)
        let acc = f.const_temp(0);
        crate::helpers::emit_sum(&mut f, acc, arena, fresh);
        let induced = f.temp();
        f.div(induced, i, two); // floor(i/2)
        let go = f.const_temp(SEM_GO);
        let done = f.const_temp(SEM_DONE);
        f.for_range(induced, |f, _| {
            f.sem_post(go);
            f.sem_wait(done);
            let v = f.temp();
            f.load(v, x, 0);
            f.add(acc, acc, v);
        });
        f.ret(Some(acc));
    }
    {
        // dirtier(x_addr, rounds): rewrite *x once per handshake.
        let mut f = p.function(dirtier);
        let x = f.param(0);
        let rounds = f.param(1);
        let go = f.const_temp(SEM_GO);
        let done = f.const_temp(SEM_DONE);
        f.for_range(rounds, |f, k| {
            f.sem_wait(go);
            f.store(k, x, 0);
            f.sem_post(done);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let zero = f.const_temp(0);
        let go = f.const_temp(SEM_GO);
        let done = f.const_temp(SEM_DONE);
        f.sem_init(go, zero);
        f.sem_init(done, zero);
        let one = f.const_temp(1);
        let two = f.const_temp(2);
        let n_reg = f.const_temp(n);
        // total handshakes = sum floor(i/2) for i in 1..=n
        let total = f.const_temp(0);
        f.for_range(n_reg, |f, i| {
            let i1 = f.temp();
            f.add(i1, i, one);
            let h = f.temp();
            f.div(h, i1, two);
            f.add(total, total, h);
        });
        // arena of sum ceil(i/2) cells, pre-initialized by main
        let arena_len = f.temp();
        f.add(arena_len, total, n_reg);
        let arena = f.temp();
        f.alloc(arena, arena_len);
        crate::helpers::emit_fill(&mut f, arena, arena_len, 3);
        let x = f.temp();
        f.alloc(x, one);
        f.store(zero, x, 0);
        let h = f.temp();
        f.spawn(h, dirtier, &[x, total]);
        let cursor = f.temp();
        f.mov(cursor, arena);
        f.for_range(n_reg, |f, i| {
            let i1 = f.temp();
            f.add(i1, i, one); // activations numbered 1..=n
            let out = f.temp();
            f.call(Some(out), r, &[cursor, x, i1]);
            let fresh = f.temp();
            f.add(fresh, i1, one);
            f.div(fresh, fresh, two);
            f.add(cursor, cursor, fresh);
        });
        f.join(h);
        f.ret(Some(n_reg));
    }
    Machine::new(p.build().expect("valid program"))
        .with_config(MachineConfig { quantum: 16, ..MachineConfig::default() })
}

/// A planted exponential-growth workload: `blowup(arena, n)` reads one
/// arena cell and then recurses **twice** on `n - 1`, so its cost obeys
/// T(n) = 2·T(n-1) + c ≈ 2^n while its rms is exactly `n` (the distinct
/// cells `arena[0..n]`). `main` calls it at every depth `1..=d`, planting
/// a cost-vs-rms profile that only an exponential model fits. The static
/// bound pass classifies the same routine as branching decrement
/// recursion (O(2^n), diagnostic B304), so the two sides of the
/// bound-vs-fit differential agree by construction.
pub fn planted_exp(params: &WorkloadParams) -> Machine {
    // 2^13 ≈ 8k activations at the deepest call keeps the smoke cheap.
    let depth = (params.size as i64 / 2).clamp(1, 13);
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let blowup = p.declare("blowup", 2);
    {
        let mut f = p.function(blowup); // (arena, n) -> acc
        let arena = f.param(0);
        let n = f.param(1);
        let zero = f.const_temp(0);
        let one = f.const_temp(1);
        let acc = f.const_temp(0);
        let body = f.new_block();
        let done = f.new_block();
        let cond = f.temp();
        f.cmp(aprof_vm::ir::CmpOp::Gt, cond, n, zero);
        f.br(cond, body, done);
        f.switch_to(body);
        let idx = f.temp();
        f.sub(idx, n, one);
        let addr = f.temp();
        f.add(addr, arena, idx);
        let v = f.temp();
        f.load(v, addr, 0);
        f.add(acc, acc, v);
        let a = f.temp();
        f.call(Some(a), blowup, &[arena, idx]);
        let b = f.temp();
        f.call(Some(b), blowup, &[arena, idx]);
        f.add(acc, acc, a);
        f.add(acc, acc, b);
        f.jmp(done);
        f.switch_to(done);
        f.ret(Some(acc));
    }
    {
        let mut f = p.function(main);
        let d = f.const_temp(depth);
        let one = f.const_temp(1);
        let arena = f.temp();
        f.alloc(arena, d);
        crate::helpers::emit_fill(&mut f, arena, d, 5);
        let acc = f.const_temp(0);
        f.for_range(d, |f, i| {
            let i1 = f.temp();
            f.add(i1, i, one);
            let out = f.temp();
            f.call(Some(out), blowup, &[arena, i1]);
            f.add(acc, acc, out);
        });
        f.ret(Some(acc));
    }
    Machine::new(p.build().expect("valid program"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_core::TrmsProfiler;
    use aprof_trace::RoutineTable;

    fn profile(mut m: Machine) -> (aprof_core::ProfileReport, RoutineTable) {
        let names = m.program().routines().clone();
        let mut prof = TrmsProfiler::new();
        m.run_with(&mut prof).expect("run ok");
        (prof.into_report(&names), names)
    }

    #[test]
    fn producer_consumer_matches_fig2() {
        let n = 20;
        let (report, _) = profile(producer_consumer(&WorkloadParams::new(n, 2)));
        let consumer = report.routine_by_name("consumer").unwrap();
        // rms(consumer) is 1 for the shared cell; trms is n.
        let trms_vals: Vec<u64> = consumer.trms_curve().iter().map(|p| p.0).collect();
        let rms_vals: Vec<u64> = consumer.rms_curve().iter().map(|p| p.0).collect();
        assert_eq!(trms_vals, vec![n]);
        assert_eq!(rms_vals, vec![1]);
        // consumeData activations each read x once: trms 1 (induced).
        let cd = report.routine_by_name("consumeData").unwrap();
        assert_eq!(cd.trms_curve(), vec![(1, cd.trms_curve()[0].1)]);
        assert!(report.global.induced_thread >= n);
        assert_eq!(report.global.induced_external, 0);
    }

    #[test]
    fn external_read_matches_fig3() {
        let n = 16;
        let (report, _) = profile(external_read(&WorkloadParams::new(n, 1)));
        let er = report.routine_by_name("externalRead").unwrap();
        assert_eq!(er.trms_curve().iter().map(|p| p.0).collect::<Vec<_>>(), vec![n]);
        assert_eq!(er.rms_curve().iter().map(|p| p.0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(report.global.induced_external, n);
        assert_eq!(report.global.induced_thread, 0);
        assert_eq!(report.global.kernel_writes, 2 * n);
    }

    #[test]
    fn planted_exp_fit_recovers_exponential() {
        let (report, _) = profile(planted_exp(&WorkloadParams::new(26, 1)));
        let b = report.routine_by_name("blowup").unwrap();
        let plot: Vec<(f64, f64)> =
            b.rms_curve().iter().map(|&(x, s)| (x as f64, s.max as f64)).collect();
        assert!(plot.len() >= 5, "need enough rms classes, got {}", plot.len());
        let fit = aprof_analysis::fit_best(&plot).unwrap();
        assert_eq!(
            fit.model,
            aprof_analysis::GrowthModel::Exponential,
            "planted 2^n growth misfit as {:?} (r2 {})",
            fit.model,
            fit.r2
        );
    }

    #[test]
    fn half_induced_slopes_differ_by_two() {
        let n = 40;
        let (report, _) = profile(half_induced(&WorkloadParams::new(n, 1)));
        let r = report.routine_by_name("r").unwrap();
        // Worst-case cost plots against both metrics.
        let trms_plot: Vec<(f64, f64)> =
            r.trms_curve().iter().map(|&(x, s)| (x as f64, s.max as f64)).collect();
        let rms_plot: Vec<(f64, f64)> =
            r.rms_curve().iter().map(|&(x, s)| (x as f64, s.max as f64)).collect();
        let t = aprof_analysis::fit_best(&trms_plot).unwrap();
        let m = aprof_analysis::fit_best(&rms_plot).unwrap();
        assert_eq!(t.model, aprof_analysis::GrowthModel::Linear);
        assert_eq!(m.model, aprof_analysis::GrowthModel::Linear);
        let ratio = m.b / t.b;
        assert!(
            (ratio - 2.0).abs() < 0.35,
            "rms slope should be ~2x the trms slope, got ratio {ratio}"
        );
    }
}
