//! SPEC OMP2012 analogs: iterative data-parallel kernels.
//!
//! Each of the twelve Table 1 components is modelled by one of five honest
//! kernel shapes, parameterized per benchmark. In every shape the worker
//! threads are long-lived activations separated by barriers, and
//! thread-induced input arises exactly where it does in real OpenMP codes:
//! a thread re-reads shared cells (halo boundaries, particle positions,
//! pivot rows, previous wavefront rows) that other threads rewrote in the
//! previous phase.

use crate::helpers::{add_barrier, emit_join_all, emit_spawn_workers};
use crate::{Family, Workload, WorkloadParams};
use aprof_vm::builder::{FunctionBuilder, ProgramBuilder};
use aprof_vm::device::SyntheticSource;
use aprof_vm::ir::CmpOp;
use aprof_vm::{Machine, MachineConfig};

/// Registry entries: the twelve OMP2012 rows of Table 1.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "350.md",
            family: Family::Omp2012,
            description: "pairwise particle forces; all-to-all position reads across barriers",
            build: |p| pairwise(p, 4, 1),
        },
        Workload {
            name: "351.bwaves",
            family: Family::Omp2012,
            description: "blocked explicit solver; radius-1 halo exchange",
            build: |p| stencil(p, 1, 1, 4),
        },
        Workload {
            name: "352.nab",
            family: Family::Omp2012,
            description: "molecular dynamics with extra per-particle work",
            build: |p| pairwise(p, 2, 3),
        },
        Workload {
            name: "358.botsalgn",
            family: Family::Omp2012,
            description: "many small alignment tiles; wavefront dependencies",
            build: |p| wavefront(p, 4),
        },
        Workload {
            name: "359.botsspar",
            family: Family::Omp2012,
            description: "blocked sparse LU; pivot-row broadcast per step",
            build: blocked_lu,
        },
        Workload {
            name: "360.ilbdc",
            family: Family::Omp2012,
            description: "lattice streaming; each cell pulls from the left neighbour",
            build: |p| stencil(p, 1, 1, 6),
        },
        Workload {
            name: "362.fma3d",
            family: Family::Omp2012,
            description: "finite-element update; radius-2 halo exchange",
            build: |p| stencil(p, 2, 1, 4),
        },
        Workload {
            name: "367.imagick",
            family: Family::Omp2012,
            description: "row-parallel convolution; radius-3 halos",
            build: |p| stencil(p, 3, 1, 3),
        },
        Workload {
            name: "370.mgrid331",
            family: Family::Omp2012,
            description: "multigrid relaxation; two resolutions per cycle",
            build: |p| stencil(p, 1, 2, 3),
        },
        Workload {
            name: "371.applu331",
            family: Family::Omp2012,
            description: "SSOR; forward and backward sweeps per iteration",
            build: |p| stencil(p, 1, 2, 4),
        },
        Workload {
            name: "372.smithwa",
            family: Family::Omp2012,
            description: "Smith-Waterman DP; previous-row wavefront reads",
            build: |p| wavefront(p, 6),
        },
        Workload {
            name: "376.kdtree",
            family: Family::Omp2012,
            description: "tree built by main, traversed by workers; queries stream from a device",
            build: kdtree,
        },
    ]
}

const LOCK: i64 = 100;
const SEM_BARRIER: i64 = 101;

/// Emits `barrier(LOCK, count_addr, SEM_BARRIER, nthreads)`.
fn emit_barrier_call(
    f: &mut FunctionBuilder<'_>,
    barrier: aprof_vm::ir::FuncId,
    count_addr: aprof_vm::ir::Reg,
    nthreads: aprof_vm::ir::Reg,
) {
    let lock = f.const_temp(LOCK);
    let sem = f.const_temp(SEM_BARRIER);
    f.call(None, barrier, &[lock, count_addr, sem, nthreads]);
}

/// Iterative halo-exchange stencil over a ring of `n` cells: each worker
/// owns a block; every iteration it sums its block plus `radius` halo cells
/// on each side (rewritten by the neighbours in the previous write phase,
/// hence induced first-accesses), then rewrites its own block; `sweeps`
/// read/write phase pairs per iteration.
fn stencil(params: &WorkloadParams, radius: i64, sweeps: i64, iters: i64) -> Machine {
    let n = (params.size as i64).max(4 * params.threads as i64);
    let t = params.threads.max(1) as i64;
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let worker = p.declare("worker", 5); // (idx, a, n, t, count_addr)
    let read_block = p.declare("read_block", 4); // (a, from, len, n) -> sum
    let write_block = p.declare("write_block", 4); // (a, from, len, value)
    let barrier = add_barrier(&mut p);
    {
        let mut f = p.function(read_block);
        let a = f.param(0);
        let from = f.param(1);
        let len = f.param(2);
        let n = f.param(3);
        let acc = f.const_temp(0);
        f.for_range(len, |f, i| {
            let idx = f.temp();
            f.add(idx, from, i);
            f.rem(idx, idx, n); // ring wrap (operands are kept non-negative)
            let addr = f.temp();
            f.add(addr, a, idx);
            let v = f.temp();
            f.load(v, addr, 0);
            f.add(acc, acc, v);
        });
        f.ret(Some(acc));
    }
    {
        let mut f = p.function(write_block);
        let a = f.param(0);
        let from = f.param(1);
        let len = f.param(2);
        let value = f.param(3);
        f.for_range(len, |f, i| {
            let addr = f.temp();
            f.add(addr, a, from);
            f.add(addr, addr, i);
            let v = f.temp();
            f.add(v, value, i);
            f.store(v, addr, 0);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(worker);
        let idx = f.param(0);
        let a = f.param(1);
        let n = f.param(2);
        let t = f.param(3);
        let count_addr = f.param(4);
        let block = f.temp();
        f.div(block, n, t);
        let base = f.temp();
        f.mul(base, idx, block);
        // Give the last worker the remainder so block sizes differ.
        let last = f.temp();
        let one = f.const_temp(1);
        let tm1 = f.temp();
        f.sub(tm1, t, one);
        f.cmp(CmpOp::Eq, last, idx, tm1);
        let rest = f.temp();
        f.mul(rest, block, t);
        f.sub(rest, n, rest); // n - block*t
        f.mul(rest, rest, last);
        let mylen = f.temp();
        f.add(mylen, block, rest);
        let radius_r = f.const_temp(radius);
        let iters_r = f.const_temp(iters);
        let sweeps_r = f.const_temp(sweeps);
        let acc = f.const_temp(0);
        f.for_range(iters_r, |f, _| {
            f.for_range(sweeps_r, |f, _| {
                // Read own block.
                let s = f.temp();
                f.call(Some(s), read_block, &[a, base, mylen, n]);
                f.add(acc, acc, s);
                // Read left and right halos (induced: neighbours wrote them).
                let left = f.temp();
                f.sub(left, base, radius_r);
                f.add(left, left, n); // keep non-negative before rem
                let s2 = f.temp();
                f.call(Some(s2), read_block, &[a, left, radius_r, n]);
                f.add(acc, acc, s2);
                let right = f.temp();
                f.add(right, base, mylen);
                let s3 = f.temp();
                f.call(Some(s3), read_block, &[a, right, radius_r, n]);
                f.add(acc, acc, s3);
                emit_barrier_call(f, barrier, count_addr, t);
                // Write own block.
                f.call(None, write_block, &[a, base, mylen, acc]);
                emit_barrier_call(f, barrier, count_addr, t);
            });
        });
        f.ret(Some(acc));
    }
    {
        let mut f = p.function(main);
        let n_r = f.const_temp(n);
        let a = f.temp();
        f.alloc(a, n_r);
        crate::helpers::emit_fill(&mut f, a, n_r, 5);
        let one = f.const_temp(1);
        let count_addr = f.temp();
        f.alloc(count_addr, one);
        let t_r = f.const_temp(t);
        let handles = emit_spawn_workers(&mut f, worker, t_r, &[a, n_r, t_r, count_addr]);
        emit_join_all(&mut f, handles, t_r);
        f.ret(Some(n_r));
    }
    Machine::new(p.build().expect("valid stencil program"))
        .with_config(MachineConfig { quantum: 32, ..MachineConfig::default() })
}

/// Pairwise-interaction kernel (md/nab): every iteration each worker reads
/// *all* particle positions (those of other workers are induced) to update
/// the positions it owns; `localwork` adds per-particle private compute.
fn pairwise(params: &WorkloadParams, iters: i64, localwork: i64) -> Machine {
    let n = (params.size as i64).max(2 * params.threads as i64);
    let t = params.threads.max(1) as i64;
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let worker = p.declare("worker", 5); // (idx, pos, n, t, count_addr)
    let forces = p.declare("compute_forces", 3); // (pos, n, self_idx) -> f
    let barrier = add_barrier(&mut p);
    {
        let mut f = p.function(forces);
        let pos = f.param(0);
        let n = f.param(1);
        let me = f.param(2);
        let acc = f.const_temp(0);
        f.for_range(n, |f, j| {
            let addr = f.temp();
            f.add(addr, pos, j);
            let v = f.temp();
            f.load(v, addr, 0);
            let d = f.temp();
            f.sub(d, v, me);
            f.add(acc, acc, d);
        });
        f.ret(Some(acc));
    }
    {
        let mut f = p.function(worker);
        let idx = f.param(0);
        let pos = f.param(1);
        let n = f.param(2);
        let t = f.param(3);
        let count_addr = f.param(4);
        let iters_r = f.const_temp(iters);
        let lw = f.const_temp(localwork);
        f.for_range(iters_r, |f, _| {
            // Force phase: read every position.
            let force = f.temp();
            f.call(Some(force), forces, &[pos, n, idx]);
            // Private local work (no sharing).
            f.for_range(lw, |f, k| {
                f.add(force, force, k);
            });
            emit_barrier_call(f, barrier, count_addr, t);
            // Update phase: write my own positions (strided by t).
            let j = f.temp();
            f.mov(j, idx);
            let cont = f.scratch();
            f.loop_while(j, |f, j| {
                let addr = f.temp();
                f.add(addr, pos, j);
                let v = f.temp();
                f.load(v, addr, 0);
                f.add(v, v, force);
                f.store(v, addr, 0);
                f.add(j, j, t);
                f.cmp_lt(cont, j, n)
            });
            emit_barrier_call(f, barrier, count_addr, t);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let n_r = f.const_temp(n);
        let pos = f.temp();
        f.alloc(pos, n_r);
        crate::helpers::emit_fill(&mut f, pos, n_r, 7);
        let one = f.const_temp(1);
        let count_addr = f.temp();
        f.alloc(count_addr, one);
        let t_r = f.const_temp(t);
        let handles = emit_spawn_workers(&mut f, worker, t_r, &[pos, n_r, t_r, count_addr]);
        emit_join_all(&mut f, handles, t_r);
        f.ret(Some(n_r));
    }
    Machine::new(p.build().expect("valid pairwise program"))
        .with_config(MachineConfig { quantum: 32, ..MachineConfig::default() })
}

/// Wavefront dynamic programming (smithwa/botsalgn): workers own column
/// bands of a DP matrix; row `i` needs row `i-1`, including the band of the
/// left neighbour, synchronized by a barrier per row.
fn wavefront(params: &WorkloadParams, rows: i64) -> Machine {
    let cols = (params.size as i64).max(2 * params.threads as i64);
    let t = params.threads.max(1) as i64;
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let worker = p.declare("worker", 6); // (idx, m, cols, rows, t, count_addr)
    let barrier = add_barrier(&mut p);
    {
        let mut f = p.function(worker);
        let idx = f.param(0);
        let m = f.param(1);
        let cols = f.param(2);
        let rows = f.param(3);
        let t = f.param(4);
        let count_addr = f.param(5);
        let band = f.temp();
        f.div(band, cols, t);
        let base = f.temp();
        f.mul(base, idx, band);
        let one = f.const_temp(1);
        f.for_range(rows, |f, r| {
            let prev_row = f.temp();
            f.sub(prev_row, r, one);
            f.for_range(band, |f, c| {
                let col = f.temp();
                f.add(col, base, c);
                // Read cell (r-1, col-1): owned by the left neighbour when
                // col == base, hence induced.
                let up = f.temp();
                f.mul(up, prev_row, cols);
                let colm1 = f.temp();
                f.add(colm1, col, cols); // keep non-negative
                f.sub(colm1, colm1, one);
                f.rem(colm1, colm1, cols);
                f.add(up, up, colm1);
                let upv = f.temp();
                let ok = f.temp();
                let zero = f.const_temp(0);
                f.cmp(CmpOp::Ge, ok, prev_row, zero);
                let read_bb = f.new_block();
                let skip_bb = f.new_block();
                let cont_bb = f.new_block();
                f.br(ok, read_bb, skip_bb);
                f.switch_to(read_bb);
                let addr = f.temp();
                f.add(addr, m, up);
                f.load(upv, addr, 0);
                f.jmp(cont_bb);
                f.switch_to(skip_bb);
                f.const_(upv, 1);
                f.jmp(cont_bb);
                f.switch_to(cont_bb);
                // Write cell (r, col).
                let here = f.temp();
                f.mul(here, r, cols);
                f.add(here, here, col);
                f.add(here, here, m);
                let v = f.temp();
                f.add(v, upv, col);
                f.store(v, here, 0);
            });
            emit_barrier_call(f, barrier, count_addr, t);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let cols_r = f.const_temp(cols);
        let rows_r = f.const_temp(rows);
        let cells = f.temp();
        f.mul(cells, cols_r, rows_r);
        let m = f.temp();
        f.alloc(m, cells);
        let one = f.const_temp(1);
        let count_addr = f.temp();
        f.alloc(count_addr, one);
        let t_r = f.const_temp(t);
        let handles =
            emit_spawn_workers(&mut f, worker, t_r, &[m, cols_r, rows_r, t_r, count_addr]);
        emit_join_all(&mut f, handles, t_r);
        f.ret(Some(cells));
    }
    Machine::new(p.build().expect("valid wavefront program"))
        .with_config(MachineConfig { quantum: 32, ..MachineConfig::default() })
}

/// Blocked LU-style elimination (botsspar): at step `k` the owner of pivot
/// block `k` rewrites it; every other worker reads the pivot row (induced)
/// to update its own trailing blocks.
fn blocked_lu(params: &WorkloadParams) -> Machine {
    let blocks = ((params.size as i64) / 8).clamp(4, 32);
    let bsize = 8i64;
    let t = params.threads.max(1) as i64;
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let worker = p.declare("worker", 6); // (idx, a, blocks, bsize, t, count_addr)
    let barrier = add_barrier(&mut p);
    {
        let mut f = p.function(worker);
        let idx = f.param(0);
        let a = f.param(1);
        let blocks_r = f.param(2);
        let bsize_r = f.param(3);
        let t = f.param(4);
        let count_addr = f.param(5);
        f.for_range(blocks_r, |f, k| {
            // Pivot owner (k % t) rewrites pivot block k.
            let owner = f.temp();
            f.rem(owner, k, t);
            let mine = f.temp();
            f.cmp(CmpOp::Eq, mine, owner, idx);
            let pivot_base = f.temp();
            f.mul(pivot_base, k, bsize_r);
            f.add(pivot_base, pivot_base, a);
            let piv_bb = f.new_block();
            let join_bb = f.new_block();
            let skip_bb = f.new_block();
            f.br(mine, piv_bb, skip_bb);
            f.switch_to(piv_bb);
            f.for_range(bsize_r, |f, j| {
                let addr = f.temp();
                f.add(addr, pivot_base, j);
                let v = f.temp();
                f.load(v, addr, 0);
                f.add(v, v, k);
                f.store(v, addr, 0);
            });
            f.jmp(join_bb);
            f.switch_to(skip_bb);
            f.jmp(join_bb);
            f.switch_to(join_bb);
            emit_barrier_call(f, barrier, count_addr, t);
            // Everyone reads the pivot row (induced for non-owners) and
            // updates one private accumulator pass over it.
            let acc = f.const_temp(0);
            f.for_range(bsize_r, |f, j| {
                let addr = f.temp();
                f.add(addr, pivot_base, j);
                let v = f.temp();
                f.load(v, addr, 0);
                f.add(acc, acc, v);
            });
            emit_barrier_call(f, barrier, count_addr, t);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let blocks_r = f.const_temp(blocks);
        let bsize_r = f.const_temp(bsize);
        let cells = f.temp();
        f.mul(cells, blocks_r, bsize_r);
        let a = f.temp();
        f.alloc(a, cells);
        crate::helpers::emit_fill(&mut f, a, cells, 11);
        let one = f.const_temp(1);
        let count_addr = f.temp();
        f.alloc(count_addr, one);
        let t_r = f.const_temp(t);
        let handles =
            emit_spawn_workers(&mut f, worker, t_r, &[a, blocks_r, bsize_r, t_r, count_addr]);
        emit_join_all(&mut f, handles, t_r);
        f.ret(Some(cells));
    }
    Machine::new(p.build().expect("valid LU program"))
        .with_config(MachineConfig { quantum: 32, ..MachineConfig::default() })
}

/// kd-tree analog: main builds an implicit tree (writes), workers answer
/// point queries streamed from a device (external input) by walking the
/// tree (thread-induced on first touch, since main built it).
fn kdtree(params: &WorkloadParams) -> Machine {
    let n = (params.size.next_power_of_two() as i64).max(16);
    let t = params.threads.max(1) as i64;
    let queries = (params.size as i64).max(8);
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let worker = p.declare("worker", 4); // (idx, tree, n, fd)
    let query = p.declare("tree_query", 3); // (tree, n, key) -> leaf value
    {
        let mut f = p.function(query);
        let tree = f.param(0);
        let n = f.param(1);
        let key = f.param(2);
        let one = f.const_temp(1);
        let two = f.const_temp(2);
        let node = f.const_temp(1); // 1-based heap index
        let cont = f.scratch();
        f.loop_while(node, |f, node| {
            let addr = f.temp();
            f.add(addr, tree, node);
            let v = f.temp();
            f.load(v, addr, 0);
            // Go left/right by comparing the key with the node value.
            let goright = f.temp();
            f.cmp(CmpOp::Gt, goright, key, v);
            f.mul(node, node, two);
            f.add(node, node, goright);
            let _ = one;
            f.cmp_lt(cont, node, n)
        });
        f.ret(Some(node));
    }
    {
        let mut f = p.function(worker);
        let _idx = f.param(0);
        let tree = f.param(1);
        let n = f.param(2);
        let fd = f.param(3);
        let one = f.const_temp(1);
        let buf = f.temp();
        f.alloc(buf, one);
        let acc = f.const_temp(0);
        let more = f.const_temp(1);
        f.loop_while(more, |f, more| {
            let got = f.temp();
            f.sys_read(got, fd, buf, one);
            let have = f.temp();
            let zero = f.const_temp(0);
            f.cmp(CmpOp::Gt, have, got, zero);
            let do_bb = f.new_block();
            let done_bb = f.new_block();
            let out_bb = f.new_block();
            f.br(have, do_bb, done_bb);
            f.switch_to(do_bb);
            let key = f.temp();
            f.load(key, buf, 0); // induced-external: kernel refilled buf
            let leaf = f.temp();
            f.call(Some(leaf), query, &[tree, n, key]);
            f.add(acc, acc, leaf);
            f.jmp(out_bb);
            f.switch_to(done_bb);
            f.const_(more, 0);
            f.jmp(out_bb);
            f.switch_to(out_bb);
            more
        });
        f.ret(Some(acc));
    }
    {
        let mut f = p.function(main);
        let n_r = f.const_temp(n);
        let tree = f.temp();
        f.alloc(tree, n_r);
        // Build: node i holds a key proportional to its in-order position.
        crate::helpers::emit_fill(&mut f, tree, n_r, 13);
        let t_r = f.const_temp(t);
        let fd = f.const_temp(0);
        let handles = emit_spawn_workers(&mut f, worker, t_r, &[tree, n_r, fd]);
        emit_join_all(&mut f, handles, t_r);
        f.ret(Some(n_r));
    }
    let mut m = Machine::new(p.build().expect("valid kdtree program"))
        .with_config(MachineConfig { quantum: 32, ..MachineConfig::default() });
    m.add_device(Box::new(SyntheticSource::new(params.seed, queries as u64)));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_core::TrmsProfiler;

    fn induced_split(name: &str, params: &WorkloadParams) -> (u64, u64) {
        let wl = crate::by_name(name).unwrap();
        let mut m = wl.build(params);
        let names = m.program().routines().clone();
        let mut prof = TrmsProfiler::new();
        m.run_with(&mut prof).expect("run");
        let rep = prof.into_report(&names);
        (rep.global.induced_thread, rep.global.induced_external)
    }

    #[test]
    fn stencil_has_thread_induced_input() {
        let (thread, external) = induced_split("351.bwaves", &WorkloadParams::new(64, 4));
        assert!(thread > 0, "halo exchange must show up as thread-induced input");
        assert_eq!(external, 0);
    }

    #[test]
    fn pairwise_has_heavy_thread_induced_input() {
        let (thread, _) = induced_split("350.md", &WorkloadParams::new(32, 4));
        assert!(thread > 100, "all-to-all reads should dominate, got {thread}");
    }

    #[test]
    fn kdtree_mixes_external_and_thread_input() {
        let (thread, external) = induced_split("376.kdtree", &WorkloadParams::new(64, 3));
        assert!(external > 0, "queries stream from a device");
        assert!(thread > 0, "tree nodes were built by main");
    }

    #[test]
    fn wavefront_and_lu_run_multithreaded() {
        for name in ["372.smithwa", "359.botsspar", "358.botsalgn"] {
            let wl = crate::by_name(name).unwrap();
            let out = wl.build(&WorkloadParams::new(48, 3)).run_native().expect(name);
            assert!(out.threads.len() >= 4, "{name} must spawn workers");
        }
    }
}
