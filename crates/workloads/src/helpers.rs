//! Shared guest-code building blocks: barriers, fork/join, array fills.

use aprof_vm::builder::{FunctionBuilder, ProgramBuilder};
use aprof_vm::ir::{FuncId, Reg};

/// Adds a sense-free counting barrier to the program and returns its id.
///
/// The function has signature `barrier(lock_key, count_addr, sem_key, n)`:
/// the first `n - 1` arrivals block on the semaphore; the last arrival
/// resets the counter and releases them all. Safe to reuse across
/// iterations (every permit is consumed before the counter is reset is
/// observable again).
pub fn add_barrier(p: &mut ProgramBuilder) -> FuncId {
    let barrier = p.declare("barrier", 4);
    let mut f = p.function(barrier);
    let lock = f.param(0);
    let count_addr = f.param(1);
    let sem = f.param(2);
    let n = f.param(3);
    f.acquire(lock);
    let c = f.temp();
    f.load(c, count_addr, 0);
    f.add_imm(c, c, 1);
    let full = f.temp();
    f.cmp(aprof_vm::ir::CmpOp::Eq, full, c, n);
    let last = f.new_block();
    let wait = f.new_block();
    let out = f.new_block();
    f.br(full, last, wait);

    f.switch_to(last);
    let zero = f.const_temp(0);
    f.store(zero, count_addr, 0);
    // Release n-1 waiters.
    let releases = f.temp();
    let one = f.const_temp(1);
    f.sub(releases, n, one);
    f.for_range(releases, |f, _i| {
        f.sem_post(sem);
    });
    f.release(lock);
    f.jmp(out);

    f.switch_to(wait);
    f.store(c, count_addr, 0);
    f.release(lock);
    f.sem_wait(sem);
    f.jmp(out);

    f.switch_to(out);
    f.ret(None);
    drop(f);
    barrier
}

/// Emits code that spawns `threads` instances of `worker`, passing
/// `(worker_index, extra...)`, and stores the handles; returns the handle
/// array base register. Pair with [`emit_join_all`].
pub fn emit_spawn_workers(
    f: &mut FunctionBuilder<'_>,
    worker: FuncId,
    threads: Reg,
    extra: &[Reg],
) -> Reg {
    let handles = f.temp();
    f.alloc(handles, threads);
    f.for_range(threads, |f, i| {
        let mut args = vec![i];
        args.extend_from_slice(extra);
        let h = f.temp();
        f.spawn(h, worker, &args);
        let slot = f.temp();
        f.add(slot, handles, i);
        f.store(h, slot, 0);
    });
    handles
}

/// Emits code joining every handle stored by [`emit_spawn_workers`].
pub fn emit_join_all(f: &mut FunctionBuilder<'_>, handles: Reg, threads: Reg) {
    f.for_range(threads, |f, i| {
        let slot = f.temp();
        f.add(slot, handles, i);
        let h = f.temp();
        f.load(h, slot, 0);
        f.join(h);
    });
}

/// Emits code that fills `len` cells at `base` with a cheap deterministic
/// pattern derived from the loop index and `salt`.
pub fn emit_fill(f: &mut FunctionBuilder<'_>, base: Reg, len: Reg, salt: i64) {
    let s = f.const_temp(salt);
    f.for_range(len, |f, i| {
        let v = f.temp();
        f.mul(v, i, s);
        f.add_imm(v, v, 1);
        let addr = f.temp();
        f.add(addr, base, i);
        f.store(v, addr, 0);
    });
}

/// Emits code that reads and sums `len` cells at `base` into `acc`
/// (which must already hold an initial value).
pub fn emit_sum(f: &mut FunctionBuilder<'_>, acc: Reg, base: Reg, len: Reg) {
    f.for_range(len, |f, i| {
        let addr = f.temp();
        f.add(addr, base, i);
        let v = f.temp();
        f.load(v, addr, 0);
        f.add(acc, acc, v);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_vm::{Machine, MachineConfig};

    /// T workers hit the barrier `iters` times, each incrementing a private
    /// slot per round; after the join every slot holds `iters`.
    #[test]
    fn barrier_synchronizes_rounds() {
        let mut p = ProgramBuilder::new();
        let main = p.declare("main", 0);
        let worker = p.declare("worker", 3); // (idx, slots, iters)
        let barrier = add_barrier(&mut p);
        {
            let mut f = p.function(worker);
            let idx = f.param(0);
            let slots = f.param(1);
            let iters = f.param(2);
            let lock = f.const_temp(900);
            let count_addr = f.const_temp(64); // static cell
            let sem = f.const_temp(901);
            let t = f.const_temp(3);
            let slot = f.temp();
            f.add(slot, slots, idx);
            f.for_range(iters, |f, _| {
                let v = f.temp();
                f.load(v, slot, 0);
                f.add_imm(v, v, 1);
                f.store(v, slot, 0);
                f.call(None, barrier, &[lock, count_addr, sem, t]);
            });
            f.ret(None);
        }
        {
            let mut f = p.function(main);
            let t = f.const_temp(3);
            let slots = f.temp();
            f.alloc(slots, t);
            let iters = f.const_temp(5);
            let handles = emit_spawn_workers(&mut f, worker, t, &[slots, iters]);
            emit_join_all(&mut f, handles, t);
            let acc = f.const_temp(0);
            emit_sum(&mut f, acc, slots, t);
            f.ret(Some(acc));
        }
        let mut m = Machine::new(p.build().unwrap())
            .with_config(MachineConfig { quantum: 2, ..MachineConfig::default() });
        assert_eq!(m.run_native().unwrap().exit_value, Some(15));
    }

    #[test]
    fn fill_and_sum_roundtrip() {
        let mut p = ProgramBuilder::new();
        let main = p.declare("main", 0);
        {
            let mut f = p.function(main);
            let n = f.const_temp(6);
            let buf = f.temp();
            f.alloc(buf, n);
            emit_fill(&mut f, buf, n, 2);
            let acc = f.const_temp(0);
            emit_sum(&mut f, acc, buf, n);
            f.ret(Some(acc));
        }
        // values are i*2+1 for i in 0..6 => 1+3+5+7+9+11 = 36
        let mut m = Machine::new(p.build().unwrap());
        assert_eq!(m.run_native().unwrap().exit_value, Some(36));
    }
}
