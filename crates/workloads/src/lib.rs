//! Benchmark guest programs: the workloads of the paper's evaluation.
//!
//! The paper evaluates on SPEC OMP2012, PARSEC 2.1 and MySQL — native
//! benchmark suites that cannot run on a simulated guest machine. Each
//! module here provides an *analog*: a guest program written to reproduce
//! the memory-access and communication pattern the paper attributes to that
//! benchmark, because those patterns are what determine rms/trms behaviour:
//!
//! * [`micro`] — the paper's own didactic examples: the producer/consumer
//!   of Fig. 2, the buffered external read of Fig. 3, and the synthetic
//!   half-first/half-induced scenario of §3.
//! * [`omp2012`] — twelve OpenMP-style data-parallel kernels named after
//!   the SPEC OMP2012 components of Table 1 (md, bwaves, nab, botsalgn,
//!   botsspar, ilbdc, fma3d, imagick, mgrid331, applu331, smithwa, kdtree),
//!   built from a small set of honest kernel shapes — iterative stencils
//!   with boundary exchange, pairwise interactions, wavefront dynamic
//!   programming, streaming lattices, tree build/query — where
//!   thread-induced input arises exactly where it does in OpenMP programs:
//!   threads rereading shared cells rewritten by neighbours across
//!   barriers.
//! * [`parsec`] — pipeline-parallel analogs of the PARSEC applications the
//!   paper examines: `vips` (with `im_generate` and `wbuffer_write_thread`
//!   counterparts), `dedup` and `fluidanimate`.
//! * [`minidb`] — a miniature relational engine standing in for MySQL:
//!   table scans through reused kernel-filled buffers (`mysql_select`),
//!   client/flush interaction (`buf_flush_buffered_writes`), protocol
//!   output (`send_eof`), driven by a mysqlslap-like multi-client load.
//! * [`btree`], [`docpipe`], [`server`] — production-shaped service guests
//!   beyond the paper's suites: a B+-tree storage engine with node splits
//!   under concurrent clients, a parse→transform→render document pipeline
//!   over bounded rings, and a request/worker-pool server at high thread
//!   counts. Each verifies itself against a host-side reference or a
//!   pool-size-invariance law.
//!
//! All programs are deterministic given [`WorkloadParams`], so every
//! experiment in `aprof-bench` is reproducible.
//!
//! # Example
//!
//! ```
//! use aprof_workloads::{by_name, WorkloadParams};
//!
//! let wl = by_name("producer_consumer").unwrap();
//! let mut machine = wl.build(&WorkloadParams { size: 50, ..Default::default() });
//! let outcome = machine.run_native()?;
//! assert!(outcome.total_blocks > 0);
//! # Ok::<(), aprof_vm::VmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algos;
pub mod btree;
pub mod docpipe;
pub mod helpers;
pub mod micro;
pub mod minidb;
pub mod omp2012;
pub mod parsec;
pub mod server;

use aprof_vm::Machine;

/// Size/threading/seed knobs shared by all workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Problem size (meaning is workload-specific: elements, rows, pixels).
    pub size: u64,
    /// Worker threads to spawn (in addition to the main thread).
    pub threads: u32,
    /// Seed for synthetic device data.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams { size: 64, threads: 4, seed: 0x5eed }
    }
}

impl WorkloadParams {
    /// Convenience constructor for the common size+threads case.
    pub fn new(size: u64, threads: u32) -> Self {
        WorkloadParams { size, threads, ..Default::default() }
    }
}

/// Which benchmark suite a workload imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Family {
    /// The paper's didactic micro-examples.
    Micro,
    /// Classic sequential algorithms (the PLDI 2012-style validation).
    Algo,
    /// SPEC OMP2012 analogs (Table 1, Figs. 14–17).
    Omp2012,
    /// PARSEC 2.1 analogs (Figs. 5, 7, 15–19).
    Parsec,
    /// The MySQL analog (Figs. 4, 6, 8, 9, 17).
    MiniDb,
    /// Production-shaped service guests (storage engine, document
    /// pipeline, worker-pool server).
    Service,
}

impl Family {
    /// Lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Family::Micro => "micro",
            Family::Algo => "algo",
            Family::Omp2012 => "omp2012",
            Family::Parsec => "parsec",
            Family::MiniDb => "minidb",
            Family::Service => "service",
        }
    }
}

/// A registered benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Registry name (e.g. `"350.md"`, `"vips"`, `"mysqld"`).
    pub name: &'static str,
    /// The suite it imitates.
    pub family: Family,
    /// One-line description of the pattern it exercises.
    pub description: &'static str,
    build: fn(&WorkloadParams) -> Machine,
}

impl Workload {
    /// Builds a ready-to-run machine (program + devices) for this workload.
    pub fn build(&self, params: &WorkloadParams) -> Machine {
        (self.build)(params)
    }
}

/// All registered workloads, grouped by family.
pub fn all() -> Vec<Workload> {
    let mut v = Vec::new();
    v.extend(micro::workloads());
    v.extend(algos::workloads());
    v.extend(omp2012::workloads());
    v.extend(parsec::workloads());
    v.extend(minidb::workloads());
    v.extend(btree::workloads());
    v.extend(docpipe::workloads());
    v.extend(server::workloads());
    v
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// The workloads of one family.
pub fn family(family: Family) -> Vec<Workload> {
    all().into_iter().filter(|w| w.family == family).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|w| w.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate workload names");
    }

    #[test]
    fn registry_covers_all_families() {
        for f in [
            Family::Micro,
            Family::Algo,
            Family::Omp2012,
            Family::Parsec,
            Family::MiniDb,
            Family::Service,
        ] {
            assert!(!family(f).is_empty(), "no workloads in {f:?}");
        }
        assert_eq!(family(Family::Omp2012).len(), 12, "Table 1 has 12 OMP2012 rows");
        assert_eq!(family(Family::Service).len(), 3, "storage + pipeline + server");
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("350.md").is_some());
        assert!(by_name("nonexistent").is_none());
        assert_eq!(Family::MiniDb.label(), "minidb");
    }

    /// Every registered workload runs to completion natively at a small
    /// size — the smoke test that keeps the whole registry honest.
    #[test]
    fn every_workload_runs() {
        let params = WorkloadParams { size: 24, threads: 2, seed: 7 };
        for wl in all() {
            let mut m = wl.build(&params);
            let out = m
                .run_native()
                .unwrap_or_else(|e| panic!("workload {} failed: {e}", wl.name));
            assert!(out.total_blocks > 0, "{} executed nothing", wl.name);
        }
    }
}
