//! `kvstore`: a B+-tree storage engine guest.
//!
//! The production pattern behind embedded key/value stores (InnoDB's
//! clustered index, LMDB, LevelDB's memtable): a sorted tree of fixed-fanout
//! nodes, a leaf chain for range scans, node splits on overflow, and a
//! coarse tree latch serializing concurrent clients. The guest implements a
//! two-level B+-tree honestly:
//!
//! * leaves hold up to [`FANOUT`] sorted `(key, val)` pairs plus a
//!   `next_leaf` link (layout `[nkeys, next_leaf, keys[4], vals[4]]`);
//! * a root directory maps each leaf's minimum key to its address;
//! * `bt_insert` upserts (keys stay unique), splitting full leaves via
//!   `bt_split`, which moves the upper half into a fresh leaf, relinks the
//!   chain and shifts the directory;
//! * `bt_delete` removes in place (no merge — lazy deletion, as real
//!   engines do);
//! * `bt_scan` walks the whole leaf chain.
//!
//! `threads` client threads each pull an op stream from their own device
//! (external input) and run it against the shared tree under the latch, so
//! `bt_find_leaf`'s cost grows with the directory the *other* clients built
//! — the input-sensitive profile a wall-clock profiler cannot attribute.

use crate::helpers::{emit_join_all, emit_spawn_workers};
use crate::{Family, Workload, WorkloadParams};
use aprof_vm::builder::ProgramBuilder;
use aprof_vm::device::SyntheticSource;
use aprof_vm::ir::CmpOp;
use aprof_vm::{Machine, MachineConfig};

/// Registry entries for this module.
pub fn workloads() -> Vec<Workload> {
    vec![Workload {
        name: "kvstore",
        family: Family::Service,
        description: "B+-tree storage engine: concurrent upsert/get/delete op \
                      streams with leaf splits, plus a full leaf-chain scan",
        build: kvstore,
    }]
}

/// Keys per leaf before a split.
pub const FANOUT: i64 = 4;
/// Leaf layout: `[nkeys, next_leaf, keys[FANOUT], vals[FANOUT]]`.
const LEAF_CELLS: i64 = 2 + 2 * FANOUT;
const KEYS_OFF: i64 = 2;
const VALS_OFF: i64 = 2 + FANOUT;
/// The coarse tree latch.
const LOCK_TREE: i64 = 70;

/// The deterministic value stored for `key` (shared by guest and the test
/// mirror).
pub fn value_of(key: i64) -> i64 {
    key * 2 + 1
}

/// Host-side mirror of the guest's per-client device stream: the op decode
/// applied to [`SyntheticSource`]'s xorshift cells.
pub fn mirror_stream(seed: u64, ops: u64, keyspace: i64) -> Vec<(i64, i64)> {
    let mut state = seed.max(1);
    (0..ops)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let v = (state >> 16) as i64;
            (v % 4, (v / 4) % keyspace)
        })
        .collect()
}

fn kvstore(params: &WorkloadParams) -> Machine {
    let clients = params.threads.max(1) as i64;
    let ops = params.size as i64;
    let preload = params.size as i64;
    let keyspace = (2 * params.size as i64).max(8);
    // Every insert adds at most one leaf; two directory cells per leaf.
    let dir_cap = 2 * (preload + clients * ops + 2);

    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let client = p.declare("client_session", 4); // (idx, tree, ops, keyspace)
    let find = p.declare("bt_find_leaf", 2); // (tree, key) -> dir index
    let insert = p.declare("bt_insert", 3); // (tree, key, val)
    let split = p.declare("bt_split", 2); // (tree, dir index)
    let get = p.declare("bt_get", 2); // (tree, key) -> val or 0
    let delete = p.declare("bt_delete", 2); // (tree, key)
    let scan = p.declare("bt_scan", 1); // (tree) -> sum of vals

    {
        // bt_find_leaf: last directory slot whose min key <= key (slot 0
        // covers everything below; keys are non-negative and dir[0] starts
        // at 0). Branch-free select keeps the CFG linear in the scan.
        let mut f = p.function(find);
        let tree = f.param(0);
        let key = f.param(1);
        let dir = f.temp();
        f.load(dir, tree, 0);
        let ndir = f.temp();
        f.load(ndir, tree, 1);
        let idx = f.const_temp(0);
        f.for_range(ndir, |f, j| {
            let entry = f.temp();
            f.add(entry, j, j);
            f.add(entry, dir, entry);
            let min = f.temp();
            f.load(min, entry, 0);
            let le = f.temp();
            f.cmp(CmpOp::Le, le, min, key);
            // idx = le ? j : idx
            let delta = f.temp();
            f.sub(delta, j, idx);
            f.mul(delta, delta, le);
            f.add(idx, idx, delta);
        });
        f.ret(Some(idx));
    }
    {
        // bt_split(tree, i): split the full leaf at directory slot i,
        // moving its upper half into a fresh leaf spliced into the chain
        // and the directory.
        let mut f = p.function(split);
        let tree = f.param(0);
        let i = f.param(1);
        let dir = f.temp();
        f.load(dir, tree, 0);
        let ndir = f.temp();
        f.load(ndir, tree, 1);
        let slot = f.temp();
        f.add(slot, i, i);
        f.add(slot, dir, slot);
        let leaf = f.temp();
        f.load(leaf, slot, 1);
        let cells = f.const_temp(LEAF_CELLS);
        let fresh = f.temp();
        f.alloc(fresh, cells);
        let half = f.const_temp(FANOUT / 2);
        f.for_range(half, |f, j| {
            let src = f.temp();
            f.add(src, leaf, j);
            let k = f.temp();
            f.load(k, src, KEYS_OFF + FANOUT / 2);
            let v = f.temp();
            f.load(v, src, VALS_OFF + FANOUT / 2);
            let dst = f.temp();
            f.add(dst, fresh, j);
            f.store(k, dst, KEYS_OFF);
            f.store(v, dst, VALS_OFF);
        });
        f.store(half, leaf, 0);
        f.store(half, fresh, 0);
        let next = f.temp();
        f.load(next, leaf, 1);
        f.store(next, fresh, 1);
        f.store(fresh, leaf, 1);
        // Shift directory entries (i+1..ndir) one slot right, top down.
        let shift = f.temp();
        f.sub(shift, ndir, i);
        f.add_imm(shift, shift, -1);
        let one = f.const_temp(1);
        f.for_range(shift, |f, j| {
            let s = f.temp();
            f.sub(s, ndir, one);
            f.sub(s, s, j);
            let src = f.temp();
            f.add(src, s, s);
            f.add(src, dir, src);
            let k = f.temp();
            f.load(k, src, 0);
            let v = f.temp();
            f.load(v, src, 1);
            f.store(k, src, 2);
            f.store(v, src, 3);
        });
        let mink = f.temp();
        f.load(mink, fresh, KEYS_OFF);
        let dst = f.temp();
        f.add(dst, i, one);
        f.add(dst, dst, dst);
        f.add(dst, dir, dst);
        f.store(mink, dst, 0);
        f.store(fresh, dst, 1);
        f.add(ndir, ndir, one);
        f.store(ndir, tree, 1);
        f.ret(None);
    }
    {
        // bt_insert: upsert. Existing key -> overwrite val in place; new
        // key -> sorted insert, splitting first when the leaf is full.
        let mut f = p.function(insert);
        let tree = f.param(0);
        let key = f.param(1);
        let val = f.param(2);
        let idx = f.temp();
        f.call(Some(idx), find, &[tree, key]);
        let dir = f.temp();
        f.load(dir, tree, 0);
        let slot = f.temp();
        f.add(slot, idx, idx);
        f.add(slot, dir, slot);
        let leaf = f.temp();
        f.load(leaf, slot, 1);
        let n = f.temp();
        f.load(n, leaf, 0);
        // Upsert scan: pos of exact match, else n.
        let pos = f.temp();
        f.mov(pos, n);
        f.for_range(n, |f, j| {
            let cell = f.temp();
            f.add(cell, leaf, j);
            let k = f.temp();
            f.load(k, cell, KEYS_OFF);
            let hit = f.temp();
            f.cmp(CmpOp::Eq, hit, k, key);
            let first = f.temp();
            f.cmp(CmpOp::Eq, first, pos, n);
            f.mul(hit, hit, first);
            let delta = f.temp();
            f.sub(delta, j, pos);
            f.mul(delta, delta, hit);
            f.add(pos, pos, delta);
        });
        let found = f.temp();
        f.cmp(CmpOp::Lt, found, pos, n);
        let overwrite = f.new_block();
        let miss = f.new_block();
        let out = f.new_block();
        f.br(found, overwrite, miss);

        f.switch_to(overwrite);
        let cell = f.temp();
        f.add(cell, leaf, pos);
        f.store(val, cell, VALS_OFF);
        f.jmp(out);

        f.switch_to(miss);
        let cap = f.const_temp(FANOUT);
        let full = f.temp();
        f.cmp(CmpOp::Eq, full, n, cap);
        let do_split = f.new_block();
        let place = f.new_block();
        f.br(full, do_split, place);

        f.switch_to(do_split);
        f.call(None, split, &[tree, idx]);
        f.call(Some(idx), find, &[tree, key]);
        f.load(dir, tree, 0);
        f.add(slot, idx, idx);
        f.add(slot, dir, slot);
        f.load(leaf, slot, 1);
        f.load(n, leaf, 0);
        f.jmp(place);

        f.switch_to(place);
        // Insertion point: first j with leaf.key[j] > key, else n.
        let ins = f.temp();
        f.mov(ins, n);
        f.for_range(n, |f, j| {
            let c = f.temp();
            f.add(c, leaf, j);
            let k = f.temp();
            f.load(k, c, KEYS_OFF);
            let gt = f.temp();
            f.cmp(CmpOp::Gt, gt, k, key);
            let first = f.temp();
            f.cmp(CmpOp::Eq, first, ins, n);
            f.mul(gt, gt, first);
            let delta = f.temp();
            f.sub(delta, j, ins);
            f.mul(delta, delta, gt);
            f.add(ins, ins, delta);
        });
        // Shift (ins..n) right, top down.
        let shift = f.temp();
        f.sub(shift, n, ins);
        let one = f.const_temp(1);
        f.for_range(shift, |f, j| {
            let s = f.temp();
            f.sub(s, n, one);
            f.sub(s, s, j);
            let c = f.temp();
            f.add(c, leaf, s);
            let k = f.temp();
            f.load(k, c, KEYS_OFF);
            let v = f.temp();
            f.load(v, c, VALS_OFF);
            f.store(k, c, KEYS_OFF + 1);
            f.store(v, c, VALS_OFF + 1);
        });
        let c2 = f.temp();
        f.add(c2, leaf, ins);
        f.store(key, c2, KEYS_OFF);
        f.store(val, c2, VALS_OFF);
        f.add(n, n, one);
        f.store(n, leaf, 0);
        // Keep the directory's min key a true lower bound.
        let min = f.temp();
        f.load(min, slot, 0);
        let lt = f.temp();
        f.cmp(CmpOp::Lt, lt, key, min);
        let delta = f.temp();
        f.sub(delta, key, min);
        f.mul(delta, delta, lt);
        f.add(min, min, delta);
        f.store(min, slot, 0);
        f.jmp(out);

        f.switch_to(out);
        f.ret(None);
    }
    {
        // bt_get: sum of vals at exact matches in the key's leaf (0 or one
        // match since keys are unique).
        let mut f = p.function(get);
        let tree = f.param(0);
        let key = f.param(1);
        let idx = f.temp();
        f.call(Some(idx), find, &[tree, key]);
        let dir = f.temp();
        f.load(dir, tree, 0);
        let slot = f.temp();
        f.add(slot, idx, idx);
        f.add(slot, dir, slot);
        let leaf = f.temp();
        f.load(leaf, slot, 1);
        let n = f.temp();
        f.load(n, leaf, 0);
        let acc = f.const_temp(0);
        f.for_range(n, |f, j| {
            let c = f.temp();
            f.add(c, leaf, j);
            let k = f.temp();
            f.load(k, c, KEYS_OFF);
            let hit = f.temp();
            f.cmp(CmpOp::Eq, hit, k, key);
            let v = f.temp();
            f.load(v, c, VALS_OFF);
            f.mul(v, v, hit);
            f.add(acc, acc, v);
        });
        f.ret(Some(acc));
    }
    {
        // bt_delete: remove the key from its leaf by shifting left. Lazy —
        // leaves are never merged and may go empty, like real engines
        // deferring compaction.
        let mut f = p.function(delete);
        let tree = f.param(0);
        let key = f.param(1);
        let idx = f.temp();
        f.call(Some(idx), find, &[tree, key]);
        let dir = f.temp();
        f.load(dir, tree, 0);
        let slot = f.temp();
        f.add(slot, idx, idx);
        f.add(slot, dir, slot);
        let leaf = f.temp();
        f.load(leaf, slot, 1);
        let n = f.temp();
        f.load(n, leaf, 0);
        let pos = f.temp();
        f.mov(pos, n);
        f.for_range(n, |f, j| {
            let c = f.temp();
            f.add(c, leaf, j);
            let k = f.temp();
            f.load(k, c, KEYS_OFF);
            let hit = f.temp();
            f.cmp(CmpOp::Eq, hit, k, key);
            let first = f.temp();
            f.cmp(CmpOp::Eq, first, pos, n);
            f.mul(hit, hit, first);
            let delta = f.temp();
            f.sub(delta, j, pos);
            f.mul(delta, delta, hit);
            f.add(pos, pos, delta);
        });
        let found = f.temp();
        f.cmp(CmpOp::Lt, found, pos, n);
        let remove = f.new_block();
        let out = f.new_block();
        f.br(found, remove, out);

        f.switch_to(remove);
        let shift = f.temp();
        f.sub(shift, n, pos);
        let one = f.const_temp(1);
        f.sub(shift, shift, one);
        f.for_range(shift, |f, j| {
            let s = f.temp();
            f.add(s, pos, j);
            let c = f.temp();
            f.add(c, leaf, s);
            let k = f.temp();
            f.load(k, c, KEYS_OFF + 1);
            let v = f.temp();
            f.load(v, c, VALS_OFF + 1);
            f.store(k, c, KEYS_OFF);
            f.store(v, c, VALS_OFF);
        });
        f.sub(n, n, one);
        f.store(n, leaf, 0);
        f.jmp(out);

        f.switch_to(out);
        f.ret(None);
    }
    {
        // bt_scan: walk the leaf chain from the leftmost leaf, summing
        // every stored value — the range-scan cost of the whole store.
        let mut f = p.function(scan);
        let tree = f.param(0);
        let dir = f.temp();
        f.load(dir, tree, 0);
        let cur = f.temp();
        f.load(cur, dir, 1);
        let acc = f.const_temp(0);
        let zero = f.const_temp(0);
        f.loop_while(cur, |f, cur| {
            let n = f.temp();
            f.load(n, cur, 0);
            f.for_range(n, |f, j| {
                let c = f.temp();
                f.add(c, cur, j);
                let v = f.temp();
                f.load(v, c, VALS_OFF);
                f.add(acc, acc, v);
            });
            let next = f.temp();
            f.load(next, cur, 1);
            f.mov(cur, next);
            let more = f.temp();
            f.cmp(CmpOp::Ne, more, cur, zero);
            more
        });
        f.ret(Some(acc));
    }
    {
        // client_session(idx, tree, ops, keyspace): replay an op stream
        // pulled from the client's own connection device (fd = idx) against
        // the shared tree, one latch hold per op.
        let mut f = p.function(client);
        let idx = f.param(0);
        let tree = f.param(1);
        let ops = f.param(2);
        let ks = f.param(3);
        let buf = f.temp();
        f.alloc(buf, ops);
        let got = f.temp();
        f.sys_read(got, idx, buf, ops);
        let lock = f.const_temp(LOCK_TREE);
        let four = f.const_temp(4);
        let acc = f.const_temp(0);
        f.for_range(ops, |f, j| {
            let cell = f.temp();
            f.add(cell, buf, j);
            let v = f.temp();
            f.load(v, cell, 0);
            let kind = f.temp();
            f.rem(kind, v, four);
            let key = f.temp();
            f.div(key, v, four);
            f.rem(key, key, ks);
            f.acquire(lock);
            let one = f.const_temp(1);
            let two = f.const_temp(2);
            let is_write = f.temp();
            f.cmp(CmpOp::Le, is_write, kind, one);
            let wbb = f.new_block();
            let robb = f.new_block();
            let getbb = f.new_block();
            let delbb = f.new_block();
            let done = f.new_block();
            f.br(is_write, wbb, robb);

            f.switch_to(wbb);
            let val = f.temp();
            f.add(val, key, key);
            f.add_imm(val, val, 1); // value_of(key)
            f.call(None, insert, &[tree, key, val]);
            f.jmp(done);

            f.switch_to(robb);
            let is_get = f.temp();
            f.cmp(CmpOp::Eq, is_get, kind, two);
            f.br(is_get, getbb, delbb);

            f.switch_to(getbb);
            let r = f.temp();
            f.call(Some(r), get, &[tree, key]);
            f.add(acc, acc, r);
            f.jmp(done);

            f.switch_to(delbb);
            f.call(None, delete, &[tree, key]);
            f.jmp(done);

            f.switch_to(done);
            f.release(lock);
        });
        f.ret(Some(acc));
    }
    {
        let mut f = p.function(main);
        // Bootstrap: directory with one empty leaf covering all keys >= 0.
        let two = f.const_temp(2);
        let tree = f.temp();
        f.alloc(tree, two);
        let cap = f.const_temp(dir_cap);
        let dir = f.temp();
        f.alloc(dir, cap);
        let cells = f.const_temp(LEAF_CELLS);
        let leaf0 = f.temp();
        f.alloc(leaf0, cells);
        let zero = f.const_temp(0);
        f.store(zero, leaf0, 0);
        f.store(zero, leaf0, 1);
        f.store(zero, dir, 0);
        f.store(leaf0, dir, 1);
        f.store(dir, tree, 0);
        let one = f.const_temp(1);
        f.store(one, tree, 1);
        // Preload a deterministic key set before any client starts.
        let preload_r = f.const_temp(preload);
        let ks = f.const_temp(keyspace);
        let seven = f.const_temp(7);
        let three = f.const_temp(3);
        f.for_range(preload_r, |f, i| {
            let key = f.temp();
            f.mul(key, i, seven);
            f.add(key, key, three);
            f.rem(key, key, ks);
            let val = f.temp();
            f.add(val, key, key);
            f.add_imm(val, val, 1);
            f.call(None, insert, &[tree, key, val]);
        });
        // Concurrent client sessions.
        let clients_r = f.const_temp(clients);
        let ops_r = f.const_temp(ops);
        let handles = emit_spawn_workers(&mut f, client, clients_r, &[tree, ops_r, ks]);
        emit_join_all(&mut f, handles, clients_r);
        // Final full-range scan is the exit value (checked against a
        // host-side BTreeMap mirror in the single-client test).
        let sum = f.temp();
        f.call(Some(sum), scan, &[tree]);
        f.ret(Some(sum));
    }

    let mut m = Machine::new(p.build().expect("valid kvstore program"))
        .with_config(MachineConfig { quantum: 16, ..MachineConfig::default() });
    for c in 0..clients {
        m.add_device(Box::new(SyntheticSource::new(
            client_seed(params.seed, c as u64),
            ops as u64,
        )));
    }
    m
}

/// The device seed for client `c` (shared with the test mirror).
pub fn client_seed(seed: u64, c: u64) -> u64 {
    (seed ^ (c << 32)) | 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_core::{InputPolicy, TrmsProfiler};
    use std::collections::BTreeMap;

    fn run(params: &WorkloadParams) -> i64 {
        let wl = crate::by_name("kvstore").unwrap();
        let mut m = wl.build(params);
        m.run_native().expect("kvstore run").exit_value.expect("scan sum")
    }

    /// Single-client run against a host BTreeMap mirror: the guest's final
    /// leaf-chain scan must equal the mirror's value sum exactly.
    #[test]
    fn kvstore_matches_reference_btreemap() {
        let params = WorkloadParams { size: 64, threads: 1, seed: 0xBEE5 };
        let keyspace = (2 * params.size as i64).max(8);
        let mut mirror: BTreeMap<i64, i64> = BTreeMap::new();
        for i in 0..params.size as i64 {
            let key = (i * 7 + 3) % keyspace;
            mirror.insert(key, value_of(key));
        }
        for (kind, key) in mirror_stream(client_seed(params.seed, 0), params.size, keyspace)
        {
            match kind {
                0 | 1 => {
                    mirror.insert(key, value_of(key));
                }
                2 => {}
                _ => {
                    mirror.remove(&key);
                }
            }
        }
        let expected: i64 = mirror.values().sum();
        assert_eq!(run(&params), expected, "guest tree diverged from BTreeMap mirror");
    }

    /// Splits must actually happen at test sizes, or the tree code is
    /// untested: the preload alone stores `size` unique-ish keys in
    /// fanout-4 leaves.
    #[test]
    fn kvstore_exercises_splits() {
        let wl = crate::by_name("kvstore").unwrap();
        let mut m = wl.build(&WorkloadParams { size: 48, threads: 2, seed: 11 });
        let names = m.program().routines().clone();
        let mut prof = TrmsProfiler::with_policy(InputPolicy::full());
        m.run_with(&mut prof).expect("kvstore run");
        let rep = prof.into_report(&names);
        let sp = rep.routine_by_name("bt_split").expect("bt_split profiled");
        assert!(sp.merged.calls > 4, "only {} splits at size 48", sp.merged.calls);
        // bt_find_leaf sees a growing directory: many distinct rms values.
        let fl = rep.routine_by_name("bt_find_leaf").unwrap();
        assert!(fl.distinct_rms() >= 4, "directory never grew");
    }

    /// Concurrent runs are deterministic and survive a bigger pool.
    #[test]
    fn kvstore_is_deterministic_under_concurrency() {
        let params = WorkloadParams { size: 32, threads: 4, seed: 9 };
        assert_eq!(run(&params), run(&params));
    }
}
