//! `webserv`: a request/worker-pool server guest at high thread counts.
//!
//! The production pattern behind classic threaded servers (Apache's worker
//! MPM, a JDBC connection pool): an accept loop pushes request descriptors
//! into a bounded queue; a large worker pool competes for them, reads each
//! request body off its own connection, renders a response and writes it
//! out; a latched counter aggregates bytes served. The pool is deliberately
//! oversized relative to `threads` (4x, minimum 4) — the point of the
//! workload is scheduler pressure: many more runnable threads than the
//! paper's other analogs, with all the queue hand-off patterns that
//! implies.
//!
//! Total bytes served depends only on the accept stream, never on which
//! worker won a request, so the exit value is pool-size invariant — the
//! module's own correctness check.

use crate::helpers::{emit_join_all, emit_spawn_workers};
use crate::{Family, Workload, WorkloadParams};
use aprof_vm::builder::ProgramBuilder;
use aprof_vm::device::{SinkDevice, SyntheticSource};
use aprof_vm::ir::CmpOp;
use aprof_vm::{Machine, MachineConfig};

/// Registry entries for this module.
pub fn workloads() -> Vec<Workload> {
    vec![Workload {
        name: "webserv",
        family: Family::Service,
        description: "accept loop + oversized worker pool over a bounded \
                      request queue; per-request read/render/write",
        build: webserv,
    }]
}

/// Bounded request-queue capacity.
const QUEUE: i64 = 8;
/// Upper bound on request-body cells.
const MAXREQ: i64 = 12;

const Q_FREE: i64 = 50;
const Q_USED: i64 = 51;
const L_QUEUE: i64 = 52;
const L_STATS: i64 = 53;

// ctx layout: [0]=queue [1]=N [2]=tail [3]=bytes-served
const CTX_CELLS: i64 = 4;

/// Worker pool size for a given `threads` knob.
pub fn pool_size(threads: u32) -> i64 {
    (i64::from(threads) * 4).max(4)
}

fn webserv(params: &WorkloadParams) -> Machine {
    let requests = (params.size as i64).max(1);
    let workers = pool_size(params.threads);

    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let accept = p.declare("accept_loop", 1); // (ctx)
    let worker = p.declare("worker_loop", 2); // (idx, ctx)
    let handle = p.declare("handle_request", 4); // (fd, r, inbuf, outbuf) -> bytes

    {
        // accept_loop: single producer. One descriptor cell per request
        // from the listening socket (fd 0) sizes the request; the bounded
        // queue applies back-pressure via the space semaphore.
        let mut f = p.function(accept);
        let ctx = f.param(0);
        let queue = f.temp();
        f.load(queue, ctx, 0);
        let n = f.temp();
        f.load(n, ctx, 1);
        let fd = f.const_temp(0);
        let one = f.const_temp(1);
        let maxreq = f.const_temp(MAXREQ - 1);
        let q_sz = f.const_temp(QUEUE);
        let free = f.const_temp(Q_FREE);
        let used = f.const_temp(Q_USED);
        let desc = f.temp();
        f.alloc(desc, one);
        f.for_range(n, |f, i| {
            let got = f.temp();
            f.sys_read(got, fd, desc, one);
            let raw = f.temp();
            f.load(raw, desc, 0);
            let r = f.temp();
            f.rem(r, raw, maxreq);
            f.add(r, r, one);
            f.sem_wait(free);
            let slot = f.temp();
            f.rem(slot, i, q_sz);
            let cell = f.temp();
            f.add(cell, queue, slot);
            f.store(r, cell, 0);
            f.sem_post(used);
        });
        f.ret(None);
    }
    {
        // handle_request(fd, r, inbuf, outbuf) -> r: read the body off the
        // worker's connection, render a response with superlinear
        // per-request compute (template expansion is O(r^2) register
        // work), write it back.
        let mut f = p.function(handle);
        let fd = f.param(0);
        let r = f.param(1);
        let inbuf = f.param(2);
        let outbuf = f.param(3);
        let got = f.temp();
        f.sys_read(got, fd, inbuf, r);
        let acc = f.const_temp(0);
        f.for_range(r, |f, j| {
            let c = f.temp();
            f.add(c, inbuf, j);
            let v = f.temp();
            f.load(v, c, 0);
            f.add(acc, acc, v);
            // Template expansion: revisit every earlier cell.
            f.for_range(j, |f, k| {
                let e = f.temp();
                f.add(e, inbuf, k);
                let w = f.temp();
                f.load(w, e, 0);
                f.add(acc, acc, w);
            });
            let o = f.temp();
            f.add(o, outbuf, j);
            f.store(acc, o, 0);
        });
        let sink = f.const_temp(1);
        let wrote = f.temp();
        f.sys_write(wrote, sink, outbuf, r);
        f.ret(Some(r));
    }
    {
        // worker_loop(idx, ctx): claim requests until the accept count is
        // exhausted. The item wait happens while holding the queue latch —
        // safe because only the accept loop posts items and it never takes
        // the latch — so claim order equals consumption order and the slot
        // read is race-free.
        let mut f = p.function(worker);
        let idx = f.param(0);
        let ctx = f.param(1);
        let queue = f.temp();
        f.load(queue, ctx, 0);
        let n = f.temp();
        f.load(n, ctx, 1);
        let fd = f.temp();
        f.add_imm(fd, idx, 2); // fds: 0 listener, 1 sink, 2.. connections
        let one = f.const_temp(1);
        let q_sz = f.const_temp(QUEUE);
        let l_q = f.const_temp(L_QUEUE);
        let l_s = f.const_temp(L_STATS);
        let free = f.const_temp(Q_FREE);
        let used = f.const_temp(Q_USED);
        let cap = f.const_temp(MAXREQ);
        let inbuf = f.temp();
        f.alloc(inbuf, cap);
        let outbuf = f.temp();
        f.alloc(outbuf, cap);

        let head = f.new_block();
        let claim = f.new_block();
        let done = f.new_block();
        f.jmp(head);

        f.switch_to(head);
        f.acquire(l_q);
        let t = f.temp();
        f.load(t, ctx, 2);
        let more = f.temp();
        f.cmp(CmpOp::Lt, more, t, n);
        f.br(more, claim, done);

        f.switch_to(claim);
        f.sem_wait(used);
        let t1 = f.temp();
        f.add(t1, t, one);
        f.store(t1, ctx, 2);
        let slot = f.temp();
        f.rem(slot, t, q_sz);
        let cell = f.temp();
        f.add(cell, queue, slot);
        let r = f.temp();
        f.load(r, cell, 0);
        f.release(l_q);
        f.sem_post(free);
        let served = f.temp();
        f.call(Some(served), handle, &[fd, r, inbuf, outbuf]);
        f.acquire(l_s);
        let total = f.temp();
        f.load(total, ctx, 3);
        f.add(total, total, served);
        f.store(total, ctx, 3);
        f.release(l_s);
        f.jmp(head);

        f.switch_to(done);
        f.release(l_q);
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let ctx_sz = f.const_temp(CTX_CELLS);
        let ctx = f.temp();
        f.alloc(ctx, ctx_sz);
        let q_sz = f.const_temp(QUEUE);
        let queue = f.temp();
        f.alloc(queue, q_sz);
        f.store(queue, ctx, 0);
        let n = f.const_temp(requests);
        f.store(n, ctx, 1);
        let zero = f.const_temp(0);
        f.store(zero, ctx, 2);
        f.store(zero, ctx, 3);
        let free = f.const_temp(Q_FREE);
        f.sem_init(free, q_sz);
        let used = f.const_temp(Q_USED);
        f.sem_init(used, zero);
        let ha = f.temp();
        f.spawn(ha, accept, &[ctx]);
        let pool = f.const_temp(workers);
        let handles = emit_spawn_workers(&mut f, worker, pool, &[ctx]);
        f.join(ha);
        emit_join_all(&mut f, handles, pool);
        let total = f.temp();
        f.load(total, ctx, 3);
        f.ret(Some(total));
    }

    let mut m = Machine::new(p.build().expect("valid webserv program"))
        .with_config(MachineConfig { quantum: 8, ..MachineConfig::default() });
    // fd 0: listening socket (one descriptor per request).
    m.add_device(Box::new(SyntheticSource::new(params.seed | 1, requests as u64)));
    // fd 1: response sink.
    m.add_device(Box::new(SinkDevice::new()));
    // fds 2..: per-worker connections, sized for the worst case where one
    // worker serves every request.
    for w in 0..workers {
        m.add_device(Box::new(SyntheticSource::new(
            (params.seed ^ ((w as u64) << 24)) | 1,
            (requests * MAXREQ) as u64,
        )));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_core::{InputPolicy, TrmsProfiler};

    fn run(params: &WorkloadParams) -> i64 {
        let wl = crate::by_name("webserv").unwrap();
        let mut m = wl.build(params);
        m.run_native().expect("webserv run").exit_value.expect("bytes served")
    }

    /// Request sizes come only from the accept stream, so total bytes
    /// served must not depend on the pool size.
    #[test]
    fn bytes_served_are_pool_invariant() {
        let reference = run(&WorkloadParams { size: 40, threads: 1, seed: 0x5e0 });
        assert!(reference > 0, "server served nothing");
        for threads in [2, 4, 8] {
            let got = run(&WorkloadParams { size: 40, threads, seed: 0x5e0 });
            assert_eq!(got, reference, "pool for threads={threads} changed bytes served");
        }
    }

    /// Bytes served equal the host-side decode of the accept stream.
    #[test]
    fn bytes_served_match_accept_stream() {
        let params = WorkloadParams { size: 48, threads: 2, seed: 0xACC };
        let mut state: u64 = params.seed | 1;
        let expected: i64 = (0..params.size)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 16) as i64) % (MAXREQ - 1) + 1
            })
            .sum();
        assert_eq!(run(&params), expected);
    }

    /// Every request is handled exactly once, across a big pool.
    #[test]
    fn each_request_handled_once() {
        let params = WorkloadParams { size: 32, threads: 4, seed: 21 };
        let wl = crate::by_name("webserv").unwrap();
        let mut m = wl.build(&params);
        let names = m.program().routines().clone();
        let mut prof = TrmsProfiler::with_policy(InputPolicy::full());
        m.run_with(&mut prof).expect("webserv run");
        let rep = prof.into_report(&names);
        let h = rep.routine_by_name("handle_request").unwrap();
        assert_eq!(h.merged.calls, params.size, "requests handled != accepted");
        let w = rep.routine_by_name("worker_loop").unwrap();
        assert_eq!(w.merged.calls, pool_size(params.threads) as u64, "pool size wrong");
    }
}
