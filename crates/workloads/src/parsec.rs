//! PARSEC 2.1 analogs: pipeline-parallel applications.

use crate::helpers::{emit_join_all, emit_spawn_workers};
use crate::{Family, Workload, WorkloadParams};
use aprof_vm::builder::ProgramBuilder;
use aprof_vm::device::{SinkDevice, SyntheticSource};
use aprof_vm::ir::CmpOp;
use aprof_vm::{Machine, MachineConfig};

/// Registry entries for this module.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "vips",
            family: Family::Parsec,
            description: "image pipeline: im_generate consumes filler tiles, \
                          wbuffer_write_thread streams batches to disk",
            build: vips,
        },
        Workload {
            name: "dedup",
            family: Family::Parsec,
            description: "chunk → hash → compress → write pipeline over semaphore queues",
            build: dedup,
        },
        Workload {
            name: "fluidanimate",
            family: Family::Parsec,
            description: "lock-protected grid updates with neighbour reads",
            build: fluidanimate,
        },
    ]
}

const SEM_GO: i64 = 10;
const SEM_DONE: i64 = 11;
const SEM_WFULL: i64 = 12;
const SEM_WFREE: i64 = 13;
const SEM_STOP_ACK: i64 = 14;

const TILE: i64 = 16;
const WBUF: i64 = 64;
const CONTROL: i64 = 67; // the Fig. 7 rms plateau

/// The vips analog.
///
/// Three threads cooperate on a sequence of images of growing size `s`:
///
/// * the main thread runs `im_generate(s)` per image: `s / TILE` rounds of
///   a handshake with the *filler* thread, each reading the reused
///   tile buffer the filler just rewrote (thread-induced input, Fig. 5) and
///   forwarding pixels into the shared write buffer;
/// * the *filler* thread plays the upstream pipeline stages, rewriting the
///   tile every round;
/// * the *write-buffer* thread runs one `wbuffer_write_thread` activation
///   per full buffer: it reads a fixed block of control state (the
///   rms plateau of Fig. 7a), polls an ack device a data-dependent number
///   of times through a reused 2-cell buffer (external input, Fig. 7b) and
///   streams the buffer to disk (kernel reads of worker-written cells:
///   thread input, Fig. 7c).
fn vips(params: &WorkloadParams) -> Machine {
    let images = (params.size as i64 / 8).clamp(3, 40);
    let step = TILE * 2;
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let im_generate = p.declare("im_generate", 3); // (size, tile, wstate)
    let filler = p.declare("filler", 2); // (tile, rounds)
    let wbuffer_loop = p.declare("wbuffer_loop", 2); // (wstate, batches)
    let wbuffer_write = p.declare("wbuffer_write_thread", 2); // (wstate, half_base)
    // wstate layout: [0 .. 2*WBUF) double write buffer,
    // [2*WBUF .. 2*WBUF+CONTROL) control block (cell 0 doubles as the
    // progress counter main bumps per pixel), [2*WBUF+CONTROL] fill cursor.
    const CTRL_BASE: i64 = 2 * WBUF;
    const CURSOR: i64 = CTRL_BASE + CONTROL;
    {
        let mut f = p.function(filler);
        let tile = f.param(0);
        let rounds = f.param(1);
        let go = f.const_temp(SEM_GO);
        let done = f.const_temp(SEM_DONE);
        let tlen = f.const_temp(TILE);
        f.for_range(rounds, |f, r| {
            f.sem_wait(go);
            f.for_range(tlen, |f, i| {
                let v = f.temp();
                f.add(v, r, i);
                let addr = f.temp();
                f.add(addr, tile, i);
                f.store(v, addr, 0);
            });
            f.sem_post(done);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(im_generate);
        let size = f.param(0);
        let tile = f.param(1);
        let wstate = f.param(2);
        let go = f.const_temp(SEM_GO);
        let done = f.const_temp(SEM_DONE);
        let tlen = f.const_temp(TILE);
        let wlen = f.const_temp(WBUF);
        let wfull = f.const_temp(SEM_WFULL);
        let wrap = f.const_temp(2 * WBUF);
        let wfree = f.const_temp(SEM_WFREE);
        let rounds = f.temp();
        f.div(rounds, size, tlen);
        let cursor_slot = f.const_temp(CURSOR);
        // Image metadata header in the shared control block.
        let eight = f.const_temp(8);
        f.for_range(eight, |f, j| {
            let addr = f.temp();
            f.add(addr, wstate, j);
            f.add_imm(addr, addr, CTRL_BASE + 32);
            let v = f.temp();
            f.add(v, size, j);
            f.store(v, addr, 0);
        });
        f.for_range(rounds, |f, _round| {
            f.sem_post(go);
            f.sem_wait(done);
            // Read the tile the filler rewrote (thread-induced) and push
            // its pixels into the current write-buffer half.
            f.for_range(tlen, |f, i| {
                let addr = f.temp();
                f.add(addr, tile, i);
                let v = f.temp();
                f.load(v, addr, 0);
                let cslot = f.temp();
                f.add(cslot, wstate, cursor_slot);
                let cur = f.temp();
                f.load(cur, cslot, 0);
                let out = f.temp();
                f.add(out, wstate, cur);
                f.store(v, out, 0);
                // Progress counter: one store per pixel, visible to the
                // write-buffer thread's polling loop.
                let prog = f.temp();
                f.const_(prog, CTRL_BASE);
                let paddr = f.temp();
                f.add(paddr, wstate, prog);
                f.store(cur, paddr, 0);
                f.add_imm(cur, cur, 1);
                // Half boundary: publish the full half, acquire the next.
                let half_pos = f.temp();
                f.rem(half_pos, cur, wlen);
                let zero = f.const_temp(0);
                let boundary = f.temp();
                f.cmp(CmpOp::Eq, boundary, half_pos, zero);
                let flush_bb = f.new_block();
                let keep_bb = f.new_block();
                let cont_bb = f.new_block();
                f.br(boundary, flush_bb, keep_bb);
                f.switch_to(flush_bb);
                let wrapped = f.temp();
                f.rem(wrapped, cur, wrap);
                f.store(wrapped, cslot, 0);
                f.sem_post(wfull);
                f.sem_wait(wfree);
                f.jmp(cont_bb);
                f.switch_to(keep_bb);
                f.store(cur, cslot, 0);
                f.jmp(cont_bb);
                f.switch_to(cont_bb);
            });
        });
        f.ret(None);
    }
    {
        let mut f = p.function(wbuffer_write);
        let wstate = f.param(0);
        let half_base = f.param(1);
        let control_len = f.const_temp(CONTROL);
        let acc = f.const_temp(0);
        // Read the control block (fixed size: the rms plateau).
        f.for_range(control_len, |f, i| {
            let addr = f.temp();
            f.add(addr, wstate, i);
            f.add_imm(addr, addr, CTRL_BASE);
            let v = f.temp();
            f.load(v, addr, 0);
            f.add(acc, acc, v);
        });
        // Poll the ack device a data-dependent number of times through a
        // reused 2-cell buffer (external input), and between polls re-read
        // the progress counter, which the concurrently running main thread
        // keeps bumping (thread input).
        let ackfd = f.const_temp(1);
        let two = f.const_temp(2);
        let ackbuf = f.temp();
        f.alloc(ackbuf, two);
        let got = f.temp();
        f.sys_read(got, ackfd, ackbuf, two);
        let lat = f.temp();
        f.load(lat, ackbuf, 0);
        let sixteen = f.const_temp(16);
        f.rem(lat, lat, sixteen);
        let zero = f.const_temp(0);
        let neg = f.temp();
        f.cmp(CmpOp::Lt, neg, lat, zero);
        f.mul(neg, neg, sixteen);
        f.sub(lat, lat, neg); // |lat| in 0..16
        let cb = f.temp();
        f.const_(cb, CTRL_BASE);
        let paddr = f.temp();
        f.add(paddr, wstate, cb);
        f.for_range(lat, |f, _| {
            let g = f.temp();
            f.sys_read(g, ackfd, ackbuf, two);
            let v = f.temp();
            f.load(v, ackbuf, 0);
            f.add(acc, acc, v);
            // A polling loop yields between probes, so the progress cell is
            // typically rewritten by main in between (thread input).
            f.yield_();
            let pv = f.temp();
            f.load(pv, paddr, 0);
            f.add(acc, acc, pv);
        });
        // Stream the half to disk: the kernel reads worker-written cells.
        let outfd = f.const_temp(0);
        let wlen = f.const_temp(WBUF);
        let written = f.temp();
        let src = f.temp();
        f.add(src, wstate, half_base);
        f.sys_write(written, outfd, src, wlen);
        f.ret(Some(acc));
    }
    {
        let mut f = p.function(wbuffer_loop);
        let wstate = f.param(0);
        let batches = f.param(1);
        let wfull = f.const_temp(SEM_WFULL);
        let wfree = f.const_temp(SEM_WFREE);
        let two = f.const_temp(2);
        let wlen = f.const_temp(WBUF);
        f.for_range(batches, |f, b| {
            f.sem_wait(wfull);
            let half = f.temp();
            f.rem(half, b, two);
            f.mul(half, half, wlen);
            let r = f.temp();
            f.call(Some(r), wbuffer_write, &[wstate, half]);
            f.sem_post(wfree);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let _zero = f.const_temp(0);
        let one = f.const_temp(1);
        for (key, init) in
            [(SEM_GO, 0i64), (SEM_DONE, 0), (SEM_WFULL, 0), (SEM_WFREE, 1)]
        {
            let k = f.const_temp(key);
            let v = f.const_temp(init);
            f.sem_init(k, v);
        }
        let tlen = f.const_temp(TILE);
        let tile = f.temp();
        f.alloc(tile, tlen);
        let wsize = f.const_temp(CURSOR + 1);
        let wstate = f.temp();
        f.alloc(wstate, wsize);
        crate::helpers::emit_fill(&mut f, wstate, wsize, 9);
        // The fill cursor (last cell) must start at zero.
        let zero2 = f.const_temp(0);
        f.store(zero2, wstate, CURSOR);
        // Total tile rounds and write batches, computed up front so helper
        // threads terminate deterministically.
        let images_r = f.const_temp(images);
        let step_r = f.const_temp(step);
        let total_rounds = f.const_temp(0);
        f.for_range(images_r, |f, k| {
            let k1 = f.temp();
            f.add(k1, k, one);
            let s = f.temp();
            f.mul(s, k1, step_r);
            let r = f.temp();
            f.div(r, s, tlen);
            f.add(total_rounds, total_rounds, r);
        });
        let pixels = f.temp();
        f.mul(pixels, total_rounds, tlen);
        let wlen = f.const_temp(WBUF);
        let batches = f.temp();
        f.div(batches, pixels, wlen);
        let hf = f.temp();
        f.spawn(hf, filler, &[tile, total_rounds]);
        let hw = f.temp();
        f.spawn(hw, wbuffer_loop, &[wstate, batches]);
        f.for_range(images_r, |f, k| {
            let k1 = f.temp();
            f.add(k1, k, one);
            let s = f.temp();
            f.mul(s, k1, step_r);
            f.call(None, im_generate, &[s, tile, wstate]);
        });
        f.join(hf);
        f.join(hw);
        f.ret(Some(images_r));
    }
    let mut m = Machine::new(p.build().expect("valid vips program"))
        .with_config(MachineConfig { quantum: 24, ..MachineConfig::default() });
    m.add_device(Box::new(SinkDevice::new())); // fd 0: output "disk"
    m.add_device(Box::new(SyntheticSource::new(params.seed, u64::MAX / 2))); // fd 1: ack stream
    m
}

/// The dedup analog: a three-stage pipeline over one-slot semaphore queues.
/// `chunk_stream` reads input blocks from a device (external input),
/// `compress_chunk` re-reads the shared chunk slot (thread-induced) and
/// deduplicates against a hash table, `write_output` streams unique chunks
/// to disk.
fn dedup(params: &WorkloadParams) -> Machine {
    let chunks = (params.size as i64).clamp(4, 512);
    const CHUNK: i64 = 8;
    const Q1_FULL: i64 = 20;
    const Q1_FREE: i64 = 21;
    const Q2_FULL: i64 = 22;
    const Q2_FREE: i64 = 23;
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let chunker = p.declare("chunk_stream", 3); // (slot1, n, fd)
    let compressor = p.declare("compress_chunk", 4); // (slot1, slot2, table, n)
    let writer = p.declare("write_output", 3); // (slot2, n, fd)
    {
        let mut f = p.function(chunker);
        let slot = f.param(0);
        let n = f.param(1);
        let fd = f.param(2);
        let clen = f.const_temp(CHUNK);
        let q_full = f.const_temp(Q1_FULL);
        let q_free = f.const_temp(Q1_FREE);
        f.for_range(n, |f, _| {
            f.sem_wait(q_free);
            let got = f.temp();
            f.sys_read(got, fd, slot, clen); // kernel fills the reused slot
            f.sem_post(q_full);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(compressor);
        let slot1 = f.param(0);
        let slot2 = f.param(1);
        let table = f.param(2);
        let n = f.param(3);
        let clen = f.const_temp(CHUNK);
        let q1_full = f.const_temp(Q1_FULL);
        let q1_free = f.const_temp(Q1_FREE);
        let q2_full = f.const_temp(Q2_FULL);
        let q2_free = f.const_temp(Q2_FREE);
        let tsize = f.const_temp(64);
        f.for_range(n, |f, _| {
            f.sem_wait(q1_full);
            // Hash the chunk (rereads the slot the kernel refilled).
            let h = f.const_temp(0);
            f.for_range(clen, |f, i| {
                let addr = f.temp();
                f.add(addr, slot1, i);
                let v = f.temp();
                f.load(v, addr, 0);
                let three = f.const_temp(3);
                f.mul(h, h, three);
                f.add(h, h, v);
            });
            f.sem_post(q1_free);
            // Dedup table probe + insert.
            f.rem(h, h, tsize);
            let zero = f.const_temp(0);
            let neg = f.temp();
            f.cmp(CmpOp::Lt, neg, h, zero);
            f.mul(neg, neg, tsize);
            f.sub(h, h, neg);
            let taddr = f.temp();
            f.add(taddr, table, h);
            let seen = f.temp();
            f.load(seen, taddr, 0);
            let one = f.const_temp(1);
            f.store(one, taddr, 0);
            // Forward (possibly compressed) chunk to the writer.
            f.sem_wait(q2_free);
            f.store(seen, slot2, 0);
            f.sem_post(q2_full);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(writer);
        let slot2 = f.param(0);
        let n = f.param(1);
        let fd = f.param(2);
        let one = f.const_temp(1);
        let q2_full = f.const_temp(Q2_FULL);
        let q2_free = f.const_temp(Q2_FREE);
        f.for_range(n, |f, _| {
            f.sem_wait(q2_full);
            let w = f.temp();
            f.sys_write(w, fd, slot2, one); // kernel reads the shared slot
            f.sem_post(q2_free);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let zero = f.const_temp(0);
        let one = f.const_temp(1);
        for (key, init) in [(Q1_FULL, 0), (Q1_FREE, 1), (Q2_FULL, 0), (Q2_FREE, 1)] {
            let k = f.const_temp(key);
            let v = if init == 0 { zero } else { one };
            f.sem_init(k, v);
        }
        let clen = f.const_temp(CHUNK);
        let slot1 = f.temp();
        f.alloc(slot1, clen);
        let slot2 = f.temp();
        f.alloc(slot2, one);
        let tsize = f.const_temp(64);
        let table = f.temp();
        f.alloc(table, tsize);
        let n = f.const_temp(chunks);
        let infd = f.const_temp(0);
        let outfd = f.const_temp(1);
        let h1 = f.temp();
        f.spawn(h1, chunker, &[slot1, n, infd]);
        let h2 = f.temp();
        f.spawn(h2, compressor, &[slot1, slot2, table, n]);
        let h3 = f.temp();
        f.spawn(h3, writer, &[slot2, n, outfd]);
        f.join(h1);
        f.join(h2);
        f.join(h3);
        f.ret(Some(n));
    }
    let mut m = Machine::new(p.build().expect("valid dedup program"))
        .with_config(MachineConfig { quantum: 16, ..MachineConfig::default() });
    m.add_device(Box::new(SyntheticSource::new(params.seed, (chunks * CHUNK) as u64)));
    m.add_device(Box::new(SinkDevice::new()));
    m
}

/// The fluidanimate analog: workers own grid bands and, each timestep,
/// update their cells from lock-protected reads of both neighbouring bands
/// (rewritten by other workers: thread-induced input).
fn fluidanimate(params: &WorkloadParams) -> Machine {
    let n = (params.size as i64).max(4 * params.threads as i64);
    let t = params.threads.max(1) as i64;
    let iters = 3i64;
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let worker = p.declare("worker", 5); // (idx, grid, n, t, iters)
    let barrier = crate::helpers::add_barrier(&mut p);
    {
        let mut f = p.function(worker);
        let idx = f.param(0);
        let grid = f.param(1);
        let n = f.param(2);
        let t = f.param(3);
        let iters = f.param(4);
        let block = f.temp();
        f.div(block, n, t);
        let base = f.temp();
        f.mul(base, idx, block);
        let lock_base = f.const_temp(200);
        let one = f.const_temp(1);
        let count_addr = f.const_temp(60); // static barrier counter cell
        let sem = f.const_temp(SEM_STOP_ACK);
        let lock_self = f.temp();
        f.add(lock_self, lock_base, idx);
        let right = f.temp();
        f.add(right, idx, one);
        f.rem(right, right, t);
        let lock_right = f.temp();
        f.add(lock_right, lock_base, right);
        f.for_range(iters, |f, _| {
            // Read the right neighbour's band under its lock.
            // Lock ordering by key avoids deadlock.
            let first = f.temp();
            f.bin(aprof_vm::ir::BinOp::Min, first, lock_self, lock_right);
            let second = f.temp();
            f.bin(aprof_vm::ir::BinOp::Max, second, lock_self, lock_right);
            f.acquire(first);
            let same = f.temp();
            f.cmp(CmpOp::Eq, same, first, second);
            let skip_bb = f.new_block();
            let take_bb = f.new_block();
            let cont_bb = f.new_block();
            f.br(same, skip_bb, take_bb);
            f.switch_to(take_bb);
            f.acquire(second);
            f.jmp(cont_bb);
            f.switch_to(skip_bb);
            f.jmp(cont_bb);
            f.switch_to(cont_bb);
            let nb = f.temp();
            f.mul(nb, right, block);
            let acc = f.const_temp(0);
            f.for_range(block, |f, i| {
                let addr = f.temp();
                f.add(addr, grid, nb);
                f.add(addr, addr, i);
                let v = f.temp();
                f.load(v, addr, 0);
                f.add(acc, acc, v);
            });
            // Update own band.
            f.for_range(block, |f, i| {
                let addr = f.temp();
                f.add(addr, grid, base);
                f.add(addr, addr, i);
                let v = f.temp();
                f.load(v, addr, 0);
                f.add(v, v, acc);
                f.store(v, addr, 0);
            });
            let done_unlock = f.temp();
            f.cmp(CmpOp::Eq, done_unlock, first, second);
            let rel1_bb = f.new_block();
            let rel2_bb = f.new_block();
            f.br(done_unlock, rel2_bb, rel1_bb);
            f.switch_to(rel1_bb);
            f.release(second);
            f.jmp(rel2_bb);
            f.switch_to(rel2_bb);
            f.release(first);
            let barrier_lock = f.const_temp(300);
            f.call(None, barrier, &[barrier_lock, count_addr, sem, t]);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let zero = f.const_temp(0);
        let sem = f.const_temp(SEM_STOP_ACK);
        f.sem_init(sem, zero);
        let n_r = f.const_temp(n);
        let grid = f.temp();
        f.alloc(grid, n_r);
        crate::helpers::emit_fill(&mut f, grid, n_r, 3);
        let t_r = f.const_temp(t);
        let iters_r = f.const_temp(iters);
        let handles = emit_spawn_workers(&mut f, worker, t_r, &[grid, n_r, t_r, iters_r]);
        emit_join_all(&mut f, handles, t_r);
        f.ret(Some(n_r));
    }
    Machine::new(p.build().expect("valid fluidanimate program"))
        .with_config(MachineConfig { quantum: 24, ..MachineConfig::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_core::{InputPolicy, TrmsProfiler};

    fn report(name: &str, params: &WorkloadParams, policy: InputPolicy) -> aprof_core::ProfileReport {
        let wl = crate::by_name(name).unwrap();
        let mut m = wl.build(params);
        let names = m.program().routines().clone();
        let mut prof = TrmsProfiler::with_policy(policy);
        m.run_with(&mut prof).expect(name);
        prof.into_report(&names)
    }

    /// Fig. 7: wbuffer_write_thread's rms collapses to very few distinct
    /// values, while its trms spreads out, and the spread comes from both
    /// external and thread input.
    #[test]
    fn wbuffer_write_thread_profile_richness() {
        let params = WorkloadParams::new(160, 3);
        let full = report("vips", &params, InputPolicy::full());
        let wt = full.routine_by_name("wbuffer_write_thread").unwrap();
        assert!(wt.merged.calls >= 5, "want several activations, got {}", wt.merged.calls);
        assert!(
            wt.distinct_rms() <= 3,
            "rms must collapse (Fig. 7a), got {} values",
            wt.distinct_rms()
        );
        assert!(
            wt.distinct_trms() > wt.distinct_rms(),
            "trms must be richer: {} vs {}",
            wt.distinct_trms(),
            wt.distinct_rms()
        );
        let ext = report("vips", &params, InputPolicy::external_only());
        let wt_ext = ext.routine_by_name("wbuffer_write_thread").unwrap();
        assert!(wt_ext.distinct_trms() > wt_ext.distinct_rms(), "external input alone adds points");
    }

    /// Fig. 5: im_generate grows linearly in trms; its rms stays almost
    /// flat, so the rms plot looks spuriously steep.
    #[test]
    fn im_generate_trms_linear() {
        let rep = report("vips", &WorkloadParams::new(200, 3), InputPolicy::full());
        let img = rep.routine_by_name("im_generate").unwrap();
        assert!(img.merged.calls >= 3);
        let trms_plot: Vec<(f64, f64)> =
            img.trms_curve().iter().map(|&(x, s)| (x as f64, s.max as f64)).collect();
        let fit = aprof_analysis::fit_best(&trms_plot).unwrap();
        assert!(
            !fit.model.is_superlinear(),
            "trms plot should be ~linear, got {:?}",
            fit.model
        );
        // The trms range must dwarf the rms range.
        let max_trms = img.trms_curve().last().unwrap().0;
        let max_rms = img.rms_curve().last().unwrap().0;
        assert!(max_trms > 2 * max_rms, "trms {max_trms} vs rms {max_rms}");
    }

    #[test]
    fn dedup_pipeline_has_external_and_thread_input() {
        let rep = report("dedup", &WorkloadParams::new(64, 3), InputPolicy::full());
        assert!(rep.global.induced_external > 0, "chunker reads a device");
        assert!(rep.global.induced_thread > 0, "stages communicate via slots");
        let comp = rep.routine_by_name("compress_chunk").unwrap();
        assert!(comp.merged.induced_thread + comp.merged.induced_external > 0);
    }

    #[test]
    fn fluidanimate_runs_with_locks() {
        let rep = report("fluidanimate", &WorkloadParams::new(64, 4), InputPolicy::full());
        assert!(rep.global.induced_thread > 0, "neighbour reads are thread-induced");
    }
}
