//! `docpipe`: a parse → transform → render document pipeline guest.
//!
//! The production pattern behind typesetters, asset pipelines and ETL jobs:
//! one parser thread pulls raw documents off the wire, a pool of transform
//! workers does the heavy per-document computation, and a single renderer
//! serializes results out — stages coupled by bounded rings (semaphore
//! pairs for space/items, a latch for the multi-consumer and multi-producer
//! ends). Input sensitivity lives exactly where the paper puts it:
//!
//! * the parser's cost is external input (every document cell is a fresh
//!   `sys_read`);
//! * each transform re-reads cells *written by the parser thread* —
//!   thread-induced input, invisible to a profiler that only counts plain
//!   first accesses;
//! * the renderer's output cost tracks the transformed sizes (`sys_write`
//!   to a sink).
//!
//! The final checksum is a commutative fold, so the exit value is
//! independent of how many transform workers raced for the ring — the
//! module's own invariance test.

use crate::{Family, Workload, WorkloadParams};
use aprof_vm::builder::ProgramBuilder;
use aprof_vm::device::{SinkDevice, SyntheticSource};
use aprof_vm::ir::CmpOp;
use aprof_vm::{Machine, MachineConfig};

/// Registry entries for this module.
pub fn workloads() -> Vec<Workload> {
    vec![Workload {
        name: "docpipe",
        family: Family::Service,
        description: "parse/transform/render pipeline over bounded rings: one \
                      parser, a transform pool, one renderer",
        build: docpipe,
    }]
}

/// Ring capacity (documents in flight per stage boundary).
const RING: i64 = 4;
/// Upper bound on document length in cells.
const MAXLEN: i64 = 8;

const S1_FREE: i64 = 40;
const S1_USED: i64 = 41;
const S2_FREE: i64 = 42;
const S2_USED: i64 = 43;
const L_IN: i64 = 45;
const L_OUT: i64 = 46;

// ctx layout: [0]=ring1 [1]=docbufs [2]=ring2 [3]=outbufs
//             [4]=N [5]=tail1 [6]=head2 [7]=checksum
const CTX_CELLS: i64 = 8;

fn docpipe(params: &WorkloadParams) -> Machine {
    let docs = (params.size as i64).max(1);
    let pool = params.threads.max(1) as i64;

    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let parser = p.declare("parse_docs", 1); // (ctx)
    let transform = p.declare("transform_docs", 1); // (ctx)
    let render = p.declare("render_docs", 1); // (ctx)

    {
        // parse_docs: single producer. Reads a length descriptor plus the
        // document body from the wire (fd 0) into the in-flight buffer for
        // slot i % RING, then publishes the length.
        let mut f = p.function(parser);
        let ctx = f.param(0);
        let ring1 = f.temp();
        f.load(ring1, ctx, 0);
        let docbufs = f.temp();
        f.load(docbufs, ctx, 1);
        let n = f.temp();
        f.load(n, ctx, 4);
        let fd = f.const_temp(0);
        let one = f.const_temp(1);
        let maxbody = f.const_temp(MAXLEN - 1);
        let maxlen = f.const_temp(MAXLEN);
        let ring_sz = f.const_temp(RING);
        let free = f.const_temp(S1_FREE);
        let used = f.const_temp(S1_USED);
        let desc = f.temp();
        f.alloc(desc, one);
        f.for_range(n, |f, i| {
            f.sem_wait(free);
            let got = f.temp();
            f.sys_read(got, fd, desc, one);
            let raw = f.temp();
            f.load(raw, desc, 0);
            let len = f.temp();
            f.rem(len, raw, maxbody);
            f.add(len, len, one);
            let slot = f.temp();
            f.rem(slot, i, ring_sz);
            let dbuf = f.temp();
            f.mul(dbuf, slot, maxlen);
            f.add(dbuf, docbufs, dbuf);
            f.sys_read(got, fd, dbuf, len);
            let cell = f.temp();
            f.add(cell, ring1, slot);
            f.store(len, cell, 0);
            f.sem_post(used);
        });
        f.ret(None);
    }
    {
        // transform_docs: pool worker. Claims the next unconsumed document
        // (item semaphore + tail counter, atomically under the inlet
        // latch — the wait happens inside the latch, and the only poster,
        // the parser, never takes it), copies it through a worker-private
        // buffer so the ring slot frees early, then publishes the
        // transformed body to ring2 under the outlet latch so slot claims
        // and writes stay ordered for the single renderer.
        let mut f = p.function(transform);
        let ctx = f.param(0);
        let ring1 = f.temp();
        f.load(ring1, ctx, 0);
        let docbufs = f.temp();
        f.load(docbufs, ctx, 1);
        let ring2 = f.temp();
        f.load(ring2, ctx, 2);
        let outbufs = f.temp();
        f.load(outbufs, ctx, 3);
        let n = f.temp();
        f.load(n, ctx, 4);
        let maxlen = f.const_temp(MAXLEN);
        let ring_sz = f.const_temp(RING);
        let one = f.const_temp(1);
        let l_in = f.const_temp(L_IN);
        let l_out = f.const_temp(L_OUT);
        let s1_free = f.const_temp(S1_FREE);
        let s1_used = f.const_temp(S1_USED);
        let s2_free = f.const_temp(S2_FREE);
        let s2_used = f.const_temp(S2_USED);
        let modulus = f.const_temp(997);
        let tbuf = f.temp();
        f.alloc(tbuf, maxlen);

        let head = f.new_block();
        let claim = f.new_block();
        let done = f.new_block();
        f.jmp(head);

        f.switch_to(head);
        f.acquire(l_in);
        let t = f.temp();
        f.load(t, ctx, 5);
        let more = f.temp();
        f.cmp(CmpOp::Lt, more, t, n);
        f.br(more, claim, done);

        f.switch_to(claim);
        f.sem_wait(s1_used);
        let t1 = f.temp();
        f.add(t1, t, one);
        f.store(t1, ctx, 5);
        let slot = f.temp();
        f.rem(slot, t, ring_sz);
        let cell = f.temp();
        f.add(cell, ring1, slot);
        let len = f.temp();
        f.load(len, cell, 0);
        // Re-read the parser's cells (thread-induced input) into a private
        // buffer, doing the per-cell transform work — still under the
        // latch: free permits are fungible, so a slot may only be recycled
        // once the copies of ALL earlier claims are done, which the
        // latch-ordered claim+copy guarantees.
        let dbuf = f.temp();
        f.mul(dbuf, slot, maxlen);
        f.add(dbuf, docbufs, dbuf);
        let acc = f.const_temp(0);
        f.for_range(len, |f, j| {
            let c = f.temp();
            f.add(c, dbuf, j);
            let v = f.temp();
            f.load(v, c, 0);
            f.add(acc, acc, v);
            let w = f.temp();
            f.add(w, v, acc);
            f.rem(w, w, modulus);
            let o = f.temp();
            f.add(o, tbuf, j);
            f.store(w, o, 0);
        });
        f.sem_post(s1_free);
        f.release(l_in);
        // Publish: claim a ring2 slot and write it within one latch hold.
        f.acquire(l_out);
        f.sem_wait(s2_free);
        let h = f.temp();
        f.load(h, ctx, 6);
        let h1 = f.temp();
        f.add(h1, h, one);
        f.store(h1, ctx, 6);
        let slot2 = f.temp();
        f.rem(slot2, h, ring_sz);
        let obuf = f.temp();
        f.mul(obuf, slot2, maxlen);
        f.add(obuf, outbufs, obuf);
        f.for_range(len, |f, j| {
            let s = f.temp();
            f.add(s, tbuf, j);
            let v = f.temp();
            f.load(v, s, 0);
            let d = f.temp();
            f.add(d, obuf, j);
            f.store(v, d, 0);
        });
        let cell2 = f.temp();
        f.add(cell2, ring2, slot2);
        f.store(len, cell2, 0);
        f.release(l_out);
        f.sem_post(s2_used);
        f.jmp(head);

        f.switch_to(done);
        f.release(l_in);
        f.ret(None);
    }
    {
        // render_docs: single consumer. Folds a commutative checksum over
        // every transformed cell and writes the document to the sink
        // (fd 1), then frees the slot.
        let mut f = p.function(render);
        let ctx = f.param(0);
        let ring2 = f.temp();
        f.load(ring2, ctx, 2);
        let outbufs = f.temp();
        f.load(outbufs, ctx, 3);
        let n = f.temp();
        f.load(n, ctx, 4);
        let maxlen = f.const_temp(MAXLEN);
        let ring_sz = f.const_temp(RING);
        let fd = f.const_temp(1);
        let s2_free = f.const_temp(S2_FREE);
        let s2_used = f.const_temp(S2_USED);
        let sum = f.const_temp(0);
        f.for_range(n, |f, i| {
            f.sem_wait(s2_used);
            let slot = f.temp();
            f.rem(slot, i, ring_sz);
            let cell = f.temp();
            f.add(cell, ring2, slot);
            let len = f.temp();
            f.load(len, cell, 0);
            let obuf = f.temp();
            f.mul(obuf, slot, maxlen);
            f.add(obuf, outbufs, obuf);
            f.for_range(len, |f, j| {
                let c = f.temp();
                f.add(c, obuf, j);
                let v = f.temp();
                f.load(v, c, 0);
                f.add(sum, sum, v);
            });
            f.add(sum, sum, len);
            let got = f.temp();
            f.sys_write(got, fd, obuf, len);
            f.sem_post(s2_free);
        });
        f.store(sum, ctx, 7);
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let ctx_sz = f.const_temp(CTX_CELLS);
        let ctx = f.temp();
        f.alloc(ctx, ctx_sz);
        let ring_sz = f.const_temp(RING);
        let bufs_sz = f.const_temp(RING * MAXLEN);
        let ring1 = f.temp();
        f.alloc(ring1, ring_sz);
        let docbufs = f.temp();
        f.alloc(docbufs, bufs_sz);
        let ring2 = f.temp();
        f.alloc(ring2, ring_sz);
        let outbufs = f.temp();
        f.alloc(outbufs, bufs_sz);
        f.store(ring1, ctx, 0);
        f.store(docbufs, ctx, 1);
        f.store(ring2, ctx, 2);
        f.store(outbufs, ctx, 3);
        let n = f.const_temp(docs);
        f.store(n, ctx, 4);
        let zero = f.const_temp(0);
        f.store(zero, ctx, 5);
        f.store(zero, ctx, 6);
        f.store(zero, ctx, 7);
        for key in [S1_FREE, S2_FREE] {
            let k = f.const_temp(key);
            f.sem_init(k, ring_sz);
        }
        for key in [S1_USED, S2_USED] {
            let k = f.const_temp(key);
            f.sem_init(k, zero);
        }
        let hp = f.temp();
        f.spawn(hp, parser, &[ctx]);
        let pool_r = f.const_temp(pool);
        let handles = f.temp();
        f.alloc(handles, pool_r);
        f.for_range(pool_r, |f, i| {
            let h = f.temp();
            f.spawn(h, transform, &[ctx]);
            let slot = f.temp();
            f.add(slot, handles, i);
            f.store(h, slot, 0);
        });
        let hr = f.temp();
        f.spawn(hr, render, &[ctx]);
        f.join(hp);
        crate::helpers::emit_join_all(&mut f, handles, pool_r);
        f.join(hr);
        let sum = f.temp();
        f.load(sum, ctx, 7);
        f.ret(Some(sum));
    }

    let mut m = Machine::new(p.build().expect("valid docpipe program"))
        .with_config(MachineConfig { quantum: 12, ..MachineConfig::default() });
    // Wire: descriptor + body cells per document.
    m.add_device(Box::new(SyntheticSource::new(
        params.seed | 1,
        (docs * MAXLEN) as u64,
    )));
    m.add_device(Box::new(SinkDevice::new()));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_core::{InputPolicy, TrmsProfiler};

    fn run(params: &WorkloadParams) -> i64 {
        let wl = crate::by_name("docpipe").unwrap();
        let mut m = wl.build(params);
        m.run_native().expect("docpipe run").exit_value.expect("checksum")
    }

    /// The checksum is a commutative fold over per-document deterministic
    /// work, so the pool size must not change it.
    #[test]
    fn checksum_is_invariant_across_pool_sizes() {
        let reference = run(&WorkloadParams { size: 40, threads: 1, seed: 0xD0C });
        for threads in [2, 4, 7] {
            let got = run(&WorkloadParams { size: 40, threads, seed: 0xD0C });
            assert_eq!(got, reference, "pool of {threads} changed the checksum");
        }
    }

    #[test]
    fn docpipe_is_deterministic() {
        let params = WorkloadParams { size: 24, threads: 3, seed: 5 };
        assert_eq!(run(&params), run(&params));
    }

    /// Transforms re-read parser-written cells: the run must attribute a
    /// nonzero thread-induced share (the pattern rms misses entirely).
    #[test]
    fn transforms_see_thread_induced_input() {
        let wl = crate::by_name("docpipe").unwrap();
        let mut m = wl.build(&WorkloadParams { size: 32, threads: 2, seed: 3 });
        let names = m.program().routines().clone();
        let mut prof = TrmsProfiler::with_policy(InputPolicy::full());
        m.run_with(&mut prof).expect("docpipe run");
        let rep = prof.into_report(&names);
        let (thread_pct, _ext_pct) = rep.global.induced_split();
        assert!(thread_pct > 0.0, "no thread-induced input attributed");
        let tr = rep.routine_by_name("transform_docs").unwrap();
        let (t, _e) = tr.induced_fractions();
        assert!(t > 0.0, "transform_docs saw no thread-induced cells");
    }
}
