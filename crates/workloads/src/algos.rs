//! Classic sequential algorithms: the PLDI 2012-style validation suite.
//!
//! The original input-sensitive-profiling paper validates the methodology
//! on algorithmic codes: profile a routine once over naturally varying
//! input sizes and check that the fitted cost curve recovers the textbook
//! complexity. This module provides that suite for `aprof-rs`: each
//! workload drives one well-known algorithm across a range of sizes in a
//! single run, and the test suite asserts that `aprof_analysis::fit_best`
//! recovers the expected growth class from the profile alone.
//!
//! A subtlety worth documenting (also observed by the original authors):
//! the metrics measure the input *actually accessed*. Binary search reads
//! only `O(log n)` cells of its array, so its profile relates a
//! `log n`-sized input to a `log n` cost — a **linear** curve — which is
//! the correct statement about how its cost scales with the data it reads.

use crate::{Family, Workload, WorkloadParams};
use aprof_vm::builder::{FunctionBuilder, ProgramBuilder};
use aprof_vm::ir::{CmpOp, FuncId, Reg};
use aprof_vm::Machine;

/// Registry entries for this module.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "algo.insertion_sort",
            family: Family::Algo,
            description: "reverse-sorted insertion sort: cost quadratic in input size",
            build: insertion_sort,
        },
        Workload {
            name: "algo.merge_sort",
            family: Family::Algo,
            description: "recursive merge sort: cost n log n in input size",
            build: merge_sort,
        },
        Workload {
            name: "algo.binary_search",
            family: Family::Algo,
            description: "binary search: reads (and costs) log n cells per query",
            build: binary_search,
        },
        Workload {
            name: "algo.linear_search",
            family: Family::Algo,
            description: "worst-case linear scan: cost linear in input size",
            build: linear_search,
        },
        Workload {
            name: "algo.matmul",
            family: Family::Algo,
            description: "dense matrix multiply: cost ~ input^1.5 (n^3 vs 2n^2 cells)",
            build: matmul,
        },
        Workload {
            name: "algo.quicksort",
            family: Family::Algo,
            description: "median-of-first pivot quicksort on shuffled input: ~n log n",
            build: quicksort,
        },
        Workload {
            name: "algo.bfs",
            family: Family::Algo,
            description: "breadth-first search over an adjacency array: linear in V+E",
            build: bfs,
        },
        Workload {
            name: "algo.hash_build",
            family: Family::Algo,
            description: "open-addressing hash table build: amortized linear",
            build: hash_build,
        },
    ]
}

/// Emits `store (salt - i) -> arr[i]` for `i in 0..n` (a reverse-sorted
/// fill, the insertion-sort worst case).
fn emit_reverse_fill(f: &mut FunctionBuilder<'_>, arr: Reg, n: Reg) {
    f.for_range(n, |f, i| {
        let v = f.temp();
        f.sub(v, n, i);
        let addr = f.temp();
        f.add(addr, arr, i);
        f.store(v, addr, 0);
    });
}

/// Emits the common driver: `for k in 1..=steps: n = k*stride; arr =
/// alloc(n); <fill>; call algo(arr, n)`.
fn driver(
    p: &mut ProgramBuilder,
    main: FuncId,
    algo: FuncId,
    steps: i64,
    stride: i64,
    reverse: bool,
) {
    let mut f = p.function(main);
    let steps_r = f.const_temp(steps);
    let stride_r = f.const_temp(stride);
    let one = f.const_temp(1);
    f.for_range(steps_r, |f, k| {
        let k1 = f.temp();
        f.add(k1, k, one);
        let n = f.temp();
        f.mul(n, k1, stride_r);
        let arr = f.temp();
        f.alloc(arr, n);
        if reverse {
            emit_reverse_fill(f, arr, n);
        } else {
            crate::helpers::emit_fill(f, arr, n, 2);
        }
        let r = f.temp();
        f.call(Some(r), algo, &[arr, n]);
    });
    f.ret(None);
}

fn insertion_sort(params: &WorkloadParams) -> Machine {
    let steps = (params.size as i64 / 16).clamp(4, 12);
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let sort = p.declare("insertion_sort", 2); // (arr, n)
    {
        let mut f = p.function(sort);
        let arr = f.param(0);
        let n = f.param(1);
        let one = f.const_temp(1);
        let i = f.const_temp(1);
        let cont = f.scratch();
        f.loop_while(i, |f, i| {
            let key_addr = f.temp();
            f.add(key_addr, arr, i);
            let key = f.temp();
            f.load(key, key_addr, 0);
            let j = f.temp();
            f.sub(j, i, one);
            // inner: while j >= 0 && arr[j] > key { arr[j+1] = arr[j]; j-- }
            let head = f.new_block();
            let body = f.new_block();
            let done = f.new_block();
            f.jmp(head);
            f.switch_to(head);
            let zero = f.const_temp(0);
            let jok = f.temp();
            f.cmp(CmpOp::Ge, jok, j, zero);
            let guard = f.new_block();
            f.br(jok, guard, done);
            f.switch_to(guard);
            let jaddr = f.temp();
            f.add(jaddr, arr, j);
            let jv = f.temp();
            f.load(jv, jaddr, 0);
            let gt = f.temp();
            f.cmp(CmpOp::Gt, gt, jv, key);
            f.br(gt, body, done);
            f.switch_to(body);
            f.store(jv, jaddr, 1);
            f.sub(j, j, one);
            f.jmp(head);
            f.switch_to(done);
            let slot = f.temp();
            f.add(slot, arr, j);
            f.store(key, slot, 1);
            f.add(i, i, one);
            f.cmp_lt(cont, i, n)
        });
        f.ret(Some(n));
    }
    driver(&mut p, main, sort, steps, 12, true);
    Machine::new(p.build().expect("valid insertion sort"))
}

fn merge_sort(params: &WorkloadParams) -> Machine {
    let n = (params.size.next_power_of_two() as i64).clamp(64, 1024);
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let sort = p.declare("merge_sort", 4); // (arr, tmp, lo, hi)
    let merge = p.declare("merge", 5); // (arr, tmp, lo, mid, hi)
    {
        let mut f = p.function(merge);
        let arr = f.param(0);
        let tmp = f.param(1);
        let lo = f.param(2);
        let mid = f.param(3);
        let hi = f.param(4);
        let one = f.const_temp(1);
        let i = f.temp();
        f.mov(i, lo);
        let j = f.temp();
        f.mov(j, mid);
        let k = f.temp();
        f.mov(k, lo);
        // while k < hi: pick smaller head into tmp[k]
        let cont = f.scratch();
        f.loop_while(k, |f, k| {
            let take_left = f.temp();
            // left exhausted? take right; right exhausted? take left.
            let left_ok = f.temp();
            f.cmp(CmpOp::Lt, left_ok, i, mid);
            let right_ok = f.temp();
            f.cmp(CmpOp::Lt, right_ok, j, hi);
            let both = f.temp();
            f.bin(aprof_vm::ir::BinOp::And, both, left_ok, right_ok);
            let cmp_bb = f.new_block();
            let pick_bb = f.new_block();
            let left_bb = f.new_block();
            let right_bb = f.new_block();
            let store_bb = f.new_block();
            f.br(both, cmp_bb, pick_bb);
            f.switch_to(cmp_bb);
            let ia = f.temp();
            f.add(ia, arr, i);
            let iv = f.temp();
            f.load(iv, ia, 0);
            let ja = f.temp();
            f.add(ja, arr, j);
            let jv = f.temp();
            f.load(jv, ja, 0);
            f.cmp(CmpOp::Le, take_left, iv, jv);
            f.br(take_left, left_bb, right_bb);
            f.switch_to(pick_bb);
            f.br(left_ok, left_bb, right_bb);
            f.switch_to(left_bb);
            let la = f.temp();
            f.add(la, arr, i);
            let lv = f.temp();
            f.load(lv, la, 0);
            let ta = f.temp();
            f.add(ta, tmp, k);
            f.store(lv, ta, 0);
            f.add(i, i, one);
            f.jmp(store_bb);
            f.switch_to(right_bb);
            let ra = f.temp();
            f.add(ra, arr, j);
            let rv = f.temp();
            f.load(rv, ra, 0);
            let tb = f.temp();
            f.add(tb, tmp, k);
            f.store(rv, tb, 0);
            f.add(j, j, one);
            f.jmp(store_bb);
            f.switch_to(store_bb);
            f.add(k, k, one);
            f.cmp_lt(cont, k, hi)
        });
        // copy back
        let c = f.temp();
        f.mov(c, lo);
        let cont2 = f.scratch();
        f.loop_while(c, |f, c| {
            let ta = f.temp();
            f.add(ta, tmp, c);
            let v = f.temp();
            f.load(v, ta, 0);
            let aa = f.temp();
            f.add(aa, arr, c);
            f.store(v, aa, 0);
            f.add(c, c, one);
            f.cmp_lt(cont2, c, hi)
        });
        f.ret(None);
    }
    {
        let mut f = p.function(sort);
        let arr = f.param(0);
        let tmp = f.param(1);
        let lo = f.param(2);
        let hi = f.param(3);
        let one = f.const_temp(1);
        let len = f.temp();
        f.sub(len, hi, lo);
        let small = f.temp();
        f.cmp(CmpOp::Le, small, len, one);
        let rec_bb = f.new_block();
        let out_bb = f.new_block();
        f.br(small, out_bb, rec_bb);
        f.switch_to(rec_bb);
        let two = f.const_temp(2);
        let mid = f.temp();
        f.add(mid, lo, hi);
        f.div(mid, mid, two);
        f.call(None, sort, &[arr, tmp, lo, mid]);
        f.call(None, sort, &[arr, tmp, mid, hi]);
        f.call(None, merge, &[arr, tmp, lo, mid, hi]);
        f.jmp(out_bb);
        f.switch_to(out_bb);
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let n_r = f.const_temp(n);
        let arr = f.temp();
        f.alloc(arr, n_r);
        emit_reverse_fill(&mut f, arr, n_r);
        let tmp = f.temp();
        f.alloc(tmp, n_r);
        let zero = f.const_temp(0);
        f.call(None, sort, &[arr, tmp, zero, n_r]);
        // verify sortedness: count inversions (must be 0)
        let one = f.const_temp(1);
        let bad = f.const_temp(0);
        let limit = f.temp();
        f.sub(limit, n_r, one);
        f.for_range(limit, |f, i| {
            let a = f.temp();
            f.add(a, arr, i);
            let x = f.temp();
            f.load(x, a, 0);
            let y = f.temp();
            f.load(y, a, 1);
            let inv = f.temp();
            f.cmp(CmpOp::Gt, inv, x, y);
            f.add(bad, bad, inv);
        });
        f.ret(Some(bad));
    }
    Machine::new(p.build().expect("valid merge sort"))
}

fn binary_search(params: &WorkloadParams) -> Machine {
    let n = (params.size.next_power_of_two() as i64).clamp(64, 4096);
    let queries = 24i64;
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let search = p.declare("binary_search", 3); // (arr, n, key) -> index
    {
        let mut f = p.function(search);
        let arr = f.param(0);
        let n = f.param(1);
        let key = f.param(2);
        let one = f.const_temp(1);
        let two = f.const_temp(2);
        let lo = f.const_temp(0);
        let hi = f.temp();
        f.mov(hi, n);
        let cont = f.scratch();
        let span = f.temp();
        f.sub(span, hi, lo);
        f.cmp(CmpOp::Gt, cont, span, one);
        f.loop_while(cont, |f, cont| {
            let mid = f.temp();
            f.add(mid, lo, hi);
            f.div(mid, mid, two);
            let ma = f.temp();
            f.add(ma, arr, mid);
            let mv = f.temp();
            f.load(mv, ma, 0);
            let le = f.temp();
            f.cmp(CmpOp::Le, le, mv, key);
            // branchless: lo = le ? mid : lo; hi = le ? hi : mid
            let dlo = f.temp();
            f.sub(dlo, mid, lo);
            f.mul(dlo, dlo, le);
            f.add(lo, lo, dlo);
            let nle = f.temp();
            f.sub(nle, one, le);
            let dhi = f.temp();
            f.sub(dhi, mid, hi);
            f.mul(dhi, dhi, nle);
            f.add(hi, hi, dhi);
            let span = f.temp();
            f.sub(span, hi, lo);
            f.cmp(CmpOp::Gt, cont, span, one);
            cont
        });
        f.ret(Some(lo));
    }
    {
        let mut f = p.function(main);
        let n_r = f.const_temp(n);
        let arr = f.temp();
        f.alloc(arr, n_r);
        crate::helpers::emit_fill(&mut f, arr, n_r, 1); // sorted: arr[i] = i+1
        // query arrays of doubling prefixes: sizes 2, 4, 8, ..., n
        let q_r = f.const_temp(queries);
        let two = f.const_temp(2);
        let size = f.temp();
        f.const_(size, 2);
        let acc = f.const_temp(0);
        f.for_range(q_r, |f, q| {
            let key = f.temp();
            f.rem(key, q, size);
            let r = f.temp();
            f.call(Some(r), search, &[arr, size, key]);
            f.add(acc, acc, r);
            let next = f.temp();
            f.mul(next, size, two);
            f.bin(aprof_vm::ir::BinOp::Min, size, next, n_r);
        });
        f.ret(Some(acc));
    }
    Machine::new(p.build().expect("valid binary search"))
}

fn linear_search(params: &WorkloadParams) -> Machine {
    let steps = (params.size as i64 / 16).clamp(4, 16);
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let scan = p.declare("linear_search", 2); // (arr, n) -> last index matching sentinel
    {
        let mut f = p.function(scan);
        let arr = f.param(0);
        let n = f.param(1);
        let found = f.const_temp(-1);
        let needle = f.const_temp(-12345); // absent: worst case scans all
        f.for_range(n, |f, i| {
            let a = f.temp();
            f.add(a, arr, i);
            let v = f.temp();
            f.load(v, a, 0);
            let eq = f.temp();
            f.cmp(CmpOp::Eq, eq, v, needle);
            let upd = f.temp();
            f.sub(upd, i, found);
            f.mul(upd, upd, eq);
            f.add(found, found, upd);
        });
        f.ret(Some(found));
    }
    driver(&mut p, main, scan, steps, 24, false);
    Machine::new(p.build().expect("valid linear search"))
}

fn matmul(params: &WorkloadParams) -> Machine {
    let steps = (params.size as i64 / 32).clamp(3, 7);
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let mm = p.declare("matmul", 4); // (a, b, c, n)
    {
        let mut f = p.function(mm);
        let a = f.param(0);
        let b = f.param(1);
        let c = f.param(2);
        let n = f.param(3);
        f.for_range(n, |f, i| {
            f.for_range(n, |f, j| {
                let acc = f.const_temp(0);
                f.for_range(n, |f, k| {
                    let ia = f.temp();
                    f.mul(ia, i, n);
                    f.add(ia, ia, k);
                    f.add(ia, ia, a);
                    let av = f.temp();
                    f.load(av, ia, 0);
                    let ib = f.temp();
                    f.mul(ib, k, n);
                    f.add(ib, ib, j);
                    f.add(ib, ib, b);
                    let bv = f.temp();
                    f.load(bv, ib, 0);
                    let prod = f.temp();
                    f.mul(prod, av, bv);
                    f.add(acc, acc, prod);
                });
                let ic = f.temp();
                f.mul(ic, i, n);
                f.add(ic, ic, j);
                f.add(ic, ic, c);
                f.store(acc, ic, 0);
            });
        });
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let steps_r = f.const_temp(steps);
        let stride = f.const_temp(6);
        let one = f.const_temp(1);
        f.for_range(steps_r, |f, s| {
            let s1 = f.temp();
            f.add(s1, s, one);
            let n = f.temp();
            f.mul(n, s1, stride);
            let cells = f.temp();
            f.mul(cells, n, n);
            let a = f.temp();
            f.alloc(a, cells);
            crate::helpers::emit_fill(f, a, cells, 3);
            let b = f.temp();
            f.alloc(b, cells);
            crate::helpers::emit_fill(f, b, cells, 5);
            let c = f.temp();
            f.alloc(c, cells);
            f.call(None, mm, &[a, b, c, n]);
        });
        f.ret(None);
    }
    Machine::new(p.build().expect("valid matmul"))
}

fn quicksort(params: &WorkloadParams) -> Machine {
    let n = (params.size.next_power_of_two() as i64).clamp(64, 1024);
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let qsort = p.declare("quicksort", 3); // (arr, lo, hi) half-open
    {
        let mut f = p.function(qsort);
        let arr = f.param(0);
        let lo = f.param(1);
        let hi = f.param(2);
        let one = f.const_temp(1);
        let len = f.temp();
        f.sub(len, hi, lo);
        let small = f.temp();
        f.cmp(CmpOp::Le, small, len, one);
        let work_bb = f.new_block();
        let out_bb = f.new_block();
        f.br(small, out_bb, work_bb);
        f.switch_to(work_bb);
        // Lomuto partition with arr[hi-1] as pivot.
        let last = f.temp();
        f.sub(last, hi, one);
        let pa = f.temp();
        f.add(pa, arr, last);
        let pivot = f.temp();
        f.load(pivot, pa, 0);
        let store_idx = f.temp();
        f.mov(store_idx, lo);
        let j = f.temp();
        f.mov(j, lo);
        let cont = f.scratch();
        f.cmp_lt(cont, j, last);
        f.loop_while(cont, |f, cont| {
            let ja = f.temp();
            f.add(ja, arr, j);
            let jv = f.temp();
            f.load(jv, ja, 0);
            let lt = f.temp();
            f.cmp(CmpOp::Lt, lt, jv, pivot);
            let swap_bb = f.new_block();
            let skip_bb = f.new_block();
            let next_bb = f.new_block();
            f.br(lt, swap_bb, skip_bb);
            f.switch_to(swap_bb);
            // swap arr[store_idx] <-> arr[j]
            let sa = f.temp();
            f.add(sa, arr, store_idx);
            let sv = f.temp();
            f.load(sv, sa, 0);
            f.store(jv, sa, 0);
            f.store(sv, ja, 0);
            f.add(store_idx, store_idx, one);
            f.jmp(next_bb);
            f.switch_to(skip_bb);
            f.jmp(next_bb);
            f.switch_to(next_bb);
            f.add(j, j, one);
            f.cmp_lt(cont, j, last);
            cont
        });
        // swap pivot into place
        let sa = f.temp();
        f.add(sa, arr, store_idx);
        let sv = f.temp();
        f.load(sv, sa, 0);
        f.store(pivot, sa, 0);
        f.store(sv, pa, 0);
        // recurse on both halves
        f.call(None, qsort, &[arr, lo, store_idx]);
        let lo2 = f.temp();
        f.add(lo2, store_idx, one);
        f.call(None, qsort, &[arr, lo2, hi]);
        f.jmp(out_bb);
        f.switch_to(out_bb);
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let n_r = f.const_temp(n);
        let arr = f.temp();
        f.alloc(arr, n_r);
        // Pseudo-shuffled fill (multiplicative hash of the index) to avoid
        // Lomuto's sorted-input worst case.
        let mult = f.const_temp(2654435761);
        let mask = f.const_temp((1 << 20) - 1);
        f.for_range(n_r, |f, i| {
            let v = f.temp();
            f.mul(v, i, mult);
            f.bin(aprof_vm::ir::BinOp::And, v, v, mask);
            let a = f.temp();
            f.add(a, arr, i);
            f.store(v, a, 0);
        });
        let zero = f.const_temp(0);
        f.call(None, qsort, &[arr, zero, n_r]);
        // verify sortedness
        let one = f.const_temp(1);
        let bad = f.const_temp(0);
        let limit = f.temp();
        f.sub(limit, n_r, one);
        f.for_range(limit, |f, i| {
            let a = f.temp();
            f.add(a, arr, i);
            let x = f.temp();
            f.load(x, a, 0);
            let y = f.temp();
            f.load(y, a, 1);
            let inv = f.temp();
            f.cmp(CmpOp::Gt, inv, x, y);
            f.add(bad, bad, inv);
        });
        f.ret(Some(bad));
    }
    Machine::new(p.build().expect("valid quicksort"))
}

fn bfs(params: &WorkloadParams) -> Machine {
    let steps = (params.size as i64 / 16).clamp(4, 10);
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let bfs_f = p.declare("bfs", 2); // (graph_state, n) -> visited count
    // graph_state layout: [0..n) ring successor, [n..2n) skip successor,
    // [2n..3n) visited flags, [3n..4n) the worklist (queue).
    {
        let mut f = p.function(bfs_f);
        let g = f.param(0);
        let n = f.param(1);
        let one = f.const_temp(1);
        let two = f.const_temp(2);
        let three = f.const_temp(3);
        let visited_base = f.temp();
        f.mul(visited_base, n, two);
        f.add(visited_base, visited_base, g);
        let queue_base = f.temp();
        f.mul(queue_base, n, three);
        f.add(queue_base, queue_base, g);
        // push node 0
        let zero = f.const_temp(0);
        f.store(zero, queue_base, 0);
        f.store(one, visited_base, 0);
        let head = f.const_temp(0);
        let tail = f.const_temp(1);
        let count = f.const_temp(1);
        let cont = f.scratch();
        f.cmp_lt(cont, head, tail);
        f.loop_while(cont, |f, cont| {
            let qslot = f.temp();
            f.add(qslot, queue_base, head);
            let node = f.temp();
            f.load(node, qslot, 0);
            f.add(head, head, one);
            // two successor arrays
            for succ_arr in 0..2i64 {
                let sbase = f.temp();
                if succ_arr == 0 {
                    f.mov(sbase, g);
                } else {
                    f.add(sbase, g, n);
                }
                let sa = f.temp();
                f.add(sa, sbase, node);
                let next = f.temp();
                f.load(next, sa, 0);
                let va = f.temp();
                f.add(va, visited_base, next);
                let seen = f.temp();
                f.load(seen, va, 0);
                let fresh = f.temp();
                f.sub(fresh, one, seen);
                let push_bb = f.new_block();
                let skip_bb = f.new_block();
                let cont_bb = f.new_block();
                f.br(fresh, push_bb, skip_bb);
                f.switch_to(push_bb);
                f.store(one, va, 0);
                let ts = f.temp();
                f.add(ts, queue_base, tail);
                f.store(next, ts, 0);
                f.add(tail, tail, one);
                f.add(count, count, one);
                f.jmp(cont_bb);
                f.switch_to(skip_bb);
                f.jmp(cont_bb);
                f.switch_to(cont_bb);
            }
            f.cmp_lt(cont, head, tail);
            cont
        });
        f.ret(Some(count));
    }
    {
        let mut f = p.function(main);
        let steps_r = f.const_temp(steps);
        let stride = f.const_temp(24);
        let one = f.const_temp(1);
        let four = f.const_temp(4);
        let seven = f.const_temp(7);
        f.for_range(steps_r, |f, s| {
            let s1 = f.temp();
            f.add(s1, s, one);
            let n = f.temp();
            f.mul(n, s1, stride);
            let cells = f.temp();
            f.mul(cells, n, four);
            let g = f.temp();
            f.alloc(g, cells);
            // ring successors and skip-7 successors
            f.for_range(n, |f, i| {
                let succ = f.temp();
                f.add(succ, i, one);
                f.rem(succ, succ, n);
                let a = f.temp();
                f.add(a, g, i);
                f.store(succ, a, 0);
                let skip = f.temp();
                f.add(skip, i, seven);
                f.rem(skip, skip, n);
                let b = f.temp();
                f.add(b, g, n);
                f.add(b, b, i);
                f.store(skip, b, 0);
            });
            let r = f.temp();
            f.call(Some(r), bfs_f, &[g, n]);
        });
        f.ret(None);
    }
    Machine::new(p.build().expect("valid bfs"))
}

fn hash_build(params: &WorkloadParams) -> Machine {
    let steps = (params.size as i64 / 16).clamp(4, 10);
    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let build = p.declare("hash_build", 3); // (keys, table, n) -> probes
    {
        let mut f = p.function(build);
        let keys = f.param(0);
        let table = f.param(1);
        let n = f.param(2);
        let one = f.const_temp(1);
        let two = f.const_temp(2);
        let cap = f.temp();
        f.mul(cap, n, two);
        let probes = f.const_temp(0);
        f.for_range(n, |f, i| {
            let ka = f.temp();
            f.add(ka, keys, i);
            let key = f.temp();
            f.load(key, ka, 0);
            let h = f.temp();
            f.rem(h, key, cap);
            // ensure non-negative
            f.add(h, h, cap);
            f.rem(h, h, cap);
            // linear probe until an empty (zero) slot
            let cont = f.scratch();
            f.const_(cont, 1);
            f.loop_while(cont, |f, cont| {
                let sa = f.temp();
                f.add(sa, table, h);
                let v = f.temp();
                f.load(v, sa, 0);
                f.add(probes, probes, one);
                let empty = f.temp();
                let zero = f.const_temp(0);
                f.cmp(CmpOp::Eq, empty, v, zero);
                let ins_bb = f.new_block();
                let step_bb = f.new_block();
                let out_bb = f.new_block();
                f.br(empty, ins_bb, step_bb);
                f.switch_to(ins_bb);
                let stored = f.temp();
                f.add(stored, key, one); // avoid storing 0
                f.store(stored, sa, 0);
                f.const_(cont, 0);
                f.jmp(out_bb);
                f.switch_to(step_bb);
                f.add(h, h, one);
                f.rem(h, h, cap);
                f.jmp(out_bb);
                f.switch_to(out_bb);
                cont
            });
        });
        f.ret(Some(probes));
    }
    {
        let mut f = p.function(main);
        let steps_r = f.const_temp(steps);
        let stride = f.const_temp(20);
        let one = f.const_temp(1);
        let two = f.const_temp(2);
        f.for_range(steps_r, |f, s| {
            let s1 = f.temp();
            f.add(s1, s, one);
            let n = f.temp();
            f.mul(n, s1, stride);
            let keys = f.temp();
            f.alloc(keys, n);
            crate::helpers::emit_fill(f, keys, n, 37);
            let cap = f.temp();
            f.mul(cap, n, two);
            let table = f.temp();
            f.alloc(table, cap);
            let r = f.temp();
            f.call(Some(r), build, &[keys, table, n]);
        });
        f.ret(None);
    }
    Machine::new(p.build().expect("valid hash build"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_analysis::{fit_best, fit_power_law, GrowthModel};
    use aprof_core::TrmsProfiler;

    fn worst_case(name: &str, routine: &str, size: u64) -> Vec<(f64, f64)> {
        let wl = crate::by_name(name).unwrap();
        let mut m = wl.build(&WorkloadParams::new(size, 1));
        let names = m.program().routines().clone();
        let mut prof = TrmsProfiler::new();
        m.run_with(&mut prof).unwrap_or_else(|e| panic!("{name}: {e}"));
        let rep = prof.into_report(&names);
        let rr = rep
            .routine_by_name(routine)
            .unwrap_or_else(|| panic!("{routine} missing"));
        rr.trms_curve().iter().map(|&(x, s)| (x as f64, s.max as f64)).collect()
    }

    #[test]
    fn insertion_sort_is_quadratic() {
        let fit = fit_best(&worst_case("algo.insertion_sort", "insertion_sort", 160)).unwrap();
        assert_eq!(fit.model, GrowthModel::Quadratic, "r2={}", fit.r2);
    }

    #[test]
    fn merge_sort_is_linearithmic_and_sorts() {
        let wl = crate::by_name("algo.merge_sort").unwrap();
        let mut m = wl.build(&WorkloadParams::new(512, 1));
        let names = m.program().routines().clone();
        let mut prof = TrmsProfiler::new();
        let out = m.run_with(&mut prof).unwrap();
        assert_eq!(out.exit_value, Some(0), "array must end up sorted (0 inversions)");
        let rep = prof.into_report(&names);
        let rr = rep.routine_by_name("merge_sort").unwrap();
        let points: Vec<(f64, f64)> =
            rr.trms_curve().iter().map(|&(x, s)| (x as f64, s.max as f64)).collect();
        let fit = fit_best(&points).unwrap();
        assert!(
            matches!(fit.model, GrowthModel::Linearithmic | GrowthModel::Linear),
            "expected ~n log n, got {:?} (r2={})",
            fit.model,
            fit.r2
        );
    }

    #[test]
    fn binary_search_reads_log_cells() {
        let points = worst_case("algo.binary_search", "binary_search", 2048);
        // Input sizes collected are O(log n): all well below n.
        let max_input = points.iter().map(|p| p.0).fold(0.0, f64::max);
        assert!(max_input <= 16.0, "binary search read {max_input} cells");
        let fit = fit_best(&points).unwrap();
        assert!(!fit.model.is_superlinear(), "{:?}", fit.model);
    }

    #[test]
    fn linear_search_is_linear() {
        let fit = fit_best(&worst_case("algo.linear_search", "linear_search", 200)).unwrap();
        assert_eq!(fit.model, GrowthModel::Linear, "r2={}", fit.r2);
    }

    #[test]
    fn matmul_is_input_power_1_5() {
        let points = worst_case("algo.matmul", "matmul", 160);
        let (e, r2) = fit_power_law(&points).unwrap();
        assert!((e - 1.5).abs() < 0.15, "exponent {e} (r2={r2})");
        let fit = fit_best(&points).unwrap();
        assert!(fit.model.is_superlinear(), "{:?}", fit.model);
    }

    #[test]
    fn bfs_is_linear() {
        let fit = fit_best(&worst_case("algo.bfs", "bfs", 160)).unwrap();
        assert_eq!(fit.model, GrowthModel::Linear, "r2={}", fit.r2);
    }

    #[test]
    fn hash_build_is_linear() {
        let fit = fit_best(&worst_case("algo.hash_build", "hash_build", 160)).unwrap();
        assert!(
            matches!(fit.model, GrowthModel::Linear | GrowthModel::Linearithmic),
            "{:?} (r2={})",
            fit.model,
            fit.r2
        );
    }

    #[test]
    fn quicksort_sorts_and_is_subquadratic() {
        let wl = crate::by_name("algo.quicksort").unwrap();
        let mut m = wl.build(&WorkloadParams::new(512, 1));
        let names = m.program().routines().clone();
        let mut prof = TrmsProfiler::new();
        let out = m.run_with(&mut prof).unwrap();
        assert_eq!(out.exit_value, Some(0), "array must end up sorted");
        let rep = prof.into_report(&names);
        let rr = rep.routine_by_name("quicksort").unwrap();
        let points: Vec<(f64, f64)> =
            rr.trms_curve().iter().map(|&(x, s)| (x as f64, s.max as f64)).collect();
        let fit = fit_best(&points).unwrap();
        assert!(
            matches!(fit.model, GrowthModel::Linearithmic | GrowthModel::Linear),
            "expected ~n log n on shuffled input, got {:?} (r2={})",
            fit.model,
            fit.r2
        );
    }

    /// The whole suite is sequential: trms == rms everywhere.
    #[test]
    fn sequential_suite_has_no_induced_input() {
        for wl in crate::family(Family::Algo) {
            let mut m = wl.build(&WorkloadParams::new(64, 1));
            let names = m.program().routines().clone();
            let mut prof = TrmsProfiler::new();
            m.run_with(&mut prof).unwrap();
            let rep = prof.into_report(&names);
            assert_eq!(rep.global.induced_thread, 0, "{}", wl.name);
            assert_eq!(rep.global.induced_external, 0, "{}", wl.name);
            assert_eq!(rep.global.sum_trms, rep.global.sum_rms, "{}", wl.name);
        }
    }
}
