//! A miniature relational engine: the MySQL analog.
//!
//! MySQL serves every connection on its own thread, scans tables through
//! reused I/O buffers, batches dirty pages for flushing, and talks to
//! clients over the network — the exact patterns behind the paper's
//! Figs. 4, 6, 8 and 9. The analog reproduces them with:
//!
//! * `mysql_select(fd, rows, bufsize, hdr)` — a full-table scan pulling
//!   `rows` cells from a per-table device through a `√rows`-cell buffer
//!   (each refill is external input) and reading one block-index header per
//!   chunk (√rows plain first-accesses). Hence rms ≈ 2√rows while
//!   trms ≈ rows: the rms worst-case plot grows quadratically where the
//!   trms plot is linear — Fig. 4.
//! * `buf_flush_buffered_writes(dirty, m, rounds)` — the i-th flush does
//!   `i` handshake rounds with a dirty-page producer, re-reading the same
//!   `m`-cell batch buffer each round (thread-induced) and paying
//!   merge work proportional to the data flushed so far: cost ~ i², trms
//!   ~ i·m, rms ~ m. The trms plot reveals the superlinear trend that the
//!   collapsed rms plot hides — Fig. 6.
//! * `send_eof(conn, polls)` — protocol output: reads a fixed connection
//!   header then polls a client-acknowledged flag a result-dependent number
//!   of times (each poll thread-induced): rich trms workload plot versus a
//!   collapsed rms one — Fig. 8.
//!
//! A mysqlslap-like driver spawns `threads` connection threads, each
//! scanning its own set of tables of quadratically growing sizes.

use crate::helpers::emit_join_all;
use crate::{Family, Workload, WorkloadParams};
use aprof_vm::builder::ProgramBuilder;
use aprof_vm::device::SyntheticSource;
use aprof_vm::{Machine, MachineConfig};

/// Registry entries for this module.
pub fn workloads() -> Vec<Workload> {
    vec![Workload {
        name: "mysqld",
        family: Family::MiniDb,
        description: "buffered table scans, batched flushes and protocol output \
                      under a mysqlslap-like multi-client load",
        build: mysqld,
    }]
}

const SEM_ASK: i64 = 30;
const SEM_ANS: i64 = 31;
const SEM_NEED: i64 = 32;
const SEM_READY: i64 = 33;
const LOCK_PEER: i64 = 34;
const FLUSH_M: i64 = 12;

fn mysqld(params: &WorkloadParams) -> Machine {
    let clients = params.threads.max(1) as i64;
    let tables = ((params.size as i64) / 16).clamp(3, 10); // J tables per client
    let flushes = tables; // k flush activations
    let conn_hdr = 5i64;

    let mut p = ProgramBuilder::new();
    let main = p.declare("main", 0);
    let client = p.declare("handle_connection", 4); // (idx, tables, catalog, conns)
    let select = p.declare("mysql_select", 4); // (fd, rows, bufsize, hdr) -> sum
    let send_eof = p.declare("send_eof", 2); // (conn, polls) -> acc
    let flusher = p.declare("page_cleaner", 3); // (dirty, m, flushes)
    let flush = p.declare("buf_flush_buffered_writes", 3); // (dirty, m, rounds)
    let producer = p.declare("dirty_producer", 3); // (dirty, m, total_rounds)
    let peer = p.declare("net_peer", 2); // (flag_addr, total_acks)

    {
        let mut f = p.function(select);
        let fd = f.param(0);
        let rows = f.param(1);
        let bufsize = f.param(2);
        let hdr = f.param(3);
        let buf = f.temp();
        f.alloc(buf, bufsize);
        let chunks = f.temp();
        f.div(chunks, rows, bufsize);
        let acc = f.const_temp(0);
        f.for_range(chunks, |f, c| {
            let got = f.temp();
            f.sys_read(got, fd, buf, bufsize); // kernel refills the buffer
            let haddr = f.temp();
            f.add(haddr, hdr, c);
            let h = f.temp();
            f.load(h, haddr, 0); // block-index header: one fresh cell/chunk
            f.add(acc, acc, h);
            f.for_range(bufsize, |f, i| {
                let addr = f.temp();
                f.add(addr, buf, i);
                let v = f.temp();
                f.load(v, addr, 0);
                f.add(acc, acc, v);
            });
        });
        f.ret(Some(acc));
    }
    {
        let mut f = p.function(send_eof);
        let conn = f.param(0);
        let polls = f.param(1);
        let hdr_len = f.const_temp(conn_hdr);
        let acc = f.const_temp(0);
        f.for_range(hdr_len, |f, i| {
            let addr = f.temp();
            f.add(addr, conn, i);
            let v = f.temp();
            f.load(v, addr, 0);
            f.add(acc, acc, v);
        });
        let ask = f.const_temp(SEM_ASK);
        let ans = f.const_temp(SEM_ANS);
        let lock = f.const_temp(LOCK_PEER);
        f.acquire(lock);
        f.for_range(polls, |f, _| {
            f.sem_post(ask);
            f.sem_wait(ans);
            let v = f.temp();
            f.load(v, conn, conn_hdr); // flag cell rewritten by net_peer
            f.add(acc, acc, v);
        });
        f.release(lock);
        f.ret(Some(acc));
    }
    {
        // net_peer(flag_addr, total): acknowledge every poll by rewriting
        // the shared flag (all clients share one flag cell after their
        // connection header — serialized by LOCK_PEER).
        let mut f = p.function(peer);
        let flag = f.param(0);
        let total = f.param(1);
        let ask = f.const_temp(SEM_ASK);
        let ans = f.const_temp(SEM_ANS);
        f.for_range(total, |f, k| {
            f.sem_wait(ask);
            f.store(k, flag, 0);
            f.sem_post(ans);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(flush);
        let dirty = f.param(0);
        let m = f.param(1);
        let rounds = f.param(2);
        let need = f.const_temp(SEM_NEED);
        let ready = f.const_temp(SEM_READY);
        let acc = f.const_temp(0);
        f.for_range(rounds, |f, r| {
            f.sem_post(need);
            f.sem_wait(ready);
            // Re-read the refilled dirty batch (thread-induced input).
            f.for_range(m, |f, i| {
                let addr = f.temp();
                f.add(addr, dirty, i);
                let v = f.temp();
                f.load(v, addr, 0);
                f.add(acc, acc, v);
            });
            // Merge work proportional to everything flushed so far:
            // register-only compute, so cost grows without adding input.
            let work = f.temp();
            f.mul(work, r, m);
            f.for_range(work, |f, w| {
                f.add(acc, acc, w);
            });
        });
        f.ret(Some(acc));
    }
    {
        let mut f = p.function(producer);
        let dirty = f.param(0);
        let m = f.param(1);
        let total = f.param(2);
        let need = f.const_temp(SEM_NEED);
        let ready = f.const_temp(SEM_READY);
        f.for_range(total, |f, r| {
            f.sem_wait(need);
            f.for_range(m, |f, i| {
                let v = f.temp();
                f.add(v, r, i);
                let addr = f.temp();
                f.add(addr, dirty, i);
                f.store(v, addr, 0);
            });
            f.sem_post(ready);
        });
        f.ret(None);
    }
    {
        // page_cleaner(dirty, m, k): the i-th flush does i rounds.
        let mut f = p.function(flusher);
        let dirty = f.param(0);
        let m = f.param(1);
        let k = f.param(2);
        let one = f.const_temp(1);
        f.for_range(k, |f, i| {
            let rounds = f.temp();
            f.add(rounds, i, one);
            let r = f.temp();
            f.call(Some(r), flush, &[dirty, m, rounds]);
        });
        f.ret(None);
    }
    {
        // handle_connection(idx, tables, catalog, conns):
        // catalog[j] = header base for table j; table sizes are derived
        // from j; per-client devices are fd = idx*tables + j.
        let mut f = p.function(client);
        let idx = f.param(0);
        let tables_r = f.param(1);
        let catalog = f.param(2);
        let conns = f.param(3);
        let four = f.const_temp(4);
        let one = f.const_temp(1);
        let conn = f.temp();
        f.mov(conn, conns); // all clients share one connection record + flag
        f.for_range(tables_r, |f, j| {
            let j1 = f.temp();
            f.add(j1, j, one);
            let bufsize = f.temp();
            f.mul(bufsize, j1, four); // B = 4(j+1)
            let rows = f.temp();
            f.mul(rows, bufsize, bufsize); // n = B^2
            let fd = f.temp();
            f.mul(fd, idx, tables_r);
            f.add(fd, fd, j);
            let centry = f.temp();
            f.add(centry, catalog, j);
            let hdr = f.temp();
            f.load(hdr, centry, 0);
            let sum = f.temp();
            f.call(Some(sum), select, &[fd, rows, bufsize, hdr]);
            // Result-size-dependent protocol output.
            let polls = f.temp();
            f.add(polls, j1, idx);
            let r = f.temp();
            f.call(Some(r), send_eof, &[conn, polls]);
        });
        f.ret(None);
    }
    {
        let mut f = p.function(main);
        let zero = f.const_temp(0);
        for key in [SEM_ASK, SEM_ANS, SEM_NEED, SEM_READY] {
            let k = f.const_temp(key);
            f.sem_init(k, zero);
        }
        let tables_r = f.const_temp(tables);
        let four = f.const_temp(4);
        let one = f.const_temp(1);
        // Catalog of per-table header arrays (headers hold √rows cells).
        let catalog = f.temp();
        f.alloc(catalog, tables_r);
        f.for_range(tables_r, |f, j| {
            let j1 = f.temp();
            f.add(j1, j, one);
            let hlen = f.temp();
            f.mul(hlen, j1, four); // chunks = B = 4(j+1)
            let hdr = f.temp();
            f.alloc(hdr, hlen);
            crate::helpers::emit_fill(f, hdr, hlen, 17);
            let centry = f.temp();
            f.add(centry, catalog, j);
            f.store(hdr, centry, 0);
        });
        // Shared connection record: header + ack flag.
        let conn_len = f.const_temp(conn_hdr + 1);
        let conns = f.temp();
        f.alloc(conns, conn_len);
        crate::helpers::emit_fill(&mut f, conns, conn_len, 23);
        // Flush machinery.
        let m = f.const_temp(FLUSH_M);
        let dirty = f.temp();
        f.alloc(dirty, m);
        let flushes_r = f.const_temp(flushes);
        let total_rounds = f.temp();
        f.add(total_rounds, flushes_r, one);
        f.mul(total_rounds, total_rounds, flushes_r);
        let two = f.const_temp(2);
        f.div(total_rounds, total_rounds, two); // k(k+1)/2
        let hprod = f.temp();
        f.spawn(hprod, producer, &[dirty, m, total_rounds]);
        let hflush = f.temp();
        f.spawn(hflush, flusher, &[dirty, m, flushes_r]);
        // Network peer: total acks = sum over clients and tables of polls.
        let clients_r = f.const_temp(clients);
        let total_acks = f.const_temp(0);
        f.for_range(clients_r, |f, c| {
            f.for_range(tables_r, |f, j| {
                let j1 = f.temp();
                f.add(j1, j, one);
                f.add(j1, j1, c);
                f.add(total_acks, total_acks, j1);
            });
        });
        let flag = f.temp();
        let hdr_off = f.const_temp(conn_hdr);
        f.add(flag, conns, hdr_off);
        let hpeer = f.temp();
        f.spawn(hpeer, peer, &[flag, total_acks]);
        // mysqlslap: spawn the connection threads.
        let handles = f.temp();
        f.alloc(handles, clients_r);
        f.for_range(clients_r, |f, c| {
            let h = f.temp();
            f.spawn(h, client, &[c, tables_r, catalog, conns]);
            let slot = f.temp();
            f.add(slot, handles, c);
            f.store(h, slot, 0);
        });
        emit_join_all(&mut f, handles, clients_r);
        f.join(hprod);
        f.join(hflush);
        f.join(hpeer);
        f.ret(Some(clients_r));
    }

    let mut m = Machine::new(p.build().expect("valid minidb program"))
        .with_config(MachineConfig { quantum: 24, ..MachineConfig::default() });
    // One device per (client, table): fd = client*tables + j, rows = (4(j+1))^2.
    for c in 0..clients {
        for j in 0..tables {
            let rows = (4 * (j + 1)) * (4 * (j + 1));
            let seed = params.seed ^ ((c as u64) << 32) ^ (j as u64 + 1);
            m.add_device(Box::new(SyntheticSource::new(seed, rows as u64)));
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_analysis::{fit_best, GrowthModel};
    use aprof_core::{InputPolicy, TrmsProfiler};

    fn report(params: &WorkloadParams) -> aprof_core::ProfileReport {
        let wl = crate::by_name("mysqld").unwrap();
        let mut m = wl.build(params);
        let names = m.program().routines().clone();
        let mut prof = TrmsProfiler::with_policy(InputPolicy::full());
        m.run_with(&mut prof).expect("minidb run");
        prof.into_report(&names)
    }

    fn worst_case(r: &aprof_core::RoutineReport, trms: bool) -> Vec<(f64, f64)> {
        let curve = if trms { r.trms_curve() } else { r.rms_curve() };
        curve.iter().map(|&(x, s)| (x as f64, s.max as f64)).collect()
    }

    /// Fig. 4: mysql_select's trms plot is linear; its rms plot is
    /// superlinear (quadratic, since rms ≈ 2√rows).
    #[test]
    fn mysql_select_fig4_shapes() {
        let rep = report(&WorkloadParams::new(160, 2));
        let sel = rep.routine_by_name("mysql_select").unwrap();
        assert!(sel.distinct_trms() >= 4, "need several table sizes");
        let trms_fit = fit_best(&worst_case(sel, true)).unwrap();
        let rms_fit = fit_best(&worst_case(sel, false)).unwrap();
        assert!(
            !trms_fit.model.is_superlinear(),
            "trms plot must be linear, got {:?}",
            trms_fit.model
        );
        assert!(
            rms_fit.model.is_superlinear(),
            "rms plot must look superlinear, got {:?}",
            rms_fit.model
        );
    }

    /// Fig. 6: the flush routine's rms collapses while its trms plot
    /// reveals superlinear growth.
    #[test]
    fn buf_flush_fig6_shapes() {
        let rep = report(&WorkloadParams::new(160, 2));
        let fl = rep.routine_by_name("buf_flush_buffered_writes").unwrap();
        assert!(fl.distinct_trms() >= 4);
        assert!(fl.distinct_rms() <= 2, "rms must collapse, got {}", fl.distinct_rms());
        let fit = fit_best(&worst_case(fl, true)).unwrap();
        assert!(fit.model.is_superlinear(), "trms reveals superlinearity, got {:?}", fit.model);
        assert_ne!(fit.model, GrowthModel::Cubic, "should be about quadratic");
    }

    /// Fig. 8: send_eof's trms workload plot is rich, its rms plot poor.
    #[test]
    fn send_eof_fig8_workload() {
        let rep = report(&WorkloadParams::new(160, 3));
        let se = rep.routine_by_name("send_eof").unwrap();
        assert!(se.distinct_trms() > se.distinct_rms());
        assert!(se.distinct_rms() <= 2);
        let total: u64 = se.trms_curve().iter().map(|(_, s)| s.count).sum();
        assert_eq!(total, se.merged.calls);
    }

    /// Fig. 9 / Fig. 17: minidb's induced input is predominantly external.
    #[test]
    fn minidb_external_dominates() {
        let rep = report(&WorkloadParams::new(160, 2));
        let (thread_pct, ext_pct) = rep.global.induced_split();
        assert!(ext_pct > thread_pct, "external {ext_pct}% vs thread {thread_pct}%");
        let sel = rep.routine_by_name("mysql_select").unwrap();
        let (t, e) = sel.induced_fractions();
        assert!(e > t, "mysql_select is I/O-bound");
    }
}
