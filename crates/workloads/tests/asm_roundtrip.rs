//! The workload programs double as a stress corpus for the assembler:
//! every registry program must survive print → parse → print as a fixed
//! point, and device-free programs must run identically after the trip.

use aprof_trace::RecordingTool;
use aprof_vm::{asm, Machine};
use aprof_workloads::{all, WorkloadParams};

#[test]
fn print_parse_print_is_a_fixed_point_for_every_workload() {
    let params = WorkloadParams::new(24, 2);
    for wl in all() {
        let machine = wl.build(&params);
        let printed = asm::print(machine.program());
        let reparsed = asm::parse(&printed)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{printed}", wl.name));
        let printed_again = asm::print(&reparsed);
        assert_eq!(printed, printed_again, "{}: printing is not a fixed point", wl.name);
    }
}

/// Device-free workloads run identically from the original program and
/// from the re-parsed assembly (same event stream, same result).
#[test]
fn reparsed_programs_run_identically() {
    let params = WorkloadParams::new(24, 2);
    let device_free = [
        "producer_consumer",
        "half_induced",
        "350.md",
        "351.bwaves",
        "372.smithwa",
        "359.botsspar",
        "fluidanimate",
    ];
    for name in device_free {
        let wl = aprof_workloads::by_name(name).unwrap();
        let mut original = wl.build(&params);
        let printed = asm::print(original.program());
        let mut rec_a = RecordingTool::new();
        let out_a = original.run_with(&mut rec_a).unwrap();

        let mut reparsed =
            Machine::new(asm::parse(&printed).unwrap()).with_config(original.config());
        let mut rec_b = RecordingTool::new();
        let out_b = reparsed.run_with(&mut rec_b).unwrap();

        assert_eq!(out_a.exit_value, out_b.exit_value, "{name}");
        assert_eq!(out_a.total_blocks, out_b.total_blocks, "{name}");
        assert_eq!(rec_a.trace().len(), rec_b.trace().len(), "{name}");
        assert_eq!(rec_a.trace(), rec_b.trace(), "{name}: event streams differ");
    }
}
