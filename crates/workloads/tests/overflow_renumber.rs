//! Counter-overflow renumbering (§4.4) across the whole workload registry:
//! profiling every workload with a tiny `counter_limit` — forcing frequent
//! timestamp renumberings under both schemes — must yield exactly the same
//! profile as an effectively-unbounded counter.

use aprof_core::{ProfileReport, RenumberScheme, TrmsProfiler};
use aprof_workloads::{all, Workload, WorkloadParams};

fn profile(
    wl: &Workload,
    params: &WorkloadParams,
    limit: u64,
    scheme: RenumberScheme,
) -> ProfileReport {
    let mut machine = wl.build(params);
    let names = machine.program().routines().clone();
    let mut prof = TrmsProfiler::builder().counter_limit(limit).renumber_scheme(scheme).build();
    machine.run_with(&mut prof).unwrap_or_else(|e| panic!("{} failed: {e}", wl.name));
    prof.into_report(&names)
}

/// Renumbering legitimately changes the renumbering count itself and the
/// shadow-memory footprint (renumbered tables may compact differently);
/// everything else must be identical.
fn normalized(mut report: ProfileReport) -> ProfileReport {
    report.global.renumberings = 0;
    report.global.shadow_bytes = 0;
    report
}

#[test]
fn tiny_counter_limit_profiles_match_unbounded() {
    let params = WorkloadParams::new(24, 2);
    let mut total_renumberings = 0u64;
    for wl in all() {
        let baseline =
            normalized(profile(&wl, &params, u32::MAX as u64, RenumberScheme::Paper));
        for limit in [16, 64] {
            for scheme in [RenumberScheme::Paper, RenumberScheme::Exact] {
                let overflowed = profile(&wl, &params, limit, scheme);
                total_renumberings += overflowed.global.renumberings;
                assert_eq!(
                    normalized(overflowed),
                    baseline,
                    "workload {} diverges at counter_limit={limit} under {scheme:?}",
                    wl.name
                );
            }
        }
    }
    // The registry as a whole must actually exercise the overflow path;
    // otherwise this test is vacuous.
    assert!(total_renumberings > 0, "no workload triggered a renumbering");
}
