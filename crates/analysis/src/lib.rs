//! Post-processing of input-sensitive profiles: cost plots, growth-model
//! fitting, and the evaluation metrics of §6.1 of the paper.
//!
//! An input-sensitive profile maps every distinct input size of a routine to
//! cost statistics. This crate turns those maps into the artifacts the paper
//! presents:
//!
//! * [`plot`] — extraction of *worst-case running time* plots, *average
//!   cost* plots and *workload* plots (§3) from a
//!   [`RoutineReport`](aprof_core::RoutineReport), for either metric
//!   (rms or trms).
//! * [`fit`] — least-squares growth-model fitting (constant, logarithmic,
//!   linear, linearithmic, quadratic, cubic, plus a log-log power-law fit),
//!   standing in for the "standard curve fitting techniques" of Fig. 6.
//! * [`metrics`] — routine profile richness, input volume, thread-induced
//!   and external input percentages, and the "x% of routines have metric
//!   ≥ y" curves of Figs. 15, 16, 18 and 19.
//! * [`render`] — ASCII scatter plots, aligned text tables and CSV export
//!   for the experiment harness.
//! * [`bottleneck`] — automatic asymptotic-bottleneck detection over a
//!   whole report, distinguishing genuine, rms-spurious and rms-hidden
//!   bottlenecks (extension building on §3's case studies).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottleneck;
pub mod fit;
pub mod metrics;
pub mod plot;
pub mod render;

pub use fit::{fit_best, fit_power_law, FitResult, GrowthModel};
pub use metrics::{cdf_curve, CurvePoint};
pub use plot::{CostPlot, Metric, PlotKind, Point};
