//! Post-processing of input-sensitive profiles: cost plots, growth-model
//! fitting, and the evaluation metrics of §6.1 of the paper.
//!
//! An input-sensitive profile maps every distinct input size of a routine to
//! cost statistics. This crate turns those maps into the artifacts the paper
//! presents:
//!
//! * [`plot`] — extraction of *worst-case running time* plots, *average
//!   cost* plots and *workload* plots (§3) from a
//!   [`RoutineReport`](aprof_core::RoutineReport), for either metric
//!   (rms or trms).
//! * [`fit`] — least-squares growth-model fitting (constant, logarithmic,
//!   linear, linearithmic, quadratic, cubic, plus a log-log power-law fit),
//!   standing in for the "standard curve fitting techniques" of Fig. 6.
//! * [`metrics`] — routine profile richness, input volume, thread-induced
//!   and external input percentages, and the "x% of routines have metric
//!   ≥ y" curves of Figs. 15, 16, 18 and 19.
//! * [`render`] — ASCII scatter plots, aligned text tables and CSV export
//!   for the experiment harness.
//! * [`bottleneck`] — automatic asymptotic-bottleneck detection over a
//!   whole report, distinguishing genuine, rms-spurious and rms-hidden
//!   bottlenecks (extension building on §3's case studies).
//! * [`render::html`] — the self-contained HTML report behind
//!   `aprof-cli report`.
//!
//! # Example
//!
//! ```
//! use aprof_analysis::{fit_verdict, FitVerdict, GrowthModel};
//!
//! // Quadratic (input size, cost) samples fit O(n^2)…
//! let points: Vec<(f64, f64)> = (1..30).map(|n| (n as f64, (n * n) as f64)).collect();
//! let FitVerdict::Fitted(fit) = fit_verdict(&points) else { panic!() };
//! assert_eq!(fit.model, GrowthModel::Quadratic);
//!
//! // …while a degenerate profile gets a typed refusal, not a bogus curve.
//! assert!(matches!(fit_verdict(&[(4.0, 9.0)]), FitVerdict::InsufficientData(_)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bottleneck;
pub mod fit;
pub mod metrics;
pub mod plot;
pub mod render;

pub use fit::{
    fit_best, fit_power_law, fit_verdict, FitResult, FitVerdict, GrowthModel, InsufficientReason,
};
pub use metrics::{cdf_curve, CurvePoint};
pub use plot::{CostPlot, Metric, PlotKind, Point};
pub use render::{render_report, ReportInputs};
