//! The evaluation metrics of §6.1 and their distribution curves.
//!
//! The per-routine metrics themselves (profile richness, input volume,
//! induced fractions) live on [`aprof_core::RoutineReport`]; this module
//! aggregates them across a whole report into the "a point `(x, y)` on a
//! curve means that `x%` of routines have metric at least `y`" charts used
//! by Figs. 15, 16, 18 and 19.

use aprof_core::ProfileReport;

/// One point of a distribution curve: `share`% of routines have the metric
/// ≥ `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Percentage of routines (0–100].
    pub share: f64,
    /// The metric threshold those routines meet.
    pub value: f64,
}

/// Builds the "x% of routines have metric ≥ y" curve from raw per-routine
/// values (Figs. 15/16/18/19).
///
/// # Example
///
/// ```
/// use aprof_analysis::cdf_curve;
/// let curve = cdf_curve(vec![10.0, 2.0, 5.0, 1.0]);
/// assert_eq!(curve[0].share, 25.0);
/// assert_eq!(curve[0].value, 10.0); // top 25% of routines reach >= 10
/// assert_eq!(curve[3].value, 1.0);  // 100% reach >= 1
/// ```
pub fn cdf_curve(mut values: Vec<f64>) -> Vec<CurvePoint> {
    values.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len() as f64;
    values
        .into_iter()
        .enumerate()
        .map(|(i, value)| CurvePoint { share: 100.0 * (i as f64 + 1.0) / n, value })
        .collect()
}

/// Per-routine profile richness values of a report (Fig. 15).
///
/// Routines that collected no rms values at all are skipped (no plot could
/// exist for them either way).
pub fn richness_values(report: &ProfileReport) -> Vec<f64> {
    report
        .routines
        .iter()
        .filter(|r| r.distinct_rms() > 0)
        .map(|r| r.profile_richness())
        .collect()
}

/// Per-routine input-volume values of a report (Fig. 16).
pub fn volume_values(report: &ProfileReport) -> Vec<f64> {
    report.routines.iter().map(|r| r.input_volume()).collect()
}

/// Per-routine *thread-induced input* percentages: the share of a routine's
/// reads that were thread-induced first-accesses (Fig. 18), in `[0, 100]`.
pub fn thread_induced_values(report: &ProfileReport) -> Vec<f64> {
    report.routines.iter().map(|r| 100.0 * r.induced_fractions().0).collect()
}

/// Per-routine *external input* percentages (Fig. 19), in `[0, 100]`.
pub fn external_values(report: &ProfileReport) -> Vec<f64> {
    report.routines.iter().map(|r| 100.0 * r.induced_fractions().1).collect()
}

/// Per-routine induced split for the Fig. 9 charts: for every routine with
/// any induced input, `(name, thread-induced share, external share)` of its
/// induced first-accesses, both in `[0, 100]`, summing to 100; sorted by
/// decreasing total induced fraction of reads.
pub fn induced_breakdown(report: &ProfileReport) -> Vec<(String, f64, f64)> {
    let mut rows: Vec<(String, f64, f64, f64)> = report
        .routines
        .iter()
        .filter_map(|r| {
            let induced = r.merged.induced_thread + r.merged.induced_external;
            if induced == 0 || r.merged.reads == 0 {
                return None;
            }
            let (ft, fe) = r.induced_fractions();
            let total = ft + fe;
            let thread_share = 100.0 * r.merged.induced_thread as f64 / induced as f64;
            Some((r.name.clone(), thread_share, 100.0 - thread_share, total))
        })
        .collect();
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
    rows.into_iter().map(|(n, t, e, _)| (n, t, e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_core::{RoutineReport, RoutineThreadProfile};
    use std::collections::BTreeMap;

    fn routine(name: &str, induced_thread: u64, induced_external: u64, reads: u64) -> RoutineReport {
        let mut merged = RoutineThreadProfile::default();
        merged.record(4, 2, 10);
        merged.reads = reads;
        merged.induced_thread = induced_thread;
        merged.induced_external = induced_external;
        RoutineReport { routine: 0, name: name.into(), merged, per_thread: BTreeMap::new() }
    }

    fn report(routines: Vec<RoutineReport>) -> ProfileReport {
        ProfileReport { tool: "test".into(), routines, global: Default::default() }
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let c = cdf_curve(vec![3.0, 1.0, 2.0, 2.0]);
        assert!(c.windows(2).all(|w| w[0].share < w[1].share));
        assert!(c.windows(2).all(|w| w[0].value >= w[1].value));
        assert_eq!(c.last().unwrap().share, 100.0);
    }

    #[test]
    fn breakdown_sums_to_100() {
        let rep = report(vec![routine("a", 30, 10, 100), routine("b", 0, 5, 10)]);
        let rows = induced_breakdown(&rep);
        assert_eq!(rows.len(), 2);
        for (_, t, e) in &rows {
            assert!((t + e - 100.0).abs() < 1e-9);
        }
        // b has 50% of reads induced vs a's 40% -> b sorts first.
        assert_eq!(rows[0].0, "b");
    }

    #[test]
    fn breakdown_skips_pure_computation() {
        let rep = report(vec![routine("pure", 0, 0, 50)]);
        assert!(induced_breakdown(&rep).is_empty());
    }

    #[test]
    fn value_extractors() {
        let rep = report(vec![routine("a", 10, 30, 100)]);
        assert_eq!(thread_induced_values(&rep), vec![10.0]);
        assert_eq!(external_values(&rep), vec![30.0]);
        assert_eq!(richness_values(&rep).len(), 1);
        assert_eq!(volume_values(&rep), vec![0.5]);
    }
}
