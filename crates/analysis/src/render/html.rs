//! Self-contained HTML report generation: profiles, fitted curves, CDFs,
//! bottleneck verdicts and profiler self-metrics in one file with inline
//! SVG charts and zero external assets.
//!
//! The report is deliberately deterministic for a given [`ProfileReport`]:
//! every non-reproducible value (self-metrics, timings) is emitted on a line
//! carrying `class="volatile"`, which is what the golden-file test strips.
//!
//! Chart conventions (shared with the rest of the workspace's rendering):
//! scatter marks are ≥8px with a 2px surface ring, lines are 2px with round
//! caps, gridlines are solid 1px hairlines, text never wears a series color,
//! and the two series (trms/rms) keep their hue everywhere in the file. The
//! palette is a colorblind-validated pair (worst-pair CVD ΔE ≥ 9 in both
//! light and dark mode), and every chart's data is also present in an
//! adjacent table, so color never gates the information.

use crate::bottleneck::{self, Verdict};
use crate::fit::{fit_verdict, FitVerdict};
use crate::metrics::{cdf_curve, richness_values, volume_values, CurvePoint};
use crate::plot::{CostPlot, Metric, PlotKind};
use aprof_core::ProfileReport;

/// Everything the report generator needs for one page.
pub struct ReportInputs<'a> {
    /// The profile to render.
    pub report: &'a ProfileReport,
    /// Page title (typically the workload or trace name).
    pub title: &'a str,
    /// Profiler self-metrics to include, when the run was observed.
    pub obs: Option<&'a aprof_obs::Snapshot>,
    /// Maximum number of routines to chart (ranked by bottleneck severity).
    pub top: usize,
    /// Statically inferred cost bounds (routine name → notation such as
    /// `O(n log n)`), when the guest program was available for the
    /// `aprof-bound` pass. Rendered as a column beside the fitted-curve
    /// verdicts so static and dynamic growth can be compared at a glance.
    pub bounds: Option<&'a std::collections::BTreeMap<String, String>>,
}

const PLOT_W: f64 = 560.0;
const PLOT_H: f64 = 300.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 14.0;
const MARGIN_B: f64 = 40.0;

/// Escapes text for HTML body and attribute positions.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// A deterministic compact number for labels: integers as integers,
/// fractions with three significant decimals.
fn num(v: f64) -> String {
    if !v.is_finite() {
        return "—".into();
    }
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e15 {
        let i = v as i64;
        let mut s = String::new();
        let digits = i.abs().to_string();
        let bytes = digits.as_bytes();
        for (idx, b) in bytes.iter().enumerate() {
            if idx > 0 && (bytes.len() - idx).is_multiple_of(3) {
                s.push(',');
            }
            s.push(*b as char);
        }
        if i < 0 {
            format!("-{s}")
        } else {
            s
        }
    } else {
        format!("{v:.3}")
    }
}

/// One axis: maps data values into pixel positions, optionally through
/// log10 (chosen when the data spans more than two decades).
struct Scale {
    min: f64,
    max: f64,
    log: bool,
    px_lo: f64,
    px_hi: f64,
}

impl Scale {
    fn fit(values: impl Iterator<Item = f64>, px_lo: f64, px_hi: f64) -> Scale {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in values {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if !lo.is_finite() {
            lo = 0.0;
            hi = 1.0;
        }
        if (hi - lo).abs() < 1e-12 {
            hi = lo + 1.0;
        }
        let log = lo > 0.0 && hi / lo.max(1e-12) > 100.0;
        Scale { min: lo, max: hi, log, px_lo, px_hi }
    }

    fn tr(&self, v: f64) -> f64 {
        if self.log {
            v.max(self.min).log10()
        } else {
            v
        }
    }

    fn pos(&self, v: f64) -> f64 {
        let (lo, hi) = (self.tr(self.min), self.tr(self.max));
        let t = ((self.tr(v) - lo) / (hi - lo)).clamp(0.0, 1.0);
        self.px_lo + t * (self.px_hi - self.px_lo)
    }

    /// About four clean tick values across the domain (powers of ten when
    /// the scale is logarithmic).
    fn ticks(&self) -> Vec<f64> {
        if self.log {
            let lo = self.tr(self.min).floor() as i32;
            let hi = self.tr(self.max).ceil() as i32;
            return (lo..=hi).map(|e| 10f64.powi(e)).filter(|&v| v >= self.min * 0.999 && v <= self.max * 1.001).collect();
        }
        let span = self.max - self.min;
        let raw_step = span / 4.0;
        let mag = 10f64.powf(raw_step.log10().floor());
        let step = [1.0, 2.0, 5.0, 10.0]
            .iter()
            .map(|m| m * mag)
            .find(|&s| span / s <= 5.0)
            .unwrap_or(mag * 10.0);
        let first = (self.min / step).ceil() * step;
        let mut out = Vec::new();
        let mut v = first;
        while v <= self.max + step * 1e-9 {
            out.push(v);
            v += step;
        }
        out
    }
}

/// A series to draw into one chart: scattered points plus an optional
/// fitted-curve overlay, keyed to one of the two palette slots.
struct Series<'a> {
    label: &'a str,
    css: &'a str,
    points: Vec<(f64, f64)>,
    fit_label: String,
    fit_curve: Vec<(f64, f64)>,
}

/// Renders one scatter+fit chart as inline SVG.
fn svg_chart(series: &[Series<'_>], x_label: &str, y_label: &str) -> String {
    let xs = series.iter().flat_map(|s| s.points.iter().map(|p| p.0));
    let ys = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1).chain(s.fit_curve.iter().map(|p| p.1)));
    let sx = Scale::fit(xs, MARGIN_L, PLOT_W - MARGIN_R);
    let sy = Scale::fit(ys, PLOT_H - MARGIN_B, MARGIN_T);

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg viewBox=\"0 0 {PLOT_W} {PLOT_H}\" role=\"img\" aria-label=\"{} by {}\">\n",
        esc(y_label),
        esc(x_label)
    ));
    // Hairline gridlines + muted tick labels (tabular figures via CSS).
    for t in sy.ticks() {
        let y = sy.pos(t);
        svg.push_str(&format!(
            "<line class=\"grid\" x1=\"{MARGIN_L}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\"/>\n",
            PLOT_W - MARGIN_R
        ));
        svg.push_str(&format!(
            "<text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            MARGIN_L - 6.0,
            y + 3.5,
            num(t)
        ));
    }
    for t in sx.ticks() {
        let x = sx.pos(t);
        svg.push_str(&format!(
            "<text class=\"tick\" x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
            PLOT_H - MARGIN_B + 16.0,
            num(t)
        ));
    }
    // Baseline axis.
    svg.push_str(&format!(
        "<line class=\"axis\" x1=\"{MARGIN_L}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\"/>\n",
        PLOT_H - MARGIN_B,
        PLOT_W - MARGIN_R,
        PLOT_H - MARGIN_B
    ));
    // Axis titles in muted ink.
    svg.push_str(&format!(
        "<text class=\"axis-title\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
        (MARGIN_L + PLOT_W - MARGIN_R) / 2.0,
        PLOT_H - 6.0,
        esc(x_label)
    ));
    svg.push_str(&format!(
        "<text class=\"axis-title\" x=\"12\" y=\"{:.1}\" text-anchor=\"middle\" transform=\"rotate(-90 12 {:.1})\">{}</text>\n",
        (MARGIN_T + PLOT_H - MARGIN_B) / 2.0,
        (MARGIN_T + PLOT_H - MARGIN_B) / 2.0,
        esc(y_label)
    ));
    // Fitted curves first (under the dots), then scatter marks with a 2px
    // surface ring so overlapping points stay legible.
    for s in series {
        if s.fit_curve.len() >= 2 {
            let d: Vec<String> = s
                .fit_curve
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| {
                    format!("{}{:.1} {:.1}", if i == 0 { "M" } else { "L" }, sx.pos(x), sy.pos(y))
                })
                .collect();
            svg.push_str(&format!(
                "<path class=\"fitline {}\" d=\"{}\"/>\n",
                s.css,
                d.join(" ")
            ));
        }
    }
    for s in series {
        for &(x, y) in &s.points {
            svg.push_str(&format!(
                "<circle class=\"dot {}\" cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\"><title>{}: n={}, cost={}</title></circle>\n",
                s.css,
                sx.pos(x),
                sy.pos(y),
                esc(s.label),
                num(x),
                num(y)
            ));
        }
    }
    svg.push_str("</svg>\n");

    // Legend (two series) + per-series fit labels, in text ink with a
    // colored swatch carrying identity.
    let mut legend = String::from("<div class=\"legend\">");
    for s in series {
        legend.push_str(&format!(
            "<span class=\"key\"><span class=\"swatch {}\"></span>{} — {}</span>",
            s.css,
            esc(s.label),
            esc(&s.fit_label)
        ));
    }
    legend.push_str("</div>\n");
    format!("{legend}{svg}")
}

/// Renders a single-series line chart (CDF curves). One series, so no
/// legend box: the caption names the curve.
fn svg_line_chart(points: &[CurvePoint], x_label: &str, y_label: &str) -> String {
    if points.is_empty() {
        return "<p class=\"empty\">no data</p>\n".into();
    }
    let sx = Scale::fit(points.iter().map(|p| p.share), MARGIN_L, PLOT_W - MARGIN_R);
    let sy = Scale::fit(points.iter().map(|p| p.value), PLOT_H - MARGIN_B, MARGIN_T);
    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg viewBox=\"0 0 {PLOT_W} {PLOT_H}\" role=\"img\" aria-label=\"{} by {}\">\n",
        esc(y_label),
        esc(x_label)
    ));
    for t in sy.ticks() {
        let y = sy.pos(t);
        svg.push_str(&format!(
            "<line class=\"grid\" x1=\"{MARGIN_L}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\"/>\n",
            PLOT_W - MARGIN_R
        ));
        svg.push_str(&format!(
            "<text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            MARGIN_L - 6.0,
            y + 3.5,
            num(t)
        ));
    }
    for t in sx.ticks() {
        svg.push_str(&format!(
            "<text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
            sx.pos(t),
            PLOT_H - MARGIN_B + 16.0,
            num(t)
        ));
    }
    svg.push_str(&format!(
        "<line class=\"axis\" x1=\"{MARGIN_L}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\"/>\n",
        PLOT_H - MARGIN_B,
        PLOT_W - MARGIN_R,
        PLOT_H - MARGIN_B
    ));
    svg.push_str(&format!(
        "<text class=\"axis-title\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
        (MARGIN_L + PLOT_W - MARGIN_R) / 2.0,
        PLOT_H - 6.0,
        esc(x_label)
    ));
    svg.push_str(&format!(
        "<text class=\"axis-title\" x=\"12\" y=\"{:.1}\" text-anchor=\"middle\" transform=\"rotate(-90 12 {:.1})\">{}</text>\n",
        (MARGIN_T + PLOT_H - MARGIN_B) / 2.0,
        (MARGIN_T + PLOT_H - MARGIN_B) / 2.0,
        esc(y_label)
    ));
    let d: Vec<String> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            format!("{}{:.1} {:.1}", if i == 0 { "M" } else { "L" }, sx.pos(p.share), sy.pos(p.value))
        })
        .collect();
    svg.push_str(&format!("<path class=\"fitline s1\" d=\"{}\"/>\n", d.join(" ")));
    svg.push_str("</svg>\n");
    svg
}

fn verdict_label(v: Verdict) -> &'static str {
    match v {
        Verdict::Bottleneck => "bottleneck",
        Verdict::SpuriousUnderRms => "spurious under rms",
        Verdict::HiddenFromRms => "hidden from rms",
        Verdict::Scalable => "scalable",
        Verdict::Unknown => "unknown",
    }
}

/// The embedded stylesheet: palette slots as CSS custom properties (light
/// and dark steps of the same validated hues), ink tokens for all text,
/// hairline chart chrome.
const STYLE: &str = r#"
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
  }
}
html { background: var(--page); }
body {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--ink); max-width: 72rem; margin: 0 auto; padding: 1.5rem;
}
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
h3 { font-size: 0.95rem; color: var(--ink-2); }
p, td, th { font-size: 0.85rem; }
section { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 1rem 1.25rem; margin: 1rem 0; }
table { border-collapse: collapse; width: 100%; }
th { text-align: left; color: var(--ink-2); font-weight: 600;
  border-bottom: 1px solid var(--axis); padding: 4px 8px; }
td { border-bottom: 1px solid var(--grid); padding: 4px 8px;
  font-variant-numeric: tabular-nums; }
td.name { font-family: ui-monospace, monospace; }
svg { width: 100%; height: auto; max-width: 560px; display: block; }
.grid { stroke: var(--grid); stroke-width: 1; }
.axis { stroke: var(--axis); stroke-width: 1; }
.tick, .axis-title { fill: var(--muted); font-size: 11px;
  font-family: system-ui, sans-serif; font-variant-numeric: tabular-nums; }
.dot { stroke: var(--surface); stroke-width: 2; }
.dot.s1 { fill: var(--s1); } .dot.s2 { fill: var(--s2); }
.fitline { fill: none; stroke-width: 2; stroke-linecap: round;
  stroke-linejoin: round; }
.fitline.s1 { stroke: var(--s1); } .fitline.s2 { stroke: var(--s2); }
.legend { display: flex; gap: 1.5rem; margin: 0.25rem 0 0.5rem; }
.key { font-size: 0.8rem; color: var(--ink-2); display: inline-flex;
  align-items: center; gap: 6px; }
.swatch { width: 10px; height: 10px; border-radius: 50%; display: inline-block; }
.swatch.s1 { background: var(--s1); } .swatch.s2 { background: var(--s2); }
.empty { color: var(--muted); }
.note { color: var(--muted); font-size: 0.8rem; }
.volatile { font-variant-numeric: tabular-nums; }
"#;

/// Renders the whole report page. The output is fully self-contained: one
/// HTML file, inline CSS and SVG, no scripts, no external references.
pub fn render_report(inputs: &ReportInputs<'_>) -> String {
    let report = inputs.report;
    let entries = bottleneck::analyze(report);
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str(&format!("<title>aprof report — {}</title>\n", esc(inputs.title)));
    out.push_str("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n");
    out.push_str(&format!("<style>{STYLE}</style>\n</head>\n<body>\n"));
    out.push_str(&format!(
        "<h1>aprof report — {}</h1>\n<p class=\"note\">tool: {} · input-sensitive profile \
         (cost vs. input size, rms/trms metrics)</p>\n",
        esc(inputs.title),
        esc(&report.tool)
    ));

    // §1 Global statistics.
    let g = &report.global;
    let (ind_thread, ind_ext) = g.induced_split();
    out.push_str("<section>\n<h2>Run summary</h2>\n<table>\n<tbody>\n");
    for (k, v) in [
        ("routines profiled", report.routines.len() as u64),
        ("activations", g.activations),
        ("reads", g.reads),
        ("writes", g.writes),
        ("kernel reads", g.kernel_reads),
        ("kernel writes", g.kernel_writes),
        ("counter renumberings", g.renumberings),
        ("shadow bytes", g.shadow_bytes),
    ] {
        out.push_str(&format!("<tr><td>{k}</td><td>{}</td></tr>\n", num(v as f64)));
    }
    out.push_str(&format!(
        "<tr><td>induced input (thread / external)</td><td>{:.1}% / {:.1}%</td></tr>\n",
        100.0 * ind_thread,
        100.0 * ind_ext
    ));
    out.push_str("</tbody>\n</table>\n</section>\n");

    // §2 Bottleneck verdicts.
    out.push_str("<section>\n<h2>Bottleneck verdicts</h2>\n");
    out.push_str(
        "<p class=\"note\">Routines ranked by severity (growth class × fit quality × \
         cost share). Verdicts follow the paper's §3 taxonomy: a <em>spurious</em> \
         bottleneck is superlinear only under rms; a <em>hidden</em> one only \
         shows under trms. The <em>static bound</em> column is the symbolic \
         worst-case inferred from the guest IR alone (loop trips and \
         recursion size-change); a fitted curve above its static bound is a \
         soundness bug, one well below it is imprecision.</p>\n",
    );
    out.push_str(
        "<table>\n<thead><tr><th>routine</th><th>verdict</th><th>trms fit</th>\
         <th>rms fit</th><th>static bound</th><th>cost share</th>\
         <th>severity</th></tr></thead>\n<tbody>\n",
    );
    for b in &entries {
        let trms_fit = b
            .trms_fit
            .map(|f| format!("{} (R²={:.4})", f.model.notation(), f.r2))
            .unwrap_or_else(|| "—".into());
        let rms_fit = b
            .rms_fit
            .map(|f| format!("{} (R²={:.4})", f.model.notation(), f.r2))
            .unwrap_or_else(|| "—".into());
        let bound = inputs
            .bounds
            .and_then(|m| m.get(&b.routine))
            .map_or_else(|| "—".into(), |s| s.clone());
        out.push_str(&format!(
            "<tr><td class=\"name\">{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{:.1}%</td><td>{:.3}</td></tr>\n",
            esc(&b.routine),
            verdict_label(b.verdict),
            esc(&trms_fit),
            esc(&rms_fit),
            esc(&bound),
            100.0 * b.cost_share,
            b.severity
        ));
    }
    out.push_str("</tbody>\n</table>\n</section>\n");

    // §3 Per-routine cost plots, severity order.
    out.push_str("<section>\n<h2>Cost plots</h2>\n");
    out.push_str(
        "<p class=\"note\">Worst-case cost against input size under both metrics, \
         with the selected growth fit overlaid. Axes switch to log scale when the \
         data spans more than two decades.</p>\n",
    );
    let mut charted = 0usize;
    for b in &entries {
        if charted >= inputs.top {
            break;
        }
        let Some(routine) = report.routines.iter().find(|r| r.name == b.routine) else {
            continue;
        };
        let trms = CostPlot::from_report(routine, Metric::Trms, PlotKind::WorstCase);
        let rms = CostPlot::from_report(routine, Metric::Rms, PlotKind::WorstCase);
        if trms.is_empty() && rms.is_empty() {
            continue;
        }
        let mut series = Vec::new();
        for (plot, css, label) in [(&trms, "s1", "trms"), (&rms, "s2", "rms")] {
            let xy = plot.xy();
            let verdict = fit_verdict(&xy);
            let fit_curve = match &verdict {
                FitVerdict::Fitted(f) if !xy.is_empty() => {
                    let (lo, hi) = xy.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), p| {
                        (l.min(p.0), h.max(p.0))
                    });
                    (0..=60)
                        .map(|i| {
                            let x = lo + (hi - lo) * (i as f64) / 60.0;
                            (x, f.predict(x))
                        })
                        .collect()
                }
                _ => Vec::new(),
            };
            series.push(Series {
                label,
                css,
                points: xy,
                fit_label: verdict.label(),
                fit_curve,
            });
        }
        out.push_str(&format!("<h3>{}</h3>\n", esc(&b.routine)));
        out.push_str(&svg_chart(&series, "input size n", "worst-case cost"));
        charted += 1;
    }
    if charted == 0 {
        out.push_str("<p class=\"empty\">no routine collected enough points to chart</p>\n");
    }
    out.push_str("</section>\n");

    // §4 Distribution curves (Figs. 15/16 analogs).
    out.push_str("<section>\n<h2>Distribution curves</h2>\n");
    out.push_str(
        "<p class=\"note\">A point (x, y) means: x% of routines have the metric \
         ≥ y. Steeper decay = the metric concentrates in few routines.</p>\n",
    );
    out.push_str("<h3>Profile richness (distinct input sizes / activations)</h3>\n");
    out.push_str(&svg_line_chart(
        &cdf_curve(richness_values(report)),
        "% of routines",
        "profile richness",
    ));
    out.push_str("<h3>Input volume (Σ rms / reads)</h3>\n");
    out.push_str(&svg_line_chart(
        &cdf_curve(volume_values(report)),
        "% of routines",
        "input volume",
    ));
    out.push_str("</section>\n");

    // §5 Self-metrics (volatile: run-dependent).
    out.push_str("<section>\n<h2>Profiler self-metrics</h2>\n");
    match inputs.obs {
        Some(snap) => {
            out.push_str(
                "<p class=\"note\">Counters and spans recorded by the observability \
                 layer (<code>--observe</code>) during this run.</p>\n",
            );
            out.push_str("<table>\n<thead><tr><th>counter</th><th>value</th></tr></thead>\n<tbody>\n");
            for (name, value) in &snap.counters {
                out.push_str(&format!(
                    "<tr><td class=\"name\">{}</td><td class=\"volatile\">{}</td></tr>\n",
                    esc(name),
                    num(*value as f64)
                ));
            }
            out.push_str("</tbody>\n</table>\n");
            if !snap.spans.is_empty() {
                out.push_str(
                    "<table>\n<thead><tr><th>span</th><th>count</th><th>total</th>\
                     <th>max</th></tr></thead>\n<tbody>\n",
                );
                for s in &snap.spans {
                    out.push_str(&format!(
                        "<tr><td class=\"name\">{}</td><td class=\"volatile\">{}</td>\
                         <td class=\"volatile\">{:.3} ms</td><td class=\"volatile\">{:.3} ms</td></tr>\n",
                        esc(&s.name),
                        num(s.count as f64),
                        s.total_ns as f64 / 1e6,
                        s.max_ns as f64 / 1e6
                    ));
                }
                out.push_str("</tbody>\n</table>\n");
            }
        }
        None => {
            out.push_str(
                "<p class=\"empty\">run was not observed — pass <code>--observe</code> \
                 to record profiler self-metrics</p>\n",
            );
        }
    }
    out.push_str("</section>\n");

    out.push_str(&format!(
        "<p class=\"note\">generated by aprof-analysis {} · self-contained (no external \
         assets) · every chart's data also appears in a table on this page</p>\n",
        env!("CARGO_PKG_VERSION")
    ));
    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_core::TrmsProfiler;
    use aprof_trace::{Addr, Event, RoutineTable, ThreadId, Trace};

    fn sample_report() -> ProfileReport {
        let mut names = RoutineTable::new();
        let f = names.intern("quad");
        let mut tr = Trace::new();
        for n in (4..40u64).step_by(4) {
            tr.push(ThreadId::MAIN, Event::Call { routine: f });
            for i in 0..n {
                tr.push(ThreadId::MAIN, Event::Read { addr: Addr::new(n * 1000 + i) });
            }
            tr.push(ThreadId::MAIN, Event::BasicBlock { cost: n * n });
            tr.push(ThreadId::MAIN, Event::Return { routine: f });
        }
        let mut p = TrmsProfiler::new();
        tr.replay(&mut p);
        p.into_report(&names)
    }

    #[test]
    fn report_is_self_contained_html() {
        let report = sample_report();
        let html = render_report(&ReportInputs { report: &report, title: "test", obs: None, top: 10, bounds: None });
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        assert!(html.contains("<svg"));
        assert!(html.contains("quad"));
        // Self-contained: no external fetches of any kind.
        for needle in ["http://", "https://", "src=", "href=", "url(", "@import"] {
            assert!(!html.contains(needle), "external reference via {needle:?}");
        }
    }

    #[test]
    fn report_renders_static_bound_column() {
        let report = sample_report();
        let mut bounds = std::collections::BTreeMap::new();
        bounds.insert("quad".to_string(), "O(n^2)".to_string());
        let html = render_report(&ReportInputs {
            report: &report,
            title: "b",
            obs: None,
            top: 4,
            bounds: Some(&bounds),
        });
        assert!(html.contains("<th>static bound</th>"));
        assert!(html.contains("<td>O(n^2)</td>"));
        // Without bounds the column still renders, as em-dashes.
        let html =
            render_report(&ReportInputs { report: &report, title: "b", obs: None, top: 4, bounds: None });
        assert!(html.contains("<th>static bound</th>"));
    }

    #[test]
    fn report_embeds_obs_snapshot() {
        aprof_obs::reset();
        let report = sample_report();
        let snap = aprof_obs::snapshot();
        let html = render_report(&ReportInputs {
            report: &report,
            title: "t",
            obs: Some(&snap),
            top: 4,
            bounds: None,
        });
        assert!(html.contains("vm.blocks"));
        assert!(html.contains("class=\"volatile\""));
    }

    #[test]
    fn empty_report_renders_without_panic() {
        let report = ProfileReport {
            tool: "trms".into(),
            routines: Vec::new(),
            global: Default::default(),
        };
        let html = render_report(&ReportInputs { report: &report, title: "empty", obs: None, top: 5, bounds: None });
        assert!(html.contains("no routine collected enough points"));
    }

    #[test]
    fn escapes_routine_names() {
        assert_eq!(esc("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(num(1234567.0), "1,234,567");
        assert_eq!(num(0.12345), "0.123");
        assert_eq!(num(f64::NAN), "—");
    }

    #[test]
    fn log_scale_kicks_in_over_two_decades() {
        let s = Scale::fit([1.0, 5000.0].into_iter(), 0.0, 100.0);
        assert!(s.log);
        let lin = Scale::fit([10.0, 90.0].into_iter(), 0.0, 100.0);
        assert!(!lin.log);
        assert!(!lin.ticks().is_empty());
    }
}
