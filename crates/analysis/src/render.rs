//! Rendering: ASCII scatter plots, aligned tables, CSV export, and the
//! self-contained HTML report ([`html`]).

pub mod html;

pub use html::{render_report, ReportInputs};

use crate::plot::CostPlot;

/// Renders a scatter plot as ASCII art, `width`×`height` characters plus
/// axes — the terminal stand-in for the paper's charts.
///
/// # Example
///
/// ```
/// let points: Vec<(f64, f64)> = (1..20).map(|n| (n as f64, (n * n) as f64)).collect();
/// let art = aprof_analysis::render::ascii_scatter(&points, 40, 10, "n", "cost");
/// assert!(art.contains('*'));
/// ```
pub fn ascii_scatter(
    points: &[(f64, f64)],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    if points.is_empty() {
        return format!("(no points: {y_label} vs {x_label})\n");
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    let xspan = (xmax - xmin).max(1e-9);
    let yspan = (ymax - ymin).max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in points {
        let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
        let row = (((y - ymin) / yspan) * (height - 1) as f64).round() as usize;
        grid[height - 1 - row][col] = '*';
    }
    let mut out = String::new();
    out.push_str(&format!("{y_label} [{ymin:.0} .. {ymax:.0}]\n"));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("{x_label} [{xmin:.0} .. {xmax:.0}]\n"));
    out
}

/// Renders a [`CostPlot`] with a default geometry and a title line.
pub fn render_plot(plot: &CostPlot) -> String {
    let title = format!(
        "{} — {} vs {}  ({} points)",
        plot.routine,
        plot.kind.label(),
        plot.metric.label(),
        plot.len()
    );
    format!(
        "{title}\n{}",
        ascii_scatter(&plot.xy(), 64, 16, plot.metric.label(), plot.kind.label())
    )
}

/// An aligned plain-text table builder for experiment output.
///
/// # Example
///
/// ```
/// use aprof_analysis::render::Table;
/// let mut t = Table::new(vec!["benchmark".into(), "slowdown".into()]);
/// t.row(vec!["350.md".into(), "39.6".into()]);
/// let s = t.render();
/// assert!(s.contains("350.md"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table { headers, rows: Vec::new() }
    }

    /// Appends one row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len().max(
            self.rows.iter().map(Vec::len).max().unwrap_or(0),
        );
        fn cell(row: &[String], c: usize) -> &str {
            row.get(c).map(String::as_str).unwrap_or("")
        }
        let widths: Vec<usize> = (0..cols)
            .map(|c| {
                std::iter::once(cell(&self.headers, c).len())
                    .chain(self.rows.iter().map(|r| cell(r, c).len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |row: &[String]| {
            let mut line = String::new();
            for (c, width) in widths.iter().copied().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                let text = cell(row, c);
                // Right-align numeric-looking cells, left-align labels.
                let numeric = text.chars().all(|ch| {
                    ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == '+' || ch == '%'
                }) && !text.is_empty();
                if numeric {
                    line.push_str(&format!("{text:>width$}"));
                } else {
                    line.push_str(&format!("{text:<width$}"));
                }
            }
            line.trim_end().to_owned()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (comma-separated, quoting cells containing commas).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_handles_empty() {
        let s = ascii_scatter(&[], 10, 5, "x", "y");
        assert!(s.contains("no points"));
    }

    #[test]
    fn scatter_plots_extremes() {
        let s = ascii_scatter(&[(0.0, 0.0), (10.0, 100.0)], 20, 10, "n", "cost");
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].ends_with('*'), "max lands in the top-right: {s}");
        assert!(lines[10].starts_with("| *") || lines[10].starts_with("|*"), "{s}");
    }

    #[test]
    fn table_alignment_and_padding() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a-very-long-name".into(), "1".into()]);
        t.row(vec!["b".into()]);
        let s = t.render();
        assert!(s.lines().count() == 4);
        assert!(s.contains("a-very-long-name"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x,y".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
    }
}
