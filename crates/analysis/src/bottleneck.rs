//! Automatic asymptotic-bottleneck detection.
//!
//! The paper's motivating use case: pinpoint routines whose cost grows
//! superlinearly with input size *before* large inputs are ever run. This
//! module scans a whole [`ProfileReport`], fits a growth model to every
//! routine's worst-case cost plot (under both metrics), and ranks suspects
//! by a severity score combining the growth class, the quality of the fit
//! and the routine's share of total cost. It also flags the paper's two
//! failure modes of the plain rms (§3):
//!
//! * **spurious** bottlenecks — superlinear under rms but linear or better
//!   under trms (Figs. 4–5): the "bottleneck" is an artifact of
//!   under-measured input;
//! * **hidden** bottlenecks — superlinear under trms while the rms plot is
//!   flat or collapsed (Fig. 6): invisible without induced input.

use crate::fit::{fit_best, FitResult, GrowthModel};
use crate::plot::{CostPlot, Metric, PlotKind};
use aprof_core::{ProfileReport, RoutineReport};

/// Verdict on one routine, combining both metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Superlinear under the trms: a genuine scalability risk.
    Bottleneck,
    /// Superlinear only under the rms: an artifact of under-measured input.
    SpuriousUnderRms,
    /// Superlinear under the trms while the rms plot could not show it
    /// (too few distinct rms values) — the Fig. 6 case.
    HiddenFromRms,
    /// Scales linearly or better under the trms.
    Scalable,
    /// Not enough distinct input sizes to judge.
    Unknown,
}

/// One routine's analysis.
#[derive(Debug, Clone)]
pub struct Bottleneck {
    /// Routine name.
    pub routine: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Fit of the worst-case cost against the trms (if possible).
    pub trms_fit: Option<FitResult>,
    /// Fit against the rms (if possible).
    pub rms_fit: Option<FitResult>,
    /// This routine's share of the run's total inclusive cost, in `[0, 1]`.
    pub cost_share: f64,
    /// Ranking score (higher = more urgent).
    pub severity: f64,
}

fn growth_weight(model: GrowthModel) -> f64 {
    match model {
        GrowthModel::Constant => 0.0,
        GrowthModel::Logarithmic => 0.1,
        GrowthModel::Linear => 0.3,
        GrowthModel::Linearithmic => 1.0,
        GrowthModel::Quadratic => 2.0,
        GrowthModel::Cubic => 3.0,
        GrowthModel::Exponential => 4.0,
    }
}

fn worst_case_fit(report: &RoutineReport, metric: Metric) -> (usize, Option<FitResult>) {
    let plot = CostPlot::from_report(report, metric, PlotKind::WorstCase);
    let fit = fit_best(&plot.xy()).filter(|f| f.r2 > 0.5);
    (plot.len(), fit)
}

/// Analyses every routine of a report, returning entries sorted by
/// decreasing severity.
///
/// # Example
///
/// ```
/// use aprof_analysis::bottleneck::{analyze, Verdict};
/// use aprof_core::TrmsProfiler;
/// use aprof_trace::{Addr, Event, RoutineTable, ThreadId, Trace};
///
/// // A routine whose cost is quadratic in its (trms) input size.
/// let mut names = RoutineTable::new();
/// let f = names.intern("quad");
/// let mut tr = Trace::new();
/// for n in (4..40u64).step_by(4) {
///     tr.push(ThreadId::MAIN, Event::Call { routine: f });
///     for i in 0..n {
///         tr.push(ThreadId::MAIN, Event::Read { addr: Addr::new(n * 1000 + i) });
///     }
///     tr.push(ThreadId::MAIN, Event::BasicBlock { cost: n * n });
///     tr.push(ThreadId::MAIN, Event::Return { routine: f });
/// }
/// let mut p = TrmsProfiler::new();
/// tr.replay(&mut p);
/// let report = p.into_report(&names);
/// let entries = analyze(&report);
/// assert_eq!(entries[0].routine, "quad");
/// assert_eq!(entries[0].verdict, Verdict::Bottleneck);
/// ```
pub fn analyze(report: &ProfileReport) -> Vec<Bottleneck> {
    let total_cost: u64 = report.routines.iter().map(|r| r.merged.total_cost).max().unwrap_or(0);
    let mut out: Vec<Bottleneck> = report
        .routines
        .iter()
        .map(|r| {
            let (trms_points, trms_fit) = worst_case_fit(r, Metric::Trms);
            let (rms_points, rms_fit) = worst_case_fit(r, Metric::Rms);
            let trms_super = trms_fit.map(|f| f.model.is_superlinear()).unwrap_or(false);
            let rms_super = rms_fit.map(|f| f.model.is_superlinear()).unwrap_or(false);
            let verdict = match (trms_fit, trms_super, rms_super) {
                (None, _, _) if trms_points < 3 => Verdict::Unknown,
                (_, true, _) if rms_points < 3 => Verdict::HiddenFromRms,
                (_, true, _) => Verdict::Bottleneck,
                (_, false, true) => Verdict::SpuriousUnderRms,
                (Some(_), false, false) => Verdict::Scalable,
                (None, _, _) => Verdict::Unknown,
            };
            let cost_share = if total_cost == 0 {
                0.0
            } else {
                r.merged.total_cost as f64 / total_cost as f64
            };
            let severity = match verdict {
                Verdict::Bottleneck | Verdict::HiddenFromRms => {
                    let f = trms_fit.expect("superlinear implies a fit");
                    growth_weight(f.model) * f.r2.max(0.0) * (0.05 + cost_share)
                }
                Verdict::SpuriousUnderRms => 0.01 * (0.05 + cost_share),
                _ => 0.0,
            };
            Bottleneck {
                routine: r.name.clone(),
                verdict,
                trms_fit,
                rms_fit,
                cost_share,
                severity,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.severity
            .partial_cmp(&a.severity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.routine.cmp(&b.routine))
    });
    out
}

/// Renders the analysis as an aligned table (top `limit` rows).
pub fn render(entries: &[Bottleneck], limit: usize) -> String {
    let mut table = crate::render::Table::new(vec![
        "routine".into(),
        "verdict".into(),
        "trms growth".into(),
        "rms growth".into(),
        "cost share".into(),
        "severity".into(),
    ]);
    let growth = |f: &Option<FitResult>| {
        f.map(|f| f.model.notation().to_owned()).unwrap_or_else(|| "?".into())
    };
    for e in entries.iter().take(limit) {
        table.row(vec![
            e.routine.clone(),
            format!("{:?}", e.verdict),
            growth(&e.trms_fit),
            growth(&e.rms_fit),
            format!("{:.1}%", 100.0 * e.cost_share),
            format!("{:.3}", e.severity),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_core::{CostStats, RoutineThreadProfile};
    use std::collections::BTreeMap;

    fn routine_with_curves(
        name: &str,
        trms: &[(u64, u64)],
        rms: &[(u64, u64)],
        total_cost: u64,
    ) -> RoutineReport {
        let mut merged = RoutineThreadProfile::default();
        for &(n, c) in trms {
            let mut s = CostStats::default();
            s.record(c);
            merged.trms.insert(n, s);
        }
        for &(n, c) in rms {
            let mut s = CostStats::default();
            s.record(c);
            merged.rms.insert(n, s);
        }
        merged.total_cost = total_cost;
        merged.calls = trms.len() as u64;
        RoutineReport { routine: 0, name: name.into(), merged, per_thread: BTreeMap::new() }
    }

    fn report(routines: Vec<RoutineReport>) -> ProfileReport {
        ProfileReport { tool: "test".into(), routines, global: Default::default() }
    }

    fn series(f: impl Fn(u64) -> u64) -> Vec<(u64, u64)> {
        (1..30).map(|n| (n, f(n))).collect()
    }

    #[test]
    fn detects_genuine_bottleneck() {
        let r = routine_with_curves(
            "quad",
            &series(|n| n * n),
            &series(|n| n * n),
            1000,
        );
        let entries = analyze(&report(vec![r]));
        assert_eq!(entries[0].verdict, Verdict::Bottleneck);
        assert!(entries[0].severity > 0.0);
    }

    #[test]
    fn detects_spurious_rms_bottleneck() {
        // Linear in trms, quadratic-looking in rms (rms ~ sqrt of trms).
        let trms = series(|n| 10 * n);
        let rms: Vec<(u64, u64)> = (1..30).map(|k| (k, 10 * k * k)).collect();
        let r = routine_with_curves("fig4", &trms, &rms, 500);
        let entries = analyze(&report(vec![r]));
        assert_eq!(entries[0].verdict, Verdict::SpuriousUnderRms);
    }

    #[test]
    fn detects_hidden_bottleneck() {
        // Quadratic in trms; rms collapsed onto one value (Fig. 6).
        let trms = series(|n| n * n);
        let rms = vec![(12u64, 841u64)];
        let r = routine_with_curves("fig6", &trms, &rms, 800);
        let entries = analyze(&report(vec![r]));
        assert_eq!(entries[0].verdict, Verdict::HiddenFromRms);
    }

    #[test]
    fn scalable_and_unknown() {
        let lin = routine_with_curves("lin", &series(|n| 3 * n), &series(|n| 3 * n), 100);
        let tiny = routine_with_curves("tiny", &[(5, 10)], &[(5, 10)], 10);
        let entries = analyze(&report(vec![lin, tiny]));
        let by_name = |n: &str| entries.iter().find(|e| e.routine == n).unwrap();
        assert_eq!(by_name("lin").verdict, Verdict::Scalable);
        assert_eq!(by_name("tiny").verdict, Verdict::Unknown);
        assert_eq!(by_name("lin").severity, 0.0);
    }

    #[test]
    fn severity_ranks_by_cost_share() {
        let hot = routine_with_curves("hot", &series(|n| n * n), &series(|n| n * n), 1000);
        let cold = routine_with_curves("cold", &series(|n| n * n), &series(|n| n * n), 10);
        let entries = analyze(&report(vec![cold, hot]));
        assert_eq!(entries[0].routine, "hot");
    }

    #[test]
    fn render_is_nonempty() {
        let r = routine_with_curves("quad", &series(|n| n * n), &series(|n| n * n), 100);
        let entries = analyze(&report(vec![r]));
        let s = render(&entries, 10);
        assert!(s.contains("quad"));
        assert!(s.contains("O(n^2)"));
    }
}
