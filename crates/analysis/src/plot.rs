//! Cost-plot extraction from routine profiles.

use aprof_core::RoutineReport;

/// Which input-size metric a plot is drawn against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// The read memory size (Definition 1).
    Rms,
    /// The threaded read memory size (Definition 3).
    Trms,
}

impl Metric {
    /// Lowercase label used in chart titles and CSV headers.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Rms => "rms",
            Metric::Trms => "trms",
        }
    }
}

/// Which quantity is plotted against the input size (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlotKind {
    /// Maximum cost observed at each input size (worst-case running time).
    WorstCase,
    /// Mean cost at each input size.
    Average,
    /// Number of activations at each input size (workload plot, Fig. 8).
    Workload,
}

impl PlotKind {
    /// Lowercase label used in chart titles and CSV headers.
    pub fn label(self) -> &'static str {
        match self {
            PlotKind::WorstCase => "worst-case cost",
            PlotKind::Average => "average cost",
            PlotKind::Workload => "activations",
        }
    }
}

/// One performance point of a cost plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Input size (rms or trms value).
    pub n: u64,
    /// Plotted quantity (cost or activation count).
    pub y: f64,
}

/// A cost plot of one routine: the artifact of §3's case studies.
///
/// # Example
///
/// ```
/// use aprof_analysis::{CostPlot, Metric, PlotKind};
/// use aprof_core::TrmsProfiler;
/// use aprof_trace::{Addr, Event, RoutineTable, ThreadId, Trace};
///
/// let mut names = RoutineTable::new();
/// let f = names.intern("f");
/// let mut tr = Trace::new();
/// for n in 1..=3u64 {
///     tr.push(ThreadId::MAIN, Event::Call { routine: f });
///     for i in 0..n {
///         tr.push(ThreadId::MAIN, Event::BasicBlock { cost: 2 });
///         tr.push(ThreadId::MAIN, Event::Read { addr: Addr::new(100 * n + i) });
///     }
///     tr.push(ThreadId::MAIN, Event::Return { routine: f });
/// }
/// let mut p = TrmsProfiler::new();
/// tr.replay(&mut p);
/// let report = p.into_report(&names);
/// let plot = CostPlot::from_report(
///     report.routine(f).unwrap(), Metric::Trms, PlotKind::WorstCase);
/// assert_eq!(plot.points().len(), 3); // input sizes 1, 2, 3
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostPlot {
    /// Routine name.
    pub routine: String,
    /// The metric on the x axis.
    pub metric: Metric,
    /// The quantity on the y axis.
    pub kind: PlotKind,
    points: Vec<Point>,
}

impl CostPlot {
    /// Extracts a plot from a routine report.
    pub fn from_report(report: &RoutineReport, metric: Metric, kind: PlotKind) -> CostPlot {
        let curve = match metric {
            Metric::Rms => report.rms_curve(),
            Metric::Trms => report.trms_curve(),
        };
        let points = curve
            .into_iter()
            .map(|(n, stats)| Point {
                n,
                y: match kind {
                    PlotKind::WorstCase => stats.max as f64,
                    PlotKind::Average => stats.mean(),
                    PlotKind::Workload => stats.count as f64,
                },
            })
            .collect();
        CostPlot { routine: report.name.clone(), metric, kind, points }
    }

    /// The points, sorted by input size.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of distinct input-size values (profile richness numerator).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plot has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `(n, y)` pairs as `f64`, the shape the fitting functions consume.
    pub fn xy(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.n as f64, p.y)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_core::RoutineThreadProfile;
    use std::collections::BTreeMap;

    fn report() -> RoutineReport {
        let mut merged = RoutineThreadProfile::default();
        merged.record(1, 1, 10);
        merged.record(1, 1, 30);
        merged.record(5, 2, 50);
        RoutineReport { routine: 0, name: "f".into(), merged, per_thread: BTreeMap::new() }
    }

    #[test]
    fn worst_case_takes_max() {
        let plot = CostPlot::from_report(&report(), Metric::Trms, PlotKind::WorstCase);
        assert_eq!(plot.points(), &[Point { n: 1, y: 30.0 }, Point { n: 5, y: 50.0 }]);
    }

    #[test]
    fn average_takes_mean() {
        let plot = CostPlot::from_report(&report(), Metric::Trms, PlotKind::Average);
        assert_eq!(plot.points()[0].y, 20.0);
    }

    #[test]
    fn workload_counts_activations() {
        let plot = CostPlot::from_report(&report(), Metric::Trms, PlotKind::Workload);
        assert_eq!(plot.points()[0], Point { n: 1, y: 2.0 });
        assert_eq!(plot.points()[1], Point { n: 5, y: 1.0 });
    }

    #[test]
    fn rms_axis_differs() {
        let plot = CostPlot::from_report(&report(), Metric::Rms, PlotKind::WorstCase);
        assert_eq!(plot.len(), 2);
        assert_eq!(plot.points()[1].n, 2);
        assert!(!plot.is_empty());
        assert_eq!(plot.xy()[1], (2.0, 50.0));
    }

    #[test]
    fn labels() {
        assert_eq!(Metric::Rms.label(), "rms");
        assert_eq!(PlotKind::Workload.label(), "activations");
    }
}
