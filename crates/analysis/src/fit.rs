//! Least-squares growth-model fitting.
//!
//! The paper highlights cost-plot trends with "standard curve fitting
//! techniques" (Fig. 6). This module fits the classic algorithmic growth
//! models `y = a + b·g(n)` by ordinary least squares on the transformed
//! basis `g(n)` and selects the slowest-growing model whose fit is within a
//! small tolerance of the best — so clean linear data is reported as linear
//! even though a linearithmic basis fits almost as well.


/// The candidate growth models, in increasing asymptotic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GrowthModel {
    /// `y = a` — flat.
    Constant,
    /// `y = a + b·log n`.
    Logarithmic,
    /// `y = a + b·n`.
    Linear,
    /// `y = a + b·n·log n`.
    Linearithmic,
    /// `y = a + b·n²`.
    Quadratic,
    /// `y = a + b·n³`.
    Cubic,
    /// `y = a + b·2ⁿ`. Only selected when it beats every polynomial model
    /// by a clear margin (see [`fit_best`]) — the basis explodes so fast
    /// that least squares would otherwise latch onto the largest point.
    Exponential,
}

impl GrowthModel {
    /// All models, slowest-growing first.
    pub const ALL: [GrowthModel; 7] = [
        GrowthModel::Constant,
        GrowthModel::Logarithmic,
        GrowthModel::Linear,
        GrowthModel::Linearithmic,
        GrowthModel::Quadratic,
        GrowthModel::Cubic,
        GrowthModel::Exponential,
    ];

    /// The basis transform `g(n)`.
    pub fn g(self, n: f64) -> f64 {
        let n = n.max(1.0);
        match self {
            GrowthModel::Constant => 1.0,
            GrowthModel::Logarithmic => n.ln(),
            GrowthModel::Linear => n,
            GrowthModel::Linearithmic => n * n.ln().max(1e-9),
            GrowthModel::Quadratic => n * n,
            GrowthModel::Cubic => n * n * n,
            // Clamped: 2^1024 overflows f64, and past the clamp the basis
            // is so distorted the model loses the selection anyway.
            GrowthModel::Exponential => n.min(960.0).exp2(),
        }
    }

    /// Conventional asymptotic notation for the model.
    pub fn notation(self) -> &'static str {
        match self {
            GrowthModel::Constant => "O(1)",
            GrowthModel::Logarithmic => "O(log n)",
            GrowthModel::Linear => "O(n)",
            GrowthModel::Linearithmic => "O(n log n)",
            GrowthModel::Quadratic => "O(n^2)",
            GrowthModel::Cubic => "O(n^3)",
            GrowthModel::Exponential => "O(2^n)",
        }
    }

    /// Whether the model grows faster than linear.
    pub fn is_superlinear(self) -> bool {
        matches!(
            self,
            GrowthModel::Linearithmic
                | GrowthModel::Quadratic
                | GrowthModel::Cubic
                | GrowthModel::Exponential
        )
    }
}

/// Outcome of fitting one model (or the model-selection winner).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// The fitted model.
    pub model: GrowthModel,
    /// Intercept `a`.
    pub a: f64,
    /// Slope `b` on the transformed basis.
    pub b: f64,
    /// Coefficient of determination of the fit, in `(-inf, 1]`.
    pub r2: f64,
}

impl FitResult {
    /// The fitted prediction at input size `n`.
    pub fn predict(&self, n: f64) -> f64 {
        self.a + self.b * self.model.g(n)
    }
}

/// Fits one model by ordinary least squares.
///
/// Returns `None` when fewer than two distinct input sizes are available.
pub fn fit_model(points: &[(f64, f64)], model: GrowthModel) -> Option<FitResult> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let gs: Vec<f64> = points.iter().map(|&(x, _)| model.g(x)).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
    let gm = gs.iter().sum::<f64>() / n;
    let ym = ys.iter().sum::<f64>() / n;
    let sgg: f64 = gs.iter().map(|g| (g - gm) * (g - gm)).sum();
    let sgy: f64 = gs.iter().zip(&ys).map(|(g, y)| (g - gm) * (y - ym)).sum();
    let (a, b) = if model == GrowthModel::Constant || sgg < 1e-12 {
        (ym, 0.0)
    } else {
        let b = sgy / sgg;
        (ym - b * gm, b)
    };
    let ss_res: f64 = gs.iter().zip(&ys).map(|(g, y)| (y - (a + b * g)).powi(2)).sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - ym) * (y - ym)).sum();
    let r2 = if ss_tot < 1e-12 {
        if ss_res < 1e-9 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(FitResult { model, a, b, r2 })
}

/// Fits every model and returns the slowest-growing one whose R² is within
/// `0.002` of the best (negative-slope fits of growing models are
/// discarded). Returns `None` with fewer than two points.
///
/// # Example
///
/// ```
/// use aprof_analysis::{fit_best, GrowthModel};
/// let linear: Vec<(f64, f64)> = (1..50).map(|n| (n as f64, 3.0 * n as f64 + 7.0)).collect();
/// assert_eq!(fit_best(&linear).unwrap().model, GrowthModel::Linear);
/// let quad: Vec<(f64, f64)> = (1..50).map(|n| (n as f64, (n * n) as f64)).collect();
/// assert_eq!(fit_best(&quad).unwrap().model, GrowthModel::Quadratic);
/// ```
pub fn fit_best(points: &[(f64, f64)]) -> Option<FitResult> {
    let fits: Vec<FitResult> = GrowthModel::ALL
        .iter()
        .filter(|&&m| m != GrowthModel::Exponential)
        .filter_map(|&m| fit_model(points, m))
        .filter(|f| f.model == GrowthModel::Constant || f.b >= 0.0)
        .collect();
    let best = fits.iter().map(|f| f.r2).fold(f64::NEG_INFINITY, f64::max);
    let winner = fits.into_iter().find(|f| f.r2 >= best - 0.002)?;
    // The exponential model is held to a stricter standard: it never enters
    // the closeness race above (its basis grows so fast that R² near the
    // polynomial winners is routine on noisy data) and only takes over when
    // it beats every polynomial fit by a clear margin on enough points.
    if points.len() >= 5 {
        if let Some(exp) = fit_model(points, GrowthModel::Exponential) {
            if exp.b >= 0.0 && exp.r2.is_finite() && exp.r2 > best + 0.01 {
                return Some(exp);
            }
        }
    }
    Some(winner)
}

/// Why a cost plot carries too little information to discriminate growth
/// models. Returned by [`fit_verdict`] instead of a panic or a spurious
/// perfect fit on degenerate profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsufficientReason {
    /// The profile has no `(n, cost)` points at all (the routine was never
    /// activated, or every activation was filtered out).
    EmptyProfile,
    /// A single point: every candidate curve passes through it exactly.
    SinglePoint,
    /// Two or more points, but all at the same input size — the plot is a
    /// vertical line and no basis can be regressed against `n`.
    ConstantInput,
    /// The cost never varies: consistent with `O(1)`, but with zero
    /// variance the R² of *any* model is vacuous, so no growth claim is
    /// justified.
    ConstantCost,
}

impl InsufficientReason {
    /// A short human-readable explanation for report rendering.
    pub fn describe(self) -> &'static str {
        match self {
            InsufficientReason::EmptyProfile => "empty profile (no activations)",
            InsufficientReason::SinglePoint => "single data point",
            InsufficientReason::ConstantInput => "all activations saw the same input size",
            InsufficientReason::ConstantCost => "cost is constant (no growth signal)",
        }
    }
}

/// Typed outcome of growth-model selection: either a meaningful fit or a
/// reason why the profile cannot support one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FitVerdict {
    /// Model selection succeeded on non-degenerate data.
    Fitted(FitResult),
    /// The profile is degenerate; no growth model can be claimed.
    InsufficientData(InsufficientReason),
}

impl FitVerdict {
    /// The fit, when there is one.
    pub fn fit(&self) -> Option<&FitResult> {
        match self {
            FitVerdict::Fitted(f) => Some(f),
            FitVerdict::InsufficientData(_) => None,
        }
    }

    /// Render-ready label: the asymptotic notation of a fit, or the
    /// insufficiency reason.
    pub fn label(&self) -> String {
        match self {
            FitVerdict::Fitted(f) => format!("{} (R²={:.4})", f.model.notation(), f.r2),
            FitVerdict::InsufficientData(r) => format!("insufficient data: {}", r.describe()),
        }
    }
}

/// Growth-model selection with typed handling of degenerate profiles.
///
/// Unlike [`fit_best`] — which returns `None` below two points and happily
/// reports a vacuous R²=1 "constant" fit on zero-variance data — this
/// classifies *why* a profile is unfittable: empty, single-point,
/// constant-input or constant-cost profiles come back as
/// [`FitVerdict::InsufficientData`] and everything else as
/// [`FitVerdict::Fitted`].
///
/// # Example
///
/// ```
/// use aprof_analysis::{fit_verdict, FitVerdict, GrowthModel, InsufficientReason};
/// assert_eq!(fit_verdict(&[]), FitVerdict::InsufficientData(InsufficientReason::EmptyProfile));
/// let pts: Vec<(f64, f64)> = (1..30).map(|n| (n as f64, 2.0 * n as f64)).collect();
/// assert_eq!(fit_verdict(&pts).fit().unwrap().model, GrowthModel::Linear);
/// ```
pub fn fit_verdict(points: &[(f64, f64)]) -> FitVerdict {
    match points {
        [] => return FitVerdict::InsufficientData(InsufficientReason::EmptyProfile),
        [_] => return FitVerdict::InsufficientData(InsufficientReason::SinglePoint),
        [(x0, y0), rest @ ..] => {
            if rest.iter().all(|(x, _)| (x - x0).abs() < 1e-12) {
                return FitVerdict::InsufficientData(InsufficientReason::ConstantInput);
            }
            if rest.iter().all(|(_, y)| (y - y0).abs() < 1e-12) {
                return FitVerdict::InsufficientData(InsufficientReason::ConstantCost);
            }
        }
    }
    match fit_best(points) {
        Some(fit) => FitVerdict::Fitted(fit),
        // Unreachable with ≥2 distinct inputs, but keep the API total.
        None => FitVerdict::InsufficientData(InsufficientReason::ConstantInput),
    }
}

/// Fits a pure power law `y = c·n^e` by linear regression in log-log space,
/// returning `(e, r2)`. Points with non-positive coordinates are skipped;
/// returns `None` when fewer than two remain.
///
/// # Example
///
/// ```
/// let cubic: Vec<(f64, f64)> = (1..40).map(|n| (n as f64, (n * n * n) as f64)).collect();
/// let (e, r2) = aprof_analysis::fit_power_law(&cubic).unwrap();
/// assert!((e - 3.0).abs() < 0.01);
/// assert!(r2 > 0.999);
/// ```
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let xm = logs.iter().map(|p| p.0).sum::<f64>() / n;
    let ym = logs.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = logs.iter().map(|p| (p.0 - xm) * (p.0 - xm)).sum();
    if sxx < 1e-12 {
        return None;
    }
    let sxy: f64 = logs.iter().map(|p| (p.0 - xm) * (p.1 - ym)).sum();
    let e = sxy / sxx;
    let a = ym - e * xm;
    let ss_res: f64 = logs.iter().map(|p| (p.1 - (a + e * p.0)).powi(2)).sum();
    let ss_tot: f64 = logs.iter().map(|p| (p.1 - ym) * (p.1 - ym)).sum();
    let r2 = if ss_tot < 1e-12 { 1.0 } else { 1.0 - ss_res / ss_tot };
    Some((e, r2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(f64) -> f64) -> Vec<(f64, f64)> {
        (1..=60).map(|n| (n as f64, f(n as f64))).collect()
    }

    #[test]
    fn recovers_each_model() {
        let cases: Vec<(GrowthModel, Vec<(f64, f64)>)> = vec![
            (GrowthModel::Constant, series(|_| 5.0)),
            (GrowthModel::Logarithmic, series(|n| 4.0 + 10.0 * n.ln())),
            (GrowthModel::Linear, series(|n| 2.0 * n + 1.0)),
            (GrowthModel::Linearithmic, series(|n| n * n.ln() + 3.0)),
            (GrowthModel::Quadratic, series(|n| 0.5 * n * n)),
            (GrowthModel::Cubic, series(|n| 0.1 * n * n * n + 2.0)),
        ];
        for (expect, pts) in cases {
            let fit = fit_best(&pts).unwrap();
            assert_eq!(fit.model, expect, "misfit: got {:?} ({})", fit.model, fit.r2);
            assert!(fit.r2 > 0.999, "poor fit for {expect:?}: {}", fit.r2);
        }
    }

    #[test]
    fn noisy_linear_still_linear() {
        let pts: Vec<(f64, f64)> = (1..=100)
            .map(|n| {
                let noise = ((n * 2654435761u64) % 13) as f64 - 6.0;
                (n as f64, 5.0 * n as f64 + noise)
            })
            .collect();
        assert_eq!(fit_best(&pts).unwrap().model, GrowthModel::Linear);
    }

    #[test]
    fn too_few_points() {
        assert!(fit_best(&[(1.0, 1.0)]).is_none());
        assert!(fit_best(&[]).is_none());
        assert!(fit_power_law(&[(1.0, 1.0)]).is_none());
    }

    #[test]
    fn predict_interpolates() {
        let fit = fit_best(&series(|n| 2.0 * n)).unwrap();
        assert!((fit.predict(10.0) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn superlinear_classification() {
        assert!(!GrowthModel::Linear.is_superlinear());
        assert!(GrowthModel::Quadratic.is_superlinear());
        assert_eq!(GrowthModel::Linearithmic.notation(), "O(n log n)");
    }

    #[test]
    fn verdict_empty_profile() {
        assert_eq!(
            fit_verdict(&[]),
            FitVerdict::InsufficientData(InsufficientReason::EmptyProfile)
        );
    }

    #[test]
    fn verdict_single_point() {
        assert_eq!(
            fit_verdict(&[(8.0, 42.0)]),
            FitVerdict::InsufficientData(InsufficientReason::SinglePoint)
        );
    }

    #[test]
    fn verdict_constant_input() {
        let pts = [(16.0, 3.0), (16.0, 9.0), (16.0, 27.0)];
        assert_eq!(
            fit_verdict(&pts),
            FitVerdict::InsufficientData(InsufficientReason::ConstantInput)
        );
    }

    #[test]
    fn verdict_constant_cost() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|n| (n as f64, 5.0)).collect();
        assert_eq!(
            fit_verdict(&pts),
            FitVerdict::InsufficientData(InsufficientReason::ConstantCost)
        );
        // fit_best keeps its legacy behaviour (vacuous constant fit).
        assert_eq!(fit_best(&pts).unwrap().model, GrowthModel::Constant);
    }

    #[test]
    fn verdict_fits_real_data() {
        let pts = series(|n| n * n);
        match fit_verdict(&pts) {
            FitVerdict::Fitted(f) => assert_eq!(f.model, GrowthModel::Quadratic),
            other => panic!("expected a fit, got {other:?}"),
        }
        assert!(fit_verdict(&pts).label().starts_with("O(n^2)"));
    }

    #[test]
    fn recovers_exponential() {
        let pts: Vec<(f64, f64)> = (1..=24).map(|n| (n as f64, 3.0 * (n as f64).exp2())).collect();
        let fit = fit_best(&pts).unwrap();
        assert_eq!(fit.model, GrowthModel::Exponential, "r2={}", fit.r2);
        assert!(fit.r2 > 0.999);
        assert!(fit_verdict(&pts).label().starts_with("O(2^n)"));
    }

    #[test]
    fn exponential_never_steals_polynomial_data() {
        // Perfect polynomial fits leave no margin for the exponential model.
        for pts in [series(|n| 2.0 * n + 1.0), series(|n| 0.5 * n * n), series(|n| n * n * n)] {
            assert_ne!(fit_best(&pts).unwrap().model, GrowthModel::Exponential);
        }
        // Nor does it fire below the point threshold.
        let few: Vec<(f64, f64)> = (1..=4).map(|n| (n as f64, (n as f64).exp2())).collect();
        assert_ne!(fit_best(&few).unwrap().model, GrowthModel::Exponential);
    }

    #[test]
    fn exponential_basis_is_clamped() {
        // Huge inputs must not overflow the basis into inf/NaN.
        assert!(GrowthModel::Exponential.g(1e9).is_finite());
        let pts: Vec<(f64, f64)> = (1..=10).map(|n| ((n * 1000) as f64, n as f64)).collect();
        let fit = fit_model(&pts, GrowthModel::Exponential).unwrap();
        assert!(fit.r2.is_finite() || fit.r2.is_nan());
        // And fit_best still returns something sensible.
        assert!(fit_best(&pts).is_some());
    }

    #[test]
    fn power_law_exponent_for_quadratic() {
        let (e, _) = fit_power_law(&series(|n| n * n)).unwrap();
        assert!((e - 2.0).abs() < 1e-6);
    }
}
