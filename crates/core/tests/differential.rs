//! Differential property tests: the read/write timestamping algorithm
//! (§4.2–4.4) against the naive set-based oracle (Fig. 10) on random
//! multithreaded traces.

use aprof_core::{InputPolicy, NaiveProfiler, RenumberScheme, TrmsProfiler};
use aprof_trace::{Addr, Event, RoutineId, RoutineTable, ThreadId, Trace};
use proptest::prelude::*;

const THREADS: u32 = 3;
const ROUTINES: u32 = 5;
const ADDRS: u64 = 12;

/// An abstract trace operation; the generator keeps per-thread call/return
/// nesting valid by tracking stack depths itself.
#[derive(Debug, Clone, Copy)]
enum Op {
    Call(u32, u32),
    Return(u32),
    Read(u32, u64),
    Write(u32, u64),
    KernelRead(u32, u64),
    KernelWrite(u32, u64),
    Cost(u32, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let t = 0..THREADS;
    let r = 0..ROUTINES;
    let a = 0..ADDRS;
    prop_oneof![
        3 => (t.clone(), r).prop_map(|(t, r)| Op::Call(t, r)),
        3 => t.clone().prop_map(Op::Return),
        6 => (t.clone(), a.clone()).prop_map(|(t, a)| Op::Read(t, a)),
        4 => (t.clone(), a.clone()).prop_map(|(t, a)| Op::Write(t, a)),
        1 => (t.clone(), a.clone()).prop_map(|(t, a)| Op::KernelRead(t, a)),
        2 => (t.clone(), a).prop_map(|(t, a)| Op::KernelWrite(t, a)),
        2 => (t, 1u64..5).prop_map(|(t, c)| Op::Cost(t, c)),
    ]
}

/// Turns a raw op sequence into a well-formed serialized trace: inserts
/// thread switches between ops of different threads and drops returns that
/// would underflow a thread's stack.
fn build_trace(ops: &[Op]) -> (RoutineTable, Trace) {
    let mut names = RoutineTable::new();
    let routines: Vec<RoutineId> =
        (0..ROUTINES).map(|i| names.intern(&format!("r{i}"))).collect();
    let mut depths = vec![0usize; THREADS as usize];
    let mut stacks: Vec<Vec<RoutineId>> = vec![Vec::new(); THREADS as usize];
    let mut current: Option<u32> = None;
    let mut trace = Trace::new();
    let emit = |trace: &mut Trace, current: &mut Option<u32>, t: u32, e: Event| {
        if current.is_some() && *current != Some(t) {
            trace.push(ThreadId::new(t), Event::ThreadSwitch);
        }
        *current = Some(t);
        trace.push(ThreadId::new(t), e);
    };
    for &op in ops {
        match op {
            Op::Call(t, r) => {
                depths[t as usize] += 1;
                stacks[t as usize].push(routines[r as usize]);
                emit(&mut trace, &mut current, t, Event::Call { routine: routines[r as usize] });
            }
            Op::Return(t) => {
                if depths[t as usize] > 0 {
                    depths[t as usize] -= 1;
                    let r = stacks[t as usize].pop().expect("stack tracked with depth");
                    emit(&mut trace, &mut current, t, Event::Return { routine: r });
                }
            }
            Op::Read(t, a) => emit(&mut trace, &mut current, t, Event::Read { addr: Addr::new(a) }),
            Op::Write(t, a) => {
                emit(&mut trace, &mut current, t, Event::Write { addr: Addr::new(a) })
            }
            Op::KernelRead(t, a) => {
                emit(&mut trace, &mut current, t, Event::KernelRead { addr: Addr::new(a) })
            }
            Op::KernelWrite(t, a) => {
                emit(&mut trace, &mut current, t, Event::KernelWrite { addr: Addr::new(a) })
            }
            Op::Cost(t, c) => {
                emit(&mut trace, &mut current, t, Event::BasicBlock { cost: c })
            }
        }
    }
    (names, trace)
}

type Summary = Vec<(ThreadId, RoutineId, u64, u64, u64)>;

fn run_engine(trace: &Trace, policy: InputPolicy, limit: u64, scheme: RenumberScheme) -> Summary {
    let mut p = TrmsProfiler::builder()
        .policy(policy)
        .counter_limit(limit)
        .renumber_scheme(scheme)
        .log_activations(true)
        .build();
    trace.replay(&mut p);
    p.activations().iter().map(|r| (r.thread, r.routine, r.trms, r.rms, r.cost)).collect()
}

fn run_oracle(trace: &Trace, policy: InputPolicy) -> Summary {
    let mut p = NaiveProfiler::with_policy(policy);
    trace.replay(&mut p);
    p.activations().iter().map(|r| (r.thread, r.routine, r.trms, r.rms, r.cost)).collect()
}

/// Like [`run_engine`], but dispatching through [`Trace::replay_batched`]
/// with the given chunk size (exercising the same-thread read-run fast
/// paths of `Tool::on_batch`).
fn run_engine_batched(trace: &Trace, policy: InputPolicy, chunk: usize) -> Summary {
    let mut p = TrmsProfiler::builder().policy(policy).log_activations(true).build();
    trace.replay_batched(&mut p, chunk);
    p.activations().iter().map(|r| (r.thread, r.routine, r.trms, r.rms, r.cost)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Engine == oracle under the full policy.
    #[test]
    fn engine_matches_oracle_full(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let (_names, trace) = build_trace(&ops);
        prop_assert_eq!(
            run_engine(&trace, InputPolicy::full(), u32::MAX as u64, RenumberScheme::Paper),
            run_oracle(&trace, InputPolicy::full())
        );
    }

    /// Engine == oracle under every partial policy.
    #[test]
    fn engine_matches_oracle_all_policies(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let (_names, trace) = build_trace(&ops);
        for policy in [
            InputPolicy::rms_only(),
            InputPolicy::thread_only(),
            InputPolicy::external_only(),
        ] {
            prop_assert_eq!(
                run_engine(&trace, policy, u32::MAX as u64, RenumberScheme::Paper),
                run_oracle(&trace, policy)
            );
        }
    }

    /// Frequent renumbering (both schemes) changes nothing.
    #[test]
    fn renumbering_is_transparent(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let (_names, trace) = build_trace(&ops);
        let baseline = run_engine(
            &trace, InputPolicy::full(), u32::MAX as u64, RenumberScheme::Paper);
        for scheme in [RenumberScheme::Paper, RenumberScheme::Exact] {
            prop_assert_eq!(
                run_engine(&trace, InputPolicy::full(), 64, scheme),
                baseline.clone()
            );
        }
    }

    /// Inequality 1: trms >= rms for every activation.
    #[test]
    fn trms_dominates_rms(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let (_names, trace) = build_trace(&ops);
        for (_, _, trms, rms, _) in
            run_engine(&trace, InputPolicy::full(), u32::MAX as u64, RenumberScheme::Paper)
        {
            prop_assert!(trms >= rms);
        }
    }

    /// Batched replay == sequential replay == oracle, for chunk sizes that
    /// land boundaries everywhere (mid-run, on switches, degenerate 1-event
    /// chunks, whole-trace chunks).
    #[test]
    fn batched_replay_matches_sequential(
        ops in prop::collection::vec(op_strategy(), 1..250),
        chunk in 1usize..64,
    ) {
        let (_names, trace) = build_trace(&ops);
        let sequential = run_engine(
            &trace, InputPolicy::full(), u32::MAX as u64, RenumberScheme::Paper);
        prop_assert_eq!(
            run_engine_batched(&trace, InputPolicy::full(), chunk),
            sequential.clone()
        );
        for chunk in [1, 2, trace.len().max(1), trace.len() + 7] {
            prop_assert_eq!(
                run_engine_batched(&trace, InputPolicy::full(), chunk),
                sequential.clone()
            );
        }
        prop_assert_eq!(
            run_engine_batched(&trace, InputPolicy::full(), 16),
            run_oracle(&trace, InputPolicy::full())
        );
    }

    /// Batched replay matches sequential replay under every partial policy
    /// (the induced-access branches differ per policy, so the fast path
    /// must agree in all of them).
    #[test]
    fn batched_replay_matches_all_policies(
        ops in prop::collection::vec(op_strategy(), 1..150),
        chunk in 1usize..48,
    ) {
        let (_names, trace) = build_trace(&ops);
        for policy in [
            InputPolicy::rms_only(),
            InputPolicy::thread_only(),
            InputPolicy::external_only(),
        ] {
            prop_assert_eq!(
                run_engine_batched(&trace, policy, chunk),
                run_engine(&trace, policy, u32::MAX as u64, RenumberScheme::Paper)
            );
        }
    }

    /// The lean RmsProfiler's batched fast path agrees with its own
    /// sequential dispatch on kernel-free traces.
    #[test]
    fn batched_lean_rms_matches_sequential(
        ops in prop::collection::vec(op_strategy(), 1..200),
        chunk in 1usize..48,
    ) {
        let kernel_free: Vec<Op> = ops
            .into_iter()
            .filter(|op| !matches!(op, Op::KernelRead(..) | Op::KernelWrite(..)))
            .collect();
        let (_names, trace) = build_trace(&kernel_free);
        let run = |batched: Option<usize>| -> Vec<_> {
            let mut p = aprof_core::RmsProfiler::with_activation_log();
            match batched {
                Some(chunk) => trace.replay_batched(&mut p, chunk),
                None => trace.replay(&mut p),
            }
            p.activations()
                .iter()
                .map(|r| (r.thread, r.routine, r.rms, r.cost))
                .collect()
        };
        prop_assert_eq!(run(Some(chunk)), run(None));
    }

    /// The lean RmsProfiler agrees with the engine's rms on kernel-free
    /// traces (the lean tool ignores kernel events by design).
    #[test]
    fn lean_rms_matches_engine(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let kernel_free: Vec<Op> = ops
            .into_iter()
            .filter(|op| !matches!(op, Op::KernelRead(..) | Op::KernelWrite(..)))
            .collect();
        let (_names, trace) = build_trace(&kernel_free);
        let engine: Vec<_> =
            run_engine(&trace, InputPolicy::full(), u32::MAX as u64, RenumberScheme::Paper)
                .into_iter()
                .map(|(t, r, _, rms, cost)| (t, r, rms, cost))
                .collect();
        let mut lean = aprof_core::RmsProfiler::with_activation_log();
        trace.replay(&mut lean);
        let lean: Vec<_> = lean
            .activations()
            .iter()
            .map(|r| (r.thread, r.routine, r.rms, r.cost))
            .collect();
        prop_assert_eq!(engine, lean);
    }
}
