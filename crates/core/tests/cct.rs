//! Integration tests for calling-context-sensitive profiling.

use aprof_core::cct::CctNodeId;
use aprof_core::TrmsProfiler;
use aprof_trace::{Addr, Event, RoutineTable, ThreadId, Trace};

/// `leaf` is called from two different parents with different input sizes;
/// the flat profile merges them, the CCT keeps them apart.
#[test]
fn contexts_separate_what_flat_profiles_merge() {
    let mut names = RoutineTable::new();
    let main_r = names.intern("main");
    let small_caller = names.intern("small_caller");
    let big_caller = names.intern("big_caller");
    let leaf = names.intern("leaf");
    let t = ThreadId::MAIN;
    let mut trace = Trace::new();
    trace.push(t, Event::Call { routine: main_r });
    // small_caller -> leaf reads 2 cells
    trace.push(t, Event::Call { routine: small_caller });
    trace.push(t, Event::Call { routine: leaf });
    for a in 0..2u64 {
        trace.push(t, Event::Read { addr: Addr::new(a) });
    }
    trace.push(t, Event::Return { routine: leaf });
    trace.push(t, Event::Return { routine: small_caller });
    // big_caller -> leaf reads 50 cells
    trace.push(t, Event::Call { routine: big_caller });
    trace.push(t, Event::Call { routine: leaf });
    for a in 100..150u64 {
        trace.push(t, Event::Read { addr: Addr::new(a) });
    }
    trace.push(t, Event::Return { routine: leaf });
    trace.push(t, Event::Return { routine: big_caller });
    trace.push(t, Event::Return { routine: main_r });

    let mut profiler = TrmsProfiler::builder().calling_contexts(true).build();
    trace.replay(&mut profiler);
    let (report, cct) = profiler.into_report_and_cct(&names);
    let cct = cct.expect("cct enabled");

    // Flat: leaf has both sizes merged under one routine.
    let flat = report.routine(leaf).unwrap();
    assert_eq!(flat.distinct_trms(), 2);
    assert_eq!(flat.merged.calls, 2);

    // CCT: two distinct leaf contexts, each with one size.
    let hot = cct.hottest(&names);
    let leaf_contexts: Vec<_> =
        hot.iter().filter(|c| c.path.ends_with("-> leaf")).collect();
    assert_eq!(leaf_contexts.len(), 2, "{hot:?}");
    for ctx in &leaf_contexts {
        assert_eq!(ctx.calls, 1);
        assert_eq!(ctx.distinct_trms, 1);
    }
    let big = leaf_contexts.iter().find(|c| c.path.contains("big_caller")).unwrap();
    assert_eq!(big.sum_trms, 50);
    let small = leaf_contexts.iter().find(|c| c.path.contains("small_caller")).unwrap();
    assert_eq!(small.sum_trms, 2);
}

/// Contexts are shared across threads; profiles accumulate from both.
#[test]
fn contexts_shared_across_threads() {
    let mut names = RoutineTable::new();
    let worker = names.intern("worker");
    let step = names.intern("step");
    let mut trace = Trace::new();
    for tid in 0..3u32 {
        let t = ThreadId::new(tid);
        if tid > 0 {
            trace.push(t, Event::ThreadSwitch);
        }
        trace.push(t, Event::Call { routine: worker });
        trace.push(t, Event::Call { routine: step });
        trace.push(t, Event::Read { addr: Addr::new(1000 + tid as u64) });
        trace.push(t, Event::Return { routine: step });
        trace.push(t, Event::Return { routine: worker });
    }
    let mut profiler = TrmsProfiler::builder().calling_contexts(true).build();
    trace.replay(&mut profiler);
    let (_report, cct) = profiler.into_report_and_cct(&names);
    let cct = cct.unwrap();
    // worker and worker->step: exactly two non-root contexts.
    assert_eq!(cct.len(), 3);
    let hot = cct.hottest(&names);
    let step_ctx = hot.iter().find(|c| c.path == "worker -> step").unwrap();
    assert_eq!(step_ctx.calls, 3, "all three threads share the context");
}

/// Disabled by default: no CCT is built.
#[test]
fn cct_off_by_default() {
    let mut names = RoutineTable::new();
    let f = names.intern("f");
    let mut trace = Trace::new();
    trace.push(ThreadId::MAIN, Event::Call { routine: f });
    trace.push(ThreadId::MAIN, Event::Return { routine: f });
    let mut profiler = TrmsProfiler::new();
    trace.replay(&mut profiler);
    assert!(profiler.cct().is_none());
    let (_report, cct) = profiler.into_report_and_cct(&names);
    assert!(cct.is_none());
}

/// The root node never accumulates activations.
#[test]
fn root_stays_empty() {
    let mut names = RoutineTable::new();
    let f = names.intern("f");
    let mut trace = Trace::new();
    for _ in 0..5 {
        trace.push(ThreadId::MAIN, Event::Call { routine: f });
        trace.push(ThreadId::MAIN, Event::Return { routine: f });
    }
    let mut profiler = TrmsProfiler::builder().calling_contexts(true).build();
    trace.replay(&mut profiler);
    let cct = profiler.cct().unwrap();
    assert_eq!(cct.profile(CctNodeId::ROOT).calls, 0);
    assert_eq!(cct.len(), 2);
    assert_eq!(cct.profile(CctNodeId(1)).calls, 5);
}
