//! Global timestamp renumbering on counter overflow (§4.4 of the paper).
//!
//! The global counter is shared by all threads and is bumped on every call,
//! thread switch and kernel write, so long-running sessions overflow the
//! 32-bit timestamps held in shadow memory. Overflow would corrupt the
//! partial order between memory and routine timestamps, so the profiler
//! periodically renumbers every timestamp while preserving exactly the
//! comparisons the algorithm performs:
//!
//! * `ts_t[l]` vs routine timestamps `S_t[i].ts` of the same thread,
//! * `ts_t[l]` vs the global write timestamp `wts[l]` of the same location.
//!
//! Order between timestamps of *different* locations is irrelevant and may
//! change (the paper's key observation).
//!
//! Two schemes are provided:
//!
//! * [`RenumberScheme::Paper`] — the paper's algorithm: collect the (all
//!   distinct) timestamps of pending activations into a sorted array `A`;
//!   re-assign routine timestamps by rank; then re-assign each memory
//!   timestamp by locating the band `[A[q], A[q+1])` containing it and
//!   picking one of three slots inside the band according to whether
//!   `ts_t[l]` is less than, equal to, or greater than `wts[l]`. The paper
//!   spaces bands by 3; we use a stride of 4 so that band `q` owns slots
//!   `{4(q+1), 4(q+1)+1, 4(q+1)+2}` and the values `{1, 2, 3}` remain for
//!   timestamps older than every pending activation, keeping `0` free as
//!   the never-accessed sentinel.
//! * [`RenumberScheme::Exact`] — a straightforward order-preserving rank
//!   compaction of *every* live timestamp. Asymptotically heavier (it
//!   sorts all memory timestamps, not only the pending-activation ones) but
//!   obviously correct; it exists as a differential-testing oracle for the
//!   paper scheme.

use crate::trms::ThreadState;
use aprof_shadow::ShadowMemory;
use std::cmp::Ordering;

/// Which renumbering algorithm a [`TrmsProfiler`](crate::TrmsProfiler) uses
/// when its counter reaches the configured limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RenumberScheme {
    /// The paper's §4.4 scheme (rank bands over pending-activation stamps).
    #[default]
    Paper,
    /// Exact rank compaction of all live timestamps (testing oracle).
    Exact,
}

/// Renumbers all timestamps, resetting `count` to a small value.
pub(crate) fn run(
    scheme: RenumberScheme,
    threads: &mut [ThreadState],
    wts: &mut ShadowMemory<u64>,
    count: &mut u64,
) {
    match scheme {
        RenumberScheme::Paper => paper(threads, wts, count),
        RenumberScheme::Exact => exact(threads, wts, count),
    }
}

/// Largest index `j` with `a[j] <= v`.
fn rank_le(a: &[u64], v: u64) -> Option<usize> {
    a.partition_point(|&x| x <= v).checked_sub(1)
}

fn paper(threads: &mut [ThreadState], wts: &mut ShadowMemory<u64>, count: &mut u64) {
    // Lines 1-4: collect the timestamps of all pending activations, across
    // all threads, in increasing order. They are all distinct because every
    // call consumes a fresh counter value.
    let mut a: Vec<u64> = threads.iter().flat_map(|t| t.stack.iter().map(|f| f.ts)).collect();
    a.sort_unstable();
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "activation timestamps must be distinct");

    let band = |q: Option<usize>| -> u64 {
        match q {
            Some(q) => 4 * (q as u64 + 1),
            None => 0,
        }
    };

    // Lines 9-17: re-assign thread-specific memory timestamps, consulting
    // the (still old) global write timestamps.
    for st in threads.iter_mut() {
        let wts_ref = &*wts;
        st.ts.for_each_mut(|addr, v| {
            let lts = *v;
            if lts == 0 {
                return; // never accessed by this thread
            }
            let packed = wts_ref.get(addr);
            let j = rank_le(&a, lts);
            *v = if packed == 0 {
                // Never written: only the order against routine timestamps
                // matters; any in-band slot works.
                if j.is_some() {
                    band(j) + 2
                } else {
                    2
                }
            } else {
                let w = packed >> 1;
                let q = rank_le(&a, w);
                if j != q {
                    // Different bands: band order alone preserves both the
                    // lts-vs-wts and the lts-vs-routine comparisons.
                    if j.is_some() {
                        band(j)
                    } else {
                        1
                    }
                } else {
                    // Same band: pick the slot encoding the lts-vs-wts
                    // relation (cases 1-3 of §4.4).
                    let b = band(q);
                    match lts.cmp(&w) {
                        Ordering::Less => {
                            if b == 0 {
                                1
                            } else {
                                b
                            }
                        }
                        Ordering::Equal => {
                            if b == 0 {
                                2
                            } else {
                                b + 1
                            }
                        }
                        Ordering::Greater => {
                            if b == 0 {
                                3
                            } else {
                                b + 2
                            }
                        }
                    }
                }
            };
        });
    }

    // Line 18: re-assign global write timestamps to the middle slot of
    // their band, preserving the kernel-writer tag.
    wts.for_each_mut(|_, v| {
        if *v == 0 {
            return;
        }
        let w = *v >> 1;
        let kernel = *v & 1;
        let new = match rank_le(&a, w) {
            Some(q) => 4 * (q as u64 + 1) + 1,
            None => 2,
        };
        *v = (new << 1) | kernel;
    });

    // Lines 5-8: re-assign routine timestamps by rank.
    for st in threads.iter_mut() {
        for f in st.stack.iter_mut() {
            let rank = a.binary_search(&f.ts).expect("pending activation timestamp must be in A");
            f.ts = 4 * (rank as u64 + 1);
        }
    }

    // Line 19: the counter restarts above every assigned stamp.
    *count = 4 * (a.len() as u64 + 2);
}

fn exact(threads: &mut [ThreadState], wts: &mut ShadowMemory<u64>, count: &mut u64) {
    // Gather every live timestamp value.
    let mut values: Vec<u64> =
        threads.iter().flat_map(|t| t.stack.iter().map(|f| f.ts)).collect();
    for st in threads.iter_mut() {
        st.ts.for_each_mut(|_, v| {
            if *v != 0 {
                values.push(*v);
            }
        });
    }
    wts.for_each_mut(|_, v| {
        if *v != 0 {
            values.push(*v >> 1);
        }
    });
    values.sort_unstable();
    values.dedup();

    let remap = |v: u64| -> u64 {
        (values.binary_search(&v).expect("live timestamp must be collected") as u64) + 1
    };

    for st in threads.iter_mut() {
        for f in st.stack.iter_mut() {
            f.ts = remap(f.ts);
        }
        st.ts.for_each_mut(|_, v| {
            if *v != 0 {
                *v = remap(*v);
            }
        });
    }
    wts.for_each_mut(|_, v| {
        if *v != 0 {
            let kernel = *v & 1;
            *v = (remap(*v >> 1) << 1) | kernel;
        }
    });
    *count = values.len() as u64 + 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InputPolicy, TrmsProfiler};
    use aprof_trace::{Addr, Event, RoutineId, RoutineTable, ThreadId, Trace};

    /// A trace with nesting, cross-thread writes and kernel I/O whose
    /// activation log must be identical with and without renumbering.
    fn busy_trace() -> (RoutineTable, Trace) {
        let mut names = RoutineTable::new();
        let f = names.intern("f");
        let g = names.intern("g");
        let h = names.intern("h");
        let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
        let mut tr = Trace::new();
        tr.push(t1, Event::Call { routine: f });
        for i in 0..50u64 {
            tr.push(t1, Event::Call { routine: g });
            tr.push(t1, Event::Read { addr: Addr::new(i % 7) });
            tr.push(t1, Event::Write { addr: Addr::new(64 + i % 11) });
            tr.push(t1, Event::Read { addr: Addr::new(64 + (i + 3) % 11) });
            if i % 4 == 0 {
                tr.push(t1, Event::KernelWrite { addr: Addr::new(128 + i % 5) });
                tr.push(t1, Event::Read { addr: Addr::new(128 + i % 5) });
            }
            tr.push(t1, Event::Return { routine: g });
            tr.push(t2, Event::ThreadSwitch);
            tr.push(t2, Event::Call { routine: h });
            tr.push(t2, Event::Write { addr: Addr::new(i % 7) });
            tr.push(t2, Event::Read { addr: Addr::new(64 + i % 11) });
            tr.push(t2, Event::Return { routine: h });
            tr.push(t1, Event::ThreadSwitch);
        }
        tr.push(t1, Event::Return { routine: f });
        (names, tr)
    }

    fn activations_with(limit: u64, scheme: RenumberScheme) -> (Vec<(RoutineId, u64, u64)>, u64) {
        let (_names, tr) = busy_trace();
        let mut p = TrmsProfiler::builder()
            .policy(InputPolicy::full())
            .counter_limit(limit)
            .renumber_scheme(scheme)
            .log_activations(true)
            .build();
        tr.replay(&mut p);
        let renumberings = p.renumberings();
        (p.activations().iter().map(|r| (r.routine, r.trms, r.rms)).collect(), renumberings)
    }

    #[test]
    fn renumbering_preserves_profiles_paper_scheme() {
        let (baseline, n0) = activations_with(u32::MAX as u64, RenumberScheme::Paper);
        assert_eq!(n0, 0, "baseline must not renumber");
        let (frequent, n1) = activations_with(32, RenumberScheme::Paper);
        assert!(n1 > 5, "small limit must trigger many renumberings, got {n1}");
        assert_eq!(baseline, frequent);
    }

    #[test]
    fn renumbering_preserves_profiles_exact_scheme() {
        let (baseline, _) = activations_with(u32::MAX as u64, RenumberScheme::Exact);
        let (frequent, n1) = activations_with(64, RenumberScheme::Exact);
        assert!(n1 > 0);
        assert_eq!(baseline, frequent);
    }

    #[test]
    fn paper_and_exact_schemes_agree() {
        let (paper, _) = activations_with(48, RenumberScheme::Paper);
        let (exact, _) = activations_with(48, RenumberScheme::Exact);
        assert_eq!(paper, exact);
    }

    #[test]
    fn rank_le_behaviour() {
        let a = [10u64, 20, 30];
        assert_eq!(rank_le(&a, 5), None);
        assert_eq!(rank_le(&a, 10), Some(0));
        assert_eq!(rank_le(&a, 29), Some(1));
        assert_eq!(rank_le(&a, 99), Some(2));
        assert_eq!(rank_le(&[], 7), None);
    }
}
