//! Selection of which induced first-accesses count as input.

/// Which induced first-accesses contribute to the threaded read memory size.
///
/// A read is an *induced first-access* when the latest write to the cell was
/// performed by another thread or by the kernel and the reading activation
/// has not accessed the cell since (Definition 2). The paper distinguishes
/// **thread-induced** input (writer was another thread) from **external**
/// input (writer was the kernel, i.e. I/O); Fig. 7 plots the same routine
/// under rms, trms with external input only, and full trms. This policy
/// reproduces those variants from a single engine: an induced access whose
/// source is disabled falls back to the plain first-access rule, so with
/// both sources disabled the trms degenerates exactly to the rms.
///
/// # Example
///
/// ```
/// use aprof_core::InputPolicy;
/// let full = InputPolicy::full();
/// assert!(full.thread_induced && full.external);
/// assert_eq!(InputPolicy::default(), full);
/// assert!(!InputPolicy::rms_only().thread_induced);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InputPolicy {
    /// Count induced first-accesses caused by writes of other threads.
    pub thread_induced: bool,
    /// Count induced first-accesses caused by kernel writes (external I/O).
    pub external: bool,
}

impl InputPolicy {
    /// Full trms: both thread-induced and external input count (Fig. 7c).
    pub const fn full() -> Self {
        InputPolicy { thread_induced: true, external: true }
    }

    /// External input only (Fig. 7b).
    pub const fn external_only() -> Self {
        InputPolicy { thread_induced: false, external: true }
    }

    /// Thread-induced input only.
    pub const fn thread_only() -> Self {
        InputPolicy { thread_induced: true, external: false }
    }

    /// No induced input: the trms degenerates to the rms (Fig. 7a).
    pub const fn rms_only() -> Self {
        InputPolicy { thread_induced: false, external: false }
    }

    /// Whether an induced access from the given source counts.
    pub const fn counts(&self, kernel_writer: bool) -> bool {
        if kernel_writer {
            self.external
        } else {
            self.thread_induced
        }
    }
}

impl Default for InputPolicy {
    fn default() -> Self {
        InputPolicy::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(InputPolicy::full(), InputPolicy { thread_induced: true, external: true });
        assert_eq!(
            InputPolicy::external_only(),
            InputPolicy { thread_induced: false, external: true }
        );
        assert_eq!(
            InputPolicy::thread_only(),
            InputPolicy { thread_induced: true, external: false }
        );
        assert_eq!(InputPolicy::rms_only(), InputPolicy { thread_induced: false, external: false });
    }

    #[test]
    fn counts_by_source() {
        assert!(InputPolicy::full().counts(true));
        assert!(InputPolicy::full().counts(false));
        assert!(InputPolicy::external_only().counts(true));
        assert!(!InputPolicy::external_only().counts(false));
        assert!(!InputPolicy::rms_only().counts(true));
        assert!(!InputPolicy::rms_only().counts(false));
    }
}
