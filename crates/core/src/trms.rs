//! The read/write timestamping algorithm (§4.2–4.3 of the paper).

use crate::cct::{Cct, CctNodeId};
use crate::profile::{ActivationRecord, GlobalStats, ProfileReport, RoutineThreadProfile};
use crate::renumber::{self, RenumberScheme};
use crate::InputPolicy;
use aprof_shadow::ShadowMemory;
use aprof_trace::{Addr, Event, RoutineId, RoutineTable, ThreadId, TimedEvent, Tool};
use std::collections::BTreeMap;

/// Default counter limit: 32-bit timestamps, as stored by the paper's
/// three-level shadow memory chunks.
const DEFAULT_COUNTER_LIMIT: u64 = u32::MAX as u64;

/// One entry of a per-thread shadow run-time stack.
///
/// `S_t[i]` in the paper: the routine id, the activation timestamp, the cost
/// counter at entry, and the *partial* metric values satisfying Invariant 2
/// (the metric of the i-th pending activation is the suffix sum of
/// partials). Induced-access and read counters are *inclusive*: a child's
/// counters are folded into its parent when it returns.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    pub(crate) routine: RoutineId,
    pub(crate) node: CctNodeId,
    pub(crate) ts: u64,
    pub(crate) cost_at_entry: u64,
    pub(crate) partial_trms: i64,
    pub(crate) partial_rms: i64,
    pub(crate) reads: u64,
    pub(crate) induced_thread: u64,
    pub(crate) induced_external: u64,
}

/// Per-thread profiler state: the thread's access-timestamp shadow memory
/// `ts_t`, its shadow stack `S_t`, and its basic-block cost counter.
#[derive(Debug, Default)]
pub(crate) struct ThreadState {
    pub(crate) ts: ShadowMemory<u64>,
    pub(crate) stack: Vec<Frame>,
    pub(crate) cost: u64,
}

impl ThreadState {
    /// Largest stack index `j` with `S_t[j].ts <= lts`, i.e. the deepest
    /// pending activation that had already accessed the cell (frame
    /// timestamps are strictly increasing with depth, so binary search —
    /// the `O(log d_t)` step of procedure `read`).
    fn deepest_at_or_before(&self, lts: u64) -> Option<usize> {
        let n = self.stack.partition_point(|f| f.ts <= lts);
        n.checked_sub(1)
    }
}

/// Configures and builds a [`TrmsProfiler`].
///
/// # Example
///
/// ```
/// use aprof_core::{InputPolicy, TrmsProfiler};
/// let profiler = TrmsProfiler::builder()
///     .policy(InputPolicy::external_only())
///     .counter_limit(1 << 20)
///     .log_activations(true)
///     .build();
/// assert_eq!(profiler.policy(), InputPolicy::external_only());
/// ```
#[derive(Debug, Clone)]
pub struct TrmsBuilder {
    policy: InputPolicy,
    counter_limit: u64,
    scheme: RenumberScheme,
    log_activations: bool,
    calling_contexts: bool,
}

impl Default for TrmsBuilder {
    fn default() -> Self {
        TrmsBuilder {
            policy: InputPolicy::full(),
            counter_limit: DEFAULT_COUNTER_LIMIT,
            scheme: RenumberScheme::Paper,
            log_activations: false,
            calling_contexts: false,
        }
    }
}

impl TrmsBuilder {
    /// Selects which induced first-accesses count as input (default: all).
    pub fn policy(mut self, policy: InputPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the timestamp value at which the counter "overflows" and global
    /// renumbering (§4.4) runs. Defaults to `u32::MAX`, modelling the
    /// paper's 32-bit shadow timestamps; tests use small limits to exercise
    /// renumbering cheaply.
    ///
    /// # Panics
    ///
    /// Panics if `limit < 16` (renumbering needs headroom for the stamps it
    /// assigns).
    pub fn counter_limit(mut self, limit: u64) -> Self {
        assert!(limit >= 16, "counter limit too small");
        self.counter_limit = limit;
        self
    }

    /// Selects the renumbering algorithm (default: the paper's §4.4 scheme).
    pub fn renumber_scheme(mut self, scheme: RenumberScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Additionally logs one [`ActivationRecord`] per completed activation
    /// (used by differential tests; off by default).
    pub fn log_activations(mut self, log: bool) -> Self {
        self.log_activations = log;
        self
    }

    /// Additionally aggregates profiles per *calling context* in a
    /// [`Cct`], so the same routine called from different sites gets
    /// separate cost curves (extension; off by default).
    pub fn calling_contexts(mut self, enable: bool) -> Self {
        self.calling_contexts = enable;
        self
    }

    /// Builds the profiler.
    pub fn build(self) -> TrmsProfiler {
        TrmsProfiler {
            policy: self.policy,
            counter_limit: self.counter_limit,
            scheme: self.scheme,
            log_activations: self.log_activations,
            cct: if self.calling_contexts { Some(Cct::new()) } else { None },
            count: 0,
            next_renumber: self.counter_limit,
            wts: ShadowMemory::new(),
            threads: Vec::new(),
            profiles: BTreeMap::new(),
            global: GlobalStats::default(),
            activations: Vec::new(),
            finished: false,
        }
    }
}

/// The multithreaded input-sensitive profiler (`aprof-trms`).
///
/// Implements the read/write timestamping algorithm of §4.2 with the
/// external-input extension of §4.3 and the counter-renumbering procedure of
/// §4.4, producing thread-sensitive per-routine profiles that map every
/// distinct input-size value (both trms and rms) to cost statistics.
///
/// Drive it with guest-machine execution or [`Trace::replay`], then call
/// [`into_report`](TrmsProfiler::into_report).
///
/// [`Trace::replay`]: aprof_trace::Trace::replay
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct TrmsProfiler {
    policy: InputPolicy,
    counter_limit: u64,
    scheme: RenumberScheme,
    log_activations: bool,
    /// Per-calling-context profile aggregation, when enabled.
    cct: Option<Cct>,
    /// Global counter: total thread switches + routine activations (+ kernel
    /// writes, which also bump it per Fig. 12).
    count: u64,
    /// Counter value that triggers the next renumbering attempt.
    next_renumber: u64,
    /// Global shadow memory `wts`: packed `(timestamp << 1) | kernel_bit` of
    /// the latest write to each cell by any thread or by the kernel.
    wts: ShadowMemory<u64>,
    threads: Vec<ThreadState>,
    profiles: BTreeMap<(ThreadId, RoutineId), RoutineThreadProfile>,
    global: GlobalStats,
    activations: Vec<ActivationRecord>,
    finished: bool,
}

impl Default for TrmsProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl TrmsProfiler {
    /// Creates a profiler with the full [`InputPolicy`] and default settings.
    pub fn new() -> Self {
        TrmsBuilder::default().build()
    }

    /// Creates a profiler with the given input policy.
    pub fn with_policy(policy: InputPolicy) -> Self {
        TrmsBuilder::default().policy(policy).build()
    }

    /// Starts configuring a profiler.
    pub fn builder() -> TrmsBuilder {
        TrmsBuilder::default()
    }

    /// The input policy in force.
    pub fn policy(&self) -> InputPolicy {
        self.policy
    }

    /// The current global counter value (mainly for tests).
    pub fn counter(&self) -> u64 {
        self.count
    }

    /// Number of renumberings performed so far.
    pub fn renumberings(&self) -> u64 {
        self.global.renumberings
    }

    /// The per-activation log (empty unless
    /// [`log_activations`](TrmsBuilder::log_activations) was enabled).
    pub fn activations(&self) -> &[ActivationRecord] {
        &self.activations
    }

    /// The calling-context tree (populated only when built with
    /// [`calling_contexts(true)`](TrmsBuilder::calling_contexts)).
    pub fn cct(&self) -> Option<&Cct> {
        self.cct.as_ref()
    }

    /// Finalizes the session and returns both the flat report and the
    /// calling-context tree (if context aggregation was enabled).
    pub fn into_report_and_cct(mut self, names: &RoutineTable) -> (ProfileReport, Option<Cct>) {
        self.finish();
        self.global.shadow_bytes = self.shadow_bytes();
        let cct = self.cct.take();
        (ProfileReport::assemble("aprof-trms", self.profiles, self.global, names), cct)
    }

    /// Resident bytes of all shadow memories (global + per-thread), the
    /// space measure used by Table 1 and Fig. 14b.
    pub fn shadow_bytes(&self) -> u64 {
        let mut stats = self.wts.stats();
        for t in &self.threads {
            stats = stats.merged(t.ts.stats());
        }
        stats.bytes as u64
    }

    /// Consumes a fallible event stream (e.g. a wire-trace decoder)
    /// batch-by-batch via [`crate::consume_stream`], so traces far larger
    /// than memory profile in bounded space. Returns the events consumed.
    ///
    /// # Errors
    ///
    /// Stops at the first source error and returns it; the profile is not
    /// finalized in that case.
    pub fn consume_stream<E, I>(&mut self, events: I) -> Result<u64, E>
    where
        I: IntoIterator<Item = Result<(ThreadId, Event), E>>,
    {
        crate::stream::consume_stream(self, events)
    }

    /// Finalizes the session (unwinding any still-pending activations) and
    /// assembles the report.
    pub fn into_report(mut self, names: &RoutineTable) -> ProfileReport {
        self.finish();
        self.global.shadow_bytes = self.shadow_bytes();
        ProfileReport::assemble("aprof-trms", self.profiles, self.global, names)
    }

    fn state(&mut self, thread: ThreadId) -> &mut ThreadState {
        let idx = thread.index();
        if idx >= self.threads.len() {
            self.threads.resize_with(idx + 1, ThreadState::default);
        }
        &mut self.threads[idx]
    }

    /// Bumps the global counter, renumbering first if it would exceed the
    /// configured limit.
    ///
    /// Renumbering compacts timestamps to a range proportional to the number
    /// of pending activations, so it cannot shrink the counter below
    /// `4 * (pending + 2)`. If the stacks are too deep for the configured
    /// limit (possible only with the tiny limits used in tests — the default
    /// `u32::MAX` leaves room for a billion pending activations), the next
    /// attempt is deferred until the counter doubles; timestamps are stored
    /// as `u64`, so correctness is never at risk, only the modelled 32-bit
    /// compactness.
    fn tick(&mut self) {
        if self.count >= self.next_renumber {
            renumber::run(self.scheme, &mut self.threads, &mut self.wts, &mut self.count);
            self.global.renumberings += 1;
            self.next_renumber = self.counter_limit.max(self.count * 2);
        }
        self.count += 1;
    }

    /// Procedure `read` of Fig. 11, shared by thread reads and kernel reads
    /// (§4.3 treats a `kernelRead` as a read implicitly performed by the
    /// thread). Also maintains the rms partials, which ignore induced
    /// accesses, so both metrics come out of one pass.
    fn on_read(&mut self, thread: ThreadId, addr: Addr) {
        let count = self.count;
        let policy = self.policy;
        let packed = self.wts.get(addr);
        let st = self.state(thread);
        let (induced_thread, induced_external) = Self::apply_read(st, count, policy, packed, addr);
        if induced_thread {
            self.global.induced_thread += 1;
        }
        if induced_external {
            self.global.induced_external += 1;
        }
    }

    /// The thread-state half of procedure `read`: everything except the
    /// `wts` lookup and the global induced counters, so the batched read
    /// path can run it under a split borrow of `self`. Returns whether the
    /// read was an induced (thread, external) first-access.
    fn apply_read(
        st: &mut ThreadState,
        count: u64,
        policy: InputPolicy,
        packed: u64,
        addr: Addr,
    ) -> (bool, bool) {
        let (w_ts, w_kernel) = (packed >> 1, packed & 1 == 1);
        let mut induced_thread = false;
        let mut induced_external = false;
        // Combined lines 1 and 12 of procedure read: fetch the thread's last
        // access timestamp and stamp the cell with the current counter in
        // one shadow-table traversal.
        let lts = st.ts.get_set(addr, count);
        if let Some(top) = st.stack.len().checked_sub(1) {
            st.stack[top].reads += 1;
            // Line 1 of procedure read: ts_t[l] < wts[l] means the cell
            // was written more recently than the thread's last access —
            // an induced first-access (had the thread itself performed
            // the last write, ts_t[l] would equal wts[l]).
            let induced = w_ts > lts;
            if induced && policy.counts(w_kernel) {
                // Induced first-access: new input for the topmost
                // activation *and all its ancestors* (Invariant 2 makes
                // the suffix-sum increment implicit).
                st.stack[top].partial_trms += 1;
                if w_kernel {
                    st.stack[top].induced_external += 1;
                    induced_external = true;
                } else {
                    st.stack[top].induced_thread += 1;
                    induced_thread = true;
                }
            } else if lts < st.stack[top].ts {
                // Plain first access: the activation (and its completed
                // descendants) never touched the cell. New input for the
                // topmost activation and for every ancestor deeper than
                // the most recent one that already accessed the cell.
                st.stack[top].partial_trms += 1;
                if lts != 0 {
                    if let Some(j) = st.deepest_at_or_before(lts) {
                        st.stack[j].partial_trms -= 1;
                    }
                }
            }
            // rms accounting: identical first-access rule, no induced
            // branch (Definition 1 ignores inter-thread writes).
            if lts < st.stack[top].ts {
                st.stack[top].partial_rms += 1;
                if lts != 0 {
                    if let Some(j) = st.deepest_at_or_before(lts) {
                        st.stack[j].partial_rms -= 1;
                    }
                }
            }
        }
        (induced_thread, induced_external)
    }

    fn unwind(&mut self, thread: ThreadId) {
        while self
            .threads
            .get(thread.index())
            .map(|st| !st.stack.is_empty())
            .unwrap_or(false)
        {
            let routine = self.threads[thread.index()].stack.last().expect("nonempty").routine;
            self.on_return(thread, routine);
        }
    }

    fn on_return(&mut self, thread: ThreadId, routine: RoutineId) {
        let st = self.state(thread);
        let Some(frame) = st.stack.pop() else { return };
        debug_assert_eq!(frame.routine, routine, "return does not match topmost activation");
        debug_assert!(frame.partial_trms >= 0, "topmost trms partial must be a true trms value");
        debug_assert!(frame.partial_rms >= 0, "topmost rms partial must be a true rms value");
        let cost = st.cost - frame.cost_at_entry;
        let trms = frame.partial_trms.max(0) as u64;
        let rms = frame.partial_rms.max(0) as u64;

        // Invariant 2 maintenance: fold the completed child's partials (and
        // inclusive counters) into its parent.
        if let Some(parent) = st.stack.last_mut() {
            parent.partial_trms += frame.partial_trms;
            parent.partial_rms += frame.partial_rms;
            parent.reads += frame.reads;
            parent.induced_thread += frame.induced_thread;
            parent.induced_external += frame.induced_external;
        }

        let profile = self.profiles.entry((thread, frame.routine)).or_default();
        profile.record(trms, rms, cost);
        profile.reads += frame.reads;
        profile.induced_thread += frame.induced_thread;
        profile.induced_external += frame.induced_external;
        if let Some(cct) = self.cct.as_mut() {
            cct.record(frame.node, trms, rms, cost);
        }

        self.global.activations += 1;
        self.global.sum_trms += trms;
        self.global.sum_rms += rms;

        if self.log_activations {
            self.activations.push(ActivationRecord {
                thread,
                routine: frame.routine,
                trms,
                rms,
                cost,
            });
        }
    }
}

impl Tool for TrmsProfiler {
    fn name(&self) -> &'static str {
        "aprof-trms"
    }

    fn thread_start(&mut self, thread: ThreadId) {
        self.state(thread);
    }

    fn thread_exit(&mut self, thread: ThreadId) {
        // Activations still pending when the thread dies are recorded with
        // the input and cost they accumulated so far.
        self.unwind(thread);
    }

    fn thread_switch(&mut self, _thread: ThreadId) {
        // `count` is increased at each thread switch (§4.2, data structures).
        self.tick();
    }

    fn basic_block(&mut self, thread: ThreadId, cost: u64) {
        self.state(thread).cost += cost;
    }

    fn call(&mut self, thread: ThreadId, routine: RoutineId) {
        // Procedure call of Fig. 11: count++ and a fresh stack entry whose
        // timestamp is the new counter value.
        self.tick();
        let count = self.count;
        let parent_node = self
            .threads
            .get(thread.index())
            .and_then(|st| st.stack.last())
            .map(|f| f.node)
            .unwrap_or(CctNodeId::ROOT);
        let node = match self.cct.as_mut() {
            Some(cct) => cct.child(parent_node, routine),
            None => CctNodeId::ROOT,
        };
        let st = self.state(thread);
        let cost_at_entry = st.cost;
        st.stack.push(Frame {
            routine,
            node,
            ts: count,
            cost_at_entry,
            partial_trms: 0,
            partial_rms: 0,
            reads: 0,
            induced_thread: 0,
            induced_external: 0,
        });
    }

    fn ret(&mut self, thread: ThreadId, routine: RoutineId) {
        self.on_return(thread, routine);
    }

    fn read(&mut self, thread: ThreadId, addr: Addr) {
        self.global.reads += 1;
        self.on_read(thread, addr);
    }

    /// Batched dispatch with a same-thread read-run fast path.
    ///
    /// Thread reads neither tick the global counter nor touch `wts`, so
    /// within a run of consecutive `Read` events by one thread the counter,
    /// policy and thread-state lookup are loop-invariant: the run is
    /// processed with one `state()` resolution and one split borrow,
    /// accumulating the global induced/read counters once per run. All
    /// other events (and reads by a thread that just switched in) fall back
    /// to one-at-a-time [`dispatch`](Tool::dispatch), so observable
    /// behaviour is identical to sequential replay.
    fn on_batch(&mut self, events: &[TimedEvent]) {
        let mut i = 0;
        while i < events.len() {
            let te = &events[i];
            if !matches!(te.event, Event::Read { .. }) {
                self.dispatch(te.thread, te.event);
                i += 1;
                continue;
            }
            let thread = te.thread;
            let mut j = i + 1;
            while j < events.len()
                && events[j].thread == thread
                && matches!(events[j].event, Event::Read { .. })
            {
                j += 1;
            }
            self.global.reads += (j - i) as u64;
            let count = self.count;
            let policy = self.policy;
            self.state(thread); // materialize the slot once for the run
            let idx = thread.index();
            let (mut induced_thread, mut induced_external) = (0u64, 0u64);
            for te in &events[i..j] {
                let Event::Read { addr } = te.event else { unreachable!() };
                let packed = self.wts.get(addr);
                let (it, ie) =
                    Self::apply_read(&mut self.threads[idx], count, policy, packed, addr);
                induced_thread += it as u64;
                induced_external += ie as u64;
            }
            self.global.induced_thread += induced_thread;
            self.global.induced_external += induced_external;
            i = j;
        }
    }

    fn write(&mut self, thread: ThreadId, addr: Addr) {
        // Procedure write of Fig. 11: both the thread-local and the global
        // timestamp become the current counter value (so a subsequent read
        // by the same thread is *not* induced), writer tagged as a thread.
        self.global.writes += 1;
        let count = self.count;
        self.state(thread).ts.set(addr, count);
        self.wts.set(addr, count << 1);
    }

    fn kernel_read(&mut self, thread: ThreadId, addr: Addr) {
        // Fig. 12: a kernelRead is a read implicitly performed by the
        // thread, as if the system call were a normal subroutine.
        self.global.kernel_reads += 1;
        self.on_read(thread, addr);
    }

    fn kernel_write(&mut self, _thread: ThreadId, addr: Addr) {
        // Fig. 12: bump the counter and give the buffer cell a global write
        // timestamp larger than any thread-specific timestamp, tagged as a
        // kernel write. The thread-local timestamp is *not* touched, so only
        // buffer cells the thread actually reads later count as external
        // input.
        self.global.kernel_writes += 1;
        self.tick();
        let count = self.count;
        self.wts.set(addr, (count << 1) | 1);
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let n = self.threads.len();
        for idx in 0..n {
            self.unwind(ThreadId::new(idx as u32));
        }
        if aprof_obs::is_enabled() {
            aprof_obs::counters::PROF_ACTIVATIONS.add(self.global.activations);
            aprof_obs::counters::PROF_RENUMBERINGS.add(self.global.renumberings);
            aprof_obs::counters::PROF_SHADOW_BYTES.record_max(self.shadow_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_trace::{Event, Trace};

    fn names3() -> (RoutineTable, RoutineId, RoutineId, RoutineId) {
        let mut t = RoutineTable::new();
        let f = t.intern("f");
        let g = t.intern("g");
        let h = t.intern("h");
        (t, f, g, h)
    }

    /// Figure 1a: f in T1 reads x twice; g in T2 overwrites x in between.
    /// rms_f = 1, trms_f = 2.
    #[test]
    fn figure_1a() {
        let (_names, f, g, _) = names3();
        let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
        let x = Addr::new(0x100);
        let mut tr = Trace::new();
        tr.push(t1, Event::Call { routine: f });
        tr.push(t1, Event::Read { addr: x });
        tr.push(t2, Event::ThreadSwitch);
        tr.push(t2, Event::Call { routine: g });
        tr.push(t2, Event::Write { addr: x });
        tr.push(t2, Event::Return { routine: g });
        tr.push(t1, Event::ThreadSwitch);
        tr.push(t1, Event::Read { addr: x });
        tr.push(t1, Event::Return { routine: f });

        let mut p = TrmsProfiler::builder().log_activations(true).build();
        tr.replay(&mut p);
        let recs = p.activations().to_vec();
        let f_rec = recs.iter().find(|r| r.routine == f).unwrap();
        assert_eq!(f_rec.trms, 2);
        assert_eq!(f_rec.rms, 1);
    }

    /// Figure 1b: f reads x, h (child of f) reads x after T2 writes it, then
    /// f reads x again. rms_f = rms_h = 1; trms_f = 2 (first access + the
    /// induced access via h); trms_h = 1; f's third read is NOT induced
    /// because f already accessed x through its descendant h.
    #[test]
    fn figure_1b() {
        let (names, f, g, h) = names3();
        let _ = &names;
        let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
        let x = Addr::new(0x200);
        let mut tr = Trace::new();
        tr.push(t1, Event::Call { routine: f });
        tr.push(t1, Event::Read { addr: x });
        tr.push(t2, Event::ThreadSwitch);
        tr.push(t2, Event::Call { routine: g });
        tr.push(t2, Event::Write { addr: x });
        tr.push(t2, Event::Return { routine: g });
        tr.push(t1, Event::ThreadSwitch);
        tr.push(t1, Event::Call { routine: h });
        tr.push(t1, Event::Read { addr: x });
        tr.push(t1, Event::Return { routine: h });
        tr.push(t1, Event::Read { addr: x });
        tr.push(t1, Event::Return { routine: f });

        let mut p = TrmsProfiler::builder().log_activations(true).build();
        tr.replay(&mut p);
        let recs = p.activations().to_vec();
        let f_rec = recs.iter().find(|r| r.routine == f).unwrap();
        let h_rec = recs.iter().find(|r| r.routine == h).unwrap();
        assert_eq!(h_rec.trms, 1, "h's read is an induced first-access");
        assert_eq!(h_rec.rms, 1, "for plain rms, h's read is h's own first access");
        assert_eq!(f_rec.trms, 2, "first access + induced access via h; third read free");
        assert_eq!(f_rec.rms, 1);
    }

    /// Example 2 fine point: a cell first written by another thread and then
    /// read is classified as an *induced* first-access (not a plain one).
    #[test]
    fn cross_thread_first_read_is_induced() {
        let (names, f, g, _) = names3();
        let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
        let x = Addr::new(1);
        let mut tr = Trace::new();
        tr.push(t2, Event::Call { routine: g });
        tr.push(t2, Event::Write { addr: x });
        tr.push(t1, Event::ThreadSwitch);
        tr.push(t1, Event::Call { routine: f });
        tr.push(t1, Event::Read { addr: x });
        tr.push(t1, Event::Return { routine: f });
        let mut p = TrmsProfiler::new();
        tr.replay(&mut p);
        let report = p.into_report(&names);
        assert_eq!(report.global.induced_thread, 1);
        assert_eq!(report.global.induced_external, 0);
    }

    /// Kernel writes only count for cells actually read afterwards (Fig. 3 /
    /// Example 4): load 2n cells via kernelWrite, read only n of them.
    #[test]
    fn external_read_counts_only_consumed_cells() {
        let mut names = RoutineTable::new();
        let er = names.intern("externalRead");
        let t = ThreadId::new(0);
        let b0 = Addr::new(0x10);
        let b1 = Addr::new(0x11);
        let n = 7u64;
        let mut tr = Trace::new();
        tr.push(t, Event::Call { routine: er });
        for _ in 0..n {
            tr.push(t, Event::KernelWrite { addr: b0 });
            tr.push(t, Event::KernelWrite { addr: b1 });
            tr.push(t, Event::Read { addr: b0 }); // only b[0] is processed
        }
        tr.push(t, Event::Return { routine: er });
        let mut p = TrmsProfiler::builder().log_activations(true).build();
        tr.replay(&mut p);
        let rec = p.activations()[0];
        assert_eq!(rec.trms, n, "trms = n induced (external) first-accesses");
        assert_eq!(rec.rms, 1, "rms = 1: same cell re-read");
        assert_eq!(p.activations().len(), 1);
    }

    /// Outbound I/O: kernelRead behaves as a read by the thread.
    #[test]
    fn kernel_read_is_a_thread_read() {
        let mut names = RoutineTable::new();
        let f = names.intern("send");
        let t = ThreadId::new(0);
        let mut tr = Trace::new();
        tr.push(t, Event::Call { routine: f });
        for i in 0..4 {
            tr.push(t, Event::Write { addr: Addr::new(i) });
        }
        for i in 0..4 {
            tr.push(t, Event::KernelRead { addr: Addr::new(i) });
        }
        tr.push(t, Event::Return { routine: f });
        let mut p = TrmsProfiler::builder().log_activations(true).build();
        tr.replay(&mut p);
        let rec = p.activations()[0];
        // The cells were first *written* by f itself, so they are not input.
        assert_eq!(rec.trms, 0);
        assert_eq!(rec.rms, 0);
    }

    /// Inequality 1: trms >= rms for every activation, on a small random-ish
    /// trace with nesting.
    #[test]
    fn trms_dominates_rms() {
        let (names, f, g, h) = names3();
        let _ = &names;
        let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
        let mut tr = Trace::new();
        tr.push(t1, Event::Call { routine: f });
        for i in 0..20u64 {
            tr.push(t1, Event::Call { routine: g });
            tr.push(t1, Event::Read { addr: Addr::new(i % 5) });
            tr.push(t1, Event::Write { addr: Addr::new(100 + i) });
            tr.push(t1, Event::Return { routine: g });
            tr.push(t2, Event::ThreadSwitch);
            tr.push(t2, Event::Call { routine: h });
            tr.push(t2, Event::Write { addr: Addr::new(i % 5) });
            tr.push(t2, Event::Return { routine: h });
            tr.push(t1, Event::ThreadSwitch);
        }
        tr.push(t1, Event::Return { routine: f });
        let mut p = TrmsProfiler::builder().log_activations(true).build();
        tr.replay(&mut p);
        for rec in p.activations() {
            assert!(rec.trms >= rec.rms, "Inequality 1 violated: {rec:?}");
        }
    }

    /// Nested calls: partial-sum bookkeeping attributes first accesses to
    /// the right ancestors (the PLDI'12 mechanics).
    #[test]
    fn nested_first_access_attribution() {
        let (names, f, g, _) = names3();
        let t = ThreadId::new(0);
        let x = Addr::new(7);
        let mut tr = Trace::new();
        tr.push(t, Event::Call { routine: f });
        tr.push(t, Event::Read { addr: x }); // first access by f
        tr.push(t, Event::Call { routine: g });
        tr.push(t, Event::Read { addr: x }); // first access by g, NOT new for f
        tr.push(t, Event::Return { routine: g });
        tr.push(t, Event::Return { routine: f });
        let mut p = TrmsProfiler::builder().log_activations(true).build();
        tr.replay(&mut p);
        let recs = p.activations().to_vec();
        let g_rec = recs.iter().find(|r| r.routine == g).unwrap();
        let f_rec = recs.iter().find(|r| r.routine == f).unwrap();
        assert_eq!(g_rec.rms, 1);
        assert_eq!(f_rec.rms, 1, "f must not double-count x read by g");
        assert_eq!(f_rec.trms, 1);
        let _ = names;
    }

    /// Cost accounting: inclusive basic-block costs per activation.
    #[test]
    fn inclusive_cost() {
        let (names, f, g, _) = names3();
        let _ = &names;
        let t = ThreadId::new(0);
        let mut tr = Trace::new();
        tr.push(t, Event::Call { routine: f });
        tr.push(t, Event::BasicBlock { cost: 3 });
        tr.push(t, Event::Call { routine: g });
        tr.push(t, Event::BasicBlock { cost: 5 });
        tr.push(t, Event::Return { routine: g });
        tr.push(t, Event::BasicBlock { cost: 2 });
        tr.push(t, Event::Return { routine: f });
        let mut p = TrmsProfiler::builder().log_activations(true).build();
        tr.replay(&mut p);
        let recs = p.activations().to_vec();
        assert_eq!(recs.iter().find(|r| r.routine == g).unwrap().cost, 5);
        assert_eq!(recs.iter().find(|r| r.routine == f).unwrap().cost, 10);
    }

    /// Pending activations are recorded at finish (with partial data).
    #[test]
    fn finish_unwinds_pending() {
        let (names, f, _, _) = names3();
        let t = ThreadId::new(0);
        let mut tr = Trace::new();
        tr.push(t, Event::Call { routine: f });
        tr.push(t, Event::Read { addr: Addr::new(0) });
        let mut p = TrmsProfiler::new();
        tr.replay(&mut p);
        let report = p.into_report(&names);
        assert_eq!(report.global.activations, 1);
        assert_eq!(report.routine(f).unwrap().merged.calls, 1);
    }

    /// The rms side of the report is identical regardless of input policy.
    #[test]
    fn rms_is_policy_independent() {
        let (names, f, g, _) = names3();
        let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
        let mut tr = Trace::new();
        tr.push(t1, Event::Call { routine: f });
        for i in 0..10u64 {
            tr.push(t1, Event::Read { addr: Addr::new(i % 3) });
            tr.push(t2, Event::ThreadSwitch);
            tr.push(t2, Event::Call { routine: g });
            tr.push(t2, Event::Write { addr: Addr::new(i % 3) });
            tr.push(t2, Event::Return { routine: g });
            tr.push(t1, Event::ThreadSwitch);
        }
        tr.push(t1, Event::Return { routine: f });
        let run = |policy| {
            let mut p = TrmsProfiler::with_policy(policy);
            tr.replay(&mut p);
            p.into_report(&names)
        };
        let full = run(InputPolicy::full());
        let none = run(InputPolicy::rms_only());
        let rms_full: Vec<_> = full.routine(f).unwrap().rms_curve();
        let rms_none: Vec<_> = none.routine(f).unwrap().rms_curve();
        assert_eq!(rms_full, rms_none);
        // And with all induced sources disabled, trms degenerates to rms.
        assert_eq!(none.routine(f).unwrap().trms_curve(), rms_none);
    }
}
