//! The naive set-based algorithm (Fig. 10) — a differential-testing oracle.

use crate::profile::{ActivationRecord, GlobalStats, ProfileReport, RoutineThreadProfile};
use crate::InputPolicy;
use aprof_trace::{Addr, RoutineId, RoutineTable, ThreadId, Tool};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Who performed the latest write to a memory cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Writer {
    Thread(ThreadId),
    Kernel,
}

#[derive(Debug)]
struct NaiveFrame {
    routine: RoutineId,
    cost_at_entry: u64,
    /// Cells ever accessed by this activation or its descendants (first
    /// accesses in the rms sense are detected by absence from this set).
    accessed: HashSet<u64>,
    trms: u64,
    rms: u64,
    reads: u64,
    induced_thread: u64,
    induced_external: u64,
}

#[derive(Debug, Default)]
struct NaiveThread {
    stack: Vec<NaiveFrame>,
    cost: u64,
    /// Cells this thread has accessed since their latest write (by anyone).
    /// `addr ∈ accessed_since_write` is equivalent to `ts_t[addr] >=
    /// wts[addr]` in the timestamping algorithm.
    accessed_since_write: HashSet<u64>,
}

/// The simple-minded trms/rms profiler of Fig. 10.
///
/// Maintains, for every pending routine activation, an explicit set of the
/// memory cells the activation has accessed, instead of the timestamping
/// machinery of §4.2 — "extremely time- and space-consuming", as the paper
/// notes, but obviously faithful to Definitions 1–3. It exists as the
/// oracle against which the efficient [`TrmsProfiler`](crate::TrmsProfiler)
/// is differentially tested (unit tests here, property tests in
/// `tests/differential.rs`).
///
/// # Example
///
/// ```
/// use aprof_core::NaiveProfiler;
/// use aprof_trace::{Addr, Event, RoutineTable, ThreadId, Trace};
/// let mut names = RoutineTable::new();
/// let f = names.intern("f");
/// let mut tr = Trace::new();
/// tr.push(ThreadId::MAIN, Event::Call { routine: f });
/// tr.push(ThreadId::MAIN, Event::Read { addr: Addr::new(0) });
/// tr.push(ThreadId::MAIN, Event::Return { routine: f });
/// let mut oracle = NaiveProfiler::new();
/// tr.replay(&mut oracle);
/// assert_eq!(oracle.activations()[0].rms, 1);
/// ```
#[derive(Debug)]
pub struct NaiveProfiler {
    policy: InputPolicy,
    threads: Vec<NaiveThread>,
    last_writer: HashMap<u64, Writer>,
    profiles: BTreeMap<(ThreadId, RoutineId), RoutineThreadProfile>,
    global: GlobalStats,
    activations: Vec<ActivationRecord>,
    finished: bool,
}

impl Default for NaiveProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl NaiveProfiler {
    /// Creates an oracle with the full input policy.
    pub fn new() -> Self {
        Self::with_policy(InputPolicy::full())
    }

    /// Creates an oracle with the given input policy.
    pub fn with_policy(policy: InputPolicy) -> Self {
        NaiveProfiler {
            policy,
            threads: Vec::new(),
            last_writer: HashMap::new(),
            profiles: BTreeMap::new(),
            global: GlobalStats::default(),
            activations: Vec::new(),
            finished: false,
        }
    }

    /// Per-activation records, in completion order (always logged).
    pub fn activations(&self) -> &[ActivationRecord] {
        &self.activations
    }

    /// Finalizes and assembles the report.
    pub fn into_report(mut self, names: &RoutineTable) -> ProfileReport {
        self.finish();
        ProfileReport::assemble("aprof-naive", self.profiles, self.global, names)
    }

    fn state(&mut self, thread: ThreadId) -> &mut NaiveThread {
        let idx = thread.index();
        if idx >= self.threads.len() {
            self.threads.resize_with(idx + 1, NaiveThread::default);
        }
        &mut self.threads[idx]
    }

    /// A write to `addr` invalidates "accessed since write" for every thread
    /// except (optionally) the writer itself.
    fn invalidate(&mut self, addr: Addr, writer: Writer) {
        for (idx, t) in self.threads.iter_mut().enumerate() {
            if Writer::Thread(ThreadId::new(idx as u32)) != writer {
                t.accessed_since_write.remove(&addr.raw());
            }
        }
        self.last_writer.insert(addr.raw(), writer);
    }

    fn on_read(&mut self, thread: ThreadId, addr: Addr) {
        let policy = self.policy;
        let written = self.last_writer.get(&addr.raw()).copied();
        let st = self.state(thread);
        if st.stack.is_empty() {
            st.accessed_since_write.insert(addr.raw());
            return;
        }
        let induced_by = match written {
            Some(w) if !st.accessed_since_write.contains(&addr.raw()) => Some(w),
            _ => None,
        };
        let counted_induced = match induced_by {
            Some(Writer::Kernel) => policy.external,
            Some(Writer::Thread(_)) => policy.thread_induced,
            None => false,
        };
        if let Some(top) = st.stack.last_mut() {
            top.reads += 1;
        }
        for frame in st.stack.iter_mut() {
            if counted_induced {
                // New input for the activation and all its ancestors.
                frame.trms += 1;
            } else if !frame.accessed.contains(&addr.raw()) {
                frame.trms += 1;
            }
            if !frame.accessed.contains(&addr.raw()) {
                frame.rms += 1;
            }
            frame.accessed.insert(addr.raw());
        }
        let mut external = false;
        if counted_induced {
            external = matches!(induced_by, Some(Writer::Kernel));
            if let Some(top) = st.stack.last_mut() {
                if external {
                    top.induced_external += 1;
                } else {
                    top.induced_thread += 1;
                }
            }
        }
        st.accessed_since_write.insert(addr.raw());
        if counted_induced {
            if external {
                self.global.induced_external += 1;
            } else {
                self.global.induced_thread += 1;
            }
        }
    }

    fn on_return(&mut self, thread: ThreadId, routine: RoutineId) {
        let st = self.state(thread);
        let Some(frame) = st.stack.pop() else { return };
        debug_assert_eq!(frame.routine, routine);
        let cost = st.cost - frame.cost_at_entry;
        // Inclusive counters roll up into the parent.
        if let Some(parent) = st.stack.last_mut() {
            parent.reads += frame.reads;
            parent.induced_thread += frame.induced_thread;
            parent.induced_external += frame.induced_external;
        }
        let profile = self.profiles.entry((thread, frame.routine)).or_default();
        profile.record(frame.trms, frame.rms, cost);
        profile.reads += frame.reads;
        profile.induced_thread += frame.induced_thread;
        profile.induced_external += frame.induced_external;
        self.global.activations += 1;
        self.global.sum_trms += frame.trms;
        self.global.sum_rms += frame.rms;
        self.activations.push(ActivationRecord {
            thread,
            routine: frame.routine,
            trms: frame.trms,
            rms: frame.rms,
            cost,
        });
    }

    fn unwind(&mut self, thread: ThreadId) {
        while self
            .threads
            .get(thread.index())
            .map(|st| !st.stack.is_empty())
            .unwrap_or(false)
        {
            let routine = self.threads[thread.index()].stack.last().expect("nonempty").routine;
            self.on_return(thread, routine);
        }
    }
}

impl Tool for NaiveProfiler {
    fn name(&self) -> &'static str {
        "aprof-naive"
    }

    fn call(&mut self, thread: ThreadId, routine: RoutineId) {
        let st = self.state(thread);
        let cost_at_entry = st.cost;
        st.stack.push(NaiveFrame {
            routine,
            cost_at_entry,
            accessed: HashSet::new(),
            trms: 0,
            rms: 0,
            reads: 0,
            induced_thread: 0,
            induced_external: 0,
        });
    }

    fn ret(&mut self, thread: ThreadId, routine: RoutineId) {
        self.on_return(thread, routine);
    }

    fn read(&mut self, thread: ThreadId, addr: Addr) {
        self.global.reads += 1;
        self.on_read(thread, addr);
    }

    fn write(&mut self, thread: ThreadId, addr: Addr) {
        self.global.writes += 1;
        // The writer's own pending activations have now "accessed" the cell.
        let st = self.state(thread);
        for frame in st.stack.iter_mut() {
            frame.accessed.insert(addr.raw());
        }
        st.accessed_since_write.insert(addr.raw());
        self.invalidate(addr, Writer::Thread(thread));
    }

    fn kernel_read(&mut self, thread: ThreadId, addr: Addr) {
        self.global.kernel_reads += 1;
        self.on_read(thread, addr);
    }

    fn kernel_write(&mut self, _thread: ThreadId, addr: Addr) {
        self.global.kernel_writes += 1;
        self.invalidate(addr, Writer::Kernel);
    }

    fn basic_block(&mut self, thread: ThreadId, cost: u64) {
        self.state(thread).cost += cost;
    }

    fn thread_exit(&mut self, thread: ThreadId) {
        self.unwind(thread);
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        for idx in 0..self.threads.len() {
            self.unwind(ThreadId::new(idx as u32));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_trace::{Event, Trace};

    /// The producer/consumer pattern of Fig. 2 under the oracle.
    #[test]
    fn producer_consumer_oracle() {
        let mut names = RoutineTable::new();
        let produce = names.intern("produceData");
        let consume = names.intern("consumeData");
        let (prod, cons) = (ThreadId::new(0), ThreadId::new(1));
        let x = Addr::new(0x40);
        let n = 9;
        let mut tr = Trace::new();
        tr.push(cons, Event::Call { routine: consume });
        for _ in 0..n {
            tr.push(prod, Event::ThreadSwitch);
            tr.push(prod, Event::Call { routine: produce });
            tr.push(prod, Event::Write { addr: x });
            tr.push(prod, Event::Return { routine: produce });
            tr.push(cons, Event::ThreadSwitch);
            tr.push(cons, Event::Read { addr: x });
        }
        tr.push(cons, Event::Return { routine: consume });
        let mut oracle = NaiveProfiler::new();
        tr.replay(&mut oracle);
        let rec = oracle.activations().iter().find(|r| r.routine == consume).unwrap();
        assert_eq!(rec.trms, n);
        assert_eq!(rec.rms, 1);
        let _ = names;
    }

    /// With the rms-only policy the oracle's trms equals its rms.
    #[test]
    fn rms_only_policy_degenerates() {
        let mut names = RoutineTable::new();
        let f = names.intern("f");
        let g = names.intern("g");
        let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
        let mut tr = Trace::new();
        tr.push(t1, Event::Call { routine: f });
        for i in 0..6u64 {
            tr.push(t1, Event::Read { addr: Addr::new(i % 2) });
            tr.push(t2, Event::ThreadSwitch);
            tr.push(t2, Event::Call { routine: g });
            tr.push(t2, Event::Write { addr: Addr::new(i % 2) });
            tr.push(t2, Event::Return { routine: g });
            tr.push(t1, Event::ThreadSwitch);
        }
        tr.push(t1, Event::Return { routine: f });
        let mut oracle = NaiveProfiler::with_policy(InputPolicy::rms_only());
        tr.replay(&mut oracle);
        for rec in oracle.activations() {
            assert_eq!(rec.trms, rec.rms);
        }
        let _ = names;
    }

    /// Reads outside any activation are tolerated (they only refresh the
    /// thread's accessed-since-write state).
    #[test]
    fn read_outside_activation_is_ignored() {
        let mut tr = Trace::new();
        tr.push(ThreadId::MAIN, Event::Read { addr: Addr::new(3) });
        let mut oracle = NaiveProfiler::new();
        tr.replay(&mut oracle);
        assert!(oracle.activations().is_empty());
    }
}
