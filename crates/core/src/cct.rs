//! Calling-context-sensitive profiles (extension).
//!
//! The paper aggregates performance tuples *per routine*. Later work in the
//! same tool family attaches them to **calling contexts** instead, so that
//! `parse` called from `load_config` and `parse` called from
//! `handle_request` get separate cost curves. This module provides the
//! supporting structure: a calling-context tree (CCT) whose nodes identify
//! contexts, grown on the fly as activations are observed, plus per-node
//! profile aggregation. [`TrmsProfiler`](crate::TrmsProfiler) populates it
//! when built with
//! [`calling_contexts(true)`](crate::TrmsBuilder::calling_contexts); the
//! trms/rms computation itself is unchanged — only the aggregation key
//! gains context.

use crate::profile::RoutineThreadProfile;
use aprof_trace::{RoutineId, RoutineTable};
use std::collections::HashMap;

/// Identifier of a calling-context-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CctNodeId(pub u32);

impl CctNodeId {
    /// The root context (no pending activations).
    pub const ROOT: CctNodeId = CctNodeId(0);

    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Node {
    routine: Option<RoutineId>,
    parent: CctNodeId,
    depth: u32,
    children: HashMap<RoutineId, CctNodeId>,
}

/// A calling-context tree with per-node input-sensitive profiles.
///
/// Nodes are created lazily: the tree contains exactly the contexts that
/// occurred. Contexts are shared across threads (the per-thread dimension
/// stays inside the profiles).
///
/// # Example
///
/// ```
/// use aprof_core::cct::{Cct, CctNodeId};
/// use aprof_trace::RoutineId;
/// let mut cct = Cct::new();
/// let f = RoutineId::new(0);
/// let g = RoutineId::new(1);
/// let in_f = cct.child(CctNodeId::ROOT, f);
/// let in_fg = cct.child(in_f, g);
/// let in_g = cct.child(CctNodeId::ROOT, g);
/// assert_ne!(in_fg, in_g, "same routine, different contexts");
/// assert_eq!(cct.child(in_f, g), in_fg, "contexts are interned");
/// assert_eq!(cct.depth(in_fg), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Cct {
    nodes: Vec<Node>,
    profiles: Vec<RoutineThreadProfile>,
}

impl Default for Cct {
    fn default() -> Self {
        Self::new()
    }
}

impl Cct {
    /// Creates a tree containing only the root context.
    pub fn new() -> Self {
        Cct {
            nodes: vec![Node {
                routine: None,
                parent: CctNodeId::ROOT,
                depth: 0,
                children: HashMap::new(),
            }],
            profiles: vec![RoutineThreadProfile::default()],
        }
    }

    /// Returns the context for `routine` called from `parent`, creating it
    /// on first sight.
    pub fn child(&mut self, parent: CctNodeId, routine: RoutineId) -> CctNodeId {
        if let Some(&id) = self.nodes[parent.index()].children.get(&routine) {
            return id;
        }
        let id = CctNodeId(self.nodes.len() as u32);
        let depth = self.nodes[parent.index()].depth + 1;
        self.nodes.push(Node {
            routine: Some(routine),
            parent,
            depth,
            children: HashMap::new(),
        });
        self.profiles.push(RoutineThreadProfile::default());
        self.nodes[parent.index()].children.insert(routine, id);
        id
    }

    /// The routine a context activates (`None` for the root).
    pub fn routine(&self, node: CctNodeId) -> Option<RoutineId> {
        self.nodes[node.index()].routine
    }

    /// The parent context.
    pub fn parent(&self, node: CctNodeId) -> CctNodeId {
        self.nodes[node.index()].parent
    }

    /// Depth of the context (root = 0).
    pub fn depth(&self, node: CctNodeId) -> u32 {
        self.nodes[node.index()].depth
    }

    /// Number of contexts, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Records one completed activation under `node`.
    pub fn record(&mut self, node: CctNodeId, trms: u64, rms: u64, cost: u64) {
        self.profiles[node.index()].record(trms, rms, cost);
    }

    /// The profile aggregated at `node`.
    pub fn profile(&self, node: CctNodeId) -> &RoutineThreadProfile {
        &self.profiles[node.index()]
    }

    /// The full call path of a context, root-first, as routine ids.
    pub fn path(&self, mut node: CctNodeId) -> Vec<RoutineId> {
        let mut out = Vec::new();
        while let Some(r) = self.routine(node) {
            out.push(r);
            node = self.parent(node);
        }
        out.reverse();
        out
    }

    /// Renders the call path of a context as `a -> b -> c`.
    pub fn path_string(&self, node: CctNodeId, names: &RoutineTable) -> String {
        self.path(node)
            .into_iter()
            .map(|r| names.get_name(r).map(str::to_owned).unwrap_or_else(|| r.to_string()))
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Contexts sorted by decreasing total inclusive cost, with their call
    /// paths — the "hot contexts" view.
    pub fn hottest(&self, names: &RoutineTable) -> Vec<CctContextReport> {
        let mut v: Vec<CctContextReport> = (1..self.nodes.len())
            .map(|i| {
                let id = CctNodeId(i as u32);
                let p = &self.profiles[i];
                CctContextReport {
                    node: id,
                    path: self.path_string(id, names),
                    depth: self.depth(id),
                    calls: p.calls,
                    total_cost: p.total_cost,
                    distinct_trms: p.trms.len(),
                    sum_trms: p.sum_trms,
                }
            })
            .filter(|r| r.calls > 0)
            .collect();
        v.sort_by(|a, b| b.total_cost.cmp(&a.total_cost).then(a.path.cmp(&b.path)));
        v
    }
}

/// Summary of one calling context, for reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CctContextReport {
    /// The context node.
    pub node: CctNodeId,
    /// Rendered call path (`main -> f -> g`).
    pub path: String,
    /// Context depth.
    pub depth: u32,
    /// Completed activations in this context.
    pub calls: u64,
    /// Total inclusive cost accumulated in this context.
    pub total_cost: u64,
    /// Number of distinct trms values collected in this context.
    pub distinct_trms: usize,
    /// Sum of trms over the context's activations.
    pub sum_trms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (RoutineId, RoutineId, RoutineId) {
        (RoutineId::new(0), RoutineId::new(1), RoutineId::new(2))
    }

    #[test]
    fn interning_and_paths() {
        let (f, g, h) = ids();
        let mut cct = Cct::new();
        let nf = cct.child(CctNodeId::ROOT, f);
        let nfg = cct.child(nf, g);
        let nfgh = cct.child(nfg, h);
        assert_eq!(cct.path(nfgh), vec![f, g, h]);
        assert_eq!(cct.len(), 4);
        assert_eq!(cct.child(nf, g), nfg);
        assert_eq!(cct.len(), 4, "no duplicate nodes");
        assert!(!cct.is_empty());
    }

    #[test]
    fn profiles_are_per_context() {
        let (f, g, _) = ids();
        let mut cct = Cct::new();
        let nf = cct.child(CctNodeId::ROOT, f);
        let ng = cct.child(CctNodeId::ROOT, g);
        let nfg = cct.child(nf, g);
        cct.record(nfg, 10, 5, 100);
        cct.record(ng, 3, 3, 7);
        assert_eq!(cct.profile(nfg).calls, 1);
        assert_eq!(cct.profile(ng).sum_trms, 3);
        assert_eq!(cct.profile(nf).calls, 0);
    }

    #[test]
    fn hottest_sorts_by_cost() {
        let (f, g, _) = ids();
        let mut names = RoutineTable::new();
        names.intern("f");
        names.intern("g");
        let mut cct = Cct::new();
        let nf = cct.child(CctNodeId::ROOT, f);
        let nfg = cct.child(nf, g);
        cct.record(nf, 1, 1, 10);
        cct.record(nfg, 1, 1, 90);
        let hot = cct.hottest(&names);
        assert_eq!(hot[0].path, "f -> g");
        assert_eq!(hot[0].total_cost, 90);
        assert_eq!(hot[1].path, "f");
    }

    #[test]
    fn root_has_no_routine() {
        let cct = Cct::new();
        assert_eq!(cct.routine(CctNodeId::ROOT), None);
        assert_eq!(cct.depth(CctNodeId::ROOT), 0);
        assert!(cct.is_empty());
    }
}
