//! Collected profile data: performance tuples, per-routine curves, reports.

use aprof_trace::{RoutineId, RoutineTable, ThreadId};
use std::collections::BTreeMap;

/// Aggregate cost statistics of all activations of a routine that shared one
/// input-size value — one *performance point* of a cost plot.
///
/// # Example
///
/// ```
/// use aprof_core::CostStats;
/// let mut s = CostStats::default();
/// s.record(10);
/// s.record(4);
/// assert_eq!(s.count, 2);
/// assert_eq!(s.max, 10);
/// assert_eq!(s.min, 4);
/// assert_eq!(s.mean(), 7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostStats {
    /// Number of activations observed with this input size.
    pub count: u64,
    /// Minimum cost among them.
    pub min: u64,
    /// Maximum cost (the worst-case running time plots of §3 use this).
    pub max: u64,
    /// Sum of costs (for average-cost plots).
    pub sum: u64,
    /// Sum of squared costs (for variance estimates).
    pub sum_sq: f64,
}

impl Default for CostStats {
    fn default() -> Self {
        CostStats { count: 0, min: u64::MAX, max: 0, sum: 0, sum_sq: 0.0 }
    }
}

impl CostStats {
    /// Folds the cost of one more activation into the statistics.
    pub fn record(&mut self, cost: u64) {
        self.count += 1;
        self.min = self.min.min(cost);
        self.max = self.max.max(cost);
        self.sum += cost;
        self.sum_sq += (cost as f64) * (cost as f64);
    }

    /// Mean cost.
    ///
    /// Returns `0.0` if no activation was recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population variance of the cost.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0)
    }

    /// Merges another statistics value (e.g. the same input size observed on
    /// a different thread) into this one.
    pub fn merge(&mut self, other: &CostStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }
}

/// The profile of one routine as activated by one thread.
///
/// Routine profiles are *thread-sensitive* (§4): activations made by
/// different threads are kept distinct and can be merged afterwards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutineThreadProfile {
    /// trms value → cost statistics (one entry per distinct trms value).
    pub trms: BTreeMap<u64, CostStats>,
    /// rms value → cost statistics.
    pub rms: BTreeMap<u64, CostStats>,
    /// Number of completed activations.
    pub calls: u64,
    /// Inclusive count of read operations (the activation plus descendants).
    pub reads: u64,
    /// Inclusive count of thread-induced first-accesses.
    pub induced_thread: u64,
    /// Inclusive count of external (kernel-write-induced) first-accesses.
    pub induced_external: u64,
    /// Sum of trms over all activations (for the input-volume metric).
    pub sum_trms: u64,
    /// Sum of rms over all activations.
    pub sum_rms: u64,
    /// Total inclusive cost over all activations.
    pub total_cost: u64,
}

impl RoutineThreadProfile {
    /// Records one completed activation.
    pub fn record(&mut self, trms: u64, rms: u64, cost: u64) {
        self.trms.entry(trms).or_default().record(cost);
        self.rms.entry(rms).or_default().record(cost);
        self.calls += 1;
        self.sum_trms += trms;
        self.sum_rms += rms;
        self.total_cost += cost;
    }

    /// Merges `other` (same routine, different thread) into `self`.
    pub fn merge(&mut self, other: &RoutineThreadProfile) {
        for (&k, v) in &other.trms {
            self.trms.entry(k).or_default().merge(v);
        }
        for (&k, v) in &other.rms {
            self.rms.entry(k).or_default().merge(v);
        }
        self.calls += other.calls;
        self.reads += other.reads;
        self.induced_thread += other.induced_thread;
        self.induced_external += other.induced_external;
        self.sum_trms += other.sum_trms;
        self.sum_rms += other.sum_rms;
        self.total_cost += other.total_cost;
    }
}

/// One completed routine activation, as optionally logged by the profilers.
///
/// Activation logs are the ground truth for differential tests between the
/// timestamping algorithm and the naive oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationRecord {
    /// Thread that performed the activation.
    pub thread: ThreadId,
    /// The activated routine.
    pub routine: RoutineId,
    /// Threaded read memory size of the activation.
    pub trms: u64,
    /// Read memory size of the activation.
    pub rms: u64,
    /// Inclusive cost (basic blocks) of the activation.
    pub cost: u64,
}

/// The merged profile of one routine (all threads), plus its attribution
/// counters — everything the paper's per-routine charts need.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineReport {
    /// Dense id of the routine.
    pub routine: u32,
    /// Routine name (resolved via the [`RoutineTable`] at report time).
    pub name: String,
    /// Merged profile across threads.
    pub merged: RoutineThreadProfile,
    /// Per-thread profiles, keyed by thread index.
    pub per_thread: BTreeMap<u32, RoutineThreadProfile>,
}

impl RoutineReport {
    /// The routine's trms cost curve: sorted `(input size, stats)` points.
    pub fn trms_curve(&self) -> Vec<(u64, CostStats)> {
        self.merged.trms.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// The routine's rms cost curve.
    pub fn rms_curve(&self) -> Vec<(u64, CostStats)> {
        self.merged.rms.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Number of distinct trms values collected (|trms_r| in §6.1).
    pub fn distinct_trms(&self) -> usize {
        self.merged.trms.len()
    }

    /// Number of distinct rms values collected (|rms_r|).
    pub fn distinct_rms(&self) -> usize {
        self.merged.rms.len()
    }

    /// Profile richness: `(|trms_r| - |rms_r|) / |rms_r|` (§6.1, metric 1).
    ///
    /// Positive when the trms yields more performance points; may be
    /// negative (rarely, per the paper) when distinct rms values collapse
    /// onto one trms value.
    pub fn profile_richness(&self) -> f64 {
        let r = self.distinct_rms();
        if r == 0 {
            return 0.0;
        }
        (self.distinct_trms() as f64 - r as f64) / r as f64
    }

    /// Input volume: `1 - Σ rms / Σ trms` over the routine's activations
    /// (§6.1, metric 2). In `[0, 1)`; 0 when no induced input exists.
    pub fn input_volume(&self) -> f64 {
        if self.merged.sum_trms == 0 {
            return 0.0;
        }
        1.0 - self.merged.sum_rms as f64 / self.merged.sum_trms as f64
    }

    /// Fraction of this routine's reads that were induced first-accesses,
    /// split as `(thread-induced, external)`; both in `[0, 1]`.
    pub fn induced_fractions(&self) -> (f64, f64) {
        if self.merged.reads == 0 {
            return (0.0, 0.0);
        }
        let r = self.merged.reads as f64;
        (self.merged.induced_thread as f64 / r, self.merged.induced_external as f64 / r)
    }
}

/// Whole-run counters (§6.1 metrics 3–4 and space accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GlobalStats {
    /// Total read operations observed.
    pub reads: u64,
    /// Total write operations observed.
    pub writes: u64,
    /// Total kernel-read cells observed.
    pub kernel_reads: u64,
    /// Total kernel-write cells observed.
    pub kernel_writes: u64,
    /// Induced first-accesses due to other threads (counted once each).
    pub induced_thread: u64,
    /// Induced first-accesses due to external input (counted once each).
    pub induced_external: u64,
    /// Completed activations.
    pub activations: u64,
    /// Σ trms over all activations.
    pub sum_trms: u64,
    /// Σ rms over all activations.
    pub sum_rms: u64,
    /// Number of timestamp renumberings performed (§4.4).
    pub renumberings: u64,
    /// Resident bytes of all shadow memories at the end of the run.
    pub shadow_bytes: u64,
}

impl GlobalStats {
    /// Percentage split of induced first-accesses as
    /// `(thread-induced %, external %)`; sums to 100 when any exist
    /// (Fig. 17).
    pub fn induced_split(&self) -> (f64, f64) {
        let total = self.induced_thread + self.induced_external;
        if total == 0 {
            return (0.0, 0.0);
        }
        (
            100.0 * self.induced_thread as f64 / total as f64,
            100.0 * self.induced_external as f64 / total as f64,
        )
    }

    /// Whole-run input volume: `1 - Σ rms / Σ trms` (§6.1, metric 2).
    pub fn input_volume(&self) -> f64 {
        if self.sum_trms == 0 {
            return 0.0;
        }
        1.0 - self.sum_rms as f64 / self.sum_trms as f64
    }

    /// Adds every counter of `other` into `self` (used when combining the
    /// reports of independent runs).
    pub fn accumulate(&mut self, other: &GlobalStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.kernel_reads += other.kernel_reads;
        self.kernel_writes += other.kernel_writes;
        self.induced_thread += other.induced_thread;
        self.induced_external += other.induced_external;
        self.activations += other.activations;
        self.sum_trms += other.sum_trms;
        self.sum_rms += other.sum_rms;
        self.renumberings += other.renumberings;
        self.shadow_bytes += other.shadow_bytes;
    }
}

/// The complete output of a profiling session.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Name of the tool that produced the report.
    pub tool: String,
    /// Per-routine reports, sorted by routine id.
    pub routines: Vec<RoutineReport>,
    /// Whole-run counters.
    pub global: GlobalStats,
}

impl ProfileReport {
    /// Builds a report from raw per-(thread, routine) profiles.
    pub(crate) fn assemble(
        tool: &str,
        profiles: BTreeMap<(ThreadId, RoutineId), RoutineThreadProfile>,
        global: GlobalStats,
        names: &RoutineTable,
    ) -> ProfileReport {
        let mut by_routine: BTreeMap<RoutineId, RoutineReport> = BTreeMap::new();
        for ((thread, routine), profile) in profiles {
            let entry = by_routine.entry(routine).or_insert_with(|| RoutineReport {
                routine: routine.index() as u32,
                name: names
                    .get_name(routine)
                    .map(str::to_owned)
                    .unwrap_or_else(|| routine.to_string()),
                merged: RoutineThreadProfile::default(),
                per_thread: BTreeMap::new(),
            });
            entry.merged.merge(&profile);
            entry.per_thread.insert(thread.index() as u32, profile);
        }
        ProfileReport {
            tool: tool.to_owned(),
            routines: by_routine.into_values().collect(),
            global,
        }
    }

    /// Looks up the report of one routine.
    pub fn routine(&self, id: RoutineId) -> Option<&RoutineReport> {
        self.routines.iter().find(|r| r.routine == id.index() as u32)
    }

    /// Looks up the report of one routine by name.
    pub fn routine_by_name(&self, name: &str) -> Option<&RoutineReport> {
        self.routines.iter().find(|r| r.name == name)
    }

    /// Combines the reports of independent runs into one aggregate.
    ///
    /// Routines are matched **by name** (two runs of the same program may
    /// intern routines in different orders), per-thread profiles by thread
    /// index, and global counters are summed. The output assigns dense
    /// routine ids in lexicographic-name order, so the result is independent
    /// of the input runs' id assignment.
    ///
    /// Because [`CostStats::sum_sq`] is a floating-point sum, merging is
    /// order-sensitive at the ULP level: callers that need byte-identical
    /// aggregates (e.g. the service daemon and its one-shot CLI oracle) must
    /// pass `reports` in the same order on both sides.
    ///
    /// An empty slice yields an empty report; the `tool` label is taken from
    /// the first report.
    #[must_use]
    pub fn merge(reports: &[ProfileReport]) -> ProfileReport {
        let mut by_name: BTreeMap<&str, (RoutineThreadProfile, BTreeMap<u32, RoutineThreadProfile>)> =
            BTreeMap::new();
        let mut global = GlobalStats::default();
        for report in reports {
            global.accumulate(&report.global);
            for routine in &report.routines {
                let entry = by_name.entry(routine.name.as_str()).or_default();
                entry.0.merge(&routine.merged);
                for (&thread, profile) in &routine.per_thread {
                    entry.1.entry(thread).or_default().merge(profile);
                }
            }
        }
        ProfileReport {
            tool: reports.first().map(|r| r.tool.clone()).unwrap_or_default(),
            routines: by_name
                .into_iter()
                .enumerate()
                .map(|(id, (name, (merged, per_thread)))| RoutineReport {
                    routine: id as u32,
                    name: name.to_owned(),
                    merged,
                    per_thread,
                })
                .collect(),
            global,
        }
    }

    /// Renders the report as a stable, versioned text form suitable for
    /// byte-for-byte comparison between independently produced aggregates.
    ///
    /// Every counter and every point of every trms/rms curve is included;
    /// the floating-point `sum_sq` accumulators are printed as exact bit
    /// patterns so that equality of the text implies equality of the data
    /// (not merely of some rounded rendering).
    #[must_use]
    pub fn to_canonical_text(&self) -> String {
        use std::fmt::Write as _;
        fn profile_lines(out: &mut String, indent: &str, p: &RoutineThreadProfile) {
            let _ = writeln!(
                out,
                "{indent}calls={} reads={} induced_thread={} induced_external={} \
                 sum_trms={} sum_rms={} total_cost={}",
                p.calls,
                p.reads,
                p.induced_thread,
                p.induced_external,
                p.sum_trms,
                p.sum_rms,
                p.total_cost
            );
            for (label, curve) in [("trms", &p.trms), ("rms", &p.rms)] {
                for (value, stats) in curve {
                    let _ = writeln!(
                        out,
                        "{indent}{label} {value} count={} min={} max={} sum={} sum_sq_bits={:016x}",
                        stats.count,
                        stats.min,
                        stats.max,
                        stats.sum,
                        stats.sum_sq.to_bits()
                    );
                }
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "aprof-profile v1");
        let _ = writeln!(out, "tool {}", self.tool);
        let g = &self.global;
        let _ = writeln!(
            out,
            "global reads={} writes={} kernel_reads={} kernel_writes={} induced_thread={} \
             induced_external={} activations={} sum_trms={} sum_rms={} renumberings={} \
             shadow_bytes={}",
            g.reads,
            g.writes,
            g.kernel_reads,
            g.kernel_writes,
            g.induced_thread,
            g.induced_external,
            g.activations,
            g.sum_trms,
            g.sum_rms,
            g.renumberings,
            g.shadow_bytes
        );
        for routine in &self.routines {
            let _ = writeln!(out, "routine {} name={}", routine.routine, routine.name);
            profile_lines(&mut out, "  ", &routine.merged);
            for (thread, profile) in &routine.per_thread {
                let _ = writeln!(out, "  thread {thread}");
                profile_lines(&mut out, "    ", profile);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_stats_accumulate() {
        let mut s = CostStats::default();
        for c in [5, 1, 9] {
            s.record(c);
        }
        assert_eq!((s.count, s.min, s.max, s.sum), (3, 1, 9, 15));
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!(s.variance() > 0.0);
    }

    #[test]
    fn cost_stats_merge_identity() {
        let mut a = CostStats::default();
        a.record(3);
        let empty = CostStats::default();
        let before = a;
        a.merge(&empty);
        assert_eq!(a, before);
        let mut e = CostStats::default();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn routine_profile_distinct_points() {
        let mut p = RoutineThreadProfile::default();
        p.record(10, 5, 100);
        p.record(10, 6, 80);
        p.record(20, 6, 200);
        assert_eq!(p.trms.len(), 2);
        assert_eq!(p.rms.len(), 2);
        assert_eq!(p.calls, 3);
        assert_eq!(p.trms[&10].max, 100);
        assert_eq!(p.sum_trms, 40);
        assert_eq!(p.sum_rms, 17);
    }

    #[test]
    fn richness_and_volume() {
        let mut merged = RoutineThreadProfile::default();
        merged.record(2, 1, 10);
        merged.record(4, 2, 20);
        merged.record(6, 3, 30);
        let r = RoutineReport {
            routine: 0,
            name: "f".into(),
            merged,
            per_thread: BTreeMap::new(),
        };
        // 3 distinct trms, 3 distinct rms -> richness 0
        assert_eq!(r.profile_richness(), 0.0);
        // volume = 1 - 6/12 = 0.5
        assert!((r.input_volume() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn global_split_sums_to_100() {
        let g = GlobalStats { induced_thread: 30, induced_external: 10, ..Default::default() };
        let (t, e) = g.induced_split();
        assert!((t + e - 100.0).abs() < 1e-9);
        assert!((t - 75.0).abs() < 1e-9);
    }

    #[test]
    fn global_split_empty_is_zero() {
        let g = GlobalStats::default();
        assert_eq!(g.induced_split(), (0.0, 0.0));
        assert_eq!(g.input_volume(), 0.0);
    }

    fn report_with(tool: &str, routines: &[(&str, u32, u64)]) -> ProfileReport {
        // (name, thread, trms) triples; each triple records one activation.
        let mut by_name: BTreeMap<&str, RoutineReport> = BTreeMap::new();
        for (i, &(name, thread, trms)) in routines.iter().enumerate() {
            let entry = by_name.entry(name).or_insert_with(|| RoutineReport {
                routine: i as u32,
                name: name.to_owned(),
                merged: RoutineThreadProfile::default(),
                per_thread: BTreeMap::new(),
            });
            entry.merged.record(trms, trms / 2, trms * 10);
            entry.per_thread.entry(thread).or_default().record(trms, trms / 2, trms * 10);
        }
        let global = GlobalStats {
            activations: routines.len() as u64,
            sum_trms: routines.iter().map(|&(_, _, t)| t).sum(),
            ..GlobalStats::default()
        };
        ProfileReport { tool: tool.into(), routines: by_name.into_values().collect(), global }
    }

    #[test]
    fn merge_matches_routines_by_name_and_sums_globals() {
        let a = report_with("trms", &[("f", 0, 4), ("g", 1, 6)]);
        let b = report_with("trms", &[("g", 1, 6), ("h", 0, 2)]);
        let merged = ProfileReport::merge(&[a, b]);
        assert_eq!(merged.tool, "trms");
        let names: Vec<&str> = merged.routines.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["f", "g", "h"]);
        // Dense ids in name order, regardless of input ids.
        assert_eq!(
            merged.routines.iter().map(|r| r.routine).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let g = merged.routine_by_name("g").unwrap();
        assert_eq!(g.merged.calls, 2);
        assert_eq!(g.per_thread[&1].calls, 2);
        assert_eq!(merged.global.activations, 4);
        assert_eq!(merged.global.sum_trms, 18);
    }

    #[test]
    fn merge_of_empty_slice_is_empty() {
        let merged = ProfileReport::merge(&[]);
        assert!(merged.routines.is_empty());
        assert_eq!(merged.global, GlobalStats::default());
    }

    #[test]
    fn canonical_text_is_stable_and_discriminating() {
        let a = report_with("trms", &[("f", 0, 4), ("g", 1, 6)]);
        let same = report_with("trms", &[("f", 0, 4), ("g", 1, 6)]);
        let diff = report_with("trms", &[("f", 0, 4), ("g", 1, 7)]);
        assert_eq!(a.to_canonical_text(), same.to_canonical_text());
        assert_ne!(a.to_canonical_text(), diff.to_canonical_text());
        let text = a.to_canonical_text();
        assert!(text.starts_with("aprof-profile v1\n"));
        assert!(text.contains("routine 0 name=f"));
        assert!(text.contains("sum_sq_bits="));
    }

    #[test]
    fn merge_then_text_equals_single_pass_in_fixed_order() {
        // Merging [a, b] must agree with itself when repeated — the fixed
        // order contract the service relies on.
        let a = report_with("trms", &[("f", 0, 4), ("g", 1, 6), ("g", 0, 3)]);
        let b = report_with("trms", &[("f", 1, 5)]);
        let once = ProfileReport::merge(&[a.clone(), b.clone()]);
        let twice = ProfileReport::merge(&[a, b]);
        assert_eq!(once.to_canonical_text(), twice.to_canonical_text());
    }
}
