//! Collected profile data: performance tuples, per-routine curves, reports.

use aprof_trace::{RoutineId, RoutineTable, ThreadId};
use std::collections::BTreeMap;

/// Aggregate cost statistics of all activations of a routine that shared one
/// input-size value — one *performance point* of a cost plot.
///
/// # Example
///
/// ```
/// use aprof_core::CostStats;
/// let mut s = CostStats::default();
/// s.record(10);
/// s.record(4);
/// assert_eq!(s.count, 2);
/// assert_eq!(s.max, 10);
/// assert_eq!(s.min, 4);
/// assert_eq!(s.mean(), 7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostStats {
    /// Number of activations observed with this input size.
    pub count: u64,
    /// Minimum cost among them.
    pub min: u64,
    /// Maximum cost (the worst-case running time plots of §3 use this).
    pub max: u64,
    /// Sum of costs (for average-cost plots).
    pub sum: u64,
    /// Sum of squared costs (for variance estimates).
    pub sum_sq: f64,
}

impl Default for CostStats {
    fn default() -> Self {
        CostStats { count: 0, min: u64::MAX, max: 0, sum: 0, sum_sq: 0.0 }
    }
}

impl CostStats {
    /// Folds the cost of one more activation into the statistics.
    pub fn record(&mut self, cost: u64) {
        self.count += 1;
        self.min = self.min.min(cost);
        self.max = self.max.max(cost);
        self.sum += cost;
        self.sum_sq += (cost as f64) * (cost as f64);
    }

    /// Mean cost.
    ///
    /// Returns `0.0` if no activation was recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population variance of the cost.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0)
    }

    /// Merges another statistics value (e.g. the same input size observed on
    /// a different thread) into this one.
    pub fn merge(&mut self, other: &CostStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }
}

/// The profile of one routine as activated by one thread.
///
/// Routine profiles are *thread-sensitive* (§4): activations made by
/// different threads are kept distinct and can be merged afterwards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutineThreadProfile {
    /// trms value → cost statistics (one entry per distinct trms value).
    pub trms: BTreeMap<u64, CostStats>,
    /// rms value → cost statistics.
    pub rms: BTreeMap<u64, CostStats>,
    /// Number of completed activations.
    pub calls: u64,
    /// Inclusive count of read operations (the activation plus descendants).
    pub reads: u64,
    /// Inclusive count of thread-induced first-accesses.
    pub induced_thread: u64,
    /// Inclusive count of external (kernel-write-induced) first-accesses.
    pub induced_external: u64,
    /// Sum of trms over all activations (for the input-volume metric).
    pub sum_trms: u64,
    /// Sum of rms over all activations.
    pub sum_rms: u64,
    /// Total inclusive cost over all activations.
    pub total_cost: u64,
}

impl RoutineThreadProfile {
    /// Records one completed activation.
    pub fn record(&mut self, trms: u64, rms: u64, cost: u64) {
        self.trms.entry(trms).or_default().record(cost);
        self.rms.entry(rms).or_default().record(cost);
        self.calls += 1;
        self.sum_trms += trms;
        self.sum_rms += rms;
        self.total_cost += cost;
    }

    /// Merges `other` (same routine, different thread) into `self`.
    pub fn merge(&mut self, other: &RoutineThreadProfile) {
        for (&k, v) in &other.trms {
            self.trms.entry(k).or_default().merge(v);
        }
        for (&k, v) in &other.rms {
            self.rms.entry(k).or_default().merge(v);
        }
        self.calls += other.calls;
        self.reads += other.reads;
        self.induced_thread += other.induced_thread;
        self.induced_external += other.induced_external;
        self.sum_trms += other.sum_trms;
        self.sum_rms += other.sum_rms;
        self.total_cost += other.total_cost;
    }
}

/// One completed routine activation, as optionally logged by the profilers.
///
/// Activation logs are the ground truth for differential tests between the
/// timestamping algorithm and the naive oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationRecord {
    /// Thread that performed the activation.
    pub thread: ThreadId,
    /// The activated routine.
    pub routine: RoutineId,
    /// Threaded read memory size of the activation.
    pub trms: u64,
    /// Read memory size of the activation.
    pub rms: u64,
    /// Inclusive cost (basic blocks) of the activation.
    pub cost: u64,
}

/// The merged profile of one routine (all threads), plus its attribution
/// counters — everything the paper's per-routine charts need.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineReport {
    /// Dense id of the routine.
    pub routine: u32,
    /// Routine name (resolved via the [`RoutineTable`] at report time).
    pub name: String,
    /// Merged profile across threads.
    pub merged: RoutineThreadProfile,
    /// Per-thread profiles, keyed by thread index.
    pub per_thread: BTreeMap<u32, RoutineThreadProfile>,
}

impl RoutineReport {
    /// The routine's trms cost curve: sorted `(input size, stats)` points.
    pub fn trms_curve(&self) -> Vec<(u64, CostStats)> {
        self.merged.trms.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// The routine's rms cost curve.
    pub fn rms_curve(&self) -> Vec<(u64, CostStats)> {
        self.merged.rms.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Number of distinct trms values collected (|trms_r| in §6.1).
    pub fn distinct_trms(&self) -> usize {
        self.merged.trms.len()
    }

    /// Number of distinct rms values collected (|rms_r|).
    pub fn distinct_rms(&self) -> usize {
        self.merged.rms.len()
    }

    /// Profile richness: `(|trms_r| - |rms_r|) / |rms_r|` (§6.1, metric 1).
    ///
    /// Positive when the trms yields more performance points; may be
    /// negative (rarely, per the paper) when distinct rms values collapse
    /// onto one trms value.
    pub fn profile_richness(&self) -> f64 {
        let r = self.distinct_rms();
        if r == 0 {
            return 0.0;
        }
        (self.distinct_trms() as f64 - r as f64) / r as f64
    }

    /// Input volume: `1 - Σ rms / Σ trms` over the routine's activations
    /// (§6.1, metric 2). In `[0, 1)`; 0 when no induced input exists.
    pub fn input_volume(&self) -> f64 {
        if self.merged.sum_trms == 0 {
            return 0.0;
        }
        1.0 - self.merged.sum_rms as f64 / self.merged.sum_trms as f64
    }

    /// Fraction of this routine's reads that were induced first-accesses,
    /// split as `(thread-induced, external)`; both in `[0, 1]`.
    pub fn induced_fractions(&self) -> (f64, f64) {
        if self.merged.reads == 0 {
            return (0.0, 0.0);
        }
        let r = self.merged.reads as f64;
        (self.merged.induced_thread as f64 / r, self.merged.induced_external as f64 / r)
    }
}

/// Whole-run counters (§6.1 metrics 3–4 and space accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GlobalStats {
    /// Total read operations observed.
    pub reads: u64,
    /// Total write operations observed.
    pub writes: u64,
    /// Total kernel-read cells observed.
    pub kernel_reads: u64,
    /// Total kernel-write cells observed.
    pub kernel_writes: u64,
    /// Induced first-accesses due to other threads (counted once each).
    pub induced_thread: u64,
    /// Induced first-accesses due to external input (counted once each).
    pub induced_external: u64,
    /// Completed activations.
    pub activations: u64,
    /// Σ trms over all activations.
    pub sum_trms: u64,
    /// Σ rms over all activations.
    pub sum_rms: u64,
    /// Number of timestamp renumberings performed (§4.4).
    pub renumberings: u64,
    /// Resident bytes of all shadow memories at the end of the run.
    pub shadow_bytes: u64,
}

impl GlobalStats {
    /// Percentage split of induced first-accesses as
    /// `(thread-induced %, external %)`; sums to 100 when any exist
    /// (Fig. 17).
    pub fn induced_split(&self) -> (f64, f64) {
        let total = self.induced_thread + self.induced_external;
        if total == 0 {
            return (0.0, 0.0);
        }
        (
            100.0 * self.induced_thread as f64 / total as f64,
            100.0 * self.induced_external as f64 / total as f64,
        )
    }

    /// Whole-run input volume: `1 - Σ rms / Σ trms` (§6.1, metric 2).
    pub fn input_volume(&self) -> f64 {
        if self.sum_trms == 0 {
            return 0.0;
        }
        1.0 - self.sum_rms as f64 / self.sum_trms as f64
    }
}

/// The complete output of a profiling session.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Name of the tool that produced the report.
    pub tool: String,
    /// Per-routine reports, sorted by routine id.
    pub routines: Vec<RoutineReport>,
    /// Whole-run counters.
    pub global: GlobalStats,
}

impl ProfileReport {
    /// Builds a report from raw per-(thread, routine) profiles.
    pub(crate) fn assemble(
        tool: &str,
        profiles: BTreeMap<(ThreadId, RoutineId), RoutineThreadProfile>,
        global: GlobalStats,
        names: &RoutineTable,
    ) -> ProfileReport {
        let mut by_routine: BTreeMap<RoutineId, RoutineReport> = BTreeMap::new();
        for ((thread, routine), profile) in profiles {
            let entry = by_routine.entry(routine).or_insert_with(|| RoutineReport {
                routine: routine.index() as u32,
                name: names
                    .get_name(routine)
                    .map(str::to_owned)
                    .unwrap_or_else(|| routine.to_string()),
                merged: RoutineThreadProfile::default(),
                per_thread: BTreeMap::new(),
            });
            entry.merged.merge(&profile);
            entry.per_thread.insert(thread.index() as u32, profile);
        }
        ProfileReport {
            tool: tool.to_owned(),
            routines: by_routine.into_values().collect(),
            global,
        }
    }

    /// Looks up the report of one routine.
    pub fn routine(&self, id: RoutineId) -> Option<&RoutineReport> {
        self.routines.iter().find(|r| r.routine == id.index() as u32)
    }

    /// Looks up the report of one routine by name.
    pub fn routine_by_name(&self, name: &str) -> Option<&RoutineReport> {
        self.routines.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_stats_accumulate() {
        let mut s = CostStats::default();
        for c in [5, 1, 9] {
            s.record(c);
        }
        assert_eq!((s.count, s.min, s.max, s.sum), (3, 1, 9, 15));
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!(s.variance() > 0.0);
    }

    #[test]
    fn cost_stats_merge_identity() {
        let mut a = CostStats::default();
        a.record(3);
        let empty = CostStats::default();
        let before = a;
        a.merge(&empty);
        assert_eq!(a, before);
        let mut e = CostStats::default();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn routine_profile_distinct_points() {
        let mut p = RoutineThreadProfile::default();
        p.record(10, 5, 100);
        p.record(10, 6, 80);
        p.record(20, 6, 200);
        assert_eq!(p.trms.len(), 2);
        assert_eq!(p.rms.len(), 2);
        assert_eq!(p.calls, 3);
        assert_eq!(p.trms[&10].max, 100);
        assert_eq!(p.sum_trms, 40);
        assert_eq!(p.sum_rms, 17);
    }

    #[test]
    fn richness_and_volume() {
        let mut merged = RoutineThreadProfile::default();
        merged.record(2, 1, 10);
        merged.record(4, 2, 20);
        merged.record(6, 3, 30);
        let r = RoutineReport {
            routine: 0,
            name: "f".into(),
            merged,
            per_thread: BTreeMap::new(),
        };
        // 3 distinct trms, 3 distinct rms -> richness 0
        assert_eq!(r.profile_richness(), 0.0);
        // volume = 1 - 6/12 = 0.5
        assert!((r.input_volume() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn global_split_sums_to_100() {
        let g = GlobalStats { induced_thread: 30, induced_external: 10, ..Default::default() };
        let (t, e) = g.induced_split();
        assert!((t + e - 100.0).abs() < 1e-9);
        assert!((t - 75.0).abs() < 1e-9);
    }

    #[test]
    fn global_split_empty_is_zero() {
        let g = GlobalStats::default();
        assert_eq!(g.induced_split(), (0.0, 0.0));
        assert_eq!(g.input_volume(), 0.0);
    }
}
