//! Input-sensitive profiling: the rms and trms metrics.
//!
//! This crate implements the paper's contribution: profilers that estimate,
//! for every routine activation, the **size of the input** the activation
//! worked on, and aggregate `(input size, cost)` pairs into per-routine cost
//! curves from a *single* run.
//!
//! Two metrics are provided:
//!
//! * **read memory size** (rms, Definition 1 — the PLDI 2012 metric): the
//!   number of distinct memory cells first accessed by a routine activation,
//!   or by one of its descendants in the call tree, with a *read* operation.
//!   Computed by [`RmsProfiler`], which is thread-oblivious (each thread is
//!   profiled as an independent sequential computation).
//! * **threaded read memory size** (trms, Definitions 2–3): additionally
//!   counts *induced first-accesses* — reads of cells whose latest write was
//!   performed by a different thread or by the OS kernel (I/O) and that the
//!   activation had not accessed since. Computed by [`TrmsProfiler`] with
//!   the read/write timestamping algorithm of §4.2–4.3: a global counter
//!   bumped on calls and thread switches, a global write-timestamp shadow
//!   memory, per-thread access-timestamp shadow memories, and per-thread
//!   shadow stacks holding *partial* metric values such that the metric of
//!   the i-th pending activation equals the suffix sum of partials
//!   (Invariant 2).
//!
//! [`TrmsProfiler`] computes **both** metrics in one pass (they share the
//! per-thread timestamp shadow), so rms-vs-trms comparisons — the heart of
//! the paper's case studies — come from one profiling session. The
//! [`InputPolicy`] selects which induced accesses count towards the trms,
//! reproducing the rms / external-only / external+thread panels of Fig. 7.
//!
//! Counter overflow is handled by the renumbering procedure of §4.4
//! (see [`renumber`]); a configurable counter limit makes overflow
//! exercisable in tests.
//!
//! The set-based naive algorithm of Fig. 10 is implemented in
//! [`NaiveProfiler`] and serves as a differential-testing oracle.
//!
//! # Example
//!
//! Profile the producer/consumer pattern of Fig. 2: after the producer has
//! written `n` values to the shared cell, the consumer's reads are all
//! induced first-accesses, so `rms = 1` but `trms = n`.
//!
//! ```
//! use aprof_core::TrmsProfiler;
//! use aprof_trace::{Addr, Event, RoutineTable, ThreadId, Trace};
//!
//! let mut names = RoutineTable::new();
//! let (produce, consume) = (names.intern("produceData"), names.intern("consumeData"));
//! let (prod, cons) = (ThreadId::new(0), ThreadId::new(1));
//! let x = Addr::new(0x100);
//!
//! let mut trace = Trace::new();
//! trace.push(cons, Event::Call { routine: consume });
//! for _ in 0..5 {
//!     trace.push(prod, Event::ThreadSwitch);
//!     trace.push(prod, Event::Call { routine: produce });
//!     trace.push(prod, Event::Write { addr: x });
//!     trace.push(prod, Event::Return { routine: produce });
//!     trace.push(cons, Event::ThreadSwitch);
//!     trace.push(cons, Event::Read { addr: x });
//! }
//! trace.push(cons, Event::Return { routine: consume });
//!
//! let mut profiler = TrmsProfiler::new();
//! trace.replay(&mut profiler);
//! let report = profiler.into_report(&names);
//! let consumer = report.routine(consume).unwrap();
//! assert_eq!(consumer.trms_curve()[0].0, 5); // trms = n = 5
//! assert_eq!(consumer.rms_curve()[0].0, 1);  // rms = 1
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cct;
mod naive;
mod policy;
mod profile;
pub mod renumber;
mod rms;
mod stream;
mod trms;

pub use naive::NaiveProfiler;
pub use stream::{consume_stream, DEFAULT_STREAM_BATCH};
pub use policy::InputPolicy;
pub use profile::{
    ActivationRecord, CostStats, GlobalStats, ProfileReport, RoutineReport, RoutineThreadProfile,
};
pub use renumber::RenumberScheme;
pub use rms::RmsProfiler;
pub use trms::{TrmsBuilder, TrmsProfiler};
