//! The sequential rms profiler (`aprof-rms`, the PLDI 2012 tool).

use crate::profile::{ActivationRecord, GlobalStats, ProfileReport, RoutineThreadProfile};
use aprof_trace::{Addr, Event, RoutineId, RoutineTable, ThreadId, TimedEvent, Tool};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
struct RmsFrame {
    routine: RoutineId,
    ts: u64,
    cost_at_entry: u64,
    partial_rms: i64,
    reads: u64,
}

#[derive(Debug, Default)]
struct RmsThread {
    /// Per-thread counter (bumped on calls only — no thread switches or
    /// global state in the sequential algorithm).
    count: u64,
    ts: aprof_shadow::ShadowMemory<u64>,
    stack: Vec<RmsFrame>,
    cost: u64,
}

impl RmsThread {
    fn deepest_at_or_before(&self, lts: u64) -> Option<usize> {
        self.stack.partition_point(|f| f.ts <= lts).checked_sub(1)
    }

    /// Procedure `read` of the sequential algorithm, operating purely on
    /// thread state so both the per-event and the batched paths share it.
    /// Fetches the cell's last-access timestamp and stamps it with the
    /// current counter in one shadow-table traversal.
    fn apply_read(&mut self, addr: Addr) {
        let count = self.count;
        let lts = self.ts.get_set(addr, count);
        if let Some(top) = self.stack.len().checked_sub(1) {
            self.stack[top].reads += 1;
            if lts < self.stack[top].ts {
                self.stack[top].partial_rms += 1;
                if lts != 0 {
                    if let Some(j) = self.deepest_at_or_before(lts) {
                        self.stack[j].partial_rms -= 1;
                    }
                }
            }
        }
    }
}

/// The original input-sensitive profiler of Coppa et al. (PLDI 2012):
/// computes the **read memory size** only, treating every thread as an
/// independent sequential computation.
///
/// It keeps no global shadow memory and ignores thread switches and kernel
/// events entirely, so it is cheaper than [`TrmsProfiler`](crate::TrmsProfiler)
/// in both time and space — this is the `aprof-rms` column of Table 1. Its
/// blind spots are exactly the paper's motivation: repeated reads of cells
/// rewritten by other threads or refilled by the kernel contribute nothing
/// to the rms, which can make cost plots collapse (Fig. 7a) or suggest
/// spurious asymptotic trends (Figs. 4–5).
///
/// In its reports the trms curve of each routine equals the rms curve (the
/// metric it computes), keeping [`ProfileReport`] uniform across tools.
///
/// # Example
///
/// ```
/// use aprof_core::RmsProfiler;
/// use aprof_trace::{Addr, Event, RoutineTable, ThreadId, Trace};
/// let mut names = RoutineTable::new();
/// let f = names.intern("f");
/// let mut tr = Trace::new();
/// tr.push(ThreadId::MAIN, Event::Call { routine: f });
/// tr.push(ThreadId::MAIN, Event::Read { addr: Addr::new(0) });
/// tr.push(ThreadId::MAIN, Event::Read { addr: Addr::new(0) });
/// tr.push(ThreadId::MAIN, Event::Read { addr: Addr::new(1) });
/// tr.push(ThreadId::MAIN, Event::Return { routine: f });
/// let mut p = RmsProfiler::new();
/// tr.replay(&mut p);
/// let report = p.into_report(&names);
/// assert_eq!(report.routine(f).unwrap().rms_curve()[0].0, 2);
/// ```
#[derive(Debug, Default)]
pub struct RmsProfiler {
    threads: Vec<RmsThread>,
    profiles: BTreeMap<(ThreadId, RoutineId), RoutineThreadProfile>,
    global: GlobalStats,
    activations: Vec<ActivationRecord>,
    log_activations: bool,
    finished: bool,
}

impl RmsProfiler {
    /// Creates a sequential rms profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a profiler that additionally logs one [`ActivationRecord`]
    /// per completed activation.
    pub fn with_activation_log() -> Self {
        RmsProfiler { log_activations: true, ..Self::default() }
    }

    /// The per-activation log (empty unless enabled).
    pub fn activations(&self) -> &[ActivationRecord] {
        &self.activations
    }

    /// Resident bytes of the per-thread shadow memories.
    pub fn shadow_bytes(&self) -> u64 {
        self.threads.iter().map(|t| t.ts.stats().bytes as u64).sum()
    }

    /// Consumes a fallible event stream (e.g. a wire-trace decoder)
    /// batch-by-batch via [`crate::consume_stream`], so traces far larger
    /// than memory profile in bounded space. Returns the events consumed.
    ///
    /// # Errors
    ///
    /// Stops at the first source error and returns it; the profile is not
    /// finalized in that case.
    pub fn consume_stream<E, I>(&mut self, events: I) -> Result<u64, E>
    where
        I: IntoIterator<Item = Result<(ThreadId, Event), E>>,
    {
        crate::stream::consume_stream(self, events)
    }

    /// Finalizes the session and assembles the report.
    pub fn into_report(mut self, names: &RoutineTable) -> ProfileReport {
        self.finish();
        self.global.shadow_bytes = self.shadow_bytes();
        ProfileReport::assemble("aprof-rms", self.profiles, self.global, names)
    }

    fn state(&mut self, thread: ThreadId) -> &mut RmsThread {
        let idx = thread.index();
        if idx >= self.threads.len() {
            self.threads.resize_with(idx + 1, RmsThread::default);
        }
        &mut self.threads[idx]
    }

    fn on_return(&mut self, thread: ThreadId, routine: RoutineId) {
        let st = self.state(thread);
        let Some(frame) = st.stack.pop() else { return };
        debug_assert_eq!(frame.routine, routine);
        debug_assert!(frame.partial_rms >= 0);
        let cost = st.cost - frame.cost_at_entry;
        let rms = frame.partial_rms.max(0) as u64;
        if let Some(parent) = st.stack.last_mut() {
            parent.partial_rms += frame.partial_rms;
            parent.reads += frame.reads;
        }
        let profile = self.profiles.entry((thread, frame.routine)).or_default();
        profile.record(rms, rms, cost);
        profile.reads += frame.reads;
        self.global.activations += 1;
        self.global.sum_rms += rms;
        self.global.sum_trms += rms;
        if self.log_activations {
            self.activations.push(ActivationRecord {
                thread,
                routine: frame.routine,
                trms: rms,
                rms,
                cost,
            });
        }
    }

    fn unwind(&mut self, thread: ThreadId) {
        while self
            .threads
            .get(thread.index())
            .map(|st| !st.stack.is_empty())
            .unwrap_or(false)
        {
            let routine = self.threads[thread.index()].stack.last().expect("nonempty").routine;
            self.on_return(thread, routine);
        }
    }
}

impl Tool for RmsProfiler {
    fn name(&self) -> &'static str {
        "aprof-rms"
    }

    fn call(&mut self, thread: ThreadId, routine: RoutineId) {
        let st = self.state(thread);
        st.count += 1;
        let ts = st.count;
        let cost_at_entry = st.cost;
        st.stack.push(RmsFrame { routine, ts, cost_at_entry, partial_rms: 0, reads: 0 });
    }

    fn ret(&mut self, thread: ThreadId, routine: RoutineId) {
        self.on_return(thread, routine);
    }

    fn read(&mut self, thread: ThreadId, addr: Addr) {
        self.global.reads += 1;
        self.state(thread).apply_read(addr);
    }

    /// Batched dispatch with a same-thread read-run fast path: a run of
    /// consecutive `Read` events by one thread resolves the thread state
    /// once and bumps the global read counter once per run. Everything else
    /// falls back to [`dispatch`](Tool::dispatch), so observable behaviour
    /// is identical to sequential replay.
    fn on_batch(&mut self, events: &[TimedEvent]) {
        let mut i = 0;
        while i < events.len() {
            let te = &events[i];
            if !matches!(te.event, Event::Read { .. }) {
                self.dispatch(te.thread, te.event);
                i += 1;
                continue;
            }
            let thread = te.thread;
            let mut j = i + 1;
            while j < events.len()
                && events[j].thread == thread
                && matches!(events[j].event, Event::Read { .. })
            {
                j += 1;
            }
            self.global.reads += (j - i) as u64;
            let st = self.state(thread);
            for te in &events[i..j] {
                let Event::Read { addr } = te.event else { unreachable!() };
                st.apply_read(addr);
            }
            i = j;
        }
    }

    fn write(&mut self, thread: ThreadId, addr: Addr) {
        self.global.writes += 1;
        let st = self.state(thread);
        let count = st.count;
        st.ts.set(addr, count);
    }

    fn thread_exit(&mut self, thread: ThreadId) {
        self.unwind(thread);
    }

    fn basic_block(&mut self, thread: ThreadId, cost: u64) {
        self.state(thread).cost += cost;
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        for idx in 0..self.threads.len() {
            self.unwind(ThreadId::new(idx as u32));
        }
        if aprof_obs::is_enabled() {
            aprof_obs::counters::PROF_ACTIVATIONS.add(self.global.activations);
            aprof_obs::counters::PROF_SHADOW_BYTES.record_max(self.shadow_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_trace::{Event, Trace};

    /// rms ignores cross-thread writes: the consumer of Fig. 2 has rms 1.
    #[test]
    fn blind_to_thread_input() {
        let mut names = RoutineTable::new();
        let produce = names.intern("produce");
        let consume = names.intern("consume");
        let (p, c) = (ThreadId::new(0), ThreadId::new(1));
        let x = Addr::new(1);
        let mut tr = Trace::new();
        tr.push(c, Event::Call { routine: consume });
        for _ in 0..8 {
            tr.push(p, Event::ThreadSwitch);
            tr.push(p, Event::Call { routine: produce });
            tr.push(p, Event::Write { addr: x });
            tr.push(p, Event::Return { routine: produce });
            tr.push(c, Event::ThreadSwitch);
            tr.push(c, Event::Read { addr: x });
        }
        tr.push(c, Event::Return { routine: consume });
        let mut prof = RmsProfiler::new();
        tr.replay(&mut prof);
        let report = prof.into_report(&names);
        assert_eq!(report.routine(consume).unwrap().rms_curve(), vec![(1, {
            let mut s = crate::CostStats::default();
            s.record(0);
            s
        })]);
    }

    /// rms ignores kernel refills: the buffered reader of Fig. 3 has rms 1.
    #[test]
    fn blind_to_external_input() {
        let mut names = RoutineTable::new();
        let er = names.intern("externalRead");
        let t = ThreadId::MAIN;
        let b0 = Addr::new(0);
        let mut tr = Trace::new();
        tr.push(t, Event::Call { routine: er });
        for _ in 0..5 {
            tr.push(t, Event::KernelWrite { addr: b0 });
            tr.push(t, Event::Read { addr: b0 });
        }
        tr.push(t, Event::Return { routine: er });
        let mut prof = RmsProfiler::with_activation_log();
        tr.replay(&mut prof);
        assert_eq!(prof.activations()[0].rms, 1);
    }

    /// Nested activations: per-activation first-access semantics.
    #[test]
    fn nested_rms() {
        let mut names = RoutineTable::new();
        let f = names.intern("f");
        let g = names.intern("g");
        let t = ThreadId::MAIN;
        let mut tr = Trace::new();
        tr.push(t, Event::Call { routine: f });
        tr.push(t, Event::Read { addr: Addr::new(0) });
        tr.push(t, Event::Call { routine: g });
        tr.push(t, Event::Read { addr: Addr::new(0) }); // first for g, old for f
        tr.push(t, Event::Read { addr: Addr::new(1) }); // first for both
        tr.push(t, Event::Return { routine: g });
        tr.push(t, Event::Return { routine: f });
        let mut prof = RmsProfiler::with_activation_log();
        tr.replay(&mut prof);
        let recs = prof.activations().to_vec();
        let g_rms = recs.iter().find(|r| r.routine == g).unwrap().rms;
        let f_rms = recs.iter().find(|r| r.routine == f).unwrap().rms;
        assert_eq!(g_rms, 2);
        assert_eq!(f_rms, 2);
    }

    /// Writes preceding reads make cells non-input (they were produced by
    /// the routine itself).
    #[test]
    fn write_then_read_is_not_input() {
        let mut names = RoutineTable::new();
        let f = names.intern("f");
        let t = ThreadId::MAIN;
        let mut tr = Trace::new();
        tr.push(t, Event::Call { routine: f });
        tr.push(t, Event::Write { addr: Addr::new(9) });
        tr.push(t, Event::Read { addr: Addr::new(9) });
        tr.push(t, Event::Return { routine: f });
        let mut prof = RmsProfiler::with_activation_log();
        tr.replay(&mut prof);
        assert_eq!(prof.activations()[0].rms, 0);
    }
}
