//! Streaming profile construction from fallible event sources.
//!
//! The profilers in this crate are [`Tool`]s, so they can be driven by an
//! in-memory [`Trace`](aprof_trace::Trace) — but a trace of a long run may
//! not fit in memory. This module feeds a profiler directly from any
//! fallible `(thread, event)` source (such as `aprof_wire::WireReader`
//! decoding an on-disk trace chunk by chunk), batching events through the
//! [`Tool::on_batch`] fast path so working memory stays bounded by one
//! batch regardless of trace size. Because the callback sequence is
//! identical to an in-memory replay, the resulting profile is
//! byte-identical to one computed from a materialized trace.

use aprof_trace::{replay_events_batched, Event, ThreadId, Tool};

/// Events per [`Tool::on_batch`] delivery used by [`consume_stream`] —
/// large enough to amortize dispatch, small enough to stay cache-resident.
pub const DEFAULT_STREAM_BATCH: usize = 4096;

/// Drives `tool` from a fallible event source in
/// [`DEFAULT_STREAM_BATCH`]-sized batches, then calls [`Tool::finish`].
/// Returns the number of events consumed.
///
/// # Errors
///
/// Stops at the first source error and returns it without calling
/// [`Tool::finish`] — a partial profile is never finalized.
pub fn consume_stream<T, E, I>(tool: &mut T, events: I) -> Result<u64, E>
where
    T: Tool + ?Sized,
    I: IntoIterator<Item = Result<(ThreadId, Event), E>>,
{
    replay_events_batched(tool, events, DEFAULT_STREAM_BATCH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RmsProfiler, TrmsProfiler};
    use aprof_trace::{Addr, RoutineTable, Trace};

    fn sample() -> (Trace, RoutineTable) {
        let mut names = RoutineTable::new();
        let f = names.intern("f");
        let g = names.intern("g");
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let mut trace = Trace::new();
        trace.push(t0, Event::Call { routine: f });
        for i in 0..100 {
            trace.push(t0, Event::Write { addr: Addr::new(i) });
            trace.push(t1, Event::ThreadSwitch);
            trace.push(t1, Event::Call { routine: g });
            trace.push(t1, Event::Read { addr: Addr::new(i) });
            trace.push(t1, Event::Return { routine: g });
            trace.push(t0, Event::ThreadSwitch);
        }
        trace.push(t0, Event::Return { routine: f });
        (trace, names)
    }

    #[test]
    fn streamed_profiles_match_in_memory_replay() {
        let (trace, names) = sample();
        let source = || {
            trace
                .events()
                .iter()
                .map(|te| Ok::<_, ()>((te.thread, te.event)))
                .collect::<Vec<_>>()
        };

        let mut expected = TrmsProfiler::new();
        trace.replay(&mut expected);
        let mut streamed = TrmsProfiler::new();
        streamed.consume_stream(source()).unwrap();
        assert_eq!(expected.into_report(&names), streamed.into_report(&names));

        let mut expected = RmsProfiler::new();
        trace.replay(&mut expected);
        let mut streamed = RmsProfiler::new();
        streamed.consume_stream(source()).unwrap();
        assert_eq!(expected.into_report(&names), streamed.into_report(&names));
    }

    #[test]
    fn source_errors_abort_without_finalizing() {
        let mut profiler = RmsProfiler::new();
        let source = vec![
            Ok((ThreadId::MAIN, Event::Read { addr: Addr::new(1) })),
            Err("truncated"),
        ];
        assert_eq!(profiler.consume_stream(source), Err("truncated"));
    }
}
