//! Strongly-typed identifiers used throughout `aprof-rs`.

use std::fmt;

/// Identifier of a guest thread.
///
/// Threads are numbered densely starting from 0 (the main thread). The
/// operating-system kernel is *not* a thread: kernel-mediated accesses are
/// modelled by the [`Event::KernelRead`](crate::Event::KernelRead) and
/// [`Event::KernelWrite`](crate::Event::KernelWrite) events instead.
///
/// # Example
///
/// ```
/// use aprof_trace::ThreadId;
/// let main = ThreadId::MAIN;
/// assert_eq!(main, ThreadId::new(0));
/// assert_eq!(main.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(u32);

impl ThreadId {
    /// The main (initial) thread of a guest program.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Creates a thread id from a dense index.
    pub const fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the dense index of this thread.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u32> for ThreadId {
    fn from(v: u32) -> Self {
        ThreadId(v)
    }
}

/// Identifier of a routine (function) of the guest program.
///
/// Routine ids are produced by interning names in a
/// [`RoutineTable`](crate::RoutineTable); they are dense indices, so tools
/// can use them directly as `Vec` indices.
///
/// # Example
///
/// ```
/// use aprof_trace::RoutineTable;
/// let mut table = RoutineTable::new();
/// let f = table.intern("f");
/// assert_eq!(table.name(f), "f");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoutineId(u32);

impl RoutineId {
    /// Creates a routine id from a dense index.
    ///
    /// Normally ids come from [`RoutineTable::intern`](crate::RoutineTable::intern);
    /// this constructor exists for synthetic traces and tests.
    pub const fn new(index: u32) -> Self {
        RoutineId(index)
    }

    /// Returns the dense index of this routine.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RoutineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for RoutineId {
    fn from(v: u32) -> Self {
        RoutineId(v)
    }
}

/// A guest memory location.
///
/// The guest machine of `aprof-vm` is word-granular: one `Addr` names one
/// memory cell (a 64-bit word). This mirrors the paper's treatment of
/// "distinct memory cells" while keeping shadow memories compact.
///
/// # Example
///
/// ```
/// use aprof_trace::Addr;
/// let a = Addr::new(100);
/// assert_eq!(a.offset(4), Addr::new(104));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address naming the given memory cell.
    pub const fn new(cell: u64) -> Self {
        Addr(cell)
    }

    /// Returns the raw cell index of this address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address `delta` cells past this one.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the addition overflows `u64`.
    pub const fn offset(self, delta: u64) -> Self {
        Addr(self.0 + delta)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A logical timestamp attached to trace events.
///
/// Timestamps are only required to respect the per-thread program order;
/// events of different threads with equal timestamps are ordered arbitrarily
/// when traces are [merged](crate::Trace::merge), as in §4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// Creates a timestamp from its raw tick count.
    pub const fn new(ticks: u64) -> Self {
        Timestamp(ticks)
    }

    /// Returns the raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_roundtrip() {
        let t = ThreadId::new(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.to_string(), "T7");
        assert_eq!(ThreadId::from(7u32), t);
    }

    #[test]
    fn main_thread_is_zero() {
        assert_eq!(ThreadId::MAIN.index(), 0);
        assert_eq!(ThreadId::default(), ThreadId::MAIN);
    }

    #[test]
    fn addr_offset() {
        assert_eq!(Addr::new(10).offset(5).raw(), 15);
        assert_eq!(Addr::new(3).to_string(), "0x3");
    }

    #[test]
    fn routine_id_display() {
        assert_eq!(RoutineId::new(2).to_string(), "r2");
        assert_eq!(RoutineId::from(2u32).index(), 2);
    }

    #[test]
    fn timestamp_ordering() {
        assert!(Timestamp::new(1) < Timestamp::new(2));
        assert_eq!(Timestamp::new(4).to_string(), "@4");
        assert_eq!(Timestamp::from(9u64).ticks(), 9);
    }
}
