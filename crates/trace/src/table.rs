//! Interning of routine names.

use crate::RoutineId;
use std::collections::HashMap;

/// A bidirectional map between routine names and dense [`RoutineId`]s.
///
/// The guest machine interns every function of a program at load time; the
/// profilers only ever see ids and use this table when rendering reports.
///
/// # Example
///
/// ```
/// use aprof_trace::RoutineTable;
/// let mut table = RoutineTable::new();
/// let f = table.intern("f");
/// let g = table.intern("g");
/// assert_ne!(f, g);
/// assert_eq!(table.intern("f"), f); // idempotent
/// assert_eq!(table.name(g), "g");
/// assert_eq!(table.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoutineTable {
    names: Vec<String>,
    ids: HashMap<String, RoutineId>,
}

impl RoutineTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, allocating a fresh one on first sight.
    pub fn intern(&mut self, name: &str) -> RoutineId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = RoutineId::new(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Returns the id for `name` if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<RoutineId> {
        self.ids.get(name).copied()
    }

    /// Returns the name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: RoutineId) -> &str {
        &self.names[id.index()]
    }

    /// Returns the name of `id`, or `None` if `id` is foreign to this table.
    pub fn get_name(&self, id: RoutineId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of interned routines.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no routine has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RoutineId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (RoutineId::new(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = RoutineTable::new();
        let a = t.intern("alpha");
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_dense() {
        let mut t = RoutineTable::new();
        for i in 0..10 {
            let id = t.intern(&format!("f{i}"));
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn lookup_and_names() {
        let mut t = RoutineTable::new();
        let f = t.intern("f");
        assert_eq!(t.lookup("f"), Some(f));
        assert_eq!(t.lookup("nope"), None);
        assert_eq!(t.get_name(f), Some("f"));
        assert_eq!(t.get_name(RoutineId::new(99)), None);
    }

    #[test]
    fn iter_in_order() {
        let mut t = RoutineTable::new();
        t.intern("a");
        t.intern("b");
        let collected: Vec<_> = t.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(collected, vec!["a", "b"]);
        assert!(!t.is_empty());
    }
}
