//! The instrumentation callback interface implemented by analysis tools.

use crate::{Addr, Event, RoutineId, ThreadId, TimedEvent, Timestamp};

/// A Valgrind-style dynamic-analysis tool.
///
/// The guest machine (`aprof-vm`) calls these hooks while executing a guest
/// program; recorded [`Trace`](crate::Trace)s call them during
/// [replay](crate::Trace::replay). All callbacks have empty default bodies so
/// a tool only implements the events it cares about, mirroring how Valgrind
/// tools register callbacks for a subset of VEX events.
///
/// Threads are *serialized*: callbacks are never issued concurrently, and a
/// [`thread_switch`](Tool::thread_switch) callback separates the callbacks of
/// different threads, as guaranteed by Valgrind's serialized execution model
/// (§5 of the paper).
///
/// # Example
///
/// A tool that counts memory reads:
///
/// ```
/// use aprof_trace::{Addr, ThreadId, Tool};
///
/// #[derive(Default)]
/// struct ReadCounter {
///     reads: u64,
/// }
///
/// impl Tool for ReadCounter {
///     fn name(&self) -> &'static str {
///         "read-counter"
///     }
///     fn read(&mut self, _t: ThreadId, _addr: Addr) {
///         self.reads += 1;
///     }
/// }
///
/// let mut tool = ReadCounter::default();
/// tool.read(ThreadId::MAIN, Addr::new(0));
/// assert_eq!(tool.reads, 1);
/// ```
pub trait Tool {
    /// Short, stable identifier of the tool (e.g. `"aprof-trms"`).
    fn name(&self) -> &'static str;

    /// A new thread began execution.
    fn thread_start(&mut self, thread: ThreadId) {
        let _ = thread;
    }

    /// A thread finished execution.
    fn thread_exit(&mut self, thread: ThreadId) {
        let _ = thread;
    }

    /// The scheduler switched execution to `thread`.
    ///
    /// Issued between any two operations performed by different threads.
    fn thread_switch(&mut self, thread: ThreadId) {
        let _ = thread;
    }

    /// One basic block completed on `thread`, charging `cost` cost units.
    fn basic_block(&mut self, thread: ThreadId, cost: u64) {
        let _ = (thread, cost);
    }

    /// `thread` activated `routine`.
    fn call(&mut self, thread: ThreadId, routine: RoutineId) {
        let _ = (thread, routine);
    }

    /// The topmost activation (`routine`) of `thread` completed.
    fn ret(&mut self, thread: ThreadId, routine: RoutineId) {
        let _ = (thread, routine);
    }

    /// `thread` read the memory cell `addr`.
    fn read(&mut self, thread: ThreadId, addr: Addr) {
        let _ = (thread, addr);
    }

    /// `thread` wrote the memory cell `addr`.
    fn write(&mut self, thread: ThreadId, addr: Addr) {
        let _ = (thread, addr);
    }

    /// The kernel read cell `addr` on behalf of `thread` (outbound I/O).
    fn kernel_read(&mut self, thread: ThreadId, addr: Addr) {
        let _ = (thread, addr);
    }

    /// The kernel wrote cell `addr` on behalf of `thread` (inbound I/O).
    fn kernel_write(&mut self, thread: ThreadId, addr: Addr) {
        let _ = (thread, addr);
    }

    /// `parent` spawned `child` (delivered before `child` first runs).
    ///
    /// Synchronization callbacks exist for tools that track happens-before
    /// relations (e.g. race detectors); the input-sensitive profilers ignore
    /// them, exactly as the paper's algorithm ignores synchronization
    /// operations.
    fn spawned(&mut self, parent: ThreadId, child: ThreadId) {
        let _ = (parent, child);
    }

    /// `thread` joined `target` (delivered when the join completes).
    fn joined(&mut self, thread: ThreadId, target: ThreadId) {
        let _ = (thread, target);
    }

    /// `thread` acquired the mutex identified by `lock`.
    fn lock_acquired(&mut self, thread: ThreadId, lock: i64) {
        let _ = (thread, lock);
    }

    /// `thread` released the mutex identified by `lock`.
    fn lock_released(&mut self, thread: ThreadId, lock: i64) {
        let _ = (thread, lock);
    }

    /// `thread` posted (V) on semaphore `sem`.
    fn sem_posted(&mut self, thread: ThreadId, sem: i64) {
        let _ = (thread, sem);
    }

    /// `thread` completed a wait (P) on semaphore `sem`.
    fn sem_waited(&mut self, thread: ThreadId, sem: i64) {
        let _ = (thread, sem);
    }

    /// Execution finished; flush any pending state.
    fn finish(&mut self) {}

    /// Dispatches a contiguous batch of events.
    ///
    /// Called by [`Trace::replay_batched`](crate::Trace::replay_batched)
    /// with fixed-size chunks of the event stream. The default delivers the
    /// batch event-by-event through [`dispatch`](Tool::dispatch), so
    /// existing tools observe exactly the sequential callback protocol.
    /// Tools may override this to exploit batch-local structure (e.g. runs
    /// of reads issued by one thread), provided the observable result is
    /// identical to sequential dispatch.
    ///
    /// Batches satisfy one structural guarantee: a
    /// [`ThreadSwitch`](crate::Event::ThreadSwitch) event is never the last
    /// event of a non-final batch, so an override always sees a switch
    /// together with at least one operation of the thread switched to.
    fn on_batch(&mut self, events: &[TimedEvent]) {
        for te in events {
            self.dispatch(te.thread, te.event);
        }
    }

    /// Dispatches one event to the matching callback.
    ///
    /// This is the glue used by [`Trace::replay`](crate::Trace::replay);
    /// implementors normally do not override it.
    fn dispatch(&mut self, thread: ThreadId, event: Event) {
        match event {
            Event::Call { routine } => self.call(thread, routine),
            Event::Return { routine } => self.ret(thread, routine),
            Event::Read { addr } => self.read(thread, addr),
            Event::Write { addr } => self.write(thread, addr),
            Event::KernelRead { addr } => self.kernel_read(thread, addr),
            Event::KernelWrite { addr } => self.kernel_write(thread, addr),
            Event::BasicBlock { cost } => self.basic_block(thread, cost),
            Event::ThreadSwitch => self.thread_switch(thread),
            Event::ThreadStart => self.thread_start(thread),
            Event::ThreadExit => self.thread_exit(thread),
        }
    }
}

/// The do-nothing tool (the `nulgrind` analog).
///
/// Measures pure instrumentation-dispatch overhead: every event is delivered
/// and immediately discarded.
///
/// # Example
///
/// ```
/// use aprof_trace::{NullTool, ThreadId, Tool};
/// let mut tool = NullTool::new();
/// tool.basic_block(ThreadId::MAIN, 1);
/// assert_eq!(tool.name(), "nulgrind");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTool;

impl NullTool {
    /// Creates the null tool.
    pub fn new() -> Self {
        NullTool
    }
}

impl Tool for NullTool {
    fn name(&self) -> &'static str {
        "nulgrind"
    }
}

/// A tool that records every event it receives into a [`Trace`](crate::Trace)-like
/// buffer of [`TimedEvent`]s, assigning consecutive timestamps.
///
/// Useful for capturing the event stream of a guest-machine run so it can be
/// replayed into several tools, and in tests.
///
/// # Example
///
/// ```
/// use aprof_trace::{Addr, RecordingTool, ThreadId, Tool};
/// let mut rec = RecordingTool::new();
/// rec.write(ThreadId::MAIN, Addr::new(1));
/// rec.read(ThreadId::MAIN, Addr::new(1));
/// assert_eq!(rec.trace().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecordingTool {
    events: Vec<TimedEvent>,
    clock: u64,
}

impl RecordingTool {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in arrival order.
    pub fn trace(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Consumes the recorder, returning the recorded events.
    pub fn into_trace(self) -> Vec<TimedEvent> {
        self.events
    }

    fn record(&mut self, thread: ThreadId, event: Event) {
        self.clock += 1;
        self.events.push(TimedEvent {
            time: Timestamp::new(self.clock),
            thread,
            event,
        });
    }
}

impl Tool for RecordingTool {
    fn name(&self) -> &'static str {
        "recorder"
    }

    fn thread_start(&mut self, thread: ThreadId) {
        self.record(thread, Event::ThreadStart);
    }

    fn thread_exit(&mut self, thread: ThreadId) {
        self.record(thread, Event::ThreadExit);
    }

    fn thread_switch(&mut self, thread: ThreadId) {
        self.record(thread, Event::ThreadSwitch);
    }

    fn basic_block(&mut self, thread: ThreadId, cost: u64) {
        self.record(thread, Event::BasicBlock { cost });
    }

    fn call(&mut self, thread: ThreadId, routine: RoutineId) {
        self.record(thread, Event::Call { routine });
    }

    fn ret(&mut self, thread: ThreadId, routine: RoutineId) {
        self.record(thread, Event::Return { routine });
    }

    fn read(&mut self, thread: ThreadId, addr: Addr) {
        self.record(thread, Event::Read { addr });
    }

    fn write(&mut self, thread: ThreadId, addr: Addr) {
        self.record(thread, Event::Write { addr });
    }

    fn kernel_read(&mut self, thread: ThreadId, addr: Addr) {
        self.record(thread, Event::KernelRead { addr });
    }

    fn kernel_write(&mut self, thread: ThreadId, addr: Addr) {
        self.record(thread, Event::KernelWrite { addr });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tool_ignores_everything() {
        let mut t = NullTool::new();
        t.dispatch(ThreadId::MAIN, Event::Read { addr: Addr::new(1) });
        t.dispatch(ThreadId::MAIN, Event::ThreadExit);
        t.finish();
    }

    #[test]
    fn recorder_preserves_order_and_threads() {
        let mut rec = RecordingTool::new();
        let t1 = ThreadId::new(1);
        rec.dispatch(ThreadId::MAIN, Event::Call { routine: RoutineId::new(0) });
        rec.dispatch(t1, Event::Write { addr: Addr::new(9) });
        let tr = rec.trace();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0].thread, ThreadId::MAIN);
        assert_eq!(tr[1].thread, t1);
        assert!(tr[0].time < tr[1].time);
        assert_eq!(tr[1].event, Event::Write { addr: Addr::new(9) });
    }

    #[test]
    fn dispatch_covers_all_variants() {
        let mut rec = RecordingTool::new();
        let events = [
            Event::Call { routine: RoutineId::new(0) },
            Event::Return { routine: RoutineId::new(0) },
            Event::Read { addr: Addr::new(0) },
            Event::Write { addr: Addr::new(0) },
            Event::KernelRead { addr: Addr::new(0) },
            Event::KernelWrite { addr: Addr::new(0) },
            Event::BasicBlock { cost: 1 },
            Event::ThreadSwitch,
            Event::ThreadStart,
            Event::ThreadExit,
        ];
        for e in events {
            rec.dispatch(ThreadId::MAIN, e);
        }
        assert_eq!(rec.trace().len(), events.len());
        for (te, e) in rec.trace().iter().zip(events.iter()) {
            assert_eq!(&te.event, e);
        }
        assert_eq!(rec.clone().into_trace().len(), events.len());
    }
}
