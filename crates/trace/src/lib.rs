//! Event model for input-sensitive profiling.
//!
//! This crate defines the vocabulary shared by every other `aprof-rs` crate:
//!
//! * [`ThreadId`], [`RoutineId`], [`Addr`] — strongly-typed identifiers for
//!   the entities a dynamic-analysis tool observes.
//! * [`Event`] — the operations recorded in an execution trace: routine
//!   activations and completions, read/write memory accesses, and read/write
//!   operations performed through kernel system calls (`kernelRead` /
//!   `kernelWrite`), exactly as in §4 of the paper.
//! * [`Tool`] — a Valgrind-style instrumentation callback interface. The
//!   guest machine in `aprof-vm` drives a `Tool` while it executes a program;
//!   the profilers in `aprof-core` and the comparator analyses in
//!   `aprof-tools` all implement it.
//! * [`Trace`] and [`ThreadTrace`] — recorded event streams. Thread-specific
//!   traces can be [merged](Trace::merge) into a single totally-ordered trace
//!   (ties broken arbitrarily but deterministically), with `switchThread`
//!   events inserted between operations of different threads, and then
//!   [replayed](Trace::replay) into any `Tool`.
//!
//! # Example
//!
//! Build a tiny trace by hand and replay it into a recording sink:
//!
//! ```
//! use aprof_trace::{Addr, Event, RoutineTable, ThreadId, Trace};
//!
//! let mut table = RoutineTable::new();
//! let f = table.intern("f");
//! let t0 = ThreadId::new(0);
//!
//! let mut trace = Trace::new();
//! trace.push(t0, Event::Call { routine: f });
//! trace.push(t0, Event::Read { addr: Addr::new(0x10) });
//! trace.push(t0, Event::Return { routine: f });
//!
//! let mut sink = aprof_trace::RecordingTool::new();
//! trace.replay(&mut sink);
//! assert_eq!(sink.trace().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod event;
mod ids;
mod table;
pub mod textio;
mod tool;
mod trace;

pub use event::{Event, EventKind, TimedEvent};
pub use ids::{Addr, RoutineId, ThreadId, Timestamp};
pub use table::RoutineTable;
pub use tool::{NullTool, RecordingTool, Tool};
pub use trace::{replay_events, replay_events_batched, ThreadTrace, Trace, TraceStats};
