//! Plain-text serialization of traces.
//!
//! The profiling algorithms of §4 are defined over recorded traces, so
//! traces are first-class artifacts: this module gives them a stable,
//! diff-able on-disk form. One event per line, `#` comments:
//!
//! ```text
//! # aprof trace v1
//! T0 call r0
//! T0 bb 1
//! T0 read 0x10
//! T1 switch
//! T1 kwrite 0x20
//! T0 ret r0
//! ```

use crate::{Addr, Event, RoutineId, ThreadId, Trace};
use std::fmt;
use std::io::{self, BufRead};

/// Header line written at the top of serialized traces.
pub const HEADER: &str = "# aprof trace v1";

/// A syntax error in a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// A failure while reading a serialized trace from an input stream: either
/// the stream itself broke or a line failed to parse.
#[derive(Debug)]
pub enum ReadTraceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line was syntactically invalid.
    Parse(ParseTraceError),
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "trace read error: {e}"),
            ReadTraceError::Parse(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::Parse(e) => Some(e),
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

impl From<ParseTraceError> for ReadTraceError {
    fn from(e: ParseTraceError) -> Self {
        ReadTraceError::Parse(e)
    }
}

/// Renders a trace in the text format (including the header line).
///
/// # Example
///
/// ```
/// use aprof_trace::{textio, Addr, Event, ThreadId, Trace};
/// let mut t = Trace::new();
/// t.push(ThreadId::MAIN, Event::Read { addr: Addr::new(16) });
/// let text = textio::to_text(&t);
/// assert!(text.contains("T0 read 0x10"));
/// let back = textio::from_reader(text.as_bytes()).unwrap();
/// assert_eq!(back.len(), 1);
/// ```
pub fn to_text(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(trace.len() * 16 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for te in trace.events() {
        let t = te.thread;
        match te.event {
            Event::Call { routine } => {
                let _ = writeln!(out, "{t} call {routine}");
            }
            Event::Return { routine } => {
                let _ = writeln!(out, "{t} ret {routine}");
            }
            Event::Read { addr } => {
                let _ = writeln!(out, "{t} read {addr}");
            }
            Event::Write { addr } => {
                let _ = writeln!(out, "{t} write {addr}");
            }
            Event::KernelRead { addr } => {
                let _ = writeln!(out, "{t} kread {addr}");
            }
            Event::KernelWrite { addr } => {
                let _ = writeln!(out, "{t} kwrite {addr}");
            }
            Event::BasicBlock { cost } => {
                let _ = writeln!(out, "{t} bb {cost}");
            }
            Event::ThreadSwitch => {
                let _ = writeln!(out, "{t} switch");
            }
            Event::ThreadStart => {
                let _ = writeln!(out, "{t} start");
            }
            Event::ThreadExit => {
                let _ = writeln!(out, "{t} exit");
            }
        }
    }
    out
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseTraceError> {
    Err(ParseTraceError { line, message: message.into() })
}

fn parse_thread(line: usize, tok: &str) -> Result<ThreadId, ParseTraceError> {
    match tok.strip_prefix('T').and_then(|d| d.parse::<u32>().ok()) {
        Some(n) => Ok(ThreadId::new(n)),
        None => err(line, format!("bad thread id `{tok}`")),
    }
}

fn parse_routine(line: usize, tok: &str) -> Result<RoutineId, ParseTraceError> {
    match tok.strip_prefix('r').and_then(|d| d.parse::<u32>().ok()) {
        Some(n) => Ok(RoutineId::new(n)),
        None => err(line, format!("bad routine id `{tok}`")),
    }
}

fn parse_addr(line: usize, tok: &str) -> Result<Addr, ParseTraceError> {
    let digits = tok.strip_prefix("0x").unwrap_or(tok);
    let radix = if tok.starts_with("0x") { 16 } else { 10 };
    match u64::from_str_radix(digits, radix) {
        Ok(v) => Ok(Addr::new(v)),
        Err(_) => err(line, format!("bad address `{tok}`")),
    }
}

/// Parses one line of the text format.
///
/// Returns `Ok(None)` for blank lines and `#` comments. `ln` is the
/// 1-based line number used in error messages.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] if the line is malformed.
pub fn parse_line(ln: usize, raw: &str) -> Result<Option<(ThreadId, Event)>, ParseTraceError> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let thread = parse_thread(ln, parts.next().unwrap_or(""))?;
    let op = parts.next().unwrap_or("");
    let operand = parts.next();
    if parts.next().is_some() {
        return err(ln, "trailing tokens");
    }
    let need = |what: &str| -> Result<&str, ParseTraceError> {
        operand.ok_or(ParseTraceError {
            line: ln,
            message: format!("`{op}` needs {what}"),
        })
    };
    let event = match op {
        "call" => Event::Call { routine: parse_routine(ln, need("a routine")?)? },
        "ret" => Event::Return { routine: parse_routine(ln, need("a routine")?)? },
        "read" => Event::Read { addr: parse_addr(ln, need("an address")?)? },
        "write" => Event::Write { addr: parse_addr(ln, need("an address")?)? },
        "kread" => Event::KernelRead { addr: parse_addr(ln, need("an address")?)? },
        "kwrite" => Event::KernelWrite { addr: parse_addr(ln, need("an address")?)? },
        "bb" => Event::BasicBlock {
            cost: need("a cost")?.parse().map_err(|_| ParseTraceError {
                line: ln,
                message: "bad cost".into(),
            })?,
        },
        "switch" => Event::ThreadSwitch,
        "start" => Event::ThreadStart,
        "exit" => Event::ThreadExit,
        other => return err(ln, format!("unknown event `{other}`")),
    };
    if matches!(event, Event::ThreadSwitch | Event::ThreadStart | Event::ThreadExit)
        && operand.is_some()
    {
        return err(ln, format!("`{op}` takes no operand"));
    }
    Ok(Some((thread, event)))
}

/// Parses the text format from a buffered reader, line by line, into a
/// [`Trace`] (fresh consecutive timestamps are assigned, preserving
/// order). Only one line is held in memory at a time, so arbitrarily large
/// inputs stream through without being materialized as a single string.
///
/// # Errors
///
/// Returns [`ReadTraceError::Parse`] on malformed lines (the header is
/// optional and unknown `#`-comment lines are ignored) and
/// [`ReadTraceError::Io`] if the underlying reader fails.
///
/// # Example
///
/// ```
/// use aprof_trace::textio;
/// let trace = textio::from_reader("T0 read 0x10\nT0 switch\n".as_bytes()).unwrap();
/// assert_eq!(trace.len(), 2);
/// ```
pub fn from_reader<R: BufRead>(reader: R) -> Result<Trace, ReadTraceError> {
    let mut trace = Trace::new();
    let mut line = String::new();
    let mut reader = reader;
    let mut ln = 0;
    loop {
        ln += 1;
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(trace);
        }
        if let Some((thread, event)) = parse_line(ln, &line)? {
            trace.push(thread, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        t.push(t0, Event::ThreadStart);
        t.push(t0, Event::Call { routine: RoutineId::new(0) });
        t.push(t0, Event::BasicBlock { cost: 3 });
        t.push(t0, Event::Read { addr: Addr::new(0x10) });
        t.push(t0, Event::Write { addr: Addr::new(17) });
        t.push(t1, Event::ThreadSwitch);
        t.push(t1, Event::KernelWrite { addr: Addr::new(0x20) });
        t.push(t1, Event::KernelRead { addr: Addr::new(0x20) });
        t.push(t0, Event::ThreadSwitch);
        t.push(t0, Event::Return { routine: RoutineId::new(0) });
        t.push(t0, Event::ThreadExit);
        t
    }

    fn parse(text: &str) -> Result<Trace, ReadTraceError> {
        from_reader(text.as_bytes())
    }

    #[test]
    fn roundtrip_preserves_events() {
        let original = sample();
        let text = to_text(&original);
        let parsed = parse(&text).unwrap();
        let a: Vec<_> = original.events().iter().map(|e| (e.thread, e.event)).collect();
        let b: Vec<_> = parsed.events().iter().map(|e| (e.thread, e.event)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn header_and_comments_ignored() {
        let t = parse("# header\n\n# another\nT0 switch\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("T0 switch\nT0 frobnicate\n").unwrap_err();
        let ReadTraceError::Parse(e) = e else { panic!("expected parse error") };
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn bad_tokens_rejected() {
        assert!(parse("X0 read 0x1").is_err());
        assert!(parse("T0 read zz").is_err());
        assert!(parse("T0 call x1").is_err());
        assert!(parse("T0 bb nan").is_err());
        assert!(parse("T0 read").is_err());
        assert!(parse("T0 read 0x1 extra").is_err());
        assert!(parse("T0 switch now").is_err());
    }

    #[test]
    fn decimal_and_hex_addresses() {
        let t = parse("T0 read 16\nT0 read 0x10\n").unwrap();
        assert_eq!(t.events()[0].event, t.events()[1].event);
    }

    #[test]
    fn io_errors_are_surfaced() {
        struct Broken;
        impl io::Read for Broken {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
        }
        let e = from_reader(io::BufReader::new(Broken)).unwrap_err();
        assert!(matches!(e, ReadTraceError::Io(_)));
    }

}
