//! Trace events: the operations a dynamic-analysis tool observes.

use crate::{Addr, RoutineId, ThreadId, Timestamp};

/// One operation of the execution trace (§4 of the paper).
///
/// A trace contains routine activations ([`Call`](Event::Call)) and
/// completions ([`Return`](Event::Return)), read/write memory accesses, and
/// read/write operations performed through kernel system calls
/// ([`KernelRead`](Event::KernelRead) / [`KernelWrite`](Event::KernelWrite)),
/// plus the bookkeeping events produced by the guest machine:
/// [`BasicBlock`](Event::BasicBlock) (the cost metric) and
/// [`ThreadSwitch`](Event::ThreadSwitch) / thread lifecycle events.
///
/// Memory events are cell-granular: an access spanning `n` cells appears as
/// `n` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A routine activation: the thread entered `routine`.
    Call {
        /// The routine being activated.
        routine: RoutineId,
    },
    /// A routine completion: the topmost activation of the thread returned.
    Return {
        /// The routine whose activation completed.
        routine: RoutineId,
    },
    /// The thread read one memory cell.
    Read {
        /// The cell that was read.
        addr: Addr,
    },
    /// The thread wrote one memory cell.
    Write {
        /// The cell that was written.
        addr: Addr,
    },
    /// The kernel *read* one memory cell on behalf of the thread, e.g. while
    /// servicing a `write(2)`-like system call that sends guest memory to an
    /// external device. Treated as a read performed by the thread (§4.3).
    KernelRead {
        /// The cell the kernel read.
        addr: Addr,
    },
    /// The kernel *wrote* one memory cell on behalf of the thread, e.g. while
    /// servicing a `read(2)`-like system call that fills a guest buffer with
    /// data from an external device (§4.3).
    KernelWrite {
        /// The cell the kernel wrote.
        addr: Addr,
    },
    /// One basic block of the guest program completed; `cost` cost units
    /// (basic blocks, so normally 1) are charged to the executing thread.
    BasicBlock {
        /// Cost units to charge (normally 1).
        cost: u64,
    },
    /// The scheduler switched execution to this event's thread.
    ThreadSwitch,
    /// A new thread began execution.
    ThreadStart,
    /// A thread finished execution.
    ThreadExit,
}

impl Event {
    /// Returns the memory cell this event touches, if it is a memory event.
    ///
    /// # Example
    ///
    /// ```
    /// use aprof_trace::{Addr, Event};
    /// assert_eq!(Event::Read { addr: Addr::new(1) }.addr(), Some(Addr::new(1)));
    /// assert_eq!(Event::ThreadSwitch.addr(), None);
    /// ```
    pub fn addr(&self) -> Option<Addr> {
        match *self {
            Event::Read { addr }
            | Event::Write { addr }
            | Event::KernelRead { addr }
            | Event::KernelWrite { addr } => Some(addr),
            _ => None,
        }
    }

    /// Returns the coarse kind of this event.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Call { .. } => EventKind::Call,
            Event::Return { .. } => EventKind::Return,
            Event::Read { .. } => EventKind::Read,
            Event::Write { .. } => EventKind::Write,
            Event::KernelRead { .. } => EventKind::KernelRead,
            Event::KernelWrite { .. } => EventKind::KernelWrite,
            Event::BasicBlock { .. } => EventKind::BasicBlock,
            Event::ThreadSwitch => EventKind::ThreadSwitch,
            Event::ThreadStart => EventKind::ThreadStart,
            Event::ThreadExit => EventKind::ThreadExit,
        }
    }
}

/// Coarse classification of [`Event`]s, useful for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Routine activation.
    Call,
    /// Routine completion.
    Return,
    /// Memory read by a thread.
    Read,
    /// Memory write by a thread.
    Write,
    /// Kernel-mediated read of guest memory.
    KernelRead,
    /// Kernel-mediated write of guest memory.
    KernelWrite,
    /// Basic-block completion (cost).
    BasicBlock,
    /// Scheduler switch.
    ThreadSwitch,
    /// Thread creation.
    ThreadStart,
    /// Thread termination.
    ThreadExit,
}

impl EventKind {
    /// All event kinds, in declaration order.
    pub const ALL: [EventKind; 10] = [
        EventKind::Call,
        EventKind::Return,
        EventKind::Read,
        EventKind::Write,
        EventKind::KernelRead,
        EventKind::KernelWrite,
        EventKind::BasicBlock,
        EventKind::ThreadSwitch,
        EventKind::ThreadStart,
        EventKind::ThreadExit,
    ];
}

/// An [`Event`] paired with the thread that issued it and a logical
/// timestamp, as stored in a merged [`Trace`](crate::Trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Logical timestamp; respects per-thread program order.
    pub time: Timestamp,
    /// The issuing thread.
    pub thread: ThreadId,
    /// The operation.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_extraction() {
        let a = Addr::new(42);
        assert_eq!(Event::Write { addr: a }.addr(), Some(a));
        assert_eq!(Event::KernelRead { addr: a }.addr(), Some(a));
        assert_eq!(Event::KernelWrite { addr: a }.addr(), Some(a));
        assert_eq!(Event::Call { routine: RoutineId::new(0) }.addr(), None);
        assert_eq!(Event::BasicBlock { cost: 1 }.addr(), None);
    }

    #[test]
    fn kinds_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for k in EventKind::ALL {
            assert!(seen.insert(k), "duplicate kind {k:?}");
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn kind_matches_event() {
        assert_eq!(Event::ThreadSwitch.kind(), EventKind::ThreadSwitch);
        assert_eq!(
            Event::Return { routine: RoutineId::new(3) }.kind(),
            EventKind::Return
        );
    }
}
