//! Property test: text serialization roundtrips arbitrary traces.

use aprof_trace::{textio, Addr, Event, RoutineId, ThreadId, Trace};
use proptest::prelude::*;

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u32..8).prop_map(|r| Event::Call { routine: RoutineId::new(r) }),
        (0u32..8).prop_map(|r| Event::Return { routine: RoutineId::new(r) }),
        any::<u64>().prop_map(|a| Event::Read { addr: Addr::new(a) }),
        any::<u64>().prop_map(|a| Event::Write { addr: Addr::new(a) }),
        any::<u64>().prop_map(|a| Event::KernelRead { addr: Addr::new(a) }),
        any::<u64>().prop_map(|a| Event::KernelWrite { addr: Addr::new(a) }),
        (1u64..1000).prop_map(|c| Event::BasicBlock { cost: c }),
        Just(Event::ThreadSwitch),
        Just(Event::ThreadStart),
        Just(Event::ThreadExit),
    ]
}

proptest! {
    #[test]
    fn roundtrip(events in prop::collection::vec((0u32..4, event_strategy()), 0..300)) {
        let mut trace = Trace::new();
        for (t, e) in &events {
            trace.push(ThreadId::new(*t), *e);
        }
        let text = textio::to_text(&trace);
        let parsed = textio::from_reader(text.as_bytes()).unwrap();
        let a: Vec<_> = trace.events().iter().map(|e| (e.thread, e.event)).collect();
        let b: Vec<_> = parsed.events().iter().map(|e| (e.thread, e.event)).collect();
        prop_assert_eq!(a, b);
    }
}
