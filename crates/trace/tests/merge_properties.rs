//! Property tests for trace merging (§4: logically merged, totally ordered,
//! switchThread inserted between threads).

use aprof_trace::{Addr, Event, EventKind, ThreadId, ThreadTrace, Timestamp, Trace};
use proptest::prelude::*;

/// Generator: per-thread monotone timestamp/event sequences.
fn thread_traces() -> impl Strategy<Value = Vec<ThreadTrace>> {
    prop::collection::vec(
        prop::collection::vec((1u64..50, 0u64..64), 0..40),
        1..4,
    )
    .prop_map(|threads| {
        threads
            .into_iter()
            .enumerate()
            .map(|(tid, deltas)| {
                let mut t = ThreadTrace::new(ThreadId::new(tid as u32));
                let mut clock = 0u64;
                for (delta, addr) in deltas {
                    clock += delta;
                    t.push_at(Timestamp::new(clock), Event::Read { addr: Addr::new(addr) });
                }
                t
            })
            .collect()
    })
}

proptest! {
    /// Each thread's events appear in the merged trace as a subsequence in
    /// their original order.
    #[test]
    fn merge_preserves_per_thread_order(traces in thread_traces()) {
        let originals: Vec<(ThreadId, Vec<Event>)> = traces
            .iter()
            .map(|t| (t.thread(), t.iter().map(|&(_, e)| e).collect()))
            .collect();
        let merged = Trace::merge(traces);
        for (tid, events) in originals {
            let got: Vec<Event> = merged
                .events()
                .iter()
                .filter(|e| e.thread == tid && e.event.kind() != EventKind::ThreadSwitch)
                .map(|e| e.event)
                .collect();
            prop_assert_eq!(got, events);
        }
    }

    /// A switch event separates any two adjacent operations of different
    /// threads, and no two adjacent switches occur.
    #[test]
    fn merge_inserts_exactly_the_needed_switches(traces in thread_traces()) {
        let merged = Trace::merge(traces);
        let evs = merged.events();
        for w in evs.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.thread != b.thread {
                prop_assert_eq!(
                    b.event.kind(),
                    EventKind::ThreadSwitch,
                    "missing switch between {:?} and {:?}", a, b
                );
            }
            if a.event.kind() == EventKind::ThreadSwitch {
                prop_assert!(b.event.kind() != EventKind::ThreadSwitch, "double switch");
            }
        }
        // Timestamps are strictly increasing (total order).
        for w in evs.windows(2) {
            prop_assert!(w[0].time < w[1].time);
        }
    }
}
