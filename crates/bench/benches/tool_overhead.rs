//! Criterion bench backing Table 1 / Fig. 14: full guest runs under each
//! tool on a small OMP2012-analog input.

use aprof_bench::{measure, ToolKind};
use aprof_workloads::{by_name, WorkloadParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tools(c: &mut Criterion) {
    let params = WorkloadParams::new(48, 4);
    let mut group = c.benchmark_group("tool_overhead");
    for wl_name in ["350.md", "372.smithwa", "vips"] {
        let wl = by_name(wl_name).unwrap();
        for kind in [
            ToolKind::Native,
            ToolKind::Nulgrind,
            ToolKind::Memcheck,
            ToolKind::Callgrind,
            ToolKind::Helgrind,
            ToolKind::AprofRms,
            ToolKind::AprofTrms,
        ] {
            group.bench_function(BenchmarkId::new(wl_name, kind.label()), |b| {
                b.iter(|| measure(&wl, &params, kind).blocks)
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_tools
);
criterion_main!(benches);
