//! Criterion bench: event-processing throughput of the profilers on a
//! pre-recorded trace (isolates analysis cost from guest interpretation).

use aprof_core::{NaiveProfiler, RmsProfiler, TrmsProfiler};
use aprof_trace::{NullTool, RecordingTool, Trace};
use aprof_workloads::{by_name, WorkloadParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn recorded_trace() -> Trace {
    let wl = by_name("350.md").unwrap();
    let mut machine = wl.build(&WorkloadParams::new(64, 4));
    let mut rec = RecordingTool::new();
    machine.run_with(&mut rec).expect("runs");
    let mut trace = Trace::new();
    for e in rec.trace() {
        trace.push(e.thread, e.event);
    }
    trace
}

fn bench_replay(c: &mut Criterion) {
    let trace = recorded_trace();
    let events = trace.len() as u64;
    let mut group = c.benchmark_group("replay");
    group.throughput(Throughput::Elements(events));
    group.bench_function(BenchmarkId::new("tool", "nulgrind"), |b| {
        b.iter(|| {
            let mut t = NullTool::new();
            trace.replay(&mut t);
        })
    });
    group.bench_function(BenchmarkId::new("tool", "aprof-rms"), |b| {
        b.iter(|| {
            let mut t = RmsProfiler::new();
            trace.replay(&mut t);
        })
    });
    group.bench_function(BenchmarkId::new("tool", "aprof-trms"), |b| {
        b.iter(|| {
            let mut t = TrmsProfiler::new();
            trace.replay(&mut t);
        })
    });
    // Batched dispatch with the same-thread read-run fast paths.
    for chunk in [64usize, 1024] {
        group.bench_function(BenchmarkId::new("tool", format!("aprof-rms-batched-{chunk}")), |b| {
            b.iter(|| {
                let mut t = RmsProfiler::new();
                trace.replay_batched(&mut t, chunk);
            })
        });
        group.bench_function(BenchmarkId::new("tool", format!("aprof-trms-batched-{chunk}")), |b| {
            b.iter(|| {
                let mut t = TrmsProfiler::new();
                trace.replay_batched(&mut t, chunk);
            })
        });
    }
    group.bench_function(BenchmarkId::new("tool", "naive-oracle"), |b| {
        b.iter(|| {
            let mut t = NaiveProfiler::new();
            trace.replay(&mut t);
        })
    });
    group.finish();
}

fn bench_renumbering(c: &mut Criterion) {
    let trace = recorded_trace();
    let mut group = c.benchmark_group("renumbering");
    for (label, limit) in [("never", u32::MAX as u64), ("every-4k", 4096), ("every-512", 512)] {
        group.bench_function(BenchmarkId::new("limit", label), |b| {
            b.iter(|| {
                let mut t = TrmsProfiler::builder().counter_limit(limit).build();
                trace.replay(&mut t);
                t.renumberings()
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_replay, bench_renumbering
);
criterion_main!(benches);
