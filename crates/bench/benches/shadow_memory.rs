//! Criterion bench: arena-paged shadow memory primitives (the profiler's
//! innermost data structure).

use aprof_shadow::ShadowMemory;
use aprof_trace::Addr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_shadow(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow");
    const N: u64 = 64 * 1024;
    group.throughput(Throughput::Elements(N));
    for (label, stride) in [("dense", 1u64), ("page-strided", 4096), ("sparse", 1 << 20)] {
        group.bench_function(BenchmarkId::new("set", label), |b| {
            b.iter(|| {
                let mut s: ShadowMemory<u64> = ShadowMemory::new();
                for i in 0..N {
                    s.set(Addr::new(i * stride), i);
                }
                s.stats().pages
            })
        });
    }
    group.bench_function("get_hit", |b| {
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        for i in 0..N {
            s.set(Addr::new(i), i);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc = acc.wrapping_add(s.get(Addr::new(i)));
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_shadow
);
criterion_main!(benches);
