//! The fault-injection smoke harness behind `repro --faults`: one seeded,
//! replayable end-to-end exercise of the failure machinery.
//!
//! Three phases, all driven by one [`FaultPlan`] so a report is reproduced
//! exactly by re-running with the same `--fault-seed`:
//!
//! 1. **Crash & recover** — capture a workload trace, cut it at
//!    seed-derived byte offsets (a simulated `kill -9`), run
//!    [`aprof_wire::recover`] on each torn file and check the salvage
//!    replays to an exact prefix of the uncorrupted stream.
//! 2. **Faulty sink** — capture through a [`FaultyWrite`] wrapper that
//!    injects I/O errors and short writes; the writer must either finish
//!    cleanly or surface one typed, latched error — never panic, never
//!    produce a corrupt "success".
//! 3. **Hardened sweep** — run a workload sweep under
//!    [`run_indexed_isolated`] while the plan injects worker panics,
//!    delays and VM instruction-budget traps; the sweep must complete
//!    with per-workload degraded entries, and a 1-worker run must equal
//!    an 8-worker run entry for entry.
//!
//! [`FaultPlan`]: aprof_faults::FaultPlan
//! [`FaultyWrite`]: aprof_faults::FaultyWrite
//! [`run_indexed_isolated`]: crate::driver::run_indexed_isolated

use crate::driver::{run_indexed_isolated, set_jobs, FailureCause, JobOutcome, RetryPolicy};
use aprof_faults::{FaultConfig, FaultPlan, WorkerFault};
use aprof_trace::{Event, RecordingTool, ThreadId};
use aprof_vm::ResourceLimits;
use aprof_wire::{recover, WireError, WireOptions, WireReader, WireWriter};
use aprof_workloads::{by_name, WorkloadParams};
use std::fmt::Write as _;
use std::time::Duration;

/// The default seed of `repro --faults`; chosen (and pinned by test) so the
/// smoke run injects at least one worker panic and one VM budget trap —
/// a plan that injects nothing would make the smoke vacuous.
pub const DEFAULT_FAULT_SEED: u64 = 0x5A;

/// The workload sweep of phase 3: small, mixed-family, in fixed order so
/// job indices (and therefore fault decisions) are stable across runs.
const SWEEP: &[&str] = &[
    "producer_consumer",
    "external_read",
    "half_induced",
    "350.md",
    "351.bwaves",
    "352.nab",
    "algo.merge_sort",
    "algo.matmul",
    "vips",
    "dedup",
    "fluidanimate",
    "mysqld",
];

/// A decoded `(thread, event)` stream.
type EventStream = Vec<(ThreadId, Event)>;

/// Captures the reference workload into wire bytes with small chunks (so
/// truncation points land between many chunk boundaries), and returns the
/// bytes plus the pristine event stream.
fn capture_reference() -> Result<(Vec<u8>, EventStream), String> {
    let wl = by_name("producer_consumer").ok_or("producer_consumer not registered")?;
    let mut machine = wl.build(&WorkloadParams::new(40, 2));
    let names = machine.program().routines().clone();
    let mut recorder = RecordingTool::new();
    machine.run_with(&mut recorder).map_err(|e| format!("reference run failed: {e}"))?;
    let events: Vec<(ThreadId, Event)> =
        recorder.into_trace().into_iter().map(|te| (te.thread, te.event)).collect();

    let opts = WireOptions { chunk_bytes: 96, ..Default::default() };
    let mut writer =
        WireWriter::create(Vec::new(), &names, opts).map_err(|e| format!("header: {e}"))?;
    for &(t, e) in &events {
        writer.push(t, e).map_err(|e| format!("push: {e}"))?;
    }
    let (bytes, _) = writer.finish().map_err(|e| format!("finish: {e}"))?;
    Ok((bytes, events))
}

/// Replays a valid wire file strictly.
fn replay(bytes: &[u8]) -> Result<EventStream, String> {
    WireReader::new(bytes)
        .map_err(|e| format!("reader: {e}"))?
        .strict()
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("replay: {e}"))
}

/// splitmix64: derives independent cut offsets from the seed.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Phase 1: truncate the capture at seed-derived offsets and check the
/// recovery contract at each. Returns a per-cut summary table body.
fn crash_recover_phase(seed: u64, out: &mut String) -> Result<(), String> {
    let (pristine, events) = capture_reference()?;
    writeln!(out, "phase 1: crash & recover ({} bytes, {} events)", pristine.len(), events.len())
        .unwrap();
    for k in 0..8u64 {
        let cut = (mix(seed ^ (k.wrapping_mul(0x5DEE_CE66))) % (pristine.len() as u64 + 1)) as usize;
        let torn = &pristine[..cut];
        let mut salvage = Vec::new();
        match recover(torn, &mut salvage) {
            Ok(summary) => {
                let replayed = replay(&salvage)?;
                if replayed.len() as u64 != summary.events {
                    return Err(format!(
                        "cut {cut}: salvage replays {} events, summary says {}",
                        replayed.len(),
                        summary.events
                    ));
                }
                if replayed[..] != events[..replayed.len()] {
                    return Err(format!("cut {cut}: salvage is not a prefix of the pristine run"));
                }
                writeln!(
                    out,
                    "  cut at {cut:>5}: salvaged {} chunks / {} events ({})",
                    summary.chunks, summary.events, summary.stopped
                )
                .unwrap();
            }
            Err(
                e @ (WireError::UnexpectedEof { .. }
                | WireError::BadMagic { .. }
                | WireError::HeaderCorrupt { .. }),
            ) => {
                writeln!(out, "  cut at {cut:>5}: header destroyed, typed error ({e})").unwrap();
            }
            Err(e) => return Err(format!("cut {cut}: unexpected recovery error: {e}")),
        }
    }
    Ok(())
}

/// Phase 2: capture through a fault-injecting sink. Either the capture
/// survives (no fault fired) or the writer reports one typed latched
/// error on every subsequent operation.
fn faulty_sink_phase(plan: &FaultPlan, out: &mut String) -> Result<(), String> {
    let wl = by_name("producer_consumer").ok_or("producer_consumer not registered")?;
    let mut machine = wl.build(&WorkloadParams::new(40, 2));
    let names = machine.program().routines().clone();
    let mut recorder = RecordingTool::new();
    machine.run_with(&mut recorder).map_err(|e| format!("reference run failed: {e}"))?;

    let sink = plan.wrap_writer(Vec::new());
    let opts = WireOptions { chunk_bytes: 96, ..Default::default() };
    let mut first_error: Option<String> = None;
    match WireWriter::create(sink, &names, opts) {
        Err(e) => first_error = Some(e.to_string()),
        Ok(mut writer) => {
            for te in recorder.into_trace() {
                if let Err(e) = writer.push(te.thread, te.event) {
                    first_error = Some(e.to_string());
                    break;
                }
            }
            match (writer.finish(), &first_error) {
                (Ok(_), None) => {}
                (Ok(_), Some(e)) => {
                    return Err(format!("writer finished cleanly after latching `{e}`"));
                }
                (Err(e), None) => first_error = Some(e.to_string()),
                (Err(e), Some(first)) => {
                    // The latch contract: finish must re-report the first
                    // error, not a later or different one.
                    if e.to_string() != *first {
                        return Err(format!("finish reported `{e}`, first error was `{first}`"));
                    }
                }
            }
        }
    }
    match first_error {
        Some(e) => writeln!(out, "phase 2: faulty sink: capture failed typed: {e}").unwrap(),
        None => writeln!(out, "phase 2: faulty sink: no fault fired, capture intact").unwrap(),
    }
    Ok(())
}

/// Runs the phase-3 sweep once at the given worker count.
fn hardened_sweep(plan: &FaultPlan, workers: usize) -> Vec<JobOutcome<u64>> {
    set_jobs(workers);
    let policy = RetryPolicy { attempts: 3, backoff: Duration::ZERO };
    let outcomes = run_indexed_isolated(SWEEP.len(), policy, |i, attempt| {
        match plan.worker_fault(i as u64, attempt) {
            Some(WorkerFault::Panic) => {
                aprof_faults::injected_panic(format!("injected worker panic in `{}`", SWEEP[i]))
            }
            Some(WorkerFault::Delay(d)) => std::thread::sleep(d),
            None => {}
        }
        let wl = by_name(SWEEP[i]).unwrap_or_else(|| panic!("{} not registered", SWEEP[i]));
        let mut machine = wl.build(&WorkloadParams::new(24, 2));
        if let Some(budget) = plan.vm_budget(i as u64) {
            let mut config = machine.config();
            config.limits = ResourceLimits::instruction_watchdog(budget);
            machine = machine.with_config(config);
        }
        let outcome = machine.run_native().map_err(|e| format!("vm error: {e}"))?;
        match outcome.trap {
            Some(trap) => Err(format!("resource trap: {trap}")),
            None => Ok(outcome.total_blocks),
        }
    });
    set_jobs(0);
    outcomes
}

/// Phase 3: the hardened sweep, run at 1 and 8 workers, checked for
/// determinism, and rendered as a per-workload table.
fn hardened_sweep_phase(
    plan: &FaultPlan,
    out: &mut String,
) -> Result<(usize, usize, usize), String> {
    let serial = hardened_sweep(plan, 1);
    let parallel = hardened_sweep(plan, 8);
    if serial != parallel {
        return Err("sweep outcomes differ between 1 and 8 workers".into());
    }

    writeln!(out, "phase 3: hardened sweep ({} workloads, 3 attempts each)", SWEEP.len()).unwrap();
    writeln!(out, "  {:<18} {:<10} {:>8}  cause", "workload", "status", "attempts").unwrap();
    let (mut ok, mut panics, mut traps) = (0usize, 0usize, 0usize);
    for (name, outcome) in SWEEP.iter().zip(&serial) {
        match &outcome.result {
            Ok(blocks) => {
                ok += 1;
                writeln!(out, "  {:<18} {:<10} {:>8}  ran {blocks} blocks", name, "ok", outcome.attempts)
                    .unwrap();
            }
            Err(cause) => {
                match cause {
                    FailureCause::Panic(_) => panics += 1,
                    FailureCause::Error(msg) if msg.contains("resource trap") => traps += 1,
                    FailureCause::Error(_) => {}
                }
                writeln!(
                    out,
                    "  {:<18} {:<10} {:>8}  {cause}",
                    name, "degraded", outcome.attempts
                )
                .unwrap();
            }
        }
    }
    writeln!(
        out,
        "  completed: {ok} ok, {} degraded ({panics} panicking, {traps} budget-trapped)",
        serial.len() - ok
    )
    .unwrap();
    Ok((ok, panics, traps))
}

/// Runs the full fault-injection smoke and returns its rendered report.
///
/// # Errors
///
/// Returns an error string when any phase violates its contract — a
/// salvage that is not a prefix, a writer that mis-reports its first
/// error, a sweep whose outcome depends on the worker count, or (for the
/// [default seed](DEFAULT_FAULT_SEED)) a plan that injected no faults.
pub fn fault_smoke(seed: u64) -> Result<String, String> {
    aprof_faults::install_quiet_hook();
    let plan = FaultPlan::new(FaultConfig::smoke(seed));
    let mut out = String::new();
    writeln!(out, "fault-injection smoke (seed {seed:#x})").unwrap();

    crash_recover_phase(seed, &mut out)?;
    faulty_sink_phase(&plan, &mut out)?;
    let (ok, panics, traps) = hardened_sweep_phase(&plan, &mut out)?;

    if seed == DEFAULT_FAULT_SEED {
        // The default run must actually exercise the machinery.
        if panics == 0 || traps == 0 {
            return Err(format!(
                "default seed injected {panics} panics and {traps} traps; smoke is vacuous"
            ));
        }
        if ok == 0 {
            return Err("default seed degraded every workload; smoke proves nothing".into());
        }
    }
    writeln!(out, "all phases honoured their contracts").unwrap();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_smoke_passes_and_is_not_vacuous() {
        let report = fault_smoke(DEFAULT_FAULT_SEED).expect("smoke passes");
        assert!(report.contains("phase 1"), "missing phase 1 in:\n{report}");
        assert!(report.contains("phase 2"), "missing phase 2 in:\n{report}");
        assert!(report.contains("phase 3"), "missing phase 3 in:\n{report}");
        assert!(report.contains("degraded"), "default seed should degrade a workload:\n{report}");
        assert!(report.contains("all phases honoured their contracts"));
    }

    #[test]
    fn smoke_reports_are_deterministic_per_seed() {
        let a = fault_smoke(7).expect("smoke passes");
        let b = fault_smoke(7).expect("smoke passes");
        assert_eq!(a, b);
    }

    #[test]
    fn quiet_seed_still_validates_recovery() {
        // A seed whose plan happens to inject little still runs phase 1's
        // recovery differential in full.
        let report = fault_smoke(3).expect("smoke passes");
        assert!(report.contains("salvaged") || report.contains("header destroyed"));
    }
}
