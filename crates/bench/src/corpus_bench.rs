//! The corpus smoke harness behind `repro --corpus`: one seeded,
//! reproducible end-to-end exercise of the fuzzed-CFG differential
//! pipeline (see `DESIGN.md` §11).
//!
//! Four phases, all derived from one base seed so a report reproduces
//! exactly with the same `--corpus-seed`:
//!
//! 1. **Clean sweep** — generate programs under every generator profile
//!    and run all four oracles (naive-vs-engine, batched-vs-sequential,
//!    wire round-trip, static-vs-dynamic) on each; everything must pass.
//! 2. **Jobs invariance** — the mixed-profile sweep re-run at 1, 2 and 8
//!    workers must render byte-identical reports and digests.
//! 3. **Crash differential** — the mixed sweep again with `--faults`
//!    semantics: every case's capture is torn at seeded offsets,
//!    salvaged with `recover`, and the prefix replayed for an identical
//!    trms fingerprint.
//! 4. **Mutation sentinels** — plant each profiler bug the harness is
//!    designed to catch ([`Mutation`]); every sweep must FAIL and shrink
//!    its reproducer to a small program, or the oracles prove nothing.
//!
//! [`Mutation`]: aprof_corpus::Mutation

use aprof_corpus::{run_fuzz, FuzzConfig, GenConfig, Mutation};
use std::fmt::Write as _;

/// The default seed of `repro --corpus`.
pub const DEFAULT_CORPUS_SEED: u64 = 1;

/// Cases per profile in phase 1 (the nightly CI job scales this up with
/// `APROF_CORPUS_CASES`).
fn cases_per_profile() -> u64 {
    std::env::var("APROF_CORPUS_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Runs the full corpus smoke and returns its rendered report.
///
/// # Errors
///
/// Returns an error string when any phase violates its contract — an
/// oracle failure on a clean corpus, a report that changes with the
/// worker count, a torn capture whose salvage does not replay, or a
/// planted bug that survives the sweep uncaught.
pub fn corpus_smoke(seed: u64) -> Result<String, String> {
    corpus_smoke_with(seed, cases_per_profile())
}

/// [`corpus_smoke`] with an explicit per-profile case count (tests use
/// small counts without touching the environment).
pub fn corpus_smoke_with(seed: u64, cases: u64) -> Result<String, String> {
    let mut out = String::new();
    writeln!(out, "corpus differential smoke (seed {seed:#x}, {cases} cases/profile)").unwrap();

    // Phase 1: every generator profile, all four oracles.
    writeln!(out, "phase 1: clean sweep across generator profiles").unwrap();
    let mut total_events = 0u64;
    for name in ["mixed", "sequential", "concurrent", "kernel"] {
        let profile = GenConfig::by_name(name).expect("known profile");
        let outcome = run_fuzz(&FuzzConfig {
            seed: seed ^ (name.len() as u64),
            cases,
            profile,
            ..FuzzConfig::default()
        });
        if !outcome.failures.is_empty() {
            return Err(format!("clean {name} sweep failed:\n{}", outcome.report));
        }
        total_events += outcome.events;
        writeln!(
            out,
            "  {name:<11} {cases} cases ok, {} events, digest {:016x}",
            outcome.events, outcome.digest
        )
        .unwrap();
    }
    if total_events == 0 {
        return Err("clean sweeps observed no events; corpus is vacuous".into());
    }

    // Phase 2: the report must not depend on the worker count.
    let base = FuzzConfig { seed, cases, ..FuzzConfig::default() };
    let reference = run_fuzz(&FuzzConfig { jobs: 1, ..base });
    for jobs in [2usize, 8] {
        let outcome = run_fuzz(&FuzzConfig { jobs, ..base });
        if outcome.report != reference.report || outcome.digest != reference.digest {
            return Err(format!("jobs={jobs} changed the report or digest"));
        }
    }
    writeln!(out, "phase 2: jobs invariance: 1 == 2 == 8 workers (digest {:016x})", reference.digest)
        .unwrap();

    // Phase 3: the kill/recover/replay differential over generated
    // programs.
    let faulted = run_fuzz(&FuzzConfig { seed, cases, faults: true, ..FuzzConfig::default() });
    if !faulted.failures.is_empty() {
        return Err(format!("crash differential failed:\n{}", faulted.report));
    }
    writeln!(out, "phase 3: crash & recover differential: {cases} cases ok").unwrap();

    // Phase 4: planted profiler bugs must be caught AND shrunk.
    writeln!(out, "phase 4: mutation sentinels").unwrap();
    let sentinels: [(&str, GenConfig, Mutation); 3] = [
        ("drop-kernel-input", GenConfig::kernel(), Mutation::DropKernelInput),
        ("drop-read:2", GenConfig::sequential(), Mutation::DropEveryNthRead(2)),
        ("scale-cost:2", GenConfig::sequential(), Mutation::ScaleNthCost(2)),
    ];
    for (label, profile, mutation) in sentinels {
        let outcome = run_fuzz(&FuzzConfig {
            seed,
            cases: 16,
            profile,
            mutation: Some(mutation),
            ..FuzzConfig::default()
        });
        if outcome.failures.is_empty() {
            return Err(format!("planted bug `{label}` survived the sweep uncaught"));
        }
        let best = outcome.failures.iter().map(|f| f.minimal_blocks).min().unwrap();
        if best >= 20 {
            return Err(format!("planted bug `{label}` only shrank to {best} blocks"));
        }
        writeln!(
            out,
            "  {label:<18} caught in {}/16 cases, best reproducer {best} blocks",
            outcome.failures.len()
        )
        .unwrap();
    }

    writeln!(out, "all phases honoured their contracts").unwrap();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_smoke_passes() {
        let report = corpus_smoke_with(DEFAULT_CORPUS_SEED, 12).expect("smoke passes");
        for needle in ["phase 1", "phase 2", "phase 3", "phase 4", "honoured"] {
            assert!(report.contains(needle), "missing `{needle}` in:\n{report}");
        }
    }

    #[test]
    fn smoke_reports_are_deterministic_per_seed() {
        let a = corpus_smoke_with(5, 8).expect("smoke passes");
        let b = corpus_smoke_with(5, 8).expect("smoke passes");
        assert_eq!(a, b);
    }
}
