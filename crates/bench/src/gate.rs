//! CI bench-delta gate: re-measures the benchmark reports and compares the
//! *dimensionless* metrics against the committed `BENCH_*.json` baselines.
//!
//! Absolute throughputs (events/sec, wall seconds) track the host machine
//! and are useless as a cross-machine regression gate; ratios — slowdown
//! vs. native, shadow space factor, wire-vs-text size, decode-vs-text
//! speedup — cancel machine speed and stay comparable between the committed
//! baseline (one machine) and a CI runner (another). The gate fails only
//! when a ratio moves more than the tolerance in its *bad* direction:
//! improvements never fail, so re-baselining is only needed after a
//! deliberate performance change.

use crate::driver::Json;

/// Default gate tolerance: a metric may move 20% in its bad direction.
pub const DEFAULT_GATE_TOLERANCE: f64 = 0.20;

/// One gated comparison.
struct Check {
    name: String,
    baseline: f64,
    current: f64,
    /// `true` when an increase is a regression (slowdowns, space factors);
    /// `false` when a decrease is (speedups).
    worse_when_higher: bool,
    /// Multiplier on the gate tolerance: 1.0 for deterministic or
    /// best-of-stabilized ratios, wider for timing-over-timing ratios
    /// whose run-to-run variance on sub-millisecond regions exceeds the
    /// default tolerance (see `PERFORMANCE.md`).
    tolerance_scale: f64,
}

impl Check {
    /// Relative movement in the bad direction (negative = improved).
    fn regression(&self) -> f64 {
        if self.baseline == 0.0 {
            return 0.0;
        }
        let delta = (self.current - self.baseline) / self.baseline;
        if self.worse_when_higher {
            delta
        } else {
            -delta
        }
    }
}

fn lookup<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    match obj {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => Some(*n),
        Json::Int(n) => Some(*n as f64),
        _ => None,
    }
}

/// Extracts `"key": <number>` from raw JSON text, searching forward from
/// the first occurrence of `anchor`. A full parser is overkill for the
/// self-generated baseline files; corrupt baselines surface as a gate
/// error, not a wrong verdict.
fn extract_after(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let start = text.find(anchor)?;
    let tail = &text[start..];
    let kpos = tail.find(&format!("\"{key}\":"))?;
    let after = tail[kpos..].split_once(':')?.1;
    let num: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

/// The per-tool ratios gated from `BENCH_parallel_driver.json`.
const GATED_TOOLS: [&str; 6] =
    ["nulgrind", "memcheck", "callgrind", "helgrind", "aprof-rms", "aprof-trms"];

fn driver_checks(baseline: &str, current: &Json) -> Result<Vec<Check>, String> {
    let tools = lookup(current, "tool_overheads")
        .and_then(|v| match v {
            Json::Arr(items) => Some(items),
            _ => None,
        })
        .ok_or("current report has no tool_overheads")?;
    let mut checks = Vec::new();
    for name in GATED_TOOLS {
        let entry = tools
            .iter()
            .find(|t| {
                matches!(lookup(t, "tool"), Some(Json::Str(s)) if s == name)
            })
            .ok_or_else(|| format!("current report lacks tool {name}"))?;
        let anchor = format!("\"tool\": \"{name}\"");
        // Space factors are deterministic byte counts and get the tight
        // tolerance; slowdowns divide two wall-clock timings and swing
        // with runner load even best-of-3, so they get 2.5× — still far
        // below the >100% movements a real hot-path regression produces.
        for (key, worse_when_higher, tolerance_scale) in
            [("slowdown_vs_native", true, 2.5), ("space_factor", true, 1.0)]
        {
            let base = extract_after(baseline, &anchor, key)
                .ok_or_else(|| format!("baseline lacks {key} for {name}"))?;
            let cur = lookup(entry, key)
                .and_then(as_f64)
                .ok_or_else(|| format!("current report lacks {key} for {name}"))?;
            checks.push(Check {
                name: format!("{name}.{key}"),
                baseline: base,
                current: cur,
                worse_when_higher,
                tolerance_scale,
            });
        }
    }
    Ok(checks)
}

fn wire_checks(baseline: &str, current: &Json) -> Result<Vec<Check>, String> {
    let mut checks = Vec::new();
    // The size ratio is a deterministic byte count; the decode speedup
    // divides two sub-millisecond timings and measurably swings ±25%
    // run-to-run even best-of-7, so it gets 2.5× the tolerance — a
    // backstop against large decode regressions, not a precision gate.
    for (key, worse_when_higher, tolerance_scale) in [
        ("wire_vs_text_size_ratio", true, 1.0),
        ("decode_vs_text_speedup", false, 2.5),
    ] {
        let base = extract_after(baseline, "{", key)
            .ok_or_else(|| format!("baseline lacks {key}"))?;
        let cur = lookup(current, key)
            .and_then(as_f64)
            .ok_or_else(|| format!("current report lacks {key}"))?;
        checks.push(Check {
            name: format!("wire.{key}"),
            baseline: base,
            current: cur,
            worse_when_higher,
            tolerance_scale,
        });
    }
    Ok(checks)
}

/// Runs the bench-delta gate: re-measures both reports with `jobs` workers
/// and compares dimensionless metrics against the baseline file contents.
///
/// Returns `Ok(report)` when every metric is within `tolerance` of its
/// baseline (in the bad direction), `Err(report)` when any regressed.
pub fn bench_gate(
    driver_baseline: &str,
    wire_baseline: &str,
    jobs: usize,
    tolerance: f64,
) -> Result<String, String> {
    let driver_now = crate::parallel_driver_report(jobs);
    let wire_now = crate::wire_report(jobs);
    let mut checks = driver_checks(driver_baseline, &driver_now).map_err(|e| format!("{e}\n"))?;
    checks.extend(wire_checks(wire_baseline, &wire_now).map_err(|e| format!("{e}\n"))?);

    let mut out = format!(
        "bench gate: {} dimensionless metrics, tolerance {:.0}% in the bad direction \
         (timing ratios 2.5x that; see PERFORMANCE.md)\n",
        checks.len(),
        tolerance * 100.0
    );
    let mut failed = false;
    for c in &checks {
        let reg = c.regression();
        let verdict = if reg > tolerance * c.tolerance_scale {
            failed = true;
            "REGRESSED"
        } else if reg < 0.0 {
            "improved"
        } else {
            "ok"
        };
        out.push_str(&format!(
            "  {:<34} baseline {:>10.4}  current {:>10.4}  {:>+7.1}%  {}\n",
            c.name,
            c.baseline,
            c.current,
            reg * 100.0,
            verdict
        ));
    }
    if failed {
        Err(out)
    } else {
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_finds_anchored_numbers() {
        let text = r#"{
          "tool_overheads": [
            {"tool": "nulgrind", "slowdown_vs_native": 1.10, "space_factor": 1.0},
            {"tool": "aprof-rms", "slowdown_vs_native": 2.50, "space_factor": 16.0}
          ]
        }"#;
        assert_eq!(
            extract_after(text, "\"tool\": \"aprof-rms\"", "slowdown_vs_native"),
            Some(2.50)
        );
        assert_eq!(extract_after(text, "\"tool\": \"nulgrind\"", "space_factor"), Some(1.0));
        assert_eq!(extract_after(text, "\"tool\": \"absent\"", "space_factor"), None);
    }

    #[test]
    fn regression_direction_is_respected() {
        let slow = Check {
            name: "x".into(),
            baseline: 2.0,
            current: 2.6,
            worse_when_higher: true,
            tolerance_scale: 1.0,
        };
        assert!(slow.regression() > 0.29 && slow.regression() < 0.31);
        let speedup = Check {
            name: "y".into(),
            baseline: 2.0,
            current: 2.6,
            worse_when_higher: false,
            tolerance_scale: 1.0,
        };
        assert!(speedup.regression() < 0.0, "a higher speedup is an improvement");
    }
}
