//! The parallel measurement driver: a self-scheduling job queue over std
//! threads plus the machinery for the `BENCH_parallel_driver.json` report.
//!
//! Measurements across (workload, tool, input size) triples are independent,
//! so the experiment harness shards them over a pool of worker threads. The
//! queue is a single shared cursor: every idle worker *steals* the next
//! pending job index, so load balances itself without any static partition
//! (long jobs do not strand short ones behind them). Results are returned
//! through an mpsc channel tagged with the job index and reassembled in
//! submission order, so output is deterministic regardless of completion
//! order or the number of workers.
//!
//! The worker count is a process-wide setting ([`set_jobs`]) surfaced as
//! `--jobs N` by both `repro` and `aprof-cli bench`, with the `APROF_JOBS`
//! environment variable as a fallback; by default it matches the number of
//! available cores.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Process-wide worker count; 0 means "not set, use the default".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker-thread count used by [`par_map`] (the `--jobs N` knob).
///
/// A value of 0 resets to the default ([`default_jobs`]).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The worker-thread count currently in force.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => default_jobs(),
        n => n,
    }
}

/// The default worker count: `APROF_JOBS` if set, else available cores.
pub fn default_jobs() -> usize {
    std::env::var("APROF_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Runs `count` independent jobs on a pool of [`jobs()`](jobs) workers and
/// returns their results in job order.
///
/// Each worker repeatedly claims the next unclaimed job index from a shared
/// cursor and sends `(index, result)` down a channel; the caller reassembles
/// the results by index, so the output vector is identical to the sequential
/// `(0..count).map(f).collect()` whatever the interleaving. With one worker
/// (or one job) the pool is bypassed entirely and `f` runs on the calling
/// thread.
///
/// # Panics
///
/// Propagates the first worker panic when the scope joins.
pub fn run_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs().max(1).min(count.max(1));
    if workers <= 1 || count <= 1 {
        aprof_obs::counters::DRIVER_JOBS.add(count as u64);
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || {
                let mut claimed = 0u64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    aprof_obs::counters::DRIVER_QUEUE_DEPTH_PEAK
                        .record_max((count - i.min(count)) as u64);
                    if claimed > 0 {
                        aprof_obs::counters::DRIVER_STEALS.incr();
                    }
                    claimed += 1;
                    let result = f(i);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                }
                aprof_obs::counters::DRIVER_JOBS.add(claimed);
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        for (i, result) in rx {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job index is claimed exactly once"))
            .collect()
    })
}

/// Retry discipline for [`run_indexed_isolated`]: how many attempts each
/// job gets and the base delay between them.
///
/// The delay doubles after every failed attempt (deterministic exponential
/// backoff), so attempt `k` waits `backoff * 2^(k-2)` before running. A
/// `backoff` of zero retries immediately, which keeps tests fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (first try included); clamped to at least 1.
    pub attempts: u32,
    /// Base delay before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 3, backoff: Duration::from_millis(5) }
    }
}

impl RetryPolicy {
    /// A policy that runs each job exactly once, with no retry.
    pub fn no_retry() -> Self {
        RetryPolicy { attempts: 1, backoff: Duration::ZERO }
    }
}

/// Why a job's final attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The job panicked; carries the rendered panic message.
    Panic(String),
    /// The job returned an error value.
    Error(String),
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::Panic(msg) => write!(f, "panic: {msg}"),
            FailureCause::Error(msg) => write!(f, "error: {msg}"),
        }
    }
}

/// The per-job record produced by [`run_indexed_isolated`]: the result (or
/// the final failure cause) plus how many attempts it took.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome<T> {
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// The job's value, or why every attempt failed.
    pub result: Result<T, FailureCause>,
}

impl<T> JobOutcome<T> {
    /// True when the job exhausted its attempts without producing a value.
    pub fn is_degraded(&self) -> bool {
        self.result.is_err()
    }
}

/// Runs `count` independent fallible jobs on the worker pool with
/// per-job panic isolation and bounded retries, returning one
/// [`JobOutcome`] per job in job order.
///
/// Unlike [`run_indexed`], a panicking or failing job cannot take the run
/// down: each attempt executes under [`catch_unwind`], failures are retried
/// up to [`RetryPolicy::attempts`] times with deterministic exponential
/// backoff, and a job that never succeeds yields a *degraded* entry
/// carrying its [`FailureCause`] while every other job still reports its
/// value. `f` receives `(job_index, attempt)` with `attempt` counting from
/// 1, so callers (and tests) can make behaviour attempt-dependent.
///
/// Output order is the job order whatever the worker count, and the retry
/// schedule depends only on the job index — never on thread interleaving —
/// so a `--jobs 8` run and a `--jobs 1` run produce identical outcomes for
/// deterministic `f`.
pub fn run_indexed_isolated<T, F>(count: usize, policy: RetryPolicy, f: F) -> Vec<JobOutcome<T>>
where
    T: Send,
    F: Fn(usize, u32) -> Result<T, String> + Sync,
{
    run_indexed(count, |i| attempt_job(i, policy, &f))
}

/// One job's full attempt loop: catch panics, retry with backoff, count
/// what happened.
fn attempt_job<T, F>(i: usize, policy: RetryPolicy, f: &F) -> JobOutcome<T>
where
    F: Fn(usize, u32) -> Result<T, String>,
{
    let max_attempts = policy.attempts.max(1);
    let mut cause = FailureCause::Error("job never ran".into());
    for attempt in 1..=max_attempts {
        if attempt > 1 {
            aprof_obs::counters::DRIVER_RETRIES.incr();
            let doublings = (attempt - 2).min(16);
            let delay = policy.backoff.saturating_mul(1u32 << doublings);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        match catch_unwind(AssertUnwindSafe(|| f(i, attempt))) {
            Ok(Ok(value)) => return JobOutcome { attempts: attempt, result: Ok(value) },
            Ok(Err(msg)) => cause = FailureCause::Error(msg),
            Err(payload) => {
                aprof_obs::counters::DRIVER_PANICS_CAUGHT.incr();
                cause = FailureCause::Panic(aprof_faults::panic_message(payload.as_ref()));
            }
        }
    }
    aprof_obs::counters::DRIVER_DEGRADED_JOBS.incr();
    JobOutcome { attempts: max_attempts, result: Err(cause) }
}

/// Maps `f` over `items` in parallel, preserving input order.
pub fn par_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    run_indexed(items.len(), |i| f(&items[i]))
}

/// Minimal JSON value builder for the machine-readable benchmark report
/// (the workspace has no serialization dependency by design).
#[derive(Debug, Clone)]
pub enum Json {
    /// A float rendered with enough precision for timing data.
    Num(f64),
    /// An integer.
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on render).
    Str(String),
    /// An ordered list.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:.6}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    Json::Str(key.clone()).render_into(out, indent + 1);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Renders the value as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }
}

/// Generates the `BENCH_parallel_driver.json` report: wall-clock per figure
/// under sequential and parallel execution, the aggregate speedup, and
/// per-tool overhead factors on a reference workload.
///
/// The figure suite is timed twice — once with one worker and once with
/// `parallel_jobs` workers — with the profile memoization cache cleared
/// before each phase so both phases do the same work. On a single-core
/// machine the two phases are expected to tie on measurement cost; the
/// report records the core count so the numbers can be read honestly.
pub fn parallel_driver_report(parallel_jobs: usize) -> Json {
    use crate::suite::{measure, ToolKind};
    use aprof_workloads::WorkloadParams;

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The quick figure set: every experiment except the two overhead tables,
    // which re-measure every tool on every workload and would dominate.
    let figure_ids: Vec<&str> =
        crate::EXPERIMENTS.iter().copied().filter(|id| *id != "table1" && *id != "fig14").collect();

    let timed_phase = |phase_jobs: usize| -> (f64, Vec<(String, f64)>) {
        crate::figures::clear_profile_cache();
        set_jobs(phase_jobs);
        let start = std::time::Instant::now();
        let outputs = par_map(&figure_ids, |id| {
            let t = std::time::Instant::now();
            let result = crate::run_experiment(id);
            (id.to_string(), t.elapsed().as_secs_f64(), result.is_ok())
        });
        let total = start.elapsed().as_secs_f64();
        let per_figure = outputs
            .into_iter()
            .map(|(id, secs, ok)| {
                assert!(ok, "experiment {id} failed during benchmark");
                (id, secs)
            })
            .collect();
        (total, per_figure)
    };

    let (seq_total, seq_figures) = timed_phase(1);
    let (par_total, par_figures) = timed_phase(parallel_jobs.max(1));
    set_jobs(0); // restore the default for whoever runs next

    // Per-tool overhead factors on one small reference workload, measured
    // sequentially (timing under contention would be meaningless).
    let wl = aprof_workloads::by_name("350.md").expect("reference workload registered");
    let params = WorkloadParams::new(64, 2);
    let native = (0..3)
        .map(|_| measure(&wl, &params, ToolKind::Native).seconds)
        .fold(f64::INFINITY, f64::min)
        .max(1e-9);
    let overheads: Vec<Json> = ToolKind::INSTRUMENTED
        .iter()
        .map(|kind| {
            // Best-of-3, matching the native baseline: these ratios are
            // gated in CI (`repro --bench-gate`), so single-run scheduler
            // noise would turn the gate into a coin flip.
            let m = (0..3)
                .map(|_| measure(&wl, &params, *kind))
                .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
                .expect("three runs");
            Json::Obj(vec![
                ("tool".into(), Json::Str(kind.label().into())),
                ("slowdown_vs_native".into(), Json::Num(m.seconds / native)),
                ("space_factor".into(), Json::Num(m.space_factor())),
            ])
        })
        .collect();

    let figures_json = |figures: &[(String, f64)]| {
        Json::Arr(
            figures
                .iter()
                .map(|(id, secs)| {
                    Json::Obj(vec![
                        ("id".into(), Json::Str(id.clone())),
                        ("seconds".into(), Json::Num(*secs)),
                    ])
                })
                .collect(),
        )
    };

    Json::Obj(vec![
        ("benchmark".into(), Json::Str("parallel profiling driver".into())),
        ("cores".into(), Json::Int(cores as u64)),
        ("sequential_jobs".into(), Json::Int(1)),
        ("parallel_jobs".into(), Json::Int(parallel_jobs.max(1) as u64)),
        ("sequential_wall_seconds".into(), Json::Num(seq_total)),
        ("parallel_wall_seconds".into(), Json::Num(par_total)),
        ("speedup".into(), Json::Num(seq_total / par_total.max(1e-9))),
        ("sequential_figures".into(), figures_json(&seq_figures)),
        ("parallel_figures".into(), figures_json(&par_figures)),
        ("tool_overheads".into(), Json::Arr(overheads)),
        (
            "note".into(),
            Json::Str(
                "wall-clock of the figure suite (table1/fig14 excluded); profile cache \
                 cleared before each phase so both phases do identical work; speedup \
                 scales with the cores field — on a single-core machine the parallel \
                 phase can only tie the sequential one"
                    .into(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_order() {
        set_jobs(4);
        let out = run_indexed(100, |i| i * 3);
        set_jobs(0);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..50).collect();
        set_jobs(8);
        let par = par_map(&items, |x| x * x);
        set_jobs(1);
        let seq = par_map(&items, |x| x * x);
        set_jobs(0);
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], |x| *x + 1), vec![8]);
    }

    #[test]
    fn json_renders_escaped() {
        let j = Json::Obj(vec![
            ("a\"b".into(), Json::Str("line\nbreak".into())),
            ("n".into(), Json::Int(3)),
            ("x".into(), Json::Arr(vec![Json::Num(1.5)])),
        ]);
        let text = j.render();
        assert!(text.contains("\\\""));
        assert!(text.contains("\\n"));
        assert!(text.contains("1.500000"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn isolated_jobs_survive_injected_panics() {
        aprof_faults::install_quiet_hook();
        set_jobs(4);
        let out = run_indexed_isolated(8, RetryPolicy::no_retry(), |i, _attempt| {
            if i == 3 {
                aprof_faults::injected_panic(format!("worker fault on job {i}"));
            }
            Ok::<usize, String>(i * 2)
        });
        set_jobs(0);
        assert_eq!(out.len(), 8);
        for (i, outcome) in out.iter().enumerate() {
            if i == 3 {
                assert!(outcome.is_degraded());
                match &outcome.result {
                    Err(FailureCause::Panic(msg)) => {
                        assert!(msg.contains("worker fault on job 3"), "got {msg}");
                    }
                    other => panic!("expected panic cause, got {other:?}"),
                }
            } else {
                assert_eq!(outcome.result, Ok(i * 2));
                assert_eq!(outcome.attempts, 1);
            }
        }
    }

    #[test]
    fn retries_recover_transient_failures() {
        aprof_faults::install_quiet_hook();
        let policy = RetryPolicy { attempts: 3, backoff: Duration::ZERO };
        let out = run_indexed_isolated(4, policy, |i, attempt| {
            // Job 1 fails (by error) on its first attempt, job 2 panics on
            // its first two attempts; both succeed on a later attempt.
            match (i, attempt) {
                (1, 1) => Err("transient".into()),
                (2, a) if a <= 2 => aprof_faults::injected_panic("flaky"),
                _ => Ok(i),
            }
        });
        assert_eq!(out[0], JobOutcome { attempts: 1, result: Ok(0) });
        assert_eq!(out[1], JobOutcome { attempts: 2, result: Ok(1) });
        assert_eq!(out[2], JobOutcome { attempts: 3, result: Ok(2) });
        assert_eq!(out[3], JobOutcome { attempts: 1, result: Ok(3) });
    }

    #[test]
    fn exhausted_attempts_report_the_last_cause() {
        aprof_faults::install_quiet_hook();
        let policy = RetryPolicy { attempts: 2, backoff: Duration::ZERO };
        let out = run_indexed_isolated(1, policy, |_i, attempt| {
            Err::<(), String>(format!("attempt {attempt} failed"))
        });
        assert_eq!(
            out[0],
            JobOutcome { attempts: 2, result: Err(FailureCause::Error("attempt 2 failed".into())) }
        );
    }

    #[test]
    fn isolated_outcomes_are_identical_across_job_counts() {
        aprof_faults::install_quiet_hook();
        let plan = aprof_faults::FaultPlan::new(aprof_faults::FaultConfig::smoke(42));
        let run = |n_jobs: usize| {
            set_jobs(n_jobs);
            let out = run_indexed_isolated(12, RetryPolicy::no_retry(), |i, attempt| {
                match plan.worker_fault(i as u64, attempt) {
                    Some(aprof_faults::WorkerFault::Panic) => {
                        aprof_faults::injected_panic(format!("injected panic in job {i}"))
                    }
                    Some(aprof_faults::WorkerFault::Delay(_)) | None => Ok::<usize, String>(i),
                }
            });
            set_jobs(0);
            out
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial, parallel);
        assert!(serial.iter().any(|o| o.is_degraded()), "seed 42 should inject at least one panic");
    }
}
