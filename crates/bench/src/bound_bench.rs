//! Bound-inference benchmark: the machinery behind `BENCH_bound.json`.
//!
//! The bound pass runs per-PR over every example and bundled workload in
//! CI and inside the corpus fuzzer's fifth oracle, so its throughput
//! matters: the acceptance floor is one million guest instructions
//! analyzed per second. This report measures full inference (dominators,
//! natural loops, trip classification, SCC recursion analysis, bottom-up
//! summaries) over the largest bundled workload, plus an aggregate sweep
//! across the whole registry.

use crate::driver::Json;
use aprof_bound::{infer_program, Bound};
use aprof_workloads::{all, by_name, WorkloadParams};
use std::time::Instant;

/// The reference workload analyzed for the headline number. `mysqld` is
/// the largest program in the registry: the most functions, blocks and
/// loop structure, so it exercises every analysis phase.
const WORKLOAD: &str = "mysqld";

/// Best-of-`n` wall-clock for `f`, in seconds.
fn best_of<F: FnMut()>(n: usize, mut f: F) -> f64 {
    (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
        .max(1e-9)
}

/// Generates the `BENCH_bound.json` report.
///
/// Inference is a function of the program alone (no execution), so the
/// timings are workload-size independent; size only affects the build.
pub fn bound_report() -> Json {
    let wl = by_name(WORKLOAD).expect("reference workload registered");
    let params = WorkloadParams::new(64, 4);
    let machine = wl.build(&params);
    let program = machine.program();

    let report = infer_program(program);
    let stats = report.stats;
    let unknown = report.bounds.iter().filter(|b| b.bound == Bound::Unknown).count();

    let infer_secs = best_of(5, || {
        let r = infer_program(program);
        assert_eq!(r.stats.instrs, stats.instrs);
    });

    // Aggregate sweep: every registered workload once, instruction-weighted.
    let registry: Vec<_> = all().iter().map(|w| w.build(&params)).collect();
    let sweep_instrs: u64 = registry
        .iter()
        .flat_map(|m| m.program().functions())
        .map(|f| f.blocks.iter().map(|b| b.instrs.len() as u64 + 1).sum::<u64>())
        .sum();
    let sweep_secs = best_of(3, || {
        for m in &registry {
            infer_program(m.program());
        }
    });

    Json::Obj(vec![
        ("benchmark".into(), Json::Str("bound inference".into())),
        ("workload".into(), Json::Str(WORKLOAD.into())),
        ("functions".into(), Json::Int(stats.functions as u64)),
        ("blocks".into(), Json::Int(stats.blocks as u64)),
        ("instrs".into(), Json::Int(stats.instrs as u64)),
        ("loops".into(), Json::Int(stats.loops as u64)),
        ("unknown_bounds".into(), Json::Int(unknown as u64)),
        ("infer_secs".into(), Json::Num(infer_secs)),
        ("infer_instrs_per_sec".into(), Json::Num(stats.instrs as f64 / infer_secs)),
        ("sweep_workloads".into(), Json::Int(registry.len() as u64)),
        ("sweep_instrs".into(), Json::Int(sweep_instrs)),
        ("sweep_secs".into(), Json::Num(sweep_secs)),
        ("sweep_instrs_per_sec".into(), Json::Num(sweep_instrs as f64 / sweep_secs)),
        (
            "note".into(),
            Json::Str(
                "best-of-5 full bound inference (dominators, natural loops, \
                 trip classification, SCC recursion analysis, interprocedural \
                 summaries) over the largest bundled workload, plus a \
                 best-of-3 sweep across the whole workload registry; the \
                 acceptance floor is 1e6 instrs/sec on the headline number"
                    .into(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_report_meets_throughput_floor() {
        let report = bound_report();
        let Json::Obj(fields) = &report else { panic!("report is an object") };
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let Some(Json::Num(rate)) = get("infer_instrs_per_sec") else { panic!("rate missing") };
        assert!(*rate > 0.0);
        let Some(Json::Num(sweep)) = get("sweep_instrs_per_sec") else { panic!("sweep missing") };
        assert!(*sweep > 0.0);
        // The 1M instrs/s acceptance floor is a property of the release
        // artifact (CI: `repro --bench-bound-json`); an unoptimized test
        // binary sits within a small factor of it, so only enforce the
        // floor when optimizations are on.
        if !cfg!(debug_assertions) {
            assert!(*rate >= 1e6, "bound inference below 1M instrs/s: {rate}");
            assert!(*sweep >= 1e6, "registry sweep below 1M instrs/s: {sweep}");
        }
        let Some(Json::Int(instrs)) = get("instrs") else { panic!("instrs missing") };
        assert!(*instrs > 0);
    }
}
