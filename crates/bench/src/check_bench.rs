//! Static-verifier benchmark: the machinery behind `BENCH_check.json`.
//!
//! The verifier gates every `run`/`record`/`asm` invocation, so its cost
//! must stay a small fraction of the work it fronts. This report measures
//! full-verification throughput (guest instructions checked per second) on
//! the largest bundled workload and compares a complete check against one
//! traced capture run of the same program — the cheapest downstream action
//! the check could delay.

use crate::driver::Json;
use aprof_check::check_program;
use aprof_trace::RecordingTool;
use aprof_workloads::{by_name, WorkloadParams};
use std::time::Instant;

/// The reference workload verified for the measurement. `mysqld` is the
/// largest program in the registry: the most functions, blocks and
/// concurrency structure, so it exercises every analysis pass.
const WORKLOAD: &str = "mysqld";

fn bench_size() -> u64 {
    std::env::var("APROF_BENCH_SIZE").ok().and_then(|v| v.parse().ok()).unwrap_or(192)
}

/// Best-of-`n` wall-clock for `f`, in seconds.
fn best_of<F: FnMut()>(n: usize, mut f: F) -> f64 {
    (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
        .max(1e-9)
}

/// Generates the `BENCH_check.json` report.
///
/// Verification is a function of the program alone, so the check timings
/// are independent of workload size; `size` only scales the capture run
/// the check is compared against. The verdict fields double as a guard:
/// the report generation fails if the reference workload ever stops
/// verifying clean.
pub fn check_report() -> Json {
    check_report_sized(bench_size())
}

fn check_report_sized(size: u64) -> Json {
    let wl = by_name(WORKLOAD).expect("reference workload registered");
    let params = WorkloadParams::new(size, 4);

    let build_secs = best_of(3, || {
        wl.build(&params);
    });
    let mut machine = wl.build(&params);

    let report = check_program(machine.program());
    assert!(!report.has_errors(), "reference workload must verify clean");
    let stats = report.stats;

    let check_secs = best_of(3, || {
        let r = check_program(machine.program());
        assert_eq!(r.stats.instrs, stats.instrs);
    });

    let mut recorder = RecordingTool::new();
    let capture_t = Instant::now();
    machine.run_with(&mut recorder).expect("workload runs");
    let capture_secs = capture_t.elapsed().as_secs_f64().max(1e-9);
    let events = recorder.into_trace().len() as u64;

    Json::Obj(vec![
        ("benchmark".into(), Json::Str("static verifier".into())),
        ("workload".into(), Json::Str(WORKLOAD.into())),
        ("size".into(), Json::Int(size)),
        ("functions".into(), Json::Int(stats.functions as u64)),
        ("blocks".into(), Json::Int(stats.blocks as u64)),
        ("instrs".into(), Json::Int(stats.instrs as u64)),
        ("errors".into(), Json::Int(report.count(aprof_check::Severity::Error) as u64)),
        ("warnings".into(), Json::Int(report.count(aprof_check::Severity::Warning) as u64)),
        ("notes".into(), Json::Int(report.count(aprof_check::Severity::Note) as u64)),
        ("check_secs".into(), Json::Num(check_secs)),
        ("check_instrs_per_sec".into(), Json::Num(stats.instrs as f64 / check_secs)),
        ("build_secs".into(), Json::Num(build_secs)),
        ("capture_secs".into(), Json::Num(capture_secs)),
        ("capture_events".into(), Json::Int(events)),
        ("check_vs_capture_ratio".into(), Json::Num(check_secs / capture_secs)),
        (
            "note".into(),
            Json::Str(
                "best-of-3 full verification of the largest bundled workload \
                 (structure, dataflow fixpoint, call-graph, concurrency passes) \
                 against one traced capture run of the same program; \
                 check_vs_capture_ratio is the gating overhead the verifier \
                 adds ahead of the cheapest profiled execution"
                    .into(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_report_has_sane_fields() {
        let report = check_report_sized(32);
        let rendered = report.render();
        for key in ["check_instrs_per_sec", "check_vs_capture_ratio", "instrs", "errors"] {
            assert!(rendered.contains(key), "missing {key} in:\n{rendered}");
        }
        let Json::Obj(fields) = &report else { panic!("report is an object") };
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let Some(Json::Int(errors)) = get("errors") else { panic!("errors missing") };
        assert_eq!(*errors, 0, "reference workload must verify clean");
        let Some(Json::Num(rate)) = get("check_instrs_per_sec") else { panic!("rate missing") };
        assert!(*rate > 0.0);
        let Some(Json::Int(instrs)) = get("instrs") else { panic!("instrs missing") };
        assert!(*instrs > 0);
    }
}
