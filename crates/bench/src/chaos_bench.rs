//! The network-chaos soak behind `repro --chaos`: a live daemon under
//! combined network, I/O and panic fault plans, checked against the
//! one-shot replay oracle.
//!
//! One seed drives everything. The daemon runs with
//! [`FaultConfig::chaos`] (worker panics, accept-loop panics, spool
//! write/fsync/rename disk-full errors, delays); every client connection
//! is wrapped in a [`NetFaultPlan`] (mid-stream resets, short reads and
//! writes, byte-dribble slow-loris stalls, garbage bytes that claim
//! success), with the connection id derived from `(stream, attempt)` so
//! any individual connection's fault schedule replays exactly. Submitters
//! retry with deterministic jittered backoff, honouring the daemon's
//! `retry-after` hints and waiting out circuit-breaker cooldowns, while a
//! poller thread exercises the read endpoints throughout.
//!
//! Invariants checked:
//!
//! * every stream is eventually acknowledged, and each tenant's aggregate
//!   is **byte-identical** to the one-shot replay + merge oracle — acked
//!   data survives chaos with zero loss and zero double-counting (lost
//!   acks resolve as idempotent duplicates);
//! * the daemon never exits: it answers `PING`, serves the read
//!   endpoints, and survives a kill + restart with the same bytes;
//! * the obs counters reconcile with the injected-fault tally: the
//!   `faults.net.*` deltas account for at least this run's injections,
//!   and (for the default seed) panics were supervised, load was shed,
//!   and network faults actually fired — a quiet run would be vacuous.

use aprof_core::{ProfileReport, TrmsProfiler};
use aprof_faults::{jittered_backoff, FaultConfig, NetFaultConfig, NetFaultCounts, NetFaultPlan};
use aprof_serve::{client, BreakerConfig, ServeConfig, Server, Target};
use aprof_trace::RecordingTool;
use aprof_wire::{WireOptions, WireReader, WireWriter};
use aprof_workloads::{by_name, WorkloadParams};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The default seed of `repro --chaos`; pinned by test to be non-vacuous
/// (it injects network faults, supervised panics and load sheds).
pub const DEFAULT_CHAOS_SEED: u64 = 0xC4A0;

/// Streams per soak when `APROF_CHAOS_CASES` is unset.
const DEFAULT_CASES: usize = 6;

/// Per-stream bound on submission attempts before the harness gives up.
/// Deliberately generous: under the chaos plan a single attempt can fail
/// for many independent reasons, and the wall-clock budget below is the
/// real bound.
const MAX_ATTEMPTS: u32 = 240;

/// Per-stream wall-clock bound (the harness's own watchdog, far above the
/// daemon's deadlines).
const STREAM_BUDGET: Duration = Duration::from_secs(60);

/// The workload rotation for the soaked streams.
const WORKLOADS: &[&str] =
    &["producer_consumer", "algo.insertion_sort", "algo.merge_sort", "algo.binary_search"];

fn chaos_cases() -> usize {
    std::env::var("APROF_CHAOS_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_CASES)
}

/// A scratch directory unique across runs and concurrent soaks.
fn scratch(seed: u64) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "aprof-chaos-{}-{seed:x}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Records one workload run into wire bytes (small chunks: more write ops,
/// more places for net faults to land).
fn record(name: &str, size: u64) -> Result<Vec<u8>, String> {
    let wl = by_name(name).ok_or_else(|| format!("{name} not registered"))?;
    let mut machine = wl.build(&WorkloadParams::new(size, 2));
    let names = machine.program().routines().clone();
    let mut recorder = RecordingTool::new();
    machine.run_with(&mut recorder).map_err(|e| format!("workload {name}: {e}"))?;
    let opts = WireOptions { chunk_bytes: 256, ..Default::default() };
    let mut writer =
        WireWriter::create(Vec::new(), &names, opts).map_err(|e| format!("header: {e}"))?;
    for te in recorder.into_trace() {
        writer.push(te.thread, te.event).map_err(|e| format!("push: {e}"))?;
    }
    Ok(writer.finish().map_err(|e| format!("finish: {e}"))?.0)
}

/// One-shot strict replay of a trace into its profile.
fn replay(bytes: &[u8]) -> Result<ProfileReport, String> {
    let mut reader =
        WireReader::new(bytes).map_err(|e| format!("reader: {e}"))?.strict();
    let mut profiler = TrmsProfiler::new();
    profiler.consume_stream(&mut reader).map_err(|e| format!("replay: {e}"))?;
    if reader.index().is_none() {
        return Err("trace has no validated index".into());
    }
    let names = reader.routines().clone();
    Ok(profiler.into_report(&names))
}

fn tenant_of(i: usize) -> &'static str {
    if i.is_multiple_of(2) {
        "alpha"
    } else {
        "beta"
    }
}

fn counter(name: &str) -> u64 {
    aprof_obs::snapshot().counter(name).unwrap_or(0)
}

/// Retries a clean-client call against the chaos daemon: its fault plan
/// panics workers on *any* connection, fetches included, so even control
/// traffic needs patience.
fn with_retries<T>(
    what: &str,
    mut f: impl FnMut() -> Result<T, aprof_serve::ServeError>,
) -> Result<T, String> {
    let mut last = String::new();
    for _ in 0..80 {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    Err(format!("{what} kept failing under chaos: {last}"))
}

/// Per-soak outcome statistics (for the rendered report).
#[derive(Default)]
struct SoakStats {
    attempts: u64,
    duplicate_acks: u64,
    busy_refusals: u64,
    quarantine_refusals: u64,
    error_replies: u64,
    io_failures: u64,
}

impl SoakStats {
    fn absorb(&mut self, other: &SoakStats) {
        self.attempts += other.attempts;
        self.duplicate_acks += other.duplicate_acks;
        self.busy_refusals += other.busy_refusals;
        self.quarantine_refusals += other.quarantine_refusals;
        self.error_replies += other.error_replies;
        self.io_failures += other.io_failures;
    }
}

/// One raw `APROF/1` submission through a fault-wrapped connection.
/// Returns the reply line (empty on bare close); the injected-fault tally
/// is absorbed whatever happens.
fn raw_submit(
    plan: &NetFaultPlan,
    sock: &Path,
    tenant: &str,
    stream: &str,
    body: &[u8],
    conn_id: u64,
    tally: &Mutex<NetFaultCounts>,
) -> std::io::Result<String> {
    let inner = UnixStream::connect(sock)?;
    inner.set_read_timeout(Some(Duration::from_secs(10)))?;
    inner.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut conn = plan.wrap(inner, conn_id);
    let result = (|| {
        conn.write_all(format!("APROF/1 SUBMIT tenant={tenant} stream={stream}\n").as_bytes())?;
        for chunk in body.chunks(512) {
            conn.write_all(chunk)?;
        }
        conn.flush()?;
        conn.get_ref().shutdown(Shutdown::Write)?;
        // Read the reply in buffered chunks (not byte-at-a-time) so the
        // short-read injector has something to shorten.
        let mut line = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            let n = conn.read(&mut buf)?;
            if n == 0 {
                break;
            }
            line.extend_from_slice(&buf[..n]);
            if line.contains(&b'\n') || line.len() > 4096 {
                break;
            }
        }
        line.truncate(line.iter().position(|&b| b == b'\n').unwrap_or(line.len()));
        Ok(String::from_utf8_lossy(&line).into_owned())
    })();
    tally.lock().unwrap_or_else(|e| e.into_inner()).absorb(&conn.counts());
    result
}

/// Drives one stream to acknowledgement through the chaos, or reports why
/// it could not be.
#[allow(clippy::too_many_arguments)]
fn submit_until_acked(
    plan: &NetFaultPlan,
    sock: &Path,
    tenant: &str,
    stream: &str,
    body: &[u8],
    stream_idx: u64,
    seed: u64,
    tally: &Mutex<NetFaultCounts>,
) -> Result<SoakStats, String> {
    let started = Instant::now();
    let mut stats = SoakStats::default();
    for attempt in 0..MAX_ATTEMPTS {
        if started.elapsed() > STREAM_BUDGET {
            break;
        }
        stats.attempts += 1;
        let conn_id = stream_idx * 1000 + u64::from(attempt);
        let backoff =
            jittered_backoff(Duration::from_millis(20), Duration::from_millis(250), seed ^ stream_idx, attempt);
        match raw_submit(plan, sock, tenant, stream, body, conn_id, tally) {
            Ok(line) if line.starts_with("OK ") => {
                if line.contains("duplicate=1") {
                    stats.duplicate_acks += 1;
                }
                return Ok(stats);
            }
            Ok(line) if line.starts_with("ERR busy retry-after ") => {
                stats.busy_refusals += 1;
                let hinted = line
                    .rsplit(' ')
                    .next()
                    .and_then(|ms| ms.parse::<u64>().ok())
                    .map_or(Duration::ZERO, Duration::from_millis);
                std::thread::sleep(backoff.max(hinted));
            }
            Ok(line) if line.starts_with("ERR quarantined") => {
                stats.quarantine_refusals += 1;
                // Wait out the breaker cooldown, then contend for the
                // half-open probe.
                std::thread::sleep(backoff.max(Duration::from_millis(150)));
            }
            Ok(_) => {
                // Any other ERR (injected worker panic, garbage-corrupted
                // bytes, disk-full commit, drain) or a bare close: a fresh
                // attempt gets fresh fault draws.
                stats.error_replies += 1;
                std::thread::sleep(backoff);
            }
            Err(_) => {
                stats.io_failures += 1;
                std::thread::sleep(backoff);
            }
        }
    }
    Err(format!(
        "stream {tenant}/{stream} not acknowledged after {} attempts in {:?}",
        stats.attempts,
        started.elapsed()
    ))
}

/// Runs the chaos soak with the given seed and stream count; returns the
/// rendered report.
///
/// # Errors
///
/// Returns an error string when any invariant breaks: a stream that never
/// acks, an aggregate that differs from the oracle, data loss across the
/// restart, counters that fail to reconcile, or (for the
/// [default seed](DEFAULT_CHAOS_SEED)) a vacuously quiet run.
pub fn chaos_smoke_with(seed: u64, cases: usize) -> Result<String, String> {
    aprof_faults::install_quiet_hook();
    aprof_obs::enable();
    let cases = cases.max(2);
    let dir = scratch(seed);
    let sock = dir.join("daemon.sock");
    let spool = dir.join("spool");
    let target = Target::Unix(sock.clone());

    // Pre-record every stream and its oracle.
    let mut traces = Vec::new();
    for i in 0..cases {
        let name = WORKLOADS[i % WORKLOADS.len()];
        let size = 16 + ((i as u64) % 4) * 8;
        traces.push(record(name, size)?);
    }
    let oracle = |tenant: &str| -> Result<String, String> {
        let mut reports = Vec::new();
        // Stream ids are `s-<i>`; lexicographic id order == index order
        // (zero-padded), which is the daemon's merge order.
        for (i, trace) in traces.iter().enumerate() {
            if tenant_of(i) == tenant {
                reports.push(replay(trace)?);
            }
        }
        Ok(ProfileReport::merge(&reports).to_canonical_text())
    };

    let mut cfg = ServeConfig::new(&spool);
    cfg.unix = Some(sock.clone());
    cfg.faults = Some(FaultConfig::chaos(seed));
    cfg.shed.max_active_conns = 3;
    cfg.shed.retry_after = Duration::from_millis(25);
    cfg.stream_deadline = Duration::from_secs(30);
    cfg.breaker = BreakerConfig {
        failures: 8,
        window: Duration::from_secs(10),
        cooldown: Duration::from_millis(100),
    };
    let net_plan = NetFaultPlan::new(NetFaultConfig::chaos(seed ^ 0x4E45_5443));

    let before_net = [
        counter("faults.net.conn_resets"),
        counter("faults.net.short_reads"),
        counter("faults.net.short_writes"),
        counter("faults.net.dribbles"),
        counter("faults.net.garbage_writes"),
    ];
    let before_panics = counter("serve.supervisor.worker_panics");
    let before_restarts = counter("serve.supervisor.listener_restarts");
    let before_shed = counter("serve.shed.conn_pressure");

    let server = Server::start(cfg).map_err(|e| format!("start: {e}"))?;
    let tally = Mutex::new(NetFaultCounts::default());

    // Deterministic shed probe: park more silent connections than the
    // active-connection ceiling, then submit until the daemon sheds.
    let mut shed_seen = false;
    {
        let mut parked = Vec::new();
        for _ in 0..6 {
            if let Ok(c) = UnixStream::connect(&sock) {
                parked.push(c);
            }
        }
        std::thread::sleep(Duration::from_millis(150));
        for _ in 0..20 {
            match client::submit(&target, "alpha", "shed-probe", &mut &traces[0][..]) {
                Err(aprof_serve::ServeError::Busy { .. }) => {
                    shed_seen = true;
                    break;
                }
                // Anything else (injected accept panic, worker panic,
                // even a lucky commit) — keep probing.
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        drop(parked);
        std::thread::sleep(Duration::from_millis(200));
    }

    // Poller: hammer the read endpoints for the whole soak.
    let stop = AtomicBool::new(false);
    let poller_ok = AtomicU64::new(0);
    let stats = Mutex::new(SoakStats::default());
    let failures = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        scope.spawn(|| {
            while !stop.load(Ordering::SeqCst) {
                if client::fetch_obs(&target).is_ok() {
                    poller_ok.fetch_add(1, Ordering::SeqCst);
                }
                if client::fetch_tenants(&target).is_ok() {
                    poller_ok.fetch_add(1, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
        let submitters: Vec<_> = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| {
                let (net_plan, sock, tally, stats, failures) =
                    (&net_plan, &sock, &tally, &stats, &failures);
                scope.spawn(move || {
                    let stream = format!("s-{i:03}");
                    match submit_until_acked(
                        net_plan,
                        sock,
                        tenant_of(i),
                        &stream,
                        trace,
                        i as u64,
                        seed,
                        tally,
                    ) {
                        Ok(s) => stats.lock().unwrap_or_else(|e| e.into_inner()).absorb(&s),
                        Err(e) => failures.lock().unwrap_or_else(|e| e.into_inner()).push(e),
                    }
                })
            })
            .collect();
        // Keep the poller running until every submitter is done, so the
        // read endpoints are exercised *during* the chaos, not after it.
        for handle in submitters {
            let _ = handle.join();
        }
        stop.store(true, Ordering::SeqCst);
    });
    let stats = stats.into_inner().unwrap_or_else(|e| e.into_inner());
    let failures = failures.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some(f) = failures.first() {
        return Err(format!("{} stream(s) never acked; first: {f}", failures.len()));
    }

    // Invariant: byte-identical aggregates, despite every injected fault.
    let alpha = oracle("alpha")?;
    let beta = oracle("beta")?;
    let got_alpha = with_retries("fetch alpha", || client::fetch_profile(&target, "alpha"))?;
    let got_beta = with_retries("fetch beta", || client::fetch_profile(&target, "beta"))?;
    if got_alpha != alpha {
        return Err("tenant alpha's aggregate differs from the one-shot oracle".into());
    }
    if got_beta != beta {
        return Err("tenant beta's aggregate differs from the one-shot oracle".into());
    }

    // Invariant: no double-counting — resubmitting an acked stream is an
    // idempotent duplicate and changes nothing.
    let dup = with_retries("duplicate probe", || {
        client::submit(&target, tenant_of(0), "s-000", &mut &traces[0][..])
    })?;
    if !dup.duplicate {
        return Err("re-submission of an acked stream was not a duplicate".into());
    }
    if with_retries("post-duplicate fetch", || client::fetch_profile(&target, "alpha"))? != alpha {
        return Err("duplicate re-submission changed the aggregate".into());
    }
    with_retries("ping", || client::ping(&target))
        .map_err(|e| format!("daemon unhealthy after soak: {e}"))?;

    // Reconcile the obs counters against the harness's own injection
    // tally (global counters are monotonic and shared, so the delta must
    // account for at least everything this run injected).
    let tally = tally.into_inner().unwrap_or_else(|e| e.into_inner());
    let after_net = [
        counter("faults.net.conn_resets"),
        counter("faults.net.short_reads"),
        counter("faults.net.short_writes"),
        counter("faults.net.dribbles"),
        counter("faults.net.garbage_writes"),
    ];
    let injected =
        [tally.resets, tally.short_reads, tally.short_writes, tally.dribbles, tally.garbage_writes];
    let labels = ["conn_resets", "short_reads", "short_writes", "dribbles", "garbage_writes"];
    for ((before, after), (label, mine)) in
        before_net.iter().zip(&after_net).zip(labels.iter().zip(&injected))
    {
        if after - before < *mine {
            return Err(format!(
                "faults.net.{label} moved by {} but the harness injected {mine}",
                after - before
            ));
        }
    }
    let worker_panics = counter("serve.supervisor.worker_panics") - before_panics;
    let listener_restarts = counter("serve.supervisor.listener_restarts") - before_restarts;
    let sheds = counter("serve.shed.conn_pressure") - before_shed;

    // Kill (no drain) and restart *clean* on the same spool: everything
    // acked must come back byte-identical.
    server.shutdown(true);
    server.wait().map_err(|e| format!("stop: {e}"))?;
    let sock2 = dir.join("daemon2.sock");
    let mut clean = ServeConfig::new(&spool);
    clean.unix = Some(sock2.clone());
    let target2 = Target::Unix(sock2);
    let reborn = Server::start(clean).map_err(|e| format!("restart: {e}"))?;
    if !reborn.damaged.is_empty() {
        return Err(format!("restart found {} damaged spool files", reborn.damaged.len()));
    }
    if client::fetch_profile(&target2, "alpha").map_err(|e| e.to_string())? != alpha
        || client::fetch_profile(&target2, "beta").map_err(|e| e.to_string())? != beta
    {
        return Err("aggregates changed across the restart".into());
    }
    reborn.shutdown(false);
    reborn.wait().map_err(|e| format!("drain: {e}"))?;
    let _ = std::fs::remove_dir_all(&dir);

    if seed == DEFAULT_CHAOS_SEED {
        // The default run must actually exercise the machinery.
        if injected.iter().sum::<u64>() == 0 {
            return Err("default seed injected no network faults; soak is vacuous".into());
        }
        if worker_panics + listener_restarts == 0 {
            return Err("default seed triggered no supervised panics; soak is vacuous".into());
        }
        if !shed_seen || sheds == 0 {
            return Err("default seed never shed load; soak is vacuous".into());
        }
    }

    let mut out = String::new();
    writeln!(out, "network-chaos soak (seed {seed:#x}, {cases} streams)").unwrap();
    writeln!(
        out,
        "  submissions: {} attempts for {cases} acks ({} duplicate acks from lost replies)",
        stats.attempts, stats.duplicate_acks
    )
    .unwrap();
    writeln!(
        out,
        "  refusals ridden out: {} busy, {} quarantined, {} other ERR, {} i/o failures",
        stats.busy_refusals, stats.quarantine_refusals, stats.error_replies, stats.io_failures
    )
    .unwrap();
    writeln!(
        out,
        "  injected net faults: {} resets, {} short reads, {} short writes, {} dribbles, {} garbage writes",
        tally.resets, tally.short_reads, tally.short_writes, tally.dribbles, tally.garbage_writes
    )
    .unwrap();
    writeln!(
        out,
        "  daemon-side: {worker_panics} supervised worker panics, {listener_restarts} listener restarts, {sheds} conn-pressure sheds"
    )
    .unwrap();
    writeln!(out, "  poller: {} successful endpoint reads during the soak", poller_ok.load(Ordering::SeqCst))
        .unwrap();
    writeln!(out, "  aggregates byte-identical to the one-shot oracle, before and after restart").unwrap();
    writeln!(out, "all chaos invariants held").unwrap();
    Ok(out)
}

/// Runs the chaos soak with `APROF_CHAOS_CASES` streams (default
/// {`DEFAULT_CASES`}).
///
/// # Errors
///
/// As [`chaos_smoke_with`].
pub fn chaos_smoke(seed: u64) -> Result<String, String> {
    chaos_smoke_with(seed, chaos_cases())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_chaos_soak_passes_and_is_not_vacuous() {
        let report = chaos_smoke_with(DEFAULT_CHAOS_SEED, 4).expect("chaos soak passes");
        assert!(report.contains("all chaos invariants held"), "{report}");
        assert!(report.contains("injected net faults"), "{report}");
    }

    #[test]
    fn alternate_seeds_hold_the_same_invariants() {
        for seed in [0x00DD_BA11, 0x5EED] {
            let report = chaos_smoke_with(seed, 3).expect("chaos soak passes");
            assert!(report.contains("all chaos invariants held"), "{report}");
        }
    }
}
