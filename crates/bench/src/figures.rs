//! Case-study and metric figures: Figs. 4–9, 15–19 and the §3 synthetic.

use aprof_analysis::metrics::{
    cdf_curve, external_values, induced_breakdown, richness_values, thread_induced_values,
    volume_values, CurvePoint,
};
use aprof_analysis::render::{render_plot, Table};
use aprof_analysis::{fit_best, CostPlot, Metric, PlotKind};
use aprof_core::{InputPolicy, ProfileReport, RoutineReport, TrmsProfiler};
use aprof_workloads::{by_name, Family, WorkloadParams};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The rendered output of one experiment.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Experiment id (e.g. `"fig4"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Rendered tables/plots.
    pub text: String,
    /// `(file name, csv content)` pairs for `results/`.
    pub csv: Vec<(String, String)>,
}

/// Key identifying one deterministic profiling run for memoization.
type ProfileKey = (String, u64, u32, u64, InputPolicy);

fn profile_cache() -> &'static Mutex<HashMap<ProfileKey, ProfileReport>> {
    static CACHE: OnceLock<Mutex<HashMap<ProfileKey, ProfileReport>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drops all memoized profiles.
///
/// Profiling runs are deterministic in (workload, params, policy), so
/// the private `profile` helper memoizes reports — several figures share runs (e.g. Figs. 4
/// and 6 both profile the minidb analog at the same size). Benchmarks and
/// determinism tests call this between phases so every phase does the same
/// work.
pub fn clear_profile_cache() {
    profile_cache().lock().expect("profile cache poisoned").clear();
}

/// Profiles one registry workload under a policy (memoized; see
/// [`clear_profile_cache`]).
fn profile(name: &str, params: &WorkloadParams, policy: InputPolicy) -> ProfileReport {
    let key = (name.to_owned(), params.size, params.threads, params.seed, policy);
    if let Some(report) = profile_cache().lock().expect("profile cache poisoned").get(&key) {
        return report.clone();
    }
    let wl = by_name(name).unwrap_or_else(|| panic!("workload {name} not registered"));
    let mut machine = wl.build(params);
    let names = machine.program().routines().clone();
    let mut prof = TrmsProfiler::with_policy(policy);
    machine.run_with(&mut prof).unwrap_or_else(|e| panic!("{name} failed: {e}"));
    let report = prof.into_report(&names);
    profile_cache()
        .lock()
        .expect("profile cache poisoned")
        .insert(key, report.clone());
    report
}

fn routine<'r>(report: &'r ProfileReport, name: &str) -> &'r RoutineReport {
    report
        .routine_by_name(name)
        .unwrap_or_else(|| panic!("routine {name} missing from report"))
}

fn plot_csv(plot: &CostPlot) -> String {
    let mut t = Table::new(vec![plot.metric.label().into(), plot.kind.label().into()]);
    for p in plot.points() {
        t.row(vec![p.n.to_string(), format!("{}", p.y)]);
    }
    t.to_csv()
}

fn fit_line(plot: &CostPlot) -> String {
    match fit_best(&plot.xy()) {
        Some(fit) => format!(
            "fit[{} vs {}]: {}  (r2={:.4}, b={:.3})",
            plot.kind.label(),
            plot.metric.label(),
            fit.model.notation(),
            fit.r2,
            fit.b
        ),
        None => format!(
            "fit[{} vs {}]: not enough distinct points ({})",
            plot.kind.label(),
            plot.metric.label(),
            plot.len()
        ),
    }
}

/// Renders the two-panel rms/trms comparison the paper uses in Figs. 4–6.
fn rms_trms_panels(id: &str, title: &str, rr: &RoutineReport, kind: PlotKind) -> FigureOutput {
    let rms = CostPlot::from_report(rr, Metric::Rms, kind);
    let trms = CostPlot::from_report(rr, Metric::Trms, kind);
    let text = format!(
        "{title}\n\n(a) input size measured by rms\n{}\n{}\n\n(b) input size measured by trms\n{}\n{}\n",
        render_plot(&rms),
        fit_line(&rms),
        render_plot(&trms),
        fit_line(&trms),
    );
    FigureOutput {
        id: id.into(),
        title: title.into(),
        text,
        csv: vec![
            (format!("{id}_rms.csv"), plot_csv(&rms)),
            (format!("{id}_trms.csv"), plot_csv(&trms)),
        ],
    }
}

/// Fig. 4: `mysql_select` worst-case cost, rms vs trms.
pub fn fig4() -> FigureOutput {
    let report = profile("mysqld", &WorkloadParams::new(160, 2), InputPolicy::full());
    rms_trms_panels(
        "fig4",
        "Fig. 4 — mysql_select worst-case running time (minidb analog)",
        routine(&report, "mysql_select"),
        PlotKind::WorstCase,
    )
}

/// Fig. 5: `im_generate` worst-case cost, rms vs trms.
pub fn fig5() -> FigureOutput {
    let report = profile("vips", &WorkloadParams::new(200, 3), InputPolicy::full());
    rms_trms_panels(
        "fig5",
        "Fig. 5 — im_generate worst-case running time (vips analog)",
        routine(&report, "im_generate"),
        PlotKind::WorstCase,
    )
}

/// Fig. 6: `buf_flush_buffered_writes` with curve fitting.
pub fn fig6() -> FigureOutput {
    let report = profile("mysqld", &WorkloadParams::new(160, 2), InputPolicy::full());
    rms_trms_panels(
        "fig6",
        "Fig. 6 — buf_flush_buffered_writes worst-case running time with curve fitting",
        routine(&report, "buf_flush_buffered_writes"),
        PlotKind::WorstCase,
    )
}

/// Fig. 7: `wbuffer_write_thread` under rms, trms-external-only and full
/// trms: the number of collected performance points grows at each step.
pub fn fig7() -> FigureOutput {
    let params = WorkloadParams::new(240, 3);
    let panels = [
        ("(a) rms", InputPolicy::rms_only(), Metric::Trms),
        ("(b) trms, external input only", InputPolicy::external_only(), Metric::Trms),
        ("(c) trms, external and thread input", InputPolicy::full(), Metric::Trms),
    ];
    let mut text = String::from("Fig. 7 — wbuffer_write_thread cost plots (vips analog)\n");
    let mut csv = Vec::new();
    let mut distinct = Vec::new();
    // One profiling run per panel (distinct policies), sharded over workers.
    let rendered = crate::driver::run_indexed(panels.len(), |i| {
        let (title, policy, metric) = &panels[i];
        let report = profile("vips", &params, *policy);
        let rr = routine(&report, "wbuffer_write_thread");
        let plot = CostPlot::from_report(rr, *metric, PlotKind::WorstCase);
        let panel_text = format!(
            "\n{title}: {} activations, {} distinct input sizes\n{}",
            rr.merged.calls,
            plot.len(),
            render_plot(&plot)
        );
        (panel_text, plot_csv(&plot), plot.len())
    });
    for (i, (panel_text, panel_csv, len)) in rendered.into_iter().enumerate() {
        distinct.push(len);
        text.push_str(&panel_text);
        csv.push((format!("fig7_panel_{}.csv", (b'a' + i as u8) as char), panel_csv));
    }
    text.push_str(&format!(
        "\nprofile richness progression (distinct points): {} -> {} -> {}\n",
        distinct[0], distinct[1], distinct[2]
    ));
    FigureOutput { id: "fig7".into(), title: "Fig. 7 — profile richness".into(), text, csv }
}

/// Fig. 8: `send_eof` workload plots (activations per input size).
pub fn fig8() -> FigureOutput {
    let report = profile("mysqld", &WorkloadParams::new(160, 4), InputPolicy::full());
    rms_trms_panels(
        "fig8",
        "Fig. 8 — send_eof workload plots (activations per input size)",
        routine(&report, "send_eof"),
        PlotKind::Workload,
    )
}

/// Fig. 9: per-routine induced first-accesses split between external and
/// thread-induced input, for the minidb and vips analogs.
pub fn fig9() -> FigureOutput {
    let mut text = String::from(
        "Fig. 9 — thread-induced vs external input per routine (% of induced first-accesses)\n",
    );
    let mut csv = Vec::new();
    let panels = [
        ("(a) minidb", "mysqld", WorkloadParams::new(160, 3)),
        ("(b) vips", "vips", WorkloadParams::new(200, 3)),
    ];
    let rendered = crate::driver::par_map(&panels, |(panel, name, params)| {
        let report = profile(name, params, InputPolicy::full());
        let rows = induced_breakdown(&report);
        let mut table =
            Table::new(vec!["routine".into(), "thread %".into(), "external %".into()]);
        for (routine, thread_pct, ext_pct) in &rows {
            table.row(vec![
                routine.clone(),
                format!("{thread_pct:.1}"),
                format!("{ext_pct:.1}"),
            ]);
        }
        (format!("\n{panel}\n{}", table.render()), format!("fig9_{name}.csv"), table.to_csv())
    });
    for (panel_text, file, content) in rendered {
        text.push_str(&panel_text);
        csv.push((file, content));
    }
    FigureOutput {
        id: "fig9".into(),
        title: "Fig. 9 — induced input attribution per routine".into(),
        text,
        csv,
    }
}

/// The representative benchmark set used for the distribution figures.
fn representative() -> Vec<(&'static str, WorkloadParams)> {
    vec![
        ("350.md", WorkloadParams::new(96, 4)),
        ("372.smithwa", WorkloadParams::new(96, 4)),
        ("376.kdtree", WorkloadParams::new(96, 4)),
        ("vips", WorkloadParams::new(200, 3)),
        ("dedup", WorkloadParams::new(128, 3)),
        ("fluidanimate", WorkloadParams::new(96, 4)),
        ("mysqld", WorkloadParams::new(160, 3)),
    ]
}

fn curve_figure(
    id: &str,
    title: &str,
    value_of: fn(&ProfileReport) -> Vec<f64>,
    unit: &str,
) -> FigureOutput {
    let mut text = format!("{title}\n(a point (x, y) means: x% of routines have {unit} >= y)\n");
    let mut csv_rows = Table::new(vec!["benchmark".into(), "share_pct".into(), unit.into()]);
    let benchmarks = representative();
    // One profiling run per benchmark, sharded over workers; curves are
    // reassembled in registry order so output stays deterministic.
    let curves = crate::driver::par_map(&benchmarks, |(name, params)| {
        let report = profile(name, params, InputPolicy::full());
        (*name, cdf_curve(value_of(&report)))
    });
    for (name, curve) in curves {
        let curve: Vec<CurvePoint> = curve;
        if curve.is_empty() {
            continue;
        }
        let head: Vec<String> = curve
            .iter()
            .take(4)
            .map(|p| format!("({:.0}%, {:.3})", p.share, p.value))
            .collect();
        text.push_str(&format!(
            "\n{name:14} {} routines; top of curve: {}\n",
            curve.len(),
            head.join(" ")
        ));
        for p in &curve {
            csv_rows.row(vec![
                name.to_owned(),
                format!("{:.2}", p.share),
                format!("{:.4}", p.value),
            ]);
        }
    }
    FigureOutput {
        id: id.into(),
        title: title.into(),
        text,
        csv: vec![(format!("{id}.csv"), csv_rows.to_csv())],
    }
}

/// Fig. 15: routine profile richness curves.
pub fn fig15() -> FigureOutput {
    curve_figure(
        "fig15",
        "Fig. 15 — routine profile richness of trms w.r.t. rms",
        richness_values,
        "richness",
    )
}

/// Fig. 16: input volume curves.
pub fn fig16() -> FigureOutput {
    curve_figure(
        "fig16",
        "Fig. 16 — input volume of trms w.r.t. rms",
        volume_values,
        "volume",
    )
}

/// Fig. 17: external vs thread-induced input per benchmark, sorted by
/// decreasing thread-induced share.
pub fn fig17() -> FigureOutput {
    let workloads: Vec<_> =
        aprof_workloads::all().into_iter().filter(|wl| wl.family != Family::Micro).collect();
    let mut rows: Vec<(String, f64, f64)> = crate::driver::par_map(&workloads, |wl| {
        let params = match wl.family {
            Family::Omp2012 => WorkloadParams::new(96, 4),
            Family::Parsec => WorkloadParams::new(160, 3),
            _ => WorkloadParams::new(160, 3),
        };
        let report = profile(wl.name, &params, InputPolicy::full());
        let (thread_pct, ext_pct) = report.global.induced_split();
        (wl.name.to_owned(), thread_pct, ext_pct)
    });
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut table =
        Table::new(vec!["benchmark".into(), "thread-induced %".into(), "external %".into()]);
    for (name, t, e) in &rows {
        table.row(vec![name.clone(), format!("{t:.1}"), format!("{e:.1}")]);
    }
    let text = format!(
        "Fig. 17 — external vs thread-induced input (% of all induced first-accesses)\n\n{}",
        table.render()
    );
    FigureOutput {
        id: "fig17".into(),
        title: "Fig. 17 — induced input split per benchmark".into(),
        text,
        csv: vec![("fig17.csv".into(), table.to_csv())],
    }
}

/// Fig. 18: thread-induced input per routine (distribution curves).
pub fn fig18() -> FigureOutput {
    curve_figure(
        "fig18",
        "Fig. 18 — thread-induced input on a routine basis (% of reads)",
        thread_induced_values,
        "thread_pct",
    )
}

/// Fig. 19: external input per routine (distribution curves).
pub fn fig19() -> FigureOutput {
    curve_figure(
        "fig19",
        "Fig. 19 — external input on a routine basis (% of reads)",
        external_values,
        "external_pct",
    )
}

/// The PLDI 2012-style validation table: profile classic algorithms once
/// and check the fitted growth model against the textbook complexity.
pub fn complexity() -> FigureOutput {
    use aprof_analysis::{fit_power_law, GrowthModel};
    let cases: [(&str, &str, u64, &str); 7] = [
        ("algo.insertion_sort", "insertion_sort", 160, "O(n^2)"),
        ("algo.merge_sort", "merge_sort", 512, "O(n log n)"),
        ("algo.binary_search", "binary_search", 2048, "O(n) in cells read (log n of the array)"),
        ("algo.linear_search", "linear_search", 200, "O(n)"),
        ("algo.matmul", "matmul", 192, "input^1.5 (n^3 work on 2n^2 cells)"),
        ("algo.bfs", "bfs", 160, "O(n)"),
        ("algo.hash_build", "hash_build", 160, "O(n)"),
    ];
    let mut table = Table::new(vec![
        "workload".into(),
        "routine".into(),
        "points".into(),
        "fitted".into(),
        "r2".into(),
        "power-law exp".into(),
        "expected".into(),
    ]);
    let rows = crate::driver::par_map(&cases, |&(wl, rtn, size, expected)| {
        let report = profile(wl, &WorkloadParams::new(size, 1), InputPolicy::full());
        let rr = routine(&report, rtn);
        let plot = CostPlot::from_report(rr, Metric::Trms, PlotKind::WorstCase);
        let (fitted, r2) = match fit_best(&plot.xy()) {
            Some(f) => (f.model.notation().to_owned(), format!("{:.4}", f.r2)),
            None => ("?".into(), "-".into()),
        };
        let _ = GrowthModel::Linear;
        let exp = match fit_power_law(&plot.xy()) {
            Some((e, _)) => format!("{e:.2}"),
            None => "-".into(),
        };
        vec![wl.into(), rtn.into(), plot.len().to_string(), fitted, r2, exp, expected.into()]
    });
    for row in rows {
        table.row(row);
    }
    let text = format!(
        "Complexity recovery — fitted growth of classic algorithms (worst-case cost vs trms)

{}",
        table.render()
    );
    FigureOutput {
        id: "complexity".into(),
        title: "Algorithmic-complexity recovery (PLDI 2012 validation)".into(),
        text,
        csv: vec![("complexity.csv".into(), table.to_csv())],
    }
}

/// The §3 synthetic scenario: the rms-based worst-case plot grows twice as
/// fast as the trms-based one.
pub fn synthetic() -> FigureOutput {
    let report = profile("half_induced", &WorkloadParams::new(48, 1), InputPolicy::full());
    let rr = routine(&report, "r");
    let out = rms_trms_panels(
        "synthetic",
        "§3 synthetic — activation i costs ~i with half plain / half induced accesses",
        rr,
        PlotKind::WorstCase,
    );
    let rms = CostPlot::from_report(rr, Metric::Rms, PlotKind::WorstCase);
    let trms = CostPlot::from_report(rr, Metric::Trms, PlotKind::WorstCase);
    let ratio = match (fit_best(&rms.xy()), fit_best(&trms.xy())) {
        (Some(a), Some(b)) if b.b > 0.0 => a.b / b.b,
        _ => f64::NAN,
    };
    FigureOutput {
        text: format!("{}\nslope(rms) / slope(trms) = {ratio:.2} (paper predicts 2.0)\n", out.text),
        ..out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_text_mentions_fits() {
        let out = fig4();
        assert!(out.text.contains("fit["), "{}", out.text);
        assert_eq!(out.csv.len(), 2);
    }

    #[test]
    fn fig7_richness_progression_monotone() {
        let out = fig7();
        assert!(out.text.contains("profile richness progression"));
    }

    #[test]
    fn fig17_covers_all_nonmicro_benchmarks() {
        let out = fig17();
        let expected = aprof_workloads::all()
            .iter()
            .filter(|w| w.family != Family::Micro)
            .count();
        // header + separator + expected rows
        let rows = out.text.lines().filter(|l| l.contains('.') || l.contains("mysqld")).count();
        assert!(rows >= expected, "{}", out.text);
    }

    #[test]
    fn synthetic_ratio_near_two() {
        let out = synthetic();
        let line = out
            .text
            .lines()
            .find(|l| l.starts_with("slope(rms)"))
            .expect("ratio line");
        let value: f64 = line
            .split('=')
            .nth(1)
            .unwrap()
            .trim()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((value - 2.0).abs() < 0.5, "ratio {value}");
    }
}
