//! Wire-format benchmark: the machinery behind `BENCH_wire.json`.
//!
//! Captures one deterministic workload run, then measures the chunked
//! binary trace format against the text format on the axes the design
//! cares about: encode throughput, sequential and parallel decode
//! throughput (events per second), and wire-vs-text size ratio.

use crate::driver::Json;
use aprof_trace::{textio, RecordingTool, Trace};
use aprof_wire::{WireOptions, WireReader, WireWriter};
use aprof_workloads::{by_name, WorkloadParams};
use std::time::Instant;

/// The reference workload captured for the measurement. `350.md` is the
/// molecular-dynamics analog: address-heavy and multi-threaded.
const WORKLOAD: &str = "350.md";

/// Chunk payload target for the benchmark. The 64 KiB default would hold
/// the whole benchmark trace in one chunk; 4 KiB yields enough chunks for
/// the parallel-decode measurement to mean something while staying in the
/// format's realistic operating range.
const BENCH_CHUNK_BYTES: usize = 4096;

fn bench_size() -> u64 {
    std::env::var("APROF_BENCH_SIZE").ok().and_then(|v| v.parse().ok()).unwrap_or(192)
}

/// Best-of-`n` wall-clock for `f`, in seconds.
fn best_of<F: FnMut()>(n: usize, mut f: F) -> f64 {
    (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
        .max(1e-9)
}

/// Generates the `BENCH_wire.json` report.
///
/// All phases re-use one captured event stream, so the encode, decode and
/// size numbers describe the same trace. Parallel decode shards whole
/// chunks over the [`driver`](crate::driver) worker pool via the trailing
/// chunk index — the access pattern a multi-threaded replayer would use.
pub fn wire_report(jobs: usize) -> Json {
    wire_report_sized(jobs, bench_size())
}

fn wire_report_sized(jobs: usize, size: u64) -> Json {
    let wl = by_name(WORKLOAD).expect("reference workload registered");
    let params = WorkloadParams::new(size, 4);
    let mut machine = wl.build(&params);
    let names = machine.program().routines().clone();
    let mut recorder = RecordingTool::new();
    machine.run_with(&mut recorder).expect("workload runs");

    let mut trace = Trace::new();
    for te in recorder.into_trace() {
        trace.push(te.thread, te.event);
    }
    let events = trace.len() as u64;

    let encode = || -> Vec<u8> {
        let mut writer =
            WireWriter::create(
                Vec::new(),
                &names,
                WireOptions { chunk_bytes: BENCH_CHUNK_BYTES, ..Default::default() },
            )
            .expect("header writes");
        for te in trace.events() {
            writer.push(te.thread, te.event).expect("event encodes");
        }
        writer.finish().expect("trace seals").0
    };
    let encode_secs = best_of(7, || {
        encode();
    });
    let wire = encode();
    let text = textio::to_text(&trace);

    let decode_secs = best_of(7, || {
        let reader = WireReader::new(&wire[..]).expect("valid file");
        let mut decoded = 0u64;
        for r in reader {
            r.expect("valid event");
            decoded += 1;
        }
        assert_eq!(decoded, events);
    });

    let index = aprof_wire::read_index(&mut std::io::Cursor::new(&wire)).expect("valid index");
    let chunks = index.entries.len();
    let par_decode_secs = best_of(7, || {
        // The production strategy: contiguous chunk ranges sharded over
        // scoped threads, one reader and one scratch buffer per worker,
        // with a sequential fallback below the parallelism break-even.
        let shards = aprof_wire::decode_chunks(|| Ok(std::io::Cursor::new(&wire)), &index, jobs)
            .expect("valid chunks");
        let decoded: u64 = shards.iter().map(|s| s.len() as u64).sum();
        assert_eq!(decoded, events);
    });

    let text_decode_secs = best_of(7, || {
        let parsed = textio::from_reader(text.as_bytes()).expect("valid text");
        assert_eq!(parsed.len() as u64, events);
    });

    let ev = events as f64;
    Json::Obj(vec![
        ("benchmark".into(), Json::Str("wire trace format".into())),
        ("workload".into(), Json::Str(WORKLOAD.into())),
        ("size".into(), Json::Int(size)),
        ("events".into(), Json::Int(events)),
        ("chunks".into(), Json::Int(chunks as u64)),
        ("chunk_bytes".into(), Json::Int(BENCH_CHUNK_BYTES as u64)),
        ("wire_bytes".into(), Json::Int(wire.len() as u64)),
        ("text_bytes".into(), Json::Int(text.len() as u64)),
        ("wire_vs_text_size_ratio".into(), Json::Num(wire.len() as f64 / text.len() as f64)),
        ("encode_events_per_sec".into(), Json::Num(ev / encode_secs)),
        ("decode_events_per_sec".into(), Json::Num(ev / decode_secs)),
        ("parallel_decode_jobs".into(), Json::Int(jobs.max(1) as u64)),
        ("parallel_decode_events_per_sec".into(), Json::Num(ev / par_decode_secs)),
        ("parallel_decode_speedup".into(), Json::Num(decode_secs / par_decode_secs)),
        ("parallel_decode_speedup_before_fix".into(), Json::Num(0.656456)),
        ("parallel_min_bytes".into(), Json::Int(aprof_wire::PARALLEL_MIN_BYTES)),
        ("text_decode_events_per_sec".into(), Json::Num(ev / text_decode_secs)),
        ("decode_vs_text_speedup".into(), Json::Num(text_decode_secs / decode_secs)),
        (
            "note".into(),
            Json::Str(
                "one captured run of the reference workload, best-of-7 timings; \
                 parallel decode uses decode_chunks: contiguous chunk ranges over \
                 scoped threads with per-worker scratch buffers, falling back to \
                 sequential below parallel_min_bytes of payload — the fix for the \
                 0.66x regression the old per-chunk thread-pool strategy measured \
                 on this small trace (kept as *_before_fix)"
                    .into(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_report_has_sane_fields() {
        let report = wire_report_sized(2, 48);
        let rendered = report.render();
        for key in [
            "wire_vs_text_size_ratio",
            "decode_events_per_sec",
            "parallel_decode_speedup",
            "chunks",
        ] {
            assert!(rendered.contains(key), "missing {key} in:\n{rendered}");
        }
        let Json::Obj(fields) = &report else { panic!("report is an object") };
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let Some(Json::Num(ratio)) = get("wire_vs_text_size_ratio") else {
            panic!("ratio missing")
        };
        assert!(*ratio > 0.0 && *ratio < 1.0, "wire should be smaller than text: {ratio}");
        let Some(Json::Int(events)) = get("events") else { panic!("events missing") };
        assert!(*events > 0);
    }
}
