//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all            # every experiment
//! repro table1 fig4    # selected experiments
//! repro --list         # available experiment ids
//! ```
//!
//! Rendered text goes to stdout; CSV data is written under `results/`.
//! Set `APROF_BENCH_SIZE` to scale the Table 1 / Fig. 14 workload size.

use aprof_bench::{run_experiment, EXPERIMENTS};
use std::io::Write as _;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let results_dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(results_dir) {
        eprintln!("cannot create results/: {e}");
        std::process::exit(1);
    }
    let mut failed = false;
    for id in selected {
        match run_experiment(id) {
            Ok(output) => {
                println!("==============================================================");
                println!("{}", output.title);
                println!("==============================================================");
                println!("{}", output.text);
                for (file, csv) in &output.csv {
                    let path = results_dir.join(file);
                    match std::fs::File::create(&path)
                        .and_then(|mut f| f.write_all(csv.as_bytes()))
                    {
                        Ok(()) => println!("  wrote {}", path.display()),
                        Err(e) => {
                            eprintln!("  failed to write {}: {e}", path.display());
                            failed = true;
                        }
                    }
                }
                println!();
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
