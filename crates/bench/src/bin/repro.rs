//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all                  # every experiment
//! repro table1 fig4          # selected experiments
//! repro --list               # available experiment ids
//! repro --jobs 8 all         # shard measurements over 8 worker threads
//! repro --bench-json         # write BENCH_parallel_driver.json and exit
//!   (alias: --bench-parallel-driver-json)
//! repro --bench-wire-json    # write BENCH_wire.json and exit
//! repro --bench-gate         # re-measure and compare dimensionless
//!                            # metrics against the committed BENCH_*.json
//!                            # baselines; exit 1 on a >20% regression
//! repro --bench-check-json   # write BENCH_check.json and exit
//! repro --bench-bound-json   # write BENCH_bound.json and exit
//! repro --bench-obs-json     # write BENCH_obs.json and exit
//! repro --faults             # run the fault-injection smoke and exit
//! repro --faults --fault-seed 7   # same, with a chosen fault seed
//! repro --corpus             # run the fuzzed-corpus differential smoke
//! repro --corpus --corpus-seed 9  # same, with a chosen corpus seed
//! repro --chaos              # run the network-chaos soak and exit
//! repro --chaos --chaos-seed 0xC4A0  # same, with a chosen chaos seed
//!   (APROF_CHAOS_CASES scales the stream count)
//! ```
//!
//! Rendered text goes to stdout; CSV data is written under `results/`.
//! Set `APROF_BENCH_SIZE` to scale the Table 1 / Fig. 14 workload size and
//! `APROF_JOBS` (or `--jobs`) to control the worker-thread count.

use aprof_bench::{driver, run_experiments, EXPERIMENTS};
use std::io::Write as _;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selected: Vec<&str> = Vec::new();
    let mut bench_json = false;
    let mut bench_wire_json = false;
    let mut bench_gate = false;
    let mut bench_check_json = false;
    let mut bench_bound_json = false;
    let mut bench_obs_json = false;
    let mut faults = false;
    let mut fault_seed = aprof_bench::DEFAULT_FAULT_SEED;
    let mut corpus = false;
    let mut corpus_seed = aprof_bench::DEFAULT_CORPUS_SEED;
    let mut chaos = false;
    let mut chaos_seed = aprof_bench::DEFAULT_CHAOS_SEED;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                for id in EXPERIMENTS {
                    println!("{id}");
                }
                return;
            }
            "--jobs" | "-j" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
                else {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                };
                driver::set_jobs(n);
            }
            "--faults" => faults = true,
            "--corpus" => corpus = true,
            "--chaos" => chaos = true,
            "--chaos-seed" => {
                let Some(n) = it.next().and_then(|v| {
                    let v = v.trim();
                    match v.strip_prefix("0x") {
                        Some(hex) => u64::from_str_radix(hex, 16).ok(),
                        None => v.parse::<u64>().ok(),
                    }
                }) else {
                    eprintln!("--chaos-seed needs an integer (decimal or 0x-hex)");
                    std::process::exit(2);
                };
                chaos_seed = n;
            }
            "--corpus-seed" => {
                let Some(n) = it.next().and_then(|v| {
                    let v = v.trim();
                    match v.strip_prefix("0x") {
                        Some(hex) => u64::from_str_radix(hex, 16).ok(),
                        None => v.parse::<u64>().ok(),
                    }
                }) else {
                    eprintln!("--corpus-seed needs an integer (decimal or 0x-hex)");
                    std::process::exit(2);
                };
                corpus_seed = n;
            }
            "--fault-seed" => {
                let Some(n) = it.next().and_then(|v| {
                    let v = v.trim();
                    match v.strip_prefix("0x") {
                        Some(hex) => u64::from_str_radix(hex, 16).ok(),
                        None => v.parse::<u64>().ok(),
                    }
                }) else {
                    eprintln!("--fault-seed needs an integer (decimal or 0x-hex)");
                    std::process::exit(2);
                };
                fault_seed = n;
            }
            "--bench-json" | "--bench-parallel-driver-json" => bench_json = true,
            "--bench-wire-json" => bench_wire_json = true,
            "--bench-gate" => bench_gate = true,
            "--bench-check-json" => bench_check_json = true,
            "--bench-bound-json" => bench_bound_json = true,
            "--bench-obs-json" => bench_obs_json = true,
            other => selected.push(other),
        }
    }
    if chaos {
        match aprof_bench::chaos_smoke(chaos_seed) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(e) => {
                eprintln!("chaos soak failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if corpus {
        match aprof_bench::corpus_smoke(corpus_seed) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(e) => {
                eprintln!("corpus smoke failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if faults {
        match aprof_bench::fault_smoke(fault_seed) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(e) => {
                eprintln!("fault smoke failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if bench_gate {
        let read = |p: &str| {
            std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("cannot read baseline {p}: {e}");
                std::process::exit(2);
            })
        };
        let driver_baseline = read("BENCH_parallel_driver.json");
        let wire_baseline = read("BENCH_wire.json");
        match aprof_bench::bench_gate(
            &driver_baseline,
            &wire_baseline,
            driver::jobs(),
            aprof_bench::DEFAULT_GATE_TOLERANCE,
        ) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(report) => {
                eprint!("{report}");
                std::process::exit(1);
            }
        }
    }
    let results_dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(results_dir) {
        eprintln!("cannot create results/: {e}");
        std::process::exit(1);
    }
    if bench_wire_json {
        let report = aprof_bench::wire_report(driver::jobs());
        let path = Path::new("BENCH_wire.json");
        match std::fs::write(path, report.render()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        return;
    }
    if bench_check_json {
        let report = aprof_bench::check_report();
        let path = Path::new("BENCH_check.json");
        match std::fs::write(path, report.render()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        return;
    }
    if bench_bound_json {
        let report = aprof_bench::bound_report();
        let path = Path::new("BENCH_bound.json");
        match std::fs::write(path, report.render()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        return;
    }
    if bench_obs_json {
        let report = aprof_bench::obs_report();
        let path = Path::new("BENCH_obs.json");
        match std::fs::write(path, report.render()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        return;
    }
    if bench_json {
        let report = aprof_bench::parallel_driver_report(driver::jobs());
        let path = Path::new("BENCH_parallel_driver.json");
        match std::fs::write(path, report.render()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        return;
    }
    if selected.is_empty() || selected.contains(&"all") {
        selected = EXPERIMENTS.to_vec();
    }
    let outputs = match run_experiments(&selected) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut failed = false;
    for output in outputs {
        println!("==============================================================");
        println!("{}", output.title);
        println!("==============================================================");
        println!("{}", output.text);
        for (file, csv) in &output.csv {
            let path = results_dir.join(file);
            match std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
                Ok(()) => println!("  wrote {}", path.display()),
                Err(e) => {
                    eprintln!("  failed to write {}: {e}", path.display());
                    failed = true;
                }
            }
        }
        println!();
    }
    if failed {
        std::process::exit(1);
    }
}
