//! Tool-overhead experiments: Table 1 and Fig. 14.

use crate::figures::FigureOutput;
use aprof_analysis::render::Table;
use aprof_core::{RmsProfiler, TrmsProfiler};
use aprof_tools::{CallgrindTool, HelgrindTool, MemcheckTool, NullTool};
use aprof_workloads::{family, Family, Workload, WorkloadParams};
use std::time::Instant;

/// The tools compared by Table 1 and Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolKind {
    /// Uninstrumented execution (the baseline).
    Native,
    /// Event dispatch into a do-nothing tool.
    Nulgrind,
    /// Definedness checking.
    Memcheck,
    /// Call-graph profiling.
    Callgrind,
    /// Happens-before race detection.
    Helgrind,
    /// The sequential rms profiler.
    AprofRms,
    /// The multithreaded trms profiler.
    AprofTrms,
}

impl ToolKind {
    /// All instrumented tools, in Table 1 column order.
    pub const INSTRUMENTED: [ToolKind; 6] = [
        ToolKind::Nulgrind,
        ToolKind::Memcheck,
        ToolKind::Callgrind,
        ToolKind::Helgrind,
        ToolKind::AprofRms,
        ToolKind::AprofTrms,
    ];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            ToolKind::Native => "native",
            ToolKind::Nulgrind => "nulgrind",
            ToolKind::Memcheck => "memcheck",
            ToolKind::Callgrind => "callgrind",
            ToolKind::Helgrind => "helgrind",
            ToolKind::AprofRms => "aprof-rms",
            ToolKind::AprofTrms => "aprof-trms",
        }
    }
}

/// One timed run of a workload under a tool.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Wall-clock seconds of the guest run.
    pub seconds: f64,
    /// Resident bytes of the tool's analysis state (0 for native/nulgrind).
    pub tool_bytes: u64,
    /// Resident bytes of guest data (the "native" memory footprint).
    pub guest_bytes: u64,
    /// Basic blocks executed (identical across tools — determinism check).
    pub blocks: u64,
}

impl Measurement {
    /// Space overhead factor relative to the guest footprint.
    pub fn space_factor(&self) -> f64 {
        if self.guest_bytes == 0 {
            return 1.0;
        }
        (self.guest_bytes + self.tool_bytes) as f64 / self.guest_bytes as f64
    }
}

/// Runs `workload` once under `kind`, timing the run and measuring the
/// tool's resident analysis state.
///
/// # Panics
///
/// Panics if the guest program fails (registry workloads never should).
pub fn measure(workload: &Workload, params: &WorkloadParams, kind: ToolKind) -> Measurement {
    let mut machine = workload.build(params);
    let start = Instant::now();
    let (outcome, tool_bytes) = match kind {
        ToolKind::Native => {
            let o = machine.run_native().expect("workload runs");
            (o, 0)
        }
        ToolKind::Nulgrind => {
            let mut t = NullTool::new();
            let o = machine.run_with(&mut t).expect("workload runs");
            (o, 0)
        }
        ToolKind::Memcheck => {
            let mut t = MemcheckTool::new();
            let o = machine.run_with(&mut t).expect("workload runs");
            let b = t.approx_bytes();
            (o, b)
        }
        ToolKind::Callgrind => {
            let mut t = CallgrindTool::new();
            let o = machine.run_with(&mut t).expect("workload runs");
            let b = t.approx_bytes();
            (o, b)
        }
        ToolKind::Helgrind => {
            let mut t = HelgrindTool::new();
            let o = machine.run_with(&mut t).expect("workload runs");
            let b = t.approx_bytes();
            (o, b)
        }
        ToolKind::AprofRms => {
            let mut t = RmsProfiler::new();
            let o = machine.run_with(&mut t).expect("workload runs");
            let b = t.shadow_bytes();
            (o, b)
        }
        ToolKind::AprofTrms => {
            let mut t = TrmsProfiler::new();
            let o = machine.run_with(&mut t).expect("workload runs");
            let b = t.shadow_bytes();
            (o, b)
        }
    };
    let seconds = start.elapsed().as_secs_f64();
    Measurement {
        seconds,
        tool_bytes,
        guest_bytes: machine.memory().resident_bytes() as u64,
        blocks: outcome.total_blocks,
    }
}

fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Table 1: per-benchmark slowdown and space overhead of every tool on the
/// OMP2012 suite with four worker threads, plus geometric means.
pub fn table1() -> FigureOutput {
    let params = WorkloadParams::new(table1_size(), 4);
    let suite = family(Family::Omp2012);
    let mut table = Table::new(
        std::iter::once("benchmark".to_owned())
            .chain(ToolKind::INSTRUMENTED.iter().map(|t| format!("{} x", t.label())))
            .chain(ToolKind::INSTRUMENTED.iter().map(|t| format!("{} mem", t.label())))
            .collect(),
    );
    let mut slowdowns = vec![Vec::new(); ToolKind::INSTRUMENTED.len()];
    let mut spaces = vec![Vec::new(); ToolKind::INSTRUMENTED.len()];
    // One job per benchmark row. The native baseline and every tool run of
    // a row execute on the same worker, so within-row slowdown ratios are
    // taken under identical conditions even when rows time concurrently.
    let rows = crate::driver::par_map(&suite, |wl| {
        // Best-of-3 native baseline to dampen timer noise.
        let native = (0..3)
            .map(|_| measure(wl, &params, ToolKind::Native).seconds)
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
        let per_tool: Vec<(f64, f64)> = ToolKind::INSTRUMENTED
            .iter()
            .map(|kind| {
                let m = measure(wl, &params, *kind);
                (m.seconds / native, m.space_factor())
            })
            .collect();
        (wl.name.to_owned(), per_tool)
    });
    for (name, per_tool) in rows {
        let mut row = vec![name];
        let mut mems = Vec::new();
        for (i, (slowdown, space)) in per_tool.into_iter().enumerate() {
            slowdowns[i].push(slowdown);
            spaces[i].push(space);
            row.push(format!("{slowdown:.1}"));
            mems.push(format!("{space:.2}"));
        }
        row.extend(mems);
        table.row(row);
    }
    let mut mean_row = vec!["geometric-mean".to_owned()];
    for s in &slowdowns {
        mean_row.push(format!("{:.1}", geometric_mean(s)));
    }
    for s in &spaces {
        mean_row.push(format!("{:.2}", geometric_mean(s)));
    }
    table.row(mean_row);
    let text = format!(
        "Table 1 — slowdown (x, vs native) and space overhead (factor vs guest data)\n\
         OMP2012 suite, size={}, 4 worker threads\n\n{}",
        table1_size(),
        table.render()
    );
    FigureOutput {
        id: "table1".into(),
        title: "Tool overhead comparison (Table 1)".into(),
        text,
        csv: vec![("table1.csv".into(), table.to_csv())],
    }
}

fn table1_size() -> u64 {
    std::env::var("APROF_BENCH_SIZE").ok().and_then(|s| s.parse().ok()).unwrap_or(192)
}

/// Fig. 14: time and space overhead relative to nulgrind as a function of
/// the number of worker threads.
pub fn fig14() -> FigureOutput {
    let threads = [1u32, 2, 4, 8, 16];
    let suite = family(Family::Omp2012);
    let kinds = [
        ToolKind::Memcheck,
        ToolKind::Callgrind,
        ToolKind::Helgrind,
        ToolKind::AprofRms,
        ToolKind::AprofTrms,
    ];
    let mut time_table = Table::new(
        std::iter::once("threads".to_owned())
            .chain(kinds.iter().map(|k| k.label().to_owned()))
            .collect(),
    );
    let mut space_table = Table::new(
        std::iter::once("threads".to_owned())
            .chain(kinds.iter().map(|k| k.label().to_owned()))
            .collect(),
    );
    // One job per (thread-count, tool) grid cell; each cell runs its
    // nulgrind baseline and tool measurement back-to-back on one worker so
    // the relative factors are taken under identical conditions. Cells are
    // reassembled in row-major order, keeping the tables deterministic.
    let grid: Vec<(u32, ToolKind)> =
        threads.iter().flat_map(|&t| kinds.iter().map(move |&k| (t, k))).collect();
    let cells = crate::driver::par_map(&grid, |&(t, kind)| {
        let params = WorkloadParams::new(table1_size() / 2, t);
        let mut rel_time = Vec::new();
        let mut rel_space = Vec::new();
        for wl in &suite {
            let nul = measure(wl, &params, ToolKind::Nulgrind);
            let m = measure(wl, &params, kind);
            rel_time.push(m.seconds / nul.seconds.max(1e-9));
            rel_space.push(m.space_factor() / nul.space_factor());
        }
        (
            format!("{:.2}", geometric_mean(&rel_time)),
            format!("{:.2}", geometric_mean(&rel_space)),
        )
    });
    for (row_idx, &t) in threads.iter().enumerate() {
        let mut time_row = vec![t.to_string()];
        let mut space_row = vec![t.to_string()];
        for (time_cell, space_cell) in &cells[row_idx * kinds.len()..(row_idx + 1) * kinds.len()] {
            time_row.push(time_cell.clone());
            space_row.push(space_cell.clone());
        }
        time_table.row(time_row);
        space_table.row(space_row);
    }
    let text = format!(
        "Fig. 14a — mean slowdown vs nulgrind, by worker threads\n\n{}\n\
         Fig. 14b — mean space overhead vs nulgrind, by worker threads\n\n{}",
        time_table.render(),
        space_table.render()
    );
    FigureOutput {
        id: "fig14".into(),
        title: "Overhead as a function of thread count (Fig. 14)".into(),
        text,
        csv: vec![
            ("fig14_time.csv".into(), time_table.to_csv()),
            ("fig14_space.csv".into(), space_table.to_csv()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn measure_is_deterministic_in_blocks() {
        let wl = aprof_workloads::by_name("350.md").unwrap();
        let params = WorkloadParams::new(32, 2);
        let a = measure(&wl, &params, ToolKind::Native);
        let b = measure(&wl, &params, ToolKind::AprofTrms);
        assert_eq!(a.blocks, b.blocks, "instrumentation must not perturb execution");
        assert!(b.tool_bytes > 0);
    }

    #[test]
    fn space_factor_sane() {
        let m = Measurement { seconds: 1.0, tool_bytes: 100, guest_bytes: 100, blocks: 1 };
        assert!((m.space_factor() - 2.0).abs() < 1e-9);
        let z = Measurement { seconds: 1.0, tool_bytes: 5, guest_bytes: 0, blocks: 1 };
        assert_eq!(z.space_factor(), 1.0);
    }
}
