//! Observability-overhead benchmark: the machinery behind `BENCH_obs.json`.
//!
//! Measures the cost of the `--observe` self-metrics layer by timing the
//! same deterministic profiled workload run with the layer off (baseline)
//! and on (observed), best-of-N each, and reporting the relative overhead.
//! The design target is < 5%: the observed path pays one local integer bump
//! per event inside the VM's `ObsSink` and touches the shared atomics only
//! at coarse boundaries (every 4096 basic blocks, per shadow allocation,
//! once at profiler finish).

use crate::driver::Json;
use aprof_core::TrmsProfiler;
use aprof_workloads::{by_name, WorkloadParams};
use std::time::Instant;

/// The reference workload. `350.md` is the molecular-dynamics analog:
/// address-heavy and multi-threaded, so the per-event hook cost dominates.
const WORKLOAD: &str = "350.md";

/// Timed runs per configuration; best-of filters scheduler noise.
const RUNS: usize = 5;

fn bench_size() -> u64 {
    std::env::var("APROF_BENCH_SIZE").ok().and_then(|v| v.parse().ok()).unwrap_or(192)
}

/// Best-of-`n` wall-clock for `f`, in seconds.
fn best_of<F: FnMut()>(n: usize, mut f: F) -> f64 {
    (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
        .max(1e-9)
}

/// One full profiled run of the reference workload; returns the activation
/// count so the two configurations can be checked for identical work.
fn profiled_run(size: u64) -> u64 {
    let wl = by_name(WORKLOAD).expect("reference workload registered");
    let params = WorkloadParams::new(size, 4);
    let mut machine = wl.build(&params);
    let names = machine.program().routines().clone();
    let mut profiler = TrmsProfiler::new();
    machine.run_with(&mut profiler).expect("workload runs");
    let (report, _) = profiler.into_report_and_cct(&names);
    report.global.activations
}

/// Generates the `BENCH_obs.json` report.
///
/// Both configurations run the identical deterministic workload under the
/// trms profiler; only the global observe switch differs. The observed
/// configuration also reports the event count the self-metrics layer saw,
/// as a sanity check that it was actually on.
pub fn obs_report() -> Json {
    obs_report_sized(bench_size())
}

fn obs_report_sized(size: u64) -> Json {
    // One warm-up run outside the timings: first touch pays one-time page
    // faults and lazy-init costs that belong to neither configuration.
    let activations = profiled_run(size);

    aprof_obs::disable();
    let baseline_secs = best_of(RUNS, || {
        assert_eq!(profiled_run(size), activations);
    });

    aprof_obs::reset();
    aprof_obs::enable();
    let observed_secs = best_of(RUNS, || {
        assert_eq!(profiled_run(size), activations);
    });
    let snap = aprof_obs::snapshot();
    aprof_obs::disable();
    aprof_obs::reset();

    let vm_events = snap.counter("vm.events").unwrap_or(0);
    let overhead = observed_secs / baseline_secs - 1.0;
    Json::Obj(vec![
        ("benchmark".into(), Json::Str("observability overhead".into())),
        ("workload".into(), Json::Str(WORKLOAD.into())),
        ("size".into(), Json::Int(size)),
        ("runs_per_config".into(), Json::Int(RUNS as u64)),
        ("activations".into(), Json::Int(activations)),
        ("observed_vm_events".into(), Json::Int(vm_events)),
        ("baseline_secs".into(), Json::Num(baseline_secs)),
        ("observed_secs".into(), Json::Num(observed_secs)),
        ("overhead_percent".into(), Json::Num(overhead * 100.0)),
        ("target_percent".into(), Json::Num(5.0)),
        ("within_target".into(), Json::Bool(overhead < 0.05)),
        (
            "note".into(),
            Json::Str(
                "best-of-N wall-clock of identical deterministic profiled runs \
                 with the self-metrics layer off vs on; negative overhead means \
                 the difference is below timing noise"
                    .into(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_report_has_sane_fields() {
        let report = obs_report_sized(48);
        let rendered = report.render();
        for key in ["overhead_percent", "baseline_secs", "observed_vm_events", "within_target"] {
            assert!(rendered.contains(key), "missing {key} in:\n{rendered}");
        }
        let Json::Obj(fields) = &report else { panic!("report is an object") };
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let Some(Json::Int(events)) = get("observed_vm_events") else {
            panic!("observed_vm_events missing")
        };
        assert!(*events > 0, "self-metrics layer saw no events while enabled");
        let Some(Json::Num(baseline)) = get("baseline_secs") else { panic!("baseline missing") };
        assert!(*baseline > 0.0);
    }
}
