//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§6) on the `aprof-rs` substrate.
//!
//! Each `fig*`/`table1` function runs the relevant workloads under the
//! relevant tools and returns a [`FigureOutput`]: rendered text (tables and
//! ASCII plots) plus CSV files. The `repro` binary dispatches to them and
//! writes the CSVs under `results/`.
//!
//! Absolute numbers differ from the paper (the substrate is a deterministic
//! guest interpreter, not Valgrind on a 32-core Opteron); what is expected
//! to reproduce is every *shape*: tool ordering in Table 1, the rms-vs-trms
//! plot contrasts of Figs. 4–8, the input-attribution splits of Figs. 9 and
//! 17, the scaling trends of Fig. 14, and the distribution curves of
//! Figs. 15, 16, 18 and 19. `EXPERIMENTS.md` records paper-vs-measured for
//! each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound_bench;
pub mod check_bench;
pub mod corpus_bench;
pub mod driver;
pub mod chaos_bench;
pub mod faults_bench;
pub mod figures;
pub mod gate;
pub mod obs_bench;
pub mod suite;
pub mod wire_bench;

pub use bound_bench::bound_report;
pub use check_bench::check_report;
pub use corpus_bench::{corpus_smoke, corpus_smoke_with, DEFAULT_CORPUS_SEED};
pub use driver::{
    default_jobs, jobs, parallel_driver_report, run_indexed_isolated, set_jobs, FailureCause,
    JobOutcome, RetryPolicy,
};
pub use chaos_bench::{chaos_smoke, chaos_smoke_with, DEFAULT_CHAOS_SEED};
pub use faults_bench::{fault_smoke, DEFAULT_FAULT_SEED};
pub use figures::{clear_profile_cache, FigureOutput};
pub use gate::{bench_gate, DEFAULT_GATE_TOLERANCE};
pub use obs_bench::obs_report;
pub use suite::{measure, Measurement, ToolKind};
pub use wire_bench::wire_report;

/// All experiment identifiers known to the harness, in presentation order.
pub const EXPERIMENTS: &[&str] = &[
    "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19", "synthetic", "complexity",
];

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns an error string for unknown ids or failing guest runs.
pub fn run_experiment(id: &str) -> Result<FigureOutput, String> {
    match id {
        "table1" => Ok(suite::table1()),
        "fig4" => Ok(figures::fig4()),
        "fig5" => Ok(figures::fig5()),
        "fig6" => Ok(figures::fig6()),
        "fig7" => Ok(figures::fig7()),
        "fig8" => Ok(figures::fig8()),
        "fig9" => Ok(figures::fig9()),
        "fig14" => Ok(suite::fig14()),
        "fig15" => Ok(figures::fig15()),
        "fig16" => Ok(figures::fig16()),
        "fig17" => Ok(figures::fig17()),
        "fig18" => Ok(figures::fig18()),
        "fig19" => Ok(figures::fig19()),
        "synthetic" => Ok(figures::synthetic()),
        "complexity" => Ok(figures::complexity()),
        other => Err(format!("unknown experiment `{other}` (known: {EXPERIMENTS:?})")),
    }
}

/// Runs several experiments, sharding them (and their internal measurement
/// loops) across the [`driver`]'s worker pool, and returns the outputs in
/// the order the ids were given.
///
/// Used by both the `repro` binary and `aprof-cli bench`, so the two entry
/// points behave identically for a given `--jobs` setting.
///
/// # Errors
///
/// Returns the first error (unknown id or failing guest run) in id order.
pub fn run_experiments(ids: &[&str]) -> Result<Vec<FigureOutput>, String> {
    let results = driver::par_map(ids, |id| run_experiment(id));
    results.into_iter().collect()
}
