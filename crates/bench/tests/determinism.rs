//! Parallel-driver determinism: sharding the figure suite over many worker
//! threads must produce byte-identical rendered text and CSV output to a
//! fully sequential run. Timing-based experiments (table1, fig14) embed
//! wall-clock measurements and are excluded by construction.

use aprof_bench::{clear_profile_cache, run_experiments, set_jobs, FigureOutput, EXPERIMENTS};

fn deterministic_ids() -> Vec<&'static str> {
    EXPERIMENTS.iter().copied().filter(|id| *id != "table1" && *id != "fig14").collect()
}

fn render(outputs: &[FigureOutput]) -> String {
    let mut s = String::new();
    for o in outputs {
        s.push_str(&o.id);
        s.push('\n');
        s.push_str(&o.title);
        s.push('\n');
        s.push_str(&o.text);
        for (file, csv) in &o.csv {
            s.push_str(file);
            s.push('\n');
            s.push_str(csv);
        }
    }
    s
}

#[test]
fn figure_output_is_identical_across_job_counts() {
    let ids = deterministic_ids();
    let mut runs = Vec::new();
    for jobs in [1usize, 8] {
        clear_profile_cache();
        set_jobs(jobs);
        let outputs = run_experiments(&ids).expect("experiments run");
        runs.push((jobs, render(&outputs)));
    }
    set_jobs(0);
    let (_, baseline) = &runs[0];
    for (jobs, output) in &runs[1..] {
        assert_eq!(
            output, baseline,
            "figure/CSV output differs between --jobs 1 and --jobs {jobs}"
        );
    }
}
