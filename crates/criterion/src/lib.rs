//! A vendored, dependency-free benchmark harness.
//!
//! The build environment has no access to crates.io, so the real
//! `criterion` crate cannot be fetched. This crate keeps the workspace's
//! `benches/` sources compiling and running offline by implementing the
//! subset of the criterion API they use: benchmark groups, throughput
//! annotation, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Statistics are intentionally simple: each benchmark runs a short warm-up
//! followed by timed batches until the configured measurement time elapses,
//! then prints the per-iteration mean, the fastest batch, and (when a
//! throughput was declared) the element rate. There is no HTML report and
//! no outlier analysis — this is a smoke-and-trend harness, not a
//! statistical one.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
///
/// `std::hint::black_box` is stable and fits criterion's contract.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed batches to collect (compatibility knob).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the timed batches.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup { criterion: self, throughput: None }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl BenchId, mut f: F) {
        run_one(self, &id.render(), None, &mut f);
    }
}

/// Throughput annotation for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl BenchId, mut f: F) {
        run_one(self.criterion, &id.render(), self.throughput, &mut f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark: a plain string or a `BenchmarkId`.
pub trait BenchId {
    /// The printed label.
    fn render(&self) -> String;
}

impl BenchId for &str {
    fn render(&self) -> String {
        (*self).to_owned()
    }
}

impl BenchId for String {
    fn render(&self) -> String {
        self.clone()
    }
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }
}

impl BenchId for BenchmarkId {
    fn render(&self) -> String {
        self.label.clone()
    }
}

/// Passed to the benchmark closure; runs the measured code.
pub struct Bencher {
    mode: Mode,
    iters_done: u64,
    elapsed: Duration,
}

enum Mode {
    /// Run the closure until the deadline passes, counting iterations.
    Timed(Instant),
    /// Run exactly once (warm-up probe).
    Probe,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Probe => {
                let start = Instant::now();
                black_box(routine());
                self.elapsed += start.elapsed();
                self.iters_done += 1;
            }
            Mode::Timed(deadline) => loop {
                let start = Instant::now();
                black_box(routine());
                self.elapsed += start.elapsed();
                self.iters_done += 1;
                if Instant::now() >= deadline {
                    break;
                }
            },
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    config: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up: repeated single-shot probes until the warm-up budget is used.
    let warm_deadline = Instant::now() + config.warm_up_time;
    let mut probe_time = Duration::ZERO;
    let mut probes = 0u64;
    while Instant::now() < warm_deadline {
        let mut b = Bencher { mode: Mode::Probe, iters_done: 0, elapsed: Duration::ZERO };
        f(&mut b);
        probe_time += b.elapsed;
        probes += b.iters_done;
        if b.iters_done == 0 {
            break; // closure never called iter(); nothing to measure
        }
    }
    if probes == 0 {
        println!("  {label:40} (no iterations)");
        return;
    }
    // Measurement: sample_size batches sharing the measurement-time budget.
    let batch_budget = config.measurement_time / config.sample_size as u32;
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let mut best = Duration::MAX;
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            mode: Mode::Timed(Instant::now() + batch_budget),
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters_done == 0 {
            continue;
        }
        let per_iter = b.elapsed / b.iters_done as u32;
        best = best.min(per_iter);
        total += b.elapsed;
        iters += b.iters_done;
    }
    if iters == 0 {
        println!("  {label:40} (no iterations)");
        return;
    }
    let mean = total / iters as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("  {label:40} mean {mean:>12.3?}  best {best:>12.3?}  ({iters} iters){rate}");
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("f", "p"), |b| {
            b.iter(|| black_box(1 + 1))
        });
        group.finish();
    }

    #[test]
    fn empty_bench_does_not_hang() {
        let mut c = quick();
        c.bench_function("noop", |_b| {});
    }
}
