//! A helgrind analog: vector-clock happens-before race detection.

use aprof_trace::{Addr, ThreadId, Tool};
use std::collections::{BTreeSet, HashMap};

/// A vector clock over thread ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn set(&mut self, t: usize, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }
}

/// Last-access metadata of one memory cell.
#[derive(Debug, Clone, Default)]
struct CellState {
    /// Epoch of the last write, with its thread.
    write: Option<(usize, u64)>,
    /// Epoch of the last read per thread (cleared on ordered writes).
    reads: Vec<(usize, u64)>,
}

/// A data-race detector in the spirit of helgrind: thread, lock and
/// semaphore vector clocks establish a happens-before order from the guest's
/// synchronization operations (spawn/join, mutexes, semaphores); memory
/// accesses not ordered by it are reported as races.
///
/// Like the real helgrind this is the most expensive comparator: it shadows
/// every access *and* processes synchronization, which is why it tops the
/// slowdown columns of Table 1.
///
/// # Example
///
/// ```
/// use aprof_tools::HelgrindTool;
/// use aprof_trace::{Addr, ThreadId, Tool};
/// let (a, b) = (ThreadId::new(0), ThreadId::new(1));
/// let mut hg = HelgrindTool::new();
/// hg.spawned(a, b);
/// hg.write(a, Addr::new(1)); // after spawn: ordered with b's accesses? No —
/// hg.write(b, Addr::new(1)); // a's write follows the spawn, so this races
/// assert_eq!(hg.report().races, 1);
/// ```
#[derive(Debug, Default)]
pub struct HelgrindTool {
    clocks: Vec<VClock>,
    epochs: Vec<u64>,
    exited: HashMap<usize, VClock>,
    locks: HashMap<i64, VClock>,
    sems: HashMap<i64, VClock>,
    cells: HashMap<u64, CellState>,
    races: u64,
    racy_cells: BTreeSet<u64>,
}

impl HelgrindTool {
    /// Creates the detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The findings so far.
    pub fn report(&self) -> RaceReport {
        RaceReport { races: self.races, racy_cells: self.racy_cells.len() }
    }

    /// The distinct guest addresses on which a race was reported, in
    /// ascending order. Used by the static verifier's cross-check tests,
    /// which assert that every dynamically observed race falls inside the
    /// static race-candidate set.
    pub fn racy_addresses(&self) -> impl Iterator<Item = u64> + '_ {
        self.racy_cells.iter().copied()
    }

    /// Approximate resident bytes of the detector's per-cell and per-thread
    /// state (for the space-overhead comparisons of Table 1 / Fig. 14b).
    pub fn approx_bytes(&self) -> u64 {
        let per_cell = std::mem::size_of::<CellState>() + 16;
        let clocks: usize = self.clocks.iter().map(|c| c.0.len() * 8 + 24).sum();
        (self.cells.len() * per_cell + clocks) as u64
    }

    fn ensure(&mut self, t: usize) {
        if self.clocks.len() <= t {
            self.clocks.resize_with(t + 1, VClock::default);
            self.epochs.resize(t + 1, 0);
        }
        if self.epochs[t] == 0 {
            // First sight of the thread: give it its own epoch 1.
            self.epochs[t] = 1;
            let e = self.epochs[t];
            self.clocks[t].set(t, e);
        }
    }

    fn inc(&mut self, t: usize) {
        self.epochs[t] += 1;
        let e = self.epochs[t];
        self.clocks[t].set(t, e);
    }

    /// Does the event `(thread u, epoch e)` happen-before thread `t`'s now?
    fn ordered(&self, u: usize, e: u64, t: usize) -> bool {
        u == t || self.clocks[t].get(u) >= e
    }

    fn record_race(&mut self, addr: Addr) {
        self.races += 1;
        self.racy_cells.insert(addr.raw());
    }

    fn on_access(&mut self, thread: ThreadId, addr: Addr, is_write: bool) {
        let t = thread.index();
        self.ensure(t);
        let epoch = self.epochs[t];
        // Take the cell out to appease the borrow checker cheaply.
        let mut cell = self.cells.remove(&addr.raw()).unwrap_or_default();
        let mut racy = false;
        if let Some((wt, we)) = cell.write {
            if !self.ordered(wt, we, t) {
                racy = true;
            }
        }
        if is_write {
            for &(rt, re) in &cell.reads {
                if !self.ordered(rt, re, t) {
                    racy = true;
                }
            }
            cell.write = Some((t, epoch));
            cell.reads.clear();
        } else {
            match cell.reads.iter_mut().find(|(rt, _)| *rt == t) {
                Some(slot) => slot.1 = epoch,
                None => cell.reads.push((t, epoch)),
            }
        }
        if racy {
            self.record_race(addr);
        }
        self.cells.insert(addr.raw(), cell);
    }
}

impl Tool for HelgrindTool {
    fn name(&self) -> &'static str {
        "helgrind"
    }

    fn read(&mut self, thread: ThreadId, addr: Addr) {
        self.on_access(thread, addr, false);
    }

    fn write(&mut self, thread: ThreadId, addr: Addr) {
        self.on_access(thread, addr, true);
    }

    fn spawned(&mut self, parent: ThreadId, child: ThreadId) {
        let (p, c) = (parent.index(), child.index());
        self.ensure(p);
        self.ensure(c);
        // Everything the parent did so far happens-before the child.
        let pc = self.clocks[p].clone();
        self.clocks[c].join(&pc);
        self.inc(p);
    }

    fn joined(&mut self, thread: ThreadId, target: ThreadId) {
        let (t, u) = (thread.index(), target.index());
        self.ensure(t);
        if let Some(exit) = self.exited.get(&u).cloned() {
            self.clocks[t].join(&exit);
        } else if u < self.clocks.len() {
            let uc = self.clocks[u].clone();
            self.clocks[t].join(&uc);
        }
    }

    fn thread_exit(&mut self, thread: ThreadId) {
        let t = thread.index();
        self.ensure(t);
        self.exited.insert(t, self.clocks[t].clone());
    }

    fn lock_acquired(&mut self, thread: ThreadId, lock: i64) {
        let t = thread.index();
        self.ensure(t);
        if let Some(lc) = self.locks.get(&lock).cloned() {
            self.clocks[t].join(&lc);
        }
    }

    fn lock_released(&mut self, thread: ThreadId, lock: i64) {
        let t = thread.index();
        self.ensure(t);
        let entry = self.locks.entry(lock).or_default();
        entry.join(&self.clocks[t]);
        self.inc(t);
    }

    fn sem_posted(&mut self, thread: ThreadId, sem: i64) {
        let t = thread.index();
        self.ensure(t);
        let entry = self.sems.entry(sem).or_default();
        entry.join(&self.clocks[t]);
        self.inc(t);
    }

    fn sem_waited(&mut self, thread: ThreadId, sem: i64) {
        let t = thread.index();
        self.ensure(t);
        if let Some(sc) = self.sems.get(&sem).cloned() {
            self.clocks[t].join(&sc);
        }
    }
}

/// Findings of a [`HelgrindTool`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceReport {
    /// Racy accesses detected.
    pub races: u64,
    /// Distinct memory cells involved in races.
    pub racy_cells: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: Addr = Addr::new(0x10);

    #[test]
    fn unsynchronized_write_write_races() {
        let (a, b) = (ThreadId::new(0), ThreadId::new(1));
        let mut hg = HelgrindTool::new();
        hg.write(a, X);
        hg.write(b, X);
        assert_eq!(hg.report().races, 1);
    }

    #[test]
    fn spawn_orders_parent_before_child() {
        let (a, b) = (ThreadId::new(0), ThreadId::new(1));
        let mut hg = HelgrindTool::new();
        hg.write(a, X);
        hg.spawned(a, b);
        hg.write(b, X);
        assert_eq!(hg.report().races, 0, "pre-spawn writes are ordered");
    }

    #[test]
    fn join_orders_child_before_parent() {
        let (a, b) = (ThreadId::new(0), ThreadId::new(1));
        let mut hg = HelgrindTool::new();
        hg.spawned(a, b);
        hg.write(b, X);
        hg.thread_exit(b);
        hg.joined(a, b);
        hg.write(a, X);
        assert_eq!(hg.report().races, 0);
    }

    #[test]
    fn lock_protects_accesses() {
        let (a, b) = (ThreadId::new(0), ThreadId::new(1));
        let mut hg = HelgrindTool::new();
        hg.spawned(a, b);
        hg.lock_acquired(a, 7);
        hg.write(a, X);
        hg.lock_released(a, 7);
        hg.lock_acquired(b, 7);
        hg.write(b, X);
        hg.lock_released(b, 7);
        assert_eq!(hg.report().races, 0);
    }

    #[test]
    fn different_locks_do_not_protect() {
        let (a, b) = (ThreadId::new(0), ThreadId::new(1));
        let mut hg = HelgrindTool::new();
        hg.spawned(a, b);
        hg.lock_acquired(a, 7);
        hg.write(a, X);
        hg.lock_released(a, 7);
        hg.lock_acquired(b, 8);
        hg.write(b, X);
        hg.lock_released(b, 8);
        assert_eq!(hg.report().races, 1);
    }

    #[test]
    fn semaphore_orders_producer_consumer() {
        let (p, c) = (ThreadId::new(0), ThreadId::new(1));
        let mut hg = HelgrindTool::new();
        hg.spawned(p, c);
        hg.write(p, X);
        hg.sem_posted(p, 1);
        hg.sem_waited(c, 1);
        hg.read(c, X);
        assert_eq!(hg.report().races, 0);
    }

    #[test]
    fn read_read_never_races() {
        let (a, b) = (ThreadId::new(0), ThreadId::new(1));
        let mut hg = HelgrindTool::new();
        hg.read(a, X);
        hg.read(b, X);
        assert_eq!(hg.report().races, 0);
    }

    #[test]
    fn racy_cells_deduplicate() {
        let (a, b) = (ThreadId::new(0), ThreadId::new(1));
        let mut hg = HelgrindTool::new();
        hg.write(a, X);
        hg.write(b, X);
        hg.write(a, X);
        let r = hg.report();
        assert!(r.races >= 2);
        assert_eq!(r.racy_cells, 1);
    }
}
