//! A memcheck analog: definedness tracking in shadow memory.

use aprof_shadow::ShadowMemory;
use aprof_trace::{Addr, ThreadId, Tool};
use std::collections::BTreeSet;

/// Definedness states of a shadow cell.
const UNDEFINED: u8 = 0;
const DEFINED: u8 = 1;

/// Tracks, for every guest memory cell, whether it has ever been written
/// (by a thread or by the kernel), and reports reads of undefined cells —
/// the word-granular analog of memcheck's undefined-value errors.
///
/// Like the real memcheck the tool shadows every memory access but does not
/// trace function calls and returns, which is why the paper finds it faster
/// than `aprof` despite its heavier per-access work (§6.2).
///
/// # Example
///
/// ```
/// use aprof_tools::MemcheckTool;
/// use aprof_trace::{Addr, ThreadId, Tool};
/// let mut mc = MemcheckTool::new();
/// mc.read(ThreadId::MAIN, Addr::new(100));   // read-before-write
/// mc.write(ThreadId::MAIN, Addr::new(100));
/// mc.read(ThreadId::MAIN, Addr::new(100));   // fine now
/// assert_eq!(mc.report().undefined_reads, 1);
/// ```
#[derive(Debug, Default)]
pub struct MemcheckTool {
    shadow: ShadowMemory<u8>,
    undefined_reads: u64,
    distinct: BTreeSet<u64>,
}

impl MemcheckTool {
    /// Creates the tool with all memory undefined.
    pub fn new() -> Self {
        Self::default()
    }

    /// Approximate resident bytes of the definedness shadow (Table 1 space
    /// accounting).
    pub fn approx_bytes(&self) -> u64 {
        self.shadow.stats().bytes as u64 + self.distinct.len() as u64 * 16
    }

    /// The findings so far.
    pub fn report(&self) -> MemcheckReport {
        MemcheckReport {
            undefined_reads: self.undefined_reads,
            distinct_cells: self.distinct.len(),
            shadow_bytes: self.shadow.stats().bytes as u64,
        }
    }

    fn on_read(&mut self, addr: Addr) {
        if self.shadow.get(addr) == UNDEFINED {
            self.undefined_reads += 1;
            self.distinct.insert(addr.raw());
        }
    }

    fn on_write(&mut self, addr: Addr) {
        self.shadow.set(addr, DEFINED);
    }
}

impl Tool for MemcheckTool {
    fn name(&self) -> &'static str {
        "memcheck"
    }

    fn read(&mut self, _thread: ThreadId, addr: Addr) {
        self.on_read(addr);
    }

    fn write(&mut self, _thread: ThreadId, addr: Addr) {
        self.on_write(addr);
    }

    fn kernel_read(&mut self, _thread: ThreadId, addr: Addr) {
        self.on_read(addr);
    }

    fn kernel_write(&mut self, _thread: ThreadId, addr: Addr) {
        self.on_write(addr);
    }
}

/// Findings of a [`MemcheckTool`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemcheckReport {
    /// Total reads of cells never written before.
    pub undefined_reads: u64,
    /// Number of distinct offending cells.
    pub distinct_cells: usize,
    /// Resident shadow-memory bytes.
    pub shadow_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_write_defines() {
        let mut mc = MemcheckTool::new();
        mc.kernel_write(ThreadId::MAIN, Addr::new(5));
        mc.read(ThreadId::MAIN, Addr::new(5));
        assert_eq!(mc.report().undefined_reads, 0);
    }

    #[test]
    fn kernel_read_checks() {
        let mut mc = MemcheckTool::new();
        mc.kernel_read(ThreadId::MAIN, Addr::new(6));
        assert_eq!(mc.report().undefined_reads, 1);
        assert_eq!(mc.report().distinct_cells, 1);
    }

    #[test]
    fn distinct_cells_deduplicate() {
        let mut mc = MemcheckTool::new();
        for _ in 0..3 {
            mc.read(ThreadId::MAIN, Addr::new(9));
        }
        let r = mc.report();
        assert_eq!(r.undefined_reads, 3);
        assert_eq!(r.distinct_cells, 1);
        assert!(r.shadow_bytes == 0, "reads alone allocate no shadow");
    }
}
