//! Comparator analysis tools.
//!
//! The paper evaluates `aprof-trms` against four reference Valgrind tools
//! that share the same instrumentation substrate (Table 1): `nulgrind`
//! (no analysis), `memcheck` (memory-error detection), `callgrind`
//! (call-graph profiling) and `helgrind` (data-race detection). This crate
//! re-implements each as an [`aprof_trace::Tool`] over the guest machine's
//! event stream, so the relative time/space overhead comparison of Table 1
//! and Fig. 14 can be reproduced apples-to-apples on our substrate:
//!
//! * [`NullTool`] (re-exported from `aprof-trace`) — the `nulgrind` analog:
//!   pays only event-dispatch cost.
//! * [`MemcheckTool`] — tracks cell *definedness* in shadow memory and
//!   reports reads of never-written cells, the closest word-granular analog
//!   of memcheck's undefined-value tracking. Like memcheck it observes
//!   memory accesses but not calls/returns.
//! * [`CallgrindTool`] — builds the dynamic call graph with inclusive and
//!   exclusive basic-block costs per routine. Like callgrind it observes
//!   calls/returns and block costs but not individual memory accesses.
//! * [`HelgrindTool`] — a vector-clock happens-before race detector over
//!   the machine's synchronization callbacks (spawn/join, locks,
//!   semaphores). Like helgrind it is the only comparator that analyses
//!   concurrency, and the most expensive of the set.
//!
//! # Example
//!
//! ```
//! use aprof_tools::CallgrindTool;
//! use aprof_trace::{RoutineTable, ThreadId, Tool};
//!
//! let mut names = RoutineTable::new();
//! let main = names.intern("main");
//! let t0 = ThreadId::new(0);
//!
//! let mut tool = CallgrindTool::new();
//! tool.call(t0, main);
//! tool.basic_block(t0, 5);
//! tool.ret(t0, main);
//!
//! let report = tool.into_report(&names);
//! let (name, costs) = report.hottest()[0];
//! assert_eq!((name, costs.calls, costs.inclusive), ("main", 1, 5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod callgrind;
mod helgrind;
mod memcheck;

pub use aprof_trace::NullTool;
pub use callgrind::{CallEdge, CallgrindReport, CallgrindTool, RoutineCosts};
pub use helgrind::{HelgrindTool, RaceReport};
pub use memcheck::{MemcheckReport, MemcheckTool};
