//! A callgrind analog: call-graph profiling with inclusive/exclusive costs.

use aprof_trace::{RoutineId, RoutineTable, ThreadId, Tool};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
struct OpenFrame {
    routine: RoutineId,
    cost_at_entry: u64,
}

#[derive(Debug, Default)]
struct ThreadState {
    stack: Vec<OpenFrame>,
    cost: u64,
}

/// Aggregate costs of one routine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutineCosts {
    /// Completed activations.
    pub calls: u64,
    /// Basic blocks executed while the routine was topmost.
    pub exclusive: u64,
    /// Basic blocks executed between entry and return (self + descendants).
    pub inclusive: u64,
}

/// One edge of the dynamic call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallEdge {
    /// Caller routine (`None` for thread entry activations).
    pub caller: Option<u32>,
    /// Callee routine.
    pub callee: u32,
    /// Number of calls along this edge.
    pub count: u64,
}

/// A call-graph profiler in the spirit of callgrind: per-routine inclusive
/// and exclusive basic-block costs, call counts, and caller→callee edges.
///
/// Like the real callgrind it instruments calls/returns and block costs but
/// not individual memory accesses — the cheap-middle ground of Table 1.
///
/// # Example
///
/// ```
/// use aprof_tools::CallgrindTool;
/// use aprof_trace::{RoutineId, ThreadId, Tool};
/// let mut cg = CallgrindTool::new();
/// let t = ThreadId::MAIN;
/// cg.call(t, RoutineId::new(0));
/// cg.basic_block(t, 3);
/// cg.call(t, RoutineId::new(1));
/// cg.basic_block(t, 5);
/// cg.ret(t, RoutineId::new(1));
/// cg.ret(t, RoutineId::new(0));
/// let names = {
///     let mut n = aprof_trace::RoutineTable::new();
///     n.intern("main");
///     n.intern("helper");
///     n
/// };
/// let report = cg.into_report(&names);
/// assert_eq!(report.costs["main"].inclusive, 8);
/// assert_eq!(report.costs["main"].exclusive, 3);
/// ```
#[derive(Debug, Default)]
pub struct CallgrindTool {
    threads: Vec<ThreadState>,
    costs: BTreeMap<RoutineId, RoutineCosts>,
    edges: BTreeMap<(Option<RoutineId>, RoutineId), u64>,
}

impl CallgrindTool {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    fn state(&mut self, thread: ThreadId) -> &mut ThreadState {
        let idx = thread.index();
        if idx >= self.threads.len() {
            self.threads.resize_with(idx + 1, ThreadState::default);
        }
        &mut self.threads[idx]
    }

    /// Approximate resident bytes of the profiler state (Table 1 space
    /// accounting).
    pub fn approx_bytes(&self) -> u64 {
        (self.costs.len() * 64 + self.edges.len() * 48) as u64
    }

    /// Finalizes (unwinding pending activations) and assembles the report.
    pub fn into_report(mut self, names: &RoutineTable) -> CallgrindReport {
        self.finish();
        let mut costs = BTreeMap::new();
        for (id, c) in &self.costs {
            let name = names
                .get_name(*id)
                .map(str::to_owned)
                .unwrap_or_else(|| id.to_string());
            costs.insert(name, *c);
        }
        let edges = self
            .edges
            .iter()
            .map(|((caller, callee), &count)| CallEdge {
                caller: caller.map(|c| c.index() as u32),
                callee: callee.index() as u32,
                count,
            })
            .collect();
        CallgrindReport { costs, edges }
    }
}

impl Tool for CallgrindTool {
    fn name(&self) -> &'static str {
        "callgrind"
    }

    fn basic_block(&mut self, thread: ThreadId, cost: u64) {
        let st = self.state(thread);
        st.cost += cost;
        if let Some(top) = st.stack.last() {
            let routine = top.routine;
            self.costs.entry(routine).or_default().exclusive += cost;
        }
    }

    fn call(&mut self, thread: ThreadId, routine: RoutineId) {
        let st = self.state(thread);
        let caller = st.stack.last().map(|f| f.routine);
        let cost_at_entry = st.cost;
        st.stack.push(OpenFrame { routine, cost_at_entry });
        *self.edges.entry((caller, routine)).or_default() += 1;
    }

    fn ret(&mut self, thread: ThreadId, _routine: RoutineId) {
        let st = self.state(thread);
        let Some(frame) = st.stack.pop() else { return };
        let inclusive = st.cost - frame.cost_at_entry;
        let entry = self.costs.entry(frame.routine).or_default();
        entry.calls += 1;
        entry.inclusive += inclusive;
    }

    fn thread_exit(&mut self, thread: ThreadId) {
        while !self.state(thread).stack.is_empty() {
            self.ret(thread, RoutineId::new(0));
        }
    }

    fn finish(&mut self) {
        for idx in 0..self.threads.len() {
            self.thread_exit(ThreadId::new(idx as u32));
        }
    }
}

/// The output of a [`CallgrindTool`] session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallgrindReport {
    /// Per-routine costs, keyed by routine name.
    pub costs: BTreeMap<String, RoutineCosts>,
    /// Dynamic call-graph edges.
    pub edges: Vec<CallEdge>,
}

impl CallgrindReport {
    /// Routines sorted by decreasing inclusive cost.
    pub fn hottest(&self) -> Vec<(&str, RoutineCosts)> {
        let mut v: Vec<_> = self.costs.iter().map(|(n, &c)| (n.as_str(), c)).collect();
        v.sort_by(|a, b| b.1.inclusive.cmp(&a.1.inclusive).then(a.0.cmp(b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names2() -> RoutineTable {
        let mut n = RoutineTable::new();
        n.intern("main");
        n.intern("leaf");
        n
    }

    #[test]
    fn exclusive_vs_inclusive() {
        let mut cg = CallgrindTool::new();
        let t = ThreadId::MAIN;
        cg.call(t, RoutineId::new(0));
        cg.basic_block(t, 2);
        for _ in 0..3 {
            cg.call(t, RoutineId::new(1));
            cg.basic_block(t, 4);
            cg.ret(t, RoutineId::new(1));
        }
        cg.ret(t, RoutineId::new(0));
        let r = cg.into_report(&names2());
        assert_eq!(r.costs["leaf"], RoutineCosts { calls: 3, exclusive: 12, inclusive: 12 });
        assert_eq!(r.costs["main"], RoutineCosts { calls: 1, exclusive: 2, inclusive: 14 });
    }

    #[test]
    fn edges_count_call_sites() {
        let mut cg = CallgrindTool::new();
        let t = ThreadId::MAIN;
        cg.call(t, RoutineId::new(0));
        cg.call(t, RoutineId::new(1));
        cg.ret(t, RoutineId::new(1));
        cg.call(t, RoutineId::new(1));
        cg.ret(t, RoutineId::new(1));
        cg.ret(t, RoutineId::new(0));
        let r = cg.into_report(&names2());
        let edge = r
            .edges
            .iter()
            .find(|e| e.caller == Some(0) && e.callee == 1)
            .expect("edge main->leaf");
        assert_eq!(edge.count, 2);
        let entry = r.edges.iter().find(|e| e.caller.is_none()).expect("entry edge");
        assert_eq!(entry.callee, 0);
    }

    #[test]
    fn hottest_sorts_by_inclusive() {
        let mut cg = CallgrindTool::new();
        let t = ThreadId::MAIN;
        cg.call(t, RoutineId::new(0));
        cg.basic_block(t, 1);
        cg.call(t, RoutineId::new(1));
        cg.basic_block(t, 10);
        cg.ret(t, RoutineId::new(1));
        cg.ret(t, RoutineId::new(0));
        let r = cg.into_report(&names2());
        let hottest = r.hottest();
        assert_eq!(hottest[0].0, "main");
        assert_eq!(hottest[1].0, "leaf");
    }

    #[test]
    fn pending_frames_finalized() {
        let mut cg = CallgrindTool::new();
        let t = ThreadId::MAIN;
        cg.call(t, RoutineId::new(0));
        cg.basic_block(t, 5);
        let r = cg.into_report(&names2());
        assert_eq!(r.costs["main"].calls, 1);
        assert_eq!(r.costs["main"].inclusive, 5);
    }
}
