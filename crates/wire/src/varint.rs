//! LEB128 variable-length integers and zigzag signed mapping.
//!
//! Every multi-byte integer inside a chunk payload (and the routine table of
//! the file header) is encoded as an unsigned LEB128 varint; deltas, which
//! can be negative, are first mapped to unsigned space with zigzag. Chunk
//! and index *framing* uses fixed-width little-endian fields instead, so a
//! reader can skip a corrupt chunk without trusting its payload.

/// Longest possible LEB128 encoding of a `u64` (ceil(64 / 7) bytes).
pub const MAX_VARINT_BYTES: usize = 10;

/// Appends the LEB128 encoding of `v` to `buf`.
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a LEB128 `u64` from `buf` starting at `*pos`, advancing `*pos`.
///
/// Returns `None` on truncation or on an encoding longer than
/// [`MAX_VARINT_BYTES`] (which can only arise from corruption).
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_BYTES {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        // The 10th byte may only contribute the single remaining bit.
        if shift == 63 && byte > 1 {
            return None;
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
    None
}

/// Branchless LEB128 decode: the hot-path twin of [`read_u64`].
///
/// When at least 8 bytes remain past `*pos` — guaranteed for every event
/// in a chunk except the last few, since valid payloads bound an event by
/// [`MAX_EVENT_BYTES`](crate::format::MAX_EVENT_BYTES) — the decode is a
/// single
/// 8-byte little-endian load, a `trailing_zeros` to find the terminator,
/// and a three-step mask-and-fold that packs the 7-bit groups without a
/// per-byte loop or per-byte bounds check. Encodings longer than 8 bytes
/// (values ≥ 2^56) and window tails fall back to the scalar loop, so the
/// accepted language and the decoded values are byte-for-byte identical to
/// [`read_u64`] — a differential proptest pins this.
#[inline]
pub fn read_u64_fast(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let p = *pos;
    // Single-byte encodings (values < 128) dominate delta-coded payloads;
    // answer them with one load before touching the 8-byte window.
    let b0 = *buf.get(p)?;
    if b0 < 0x80 {
        *pos = p + 1;
        return Some(u64::from(b0));
    }
    if let Some(window) = buf.get(p..p + 8) {
        let w = u64::from_le_bytes(window.try_into().expect("8-byte window"));
        // A clear bit 7 marks the final byte of the encoding.
        let stop = !w & 0x8080_8080_8080_8080;
        if stop != 0 {
            let len = stop.trailing_zeros() as usize / 8 + 1; // 1..=8
            // `stop`'s lowest set bit is the terminator's bit 7, so
            // `stop ^ (stop - 1)` is a mask of exactly the encoding's
            // bytes — no branch, no variable-width shift. Then drop the
            // continuation bits and close the 1-bit gaps: bytes →
            // 14-bit pairs → 28-bit quads → one 56-bit value.
            let w = w & (stop ^ (stop - 1)) & 0x7f7f_7f7f_7f7f_7f7f;
            let w = (w & 0x007f_007f_007f_007f) | ((w & 0x7f00_7f00_7f00_7f00) >> 1);
            let w = (w & 0x0000_3fff_0000_3fff) | ((w & 0x3fff_0000_3fff_0000) >> 2);
            let w = (w & 0x0000_0000_0fff_ffff) | ((w & 0x0fff_ffff_0000_0000) >> 4);
            *pos = p + len;
            return Some(w);
        }
        // All 8 window bytes carry continuation bits: a 9- or 10-byte
        // encoding (or corruption) — rare enough for the scalar loop.
    }
    read_u64(buf, pos)
}

/// Maps a signed delta to unsigned space (small magnitudes stay small).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_interesting_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_BYTES);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v), "value {v}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for k in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(read_u64(&buf[..k], &mut pos), None, "prefix {k}");
        }
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        // Eleven continuation bytes never appear in valid output.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
        // A 10th byte carrying more than the final bit overflows u64.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(unzigzag(zigzag(v)), v, "value {v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
