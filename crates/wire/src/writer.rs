//! Streaming wire-trace capture.

use crate::crc32::crc32;
use crate::error::WireError;
use crate::format::{
    ChunkEntry, DeltaState, WireIndex, CHUNK_TAG, FOOTER_MAGIC, MAGIC, MAX_CHUNK_BYTES,
    MAX_EVENT_BYTES, VERSION,
};
use crate::varint;
use aprof_trace::{Addr, Event, RoutineId, RoutineTable, ThreadId, Tool};
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Default chunk payload target: 64 KiB.
pub const DEFAULT_CHUNK_BYTES: usize = 64 << 10;

/// When the underlying [`Write`] is flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// Flush only in [`WireWriter::finish`] — fastest, loses the tail of
    /// the trace if the process dies mid-capture.
    #[default]
    OnFinish,
    /// Flush after every completed chunk — a crash loses at most the
    /// in-progress chunk, and every flushed prefix is independently
    /// decodable (up to the missing index).
    PerChunk,
    /// Like [`PerChunk`](FlushPolicy::PerChunk), but also flushes the header
    /// immediately, and the flushes are expected to reach *stable storage*:
    /// pair this policy with a sink whose `flush` is durable, such as
    /// [`DurableFile`], so a `kill -9` (or power loss) mid-capture loses at
    /// most the open chunk and `recover` can salvage everything flushed.
    Durable,
}

/// A [`File`] sink whose [`flush`](Write::flush) forces written bytes to
/// stable storage via [`File::sync_data`]. Combine with
/// [`FlushPolicy::Durable`] (usually behind a `BufWriter`) for crash-safe
/// capture: every sealed chunk is fsynced before the writer moves on.
#[derive(Debug)]
pub struct DurableFile(File);

impl DurableFile {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the [`File::create`] error.
    pub fn create(path: &Path) -> io::Result<Self> {
        File::create(path).map(DurableFile)
    }

    /// Wraps an already-open file.
    pub fn new(file: File) -> Self {
        DurableFile(file)
    }

    /// Consumes the wrapper, returning the file.
    pub fn into_inner(self) -> File {
        self.0
    }
}

impl Write for DurableFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()?;
        self.0.sync_data()
    }
}

/// Tunables of a [`WireWriter`].
#[derive(Debug, Clone, Copy)]
pub struct WireOptions {
    /// Chunk payload target in bytes; a chunk is sealed once its payload
    /// reaches this size. Clamped to `1..=` a safe maximum.
    pub chunk_bytes: usize,
    /// When the underlying writer is flushed.
    pub flush: FlushPolicy,
}

impl Default for WireOptions {
    fn default() -> Self {
        WireOptions { chunk_bytes: DEFAULT_CHUNK_BYTES, flush: FlushPolicy::OnFinish }
    }
}

/// Totals reported by [`WireWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSummary {
    /// Events written.
    pub events: u64,
    /// Chunks written.
    pub chunks: u32,
    /// Total bytes of the finished file.
    pub bytes: u64,
    /// Observed thread count (highest thread index + 1).
    pub threads: u32,
}

/// Streaming encoder: appends events from a live source and writes sealed
/// chunks to the underlying [`Write`], never buffering more than one chunk.
///
/// Also implements [`Tool`], so it can capture straight from a guest run:
/// tool-callback errors cannot propagate through the `Tool` trait, so the
/// writer *latches* the first failure and [`finish`](WireWriter::finish)
/// reports it.
///
/// # Example
///
/// ```
/// use aprof_trace::{Addr, Event, RoutineTable, ThreadId};
/// use aprof_wire::{WireOptions, WireReader, WireWriter};
///
/// let mut writer = WireWriter::create(Vec::new(), &RoutineTable::new(),
///                                     WireOptions::default())?;
/// writer.push(ThreadId::MAIN, Event::Read { addr: Addr::new(16) })?;
/// let (bytes, summary) = writer.finish()?;
/// assert_eq!(summary.events, 1);
///
/// let events: Vec<_> = WireReader::new(&bytes[..])?
///     .collect::<Result<Vec<_>, _>>()?;
/// assert_eq!(events, vec![(ThreadId::MAIN, Event::Read { addr: Addr::new(16) })]);
/// # Ok::<(), aprof_wire::WireError>(())
/// ```
#[derive(Debug)]
pub struct WireWriter<W: Write> {
    inner: W,
    chunk_bytes: usize,
    flush: FlushPolicy,
    chunk_buf: Vec<u8>,
    chunk_events: u32,
    state: DeltaState,
    entries: Vec<ChunkEntry>,
    offset: u64,
    total_events: u64,
    threads: u32,
    latched: Option<WireError>,
}

impl<W: Write> WireWriter<W> {
    /// Writes the file header (magic, version, routine table) to `inner`
    /// and returns a writer ready for [`push`](WireWriter::push).
    ///
    /// `routines` is embedded in the header so replayed profiles render
    /// real routine names; pass an empty table for anonymous traces.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if writing the header fails.
    pub fn create(
        mut inner: W,
        routines: &RoutineTable,
        options: WireOptions,
    ) -> Result<Self, WireError> {
        let max_chunk = (MAX_CHUNK_BYTES as usize) - MAX_EVENT_BYTES;
        let chunk_bytes = options.chunk_bytes.clamp(1, max_chunk);
        let mut payload = Vec::new();
        varint::write_u64(&mut payload, routines.len() as u64);
        for (_, name) in routines.iter() {
            varint::write_u64(&mut payload, name.len() as u64);
            payload.extend_from_slice(name.as_bytes());
        }
        let mut header = Vec::with_capacity(payload.len() + 20);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        header.extend_from_slice(&payload);
        header.extend_from_slice(&crc32(&payload).to_le_bytes());
        inner.write_all(&header)?;
        if options.flush == FlushPolicy::Durable {
            inner.flush()?;
            aprof_obs::counters::WIRE_DURABLE_SYNCS.incr();
        }
        Ok(WireWriter {
            inner,
            chunk_bytes,
            flush: options.flush,
            chunk_buf: Vec::with_capacity(chunk_bytes + MAX_EVENT_BYTES),
            chunk_events: 0,
            state: DeltaState::new(),
            entries: Vec::new(),
            offset: header.len() as u64,
            total_events: 0,
            threads: 0,
            latched: None,
        })
    }

    /// Appends one event, sealing a chunk when the payload target is hit.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if sealing a chunk fails. Once any error
    /// has been latched, every later `push` fails with a copy of it and the
    /// latch stays armed, so [`finish`](WireWriter::finish) still reports
    /// the *first* failure.
    pub fn push(&mut self, thread: ThreadId, event: Event) -> Result<(), WireError> {
        if let Some(e) = &self.latched {
            // Report (a copy of) the first failure without disarming the
            // latch: taking it here would let `finish` succeed or surface a
            // later, misleading error.
            return Err(e.duplicate());
        }
        self.state.encode(&mut self.chunk_buf, thread, event);
        self.chunk_events += 1;
        self.total_events += 1;
        self.threads = self.threads.max(thread.index() as u32 + 1);
        if self.chunk_buf.len() >= self.chunk_bytes {
            if let Err(e) = self.seal_chunk() {
                self.latched = Some(e.duplicate());
                return Err(e);
            }
        }
        Ok(())
    }

    /// Infallible variant of [`push`](WireWriter::push) for callback
    /// contexts: the first error is latched and surfaced by
    /// [`finish`](WireWriter::finish); later events are dropped.
    pub fn record(&mut self, thread: ThreadId, event: Event) {
        if self.latched.is_some() {
            return;
        }
        if let Err(e) = self.push(thread, event) {
            self.latched = Some(e);
        }
    }

    /// The first error latched by [`record`](WireWriter::record), if any.
    pub fn latched_error(&self) -> Option<&WireError> {
        self.latched.as_ref()
    }

    /// Events appended so far.
    pub fn events(&self) -> u64 {
        self.total_events
    }

    fn seal_chunk(&mut self) -> Result<(), WireError> {
        if self.chunk_buf.is_empty() {
            return Ok(());
        }
        let crc = crc32(&self.chunk_buf);
        let mut framing = [0u8; 13];
        framing[0] = CHUNK_TAG;
        framing[1..5].copy_from_slice(&self.chunk_events.to_le_bytes());
        framing[5..9].copy_from_slice(&(self.chunk_buf.len() as u32).to_le_bytes());
        framing[9..13].copy_from_slice(&crc.to_le_bytes());
        self.inner.write_all(&framing)?;
        self.inner.write_all(&self.chunk_buf)?;
        aprof_obs::counters::WIRE_CHUNKS_FLUSHED.incr();
        aprof_obs::counters::WIRE_BYTES_WRITTEN.add(framing.len() as u64 + self.chunk_buf.len() as u64);
        aprof_obs::counters::WIRE_EVENTS_WRITTEN.add(u64::from(self.chunk_events));
        self.entries.push(ChunkEntry {
            offset: self.offset,
            payload_len: self.chunk_buf.len() as u32,
            events: self.chunk_events,
            crc,
        });
        self.offset += framing.len() as u64 + self.chunk_buf.len() as u64;
        self.chunk_buf.clear();
        self.chunk_events = 0;
        self.state = DeltaState::new();
        match self.flush {
            FlushPolicy::OnFinish => {}
            FlushPolicy::PerChunk => self.inner.flush()?,
            FlushPolicy::Durable => {
                self.inner.flush()?;
                aprof_obs::counters::WIRE_DURABLE_SYNCS.incr();
            }
        }
        Ok(())
    }

    /// Seals the trailing partial chunk, writes the chunk index and footer,
    /// flushes, and returns the underlying writer with the file totals.
    ///
    /// # Errors
    ///
    /// Returns any latched capture error, else the first i/o failure.
    pub fn finish(mut self) -> Result<(W, WireSummary), WireError> {
        if let Some(e) = self.latched.take() {
            return Err(e);
        }
        self.seal_chunk()?;
        let index_offset = self.offset;
        let index = WireIndex {
            entries: std::mem::take(&mut self.entries),
            total_events: self.total_events,
            thread_count: self.threads,
        };
        let mut tail = Vec::new();
        index.encode(&mut tail);
        tail.extend_from_slice(&index_offset.to_le_bytes());
        tail.extend_from_slice(FOOTER_MAGIC);
        self.inner.write_all(&tail)?;
        self.inner.flush()?;
        let summary = WireSummary {
            events: self.total_events,
            chunks: index.entries.len() as u32,
            bytes: index_offset + tail.len() as u64,
            threads: self.threads,
        };
        Ok((self.inner, summary))
    }
}

impl<W: Write> Tool for WireWriter<W> {
    fn name(&self) -> &'static str {
        "wire-capture"
    }

    fn thread_start(&mut self, thread: ThreadId) {
        self.record(thread, Event::ThreadStart);
    }

    fn thread_exit(&mut self, thread: ThreadId) {
        self.record(thread, Event::ThreadExit);
    }

    fn thread_switch(&mut self, thread: ThreadId) {
        self.record(thread, Event::ThreadSwitch);
    }

    fn basic_block(&mut self, thread: ThreadId, cost: u64) {
        self.record(thread, Event::BasicBlock { cost });
    }

    fn call(&mut self, thread: ThreadId, routine: RoutineId) {
        self.record(thread, Event::Call { routine });
    }

    fn ret(&mut self, thread: ThreadId, routine: RoutineId) {
        self.record(thread, Event::Return { routine });
    }

    fn read(&mut self, thread: ThreadId, addr: Addr) {
        self.record(thread, Event::Read { addr });
    }

    fn write(&mut self, thread: ThreadId, addr: Addr) {
        self.record(thread, Event::Write { addr });
    }

    fn kernel_read(&mut self, thread: ThreadId, addr: Addr) {
        self.record(thread, Event::KernelRead { addr });
    }

    fn kernel_write(&mut self, thread: ThreadId, addr: Addr) {
        self.record(thread, Event::KernelWrite { addr });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_chunk_target_seals_one_event_per_chunk() {
        let opts = WireOptions { chunk_bytes: 1, ..Default::default() };
        let mut w = WireWriter::create(Vec::new(), &RoutineTable::new(), opts).unwrap();
        for i in 0..5 {
            w.push(ThreadId::MAIN, Event::Read { addr: Addr::new(i) }).unwrap();
        }
        let (_, summary) = w.finish().unwrap();
        assert_eq!(summary.chunks, 5);
        assert_eq!(summary.events, 5);
        assert_eq!(summary.threads, 1);
    }

    #[test]
    fn empty_trace_still_yields_valid_totals() {
        let w =
            WireWriter::create(Vec::new(), &RoutineTable::new(), WireOptions::default()).unwrap();
        let (bytes, summary) = w.finish().unwrap();
        assert_eq!(summary.events, 0);
        assert_eq!(summary.chunks, 0);
        assert_eq!(summary.bytes, bytes.len() as u64);
    }

    #[test]
    fn failing_sink_latches_instead_of_panicking() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink is broken"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert!(WireWriter::create(Broken, &RoutineTable::new(), WireOptions::default()).is_err());

        // Header fits, chunks fail: the Tool-callback path must latch.
        struct HeaderOnly {
            written: usize,
        }
        impl Write for HeaderOnly {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.written > 0 {
                    return Err(std::io::Error::other("disk full"));
                }
                self.written += buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let opts = WireOptions { chunk_bytes: 1, ..Default::default() };
        let mut w =
            WireWriter::create(HeaderOnly { written: 0 }, &RoutineTable::new(), opts).unwrap();
        w.basic_block(ThreadId::MAIN, 1);
        w.basic_block(ThreadId::MAIN, 1);
        assert!(w.latched_error().is_some());
        assert!(w.finish().is_err());
    }

    #[test]
    fn finish_reports_first_error_despite_later_pushes() {
        // Accepts the header, then fails every write with a distinct
        // message, so the test can tell *which* failure surfaces where.
        #[derive(Debug)]
        struct NumberedFailures {
            calls: usize,
        }
        impl Write for NumberedFailures {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.calls += 1;
                if self.calls == 1 {
                    return Ok(buf.len());
                }
                Err(std::io::Error::other(format!("failure #{}", self.calls - 1)))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let opts = WireOptions { chunk_bytes: 1, ..Default::default() };
        let mut w = WireWriter::create(NumberedFailures { calls: 0 }, &RoutineTable::new(), opts)
            .unwrap();
        let first = w
            .push(ThreadId::MAIN, Event::BasicBlock { cost: 1 })
            .unwrap_err();
        assert!(first.to_string().contains("failure #1"), "got: {first}");

        // Pushing after the failure must keep reporting (a copy of) the
        // first error without disarming the latch...
        let again = w
            .push(ThreadId::MAIN, Event::BasicBlock { cost: 1 })
            .unwrap_err();
        assert!(again.to_string().contains("failure #1"), "got: {again}");
        assert!(w.latched_error().is_some());

        // ...so finish still surfaces the first failure, not a later one
        // and not a spurious success.
        let e = w.finish().unwrap_err();
        assert!(e.to_string().contains("failure #1"), "got: {e}");
    }

    #[test]
    fn durable_policy_flushes_header_and_every_chunk() {
        #[derive(Default)]
        struct FlushCounter {
            bytes: Vec<u8>,
            flushes: usize,
        }
        impl Write for FlushCounter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.bytes.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.flushes += 1;
                Ok(())
            }
        }

        let run = |flush: FlushPolicy| {
            let opts = WireOptions { chunk_bytes: 1, flush };
            let mut w =
                WireWriter::create(FlushCounter::default(), &RoutineTable::new(), opts).unwrap();
            for i in 0..3 {
                w.push(ThreadId::MAIN, Event::Read { addr: Addr::new(i) }).unwrap();
            }
            let (sink, _) = w.finish().unwrap();
            sink.flushes
        };
        assert_eq!(run(FlushPolicy::OnFinish), 1);
        assert_eq!(run(FlushPolicy::PerChunk), 3 + 1);
        // Durable adds the immediate header flush on top of per-chunk.
        assert_eq!(run(FlushPolicy::Durable), 1 + 3 + 1);
    }
}
