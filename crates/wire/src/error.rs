//! Typed failure modes of the wire codec.
//!
//! Every way a wire file can be malformed — truncated, bit-flipped,
//! version-skewed, spliced — maps to a [`WireError`] variant; the codec
//! never panics on untrusted input. Per-chunk payload corruption is
//! *recoverable*: the default (lenient) reader skips the chunk and reports
//! it via [`WireReader::skipped`](crate::WireReader::skipped) instead of
//! returning an error.

use std::fmt;
use std::io;

/// An error raised while encoding or decoding a wire trace.
#[derive(Debug)]
pub enum WireError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The file does not start with the wire magic.
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is newer than this reader supports.
    UnsupportedVersion {
        /// Version stored in the file header.
        found: u32,
        /// Highest version this build can decode.
        supported: u32,
    },
    /// The header failed structural validation or its CRC.
    HeaderCorrupt {
        /// What went wrong.
        reason: String,
    },
    /// The stream ended in the middle of a structure.
    UnexpectedEof {
        /// The structure being read when the bytes ran out.
        context: &'static str,
    },
    /// An unknown record tag where a chunk or index was expected — the
    /// stream cannot be resynchronized past this point.
    BadRecordTag {
        /// Byte offset of the tag.
        offset: u64,
        /// The tag byte found.
        found: u8,
    },
    /// A chunk's payload failed its CRC or decoded inconsistently.
    ///
    /// Only surfaced as an error by strict readers; lenient readers skip
    /// the chunk and report it instead.
    ChunkCorrupt {
        /// Zero-based chunk index within the file.
        index: u32,
        /// What went wrong.
        reason: String,
    },
    /// A chunk declares a payload larger than the format allows, so its
    /// framing cannot be trusted enough to skip it.
    ChunkTooLarge {
        /// Zero-based chunk index within the file.
        index: u32,
        /// Declared payload length.
        len: u64,
        /// The format's hard ceiling.
        max: u64,
    },
    /// The trailing chunk index is missing (truncated file) or fails its
    /// CRC or cross-checks against the chunks actually seen.
    IndexCorrupt {
        /// What went wrong.
        reason: String,
    },
    /// The 16-byte footer is malformed or disagrees with the index offset.
    BadFooter {
        /// What went wrong.
        reason: String,
    },
    /// Valid footer, but bytes follow it.
    TrailingGarbage,
}

impl WireError {
    /// A structural copy of this error. `WireError` cannot derive [`Clone`]
    /// because [`io::Error`] does not; the copy preserves the I/O error's
    /// kind and message. Used by the writer's latched-error path, which must
    /// answer every call after a failure without giving away the original
    /// (first) error that [`WireWriter::finish`](crate::WireWriter::finish)
    /// reports.
    pub fn duplicate(&self) -> WireError {
        match self {
            WireError::Io(e) => WireError::Io(io::Error::new(e.kind(), e.to_string())),
            WireError::BadMagic { found } => WireError::BadMagic { found: *found },
            WireError::UnsupportedVersion { found, supported } => {
                WireError::UnsupportedVersion { found: *found, supported: *supported }
            }
            WireError::HeaderCorrupt { reason } => {
                WireError::HeaderCorrupt { reason: reason.clone() }
            }
            WireError::UnexpectedEof { context } => WireError::UnexpectedEof { context },
            WireError::BadRecordTag { offset, found } => {
                WireError::BadRecordTag { offset: *offset, found: *found }
            }
            WireError::ChunkCorrupt { index, reason } => {
                WireError::ChunkCorrupt { index: *index, reason: reason.clone() }
            }
            WireError::ChunkTooLarge { index, len, max } => {
                WireError::ChunkTooLarge { index: *index, len: *len, max: *max }
            }
            WireError::IndexCorrupt { reason } => {
                WireError::IndexCorrupt { reason: reason.clone() }
            }
            WireError::BadFooter { reason } => WireError::BadFooter { reason: reason.clone() },
            WireError::TrailingGarbage => WireError::TrailingGarbage,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::BadMagic { found } => {
                write!(f, "not a wire trace (magic {found:02x?})")
            }
            WireError::UnsupportedVersion { found, supported } => write!(
                f,
                "wire format version {found} is newer than supported version {supported}"
            ),
            WireError::HeaderCorrupt { reason } => write!(f, "corrupt wire header: {reason}"),
            WireError::UnexpectedEof { context } => {
                write!(f, "wire trace truncated while reading {context}")
            }
            WireError::BadRecordTag { offset, found } => write!(
                f,
                "unknown record tag 0x{found:02x} at byte {offset} (stream cannot be resynchronized)"
            ),
            WireError::ChunkCorrupt { index, reason } => {
                write!(f, "corrupt chunk {index}: {reason}")
            }
            WireError::ChunkTooLarge { index, len, max } => write!(
                f,
                "chunk {index} declares {len} payload bytes (format maximum is {max})"
            ),
            WireError::IndexCorrupt { reason } => write!(f, "corrupt chunk index: {reason}"),
            WireError::BadFooter { reason } => write!(f, "bad wire footer: {reason}"),
            WireError::TrailingGarbage => write!(f, "bytes found after the wire footer"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            // read_exact reports truncation this way; give it the typed form.
            WireError::UnexpectedEof { context: "a fixed-width field" }
        } else {
            WireError::Io(e)
        }
    }
}

/// A chunk the lenient reader dropped, with the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedChunk {
    /// Zero-based chunk index within the file.
    pub index: u32,
    /// Byte offset of the chunk's framing tag.
    pub offset: u64,
    /// Events the chunk's framing claimed it contained.
    pub claimed_events: u32,
    /// Why the chunk was dropped.
    pub reason: String,
}

impl fmt::Display for SkippedChunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chunk {} at byte {} ({} events dropped): {}",
            self.index, self.offset, self.claimed_events, self.reason
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::UnsupportedVersion { found: 9, supported: 1 };
        assert!(e.to_string().contains("version 9"));
        let e = WireError::ChunkCorrupt { index: 3, reason: "crc mismatch".into() };
        assert!(e.to_string().contains("chunk 3"));
        let s = SkippedChunk {
            index: 1,
            offset: 64,
            claimed_events: 10,
            reason: "crc mismatch".into(),
        };
        assert!(s.to_string().contains("10 events dropped"));
    }

    #[test]
    fn duplicate_preserves_kind_and_message() {
        let e = WireError::Io(io::Error::new(io::ErrorKind::WriteZero, "disk full"));
        match e.duplicate() {
            WireError::Io(d) => {
                assert_eq!(d.kind(), io::ErrorKind::WriteZero);
                assert!(d.to_string().contains("disk full"));
            }
            other => panic!("duplicate changed variant: {other:?}"),
        }
        let e = WireError::ChunkCorrupt { index: 3, reason: "crc mismatch".into() };
        assert_eq!(e.duplicate().to_string(), e.to_string());
    }

    #[test]
    fn eof_io_errors_become_typed_truncation() {
        let io = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(WireError::from(io), WireError::UnexpectedEof { .. }));
        let io = io::Error::other("disk on fire");
        assert!(matches!(WireError::from(io), WireError::Io(_)));
    }
}
