//! Streaming wire-trace replay and random-access chunk decode.

use crate::crc32::crc32;
use crate::error::{SkippedChunk, WireError};
use crate::format::{
    decode_chunk_into, ChunkEntry, WireIndex, CHUNK_TAG, FOOTER_MAGIC, INDEX_TAG, MAGIC,
    MAX_CHUNK_BYTES, MAX_HEADER_BYTES, VERSION,
};
use crate::varint;
use aprof_trace::{Event, RoutineTable, ThreadId};
use std::io::{Read, Seek, SeekFrom};

/// Ceiling on index entry counts, protecting readers from corrupt counts.
const MAX_INDEX_ENTRIES: u32 = 1 << 26;

/// Progress counters of a [`WireReader`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReaderStats {
    /// Events decoded and yielded.
    pub events: u64,
    /// Chunks decoded successfully.
    pub chunks: u32,
    /// Chunks dropped by skip-and-report recovery.
    pub chunks_skipped: u32,
    /// Largest chunk payload buffered at any point — the reader's working
    /// memory is bounded by this plus the decoded form of one chunk,
    /// independent of file size.
    pub peak_chunk_bytes: usize,
    /// Bytes consumed from the underlying reader.
    pub bytes_read: u64,
}

/// Streaming decoder: iterates `(thread, event)` pairs out of a wire trace
/// while holding only one chunk in memory, so a multi-gigabyte trace
/// replays in O(chunk) space without ever materializing a
/// [`Trace`](aprof_trace::Trace).
///
/// Corrupt chunk *payloads* (CRC mismatch, bad varints, count skew) are
/// recovered by skipping the chunk and recording a [`SkippedChunk`] —
/// unless [`strict`](WireReader::strict) mode is on, in which case they
/// surface as [`WireError::ChunkCorrupt`]. Damage to the framing, header,
/// index or footer is never recoverable and always yields a typed error.
///
/// The iterator is fused: after yielding an `Err` it yields `None` forever.
#[derive(Debug)]
pub struct WireReader<R: Read> {
    inner: R,
    version: u32,
    routines: RoutineTable,
    strict: bool,
    payload: Vec<u8>,
    current: Vec<(ThreadId, Event)>,
    pos: usize,
    offset: u64,
    next_ordinal: u32,
    seen: Vec<ChunkEntry>,
    skipped: Vec<SkippedChunk>,
    index: Option<WireIndex>,
    max_thread: u32,
    stats: ReaderStats,
    done: bool,
}

impl<R: Read> WireReader<R> {
    /// Reads and validates the file header, returning a reader positioned
    /// at the first chunk.
    ///
    /// # Errors
    ///
    /// [`WireError::BadMagic`], [`WireError::UnsupportedVersion`],
    /// [`WireError::HeaderCorrupt`], [`WireError::UnexpectedEof`] or
    /// [`WireError::Io`].
    pub fn new(inner: R) -> Result<Self, WireError> {
        let mut reader = WireReader {
            inner,
            version: 0,
            routines: RoutineTable::new(),
            strict: false,
            payload: Vec::new(),
            current: Vec::new(),
            pos: 0,
            offset: 0,
            next_ordinal: 0,
            seen: Vec::new(),
            skipped: Vec::new(),
            index: None,
            max_thread: 0,
            stats: ReaderStats::default(),
            done: false,
        };
        reader.read_header()?;
        Ok(reader)
    }

    /// Turns corrupt-chunk recovery off: payload corruption becomes a
    /// [`WireError::ChunkCorrupt`] instead of a skip-and-report.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Format version of the file being read.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The routine-name table embedded in the header.
    pub fn routines(&self) -> &RoutineTable {
        &self.routines
    }

    /// Chunks dropped so far by skip-and-report recovery.
    pub fn skipped(&self) -> &[SkippedChunk] {
        &self.skipped
    }

    /// Progress counters (final once the iterator is exhausted).
    pub fn stats(&self) -> ReaderStats {
        self.stats
    }

    /// The validated trailing index — available once iteration has reached
    /// the end of the file.
    pub fn index(&self) -> Option<&WireIndex> {
        self.index.as_ref()
    }

    fn read_exact_ctx(&mut self, buf: &mut [u8], context: &'static str) -> Result<(), WireError> {
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::UnexpectedEof { context }
            } else {
                WireError::Io(e)
            }
        })?;
        self.offset += buf.len() as u64;
        self.stats.bytes_read = self.offset;
        Ok(())
    }

    fn read_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let mut b = [0u8; 4];
        self.read_exact_ctx(&mut b, context)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let mut b = [0u8; 8];
        self.read_exact_ctx(&mut b, context)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_header(&mut self) -> Result<(), WireError> {
        let mut magic = [0u8; 8];
        self.read_exact_ctx(&mut magic, "file magic")?;
        if &magic != MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        self.version = self.read_u32("header version")?;
        if self.version != VERSION {
            return Err(WireError::UnsupportedVersion {
                found: self.version,
                supported: VERSION,
            });
        }
        let corrupt =
            |reason: &str| WireError::HeaderCorrupt { reason: reason.to_owned() };
        let payload_len = self.read_u32("header length")?;
        if u64::from(payload_len) > MAX_HEADER_BYTES {
            return Err(corrupt("declared header length exceeds the format maximum"));
        }
        let mut payload = vec![0u8; payload_len as usize];
        self.read_exact_ctx(&mut payload, "header payload")?;
        let stored_crc = self.read_u32("header crc")?;
        if crc32(&payload) != stored_crc {
            return Err(corrupt("header crc mismatch"));
        }
        let mut pos = 0;
        let count =
            varint::read_u64(&payload, &mut pos).ok_or_else(|| corrupt("bad routine count"))?;
        if count > u64::from(u32::MAX) {
            return Err(corrupt("routine count exceeds u32"));
        }
        for _ in 0..count {
            let len = varint::read_u64(&payload, &mut pos)
                .ok_or_else(|| corrupt("bad routine name length"))?;
            let len = usize::try_from(len)
                .ok()
                .filter(|l| pos + l <= payload.len())
                .ok_or_else(|| corrupt("routine name past header end"))?;
            let name = std::str::from_utf8(&payload[pos..pos + len])
                .map_err(|_| corrupt("routine name is not utf-8"))?;
            pos += len;
            let before = self.routines.len();
            self.routines.intern(name);
            if self.routines.len() == before {
                return Err(corrupt("duplicate routine name"));
            }
        }
        if pos != payload.len() {
            return Err(corrupt("trailing bytes after the routine table"));
        }
        Ok(())
    }

    /// Loads the next decodable chunk into `self.current`.
    ///
    /// `Ok(true)`: a chunk is loaded. `Ok(false)`: the index and footer
    /// validated; the file is exhausted.
    fn load_next(&mut self) -> Result<bool, WireError> {
        loop {
            let tag_offset = self.offset;
            let mut tag = [0u8; 1];
            self.read_exact_ctx(&mut tag, "record tag (file truncated before the chunk index)")?;
            match tag[0] {
                CHUNK_TAG => {
                    if self.try_load_chunk(tag_offset)? {
                        return Ok(true);
                    }
                    // Chunk skipped: keep scanning.
                }
                INDEX_TAG => {
                    self.finish_at_index(tag_offset)?;
                    return Ok(false);
                }
                found => return Err(WireError::BadRecordTag { offset: tag_offset, found }),
            }
        }
    }

    /// Reads one chunk record; returns `Ok(false)` when the chunk was
    /// skipped by lenient recovery.
    fn try_load_chunk(&mut self, tag_offset: u64) -> Result<bool, WireError> {
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        let events = self.read_u32("chunk event count")?;
        let payload_len = self.read_u32("chunk payload length")?;
        let stored_crc = self.read_u32("chunk crc")?;
        if u64::from(payload_len) > MAX_CHUNK_BYTES {
            return Err(WireError::ChunkTooLarge {
                index: ordinal,
                len: u64::from(payload_len),
                max: MAX_CHUNK_BYTES,
            });
        }
        self.payload.resize(payload_len as usize, 0);
        let mut payload = std::mem::take(&mut self.payload);
        let read = self.read_exact_ctx(&mut payload, "chunk payload");
        self.payload = payload;
        read?;
        self.stats.peak_chunk_bytes = self.stats.peak_chunk_bytes.max(self.payload.len());
        aprof_obs::counters::WIRE_BYTES_READ.add(13 + u64::from(payload_len));
        self.seen.push(ChunkEntry {
            offset: tag_offset,
            payload_len,
            events,
            crc: stored_crc,
        });
        let computed = crc32(&self.payload);
        let failure = if computed != stored_crc {
            Some(format!("payload crc mismatch (stored {stored_crc:#010x}, computed {computed:#010x})"))
        } else {
            match decode_chunk_into(ordinal, &self.payload, events, &mut self.current) {
                Ok(()) => None,
                Err(WireError::ChunkCorrupt { reason, .. }) => Some(reason),
                Err(other) => return Err(other),
            }
        };
        if let Some(reason) = failure {
            self.current.clear();
            if self.strict {
                return Err(WireError::ChunkCorrupt { index: ordinal, reason });
            }
            self.stats.chunks_skipped += 1;
            aprof_obs::counters::WIRE_CHUNKS_SKIPPED.incr();
            self.skipped.push(SkippedChunk {
                index: ordinal,
                offset: tag_offset,
                claimed_events: events,
                reason,
            });
            return Ok(false);
        }
        for &(thread, _) in &self.current {
            self.max_thread = self.max_thread.max(thread.index() as u32 + 1);
        }
        self.pos = 0;
        self.stats.chunks += 1;
        aprof_obs::counters::WIRE_CHUNKS_DECODED.incr();
        aprof_obs::counters::WIRE_EVENTS_DECODED.add(self.current.len() as u64);
        Ok(true)
    }

    fn finish_at_index(&mut self, index_offset: u64) -> Result<(), WireError> {
        let corrupt = |reason: String| WireError::IndexCorrupt { reason };
        let count = self.read_u32("index entry count")?;
        if count > MAX_INDEX_ENTRIES {
            return Err(corrupt(format!("implausible index entry count {count}")));
        }
        // Re-serialize the body as read so the CRC covers exactly the
        // written bytes.
        let mut body = Vec::with_capacity(4 + count as usize * 20 + 12);
        body.extend_from_slice(&count.to_le_bytes());
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let entry = ChunkEntry {
                offset: self.read_u64("index entry offset")?,
                payload_len: self.read_u32("index entry length")?,
                events: self.read_u32("index entry event count")?,
                crc: self.read_u32("index entry crc")?,
            };
            body.extend_from_slice(&entry.offset.to_le_bytes());
            body.extend_from_slice(&entry.payload_len.to_le_bytes());
            body.extend_from_slice(&entry.events.to_le_bytes());
            body.extend_from_slice(&entry.crc.to_le_bytes());
            entries.push(entry);
        }
        let total_events = self.read_u64("index event total")?;
        let thread_count = self.read_u32("index thread count")?;
        body.extend_from_slice(&total_events.to_le_bytes());
        body.extend_from_slice(&thread_count.to_le_bytes());
        let stored_crc = self.read_u32("index crc")?;
        if crc32(&body) != stored_crc {
            return Err(corrupt("index crc mismatch".into()));
        }
        if entries != self.seen {
            return Err(corrupt(format!(
                "index describes {} chunks, stream contained {} (or framing disagrees)",
                entries.len(),
                self.seen.len()
            )));
        }
        let framed_total: u64 = self.seen.iter().map(|e| u64::from(e.events)).sum();
        if total_events != framed_total {
            return Err(corrupt(format!(
                "index claims {total_events} events, chunk framing sums to {framed_total}"
            )));
        }
        if self.stats.chunks_skipped == 0 && thread_count != self.max_thread {
            return Err(corrupt(format!(
                "index claims {thread_count} threads, stream contained {}",
                self.max_thread
            )));
        }
        let stored_offset = self.read_u64("footer")?;
        let mut magic = [0u8; 8];
        self.read_exact_ctx(&mut magic, "footer")?;
        if &magic != FOOTER_MAGIC {
            return Err(WireError::BadFooter { reason: "bad footer magic".into() });
        }
        if stored_offset != index_offset {
            return Err(WireError::BadFooter {
                reason: format!(
                    "footer points at byte {stored_offset}, index is at byte {index_offset}"
                ),
            });
        }
        let mut probe = [0u8; 1];
        match self.inner.read(&mut probe) {
            Ok(0) => {}
            Ok(_) => return Err(WireError::TrailingGarbage),
            Err(e) => return Err(WireError::Io(e)),
        }
        self.index = Some(WireIndex { entries, total_events, thread_count });
        Ok(())
    }
}

impl<R: Read> Iterator for WireReader<R> {
    type Item = Result<(ThreadId, Event), WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.pos < self.current.len() {
                let item = self.current[self.pos];
                self.pos += 1;
                self.stats.events += 1;
                return Some(Ok(item));
            }
            if self.done {
                return None;
            }
            match self.load_next() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Reads the trailing chunk index of a seekable wire file without touching
/// the chunks, enabling seek and parallel chunk decode.
///
/// The cursor position on return is unspecified.
///
/// # Errors
///
/// [`WireError::BadFooter`], [`WireError::IndexCorrupt`],
/// [`WireError::UnexpectedEof`] or [`WireError::Io`].
pub fn read_index<R: Read + Seek>(r: &mut R) -> Result<WireIndex, WireError> {
    let len = r.seek(SeekFrom::End(0))?;
    if len < 16 {
        return Err(WireError::UnexpectedEof { context: "footer" });
    }
    r.seek(SeekFrom::Start(len - 16))?;
    let mut footer = [0u8; 16];
    r.read_exact(&mut footer)?;
    let index_offset = u64::from_le_bytes(footer[..8].try_into().unwrap());
    if &footer[8..] != FOOTER_MAGIC {
        return Err(WireError::BadFooter { reason: "bad footer magic".into() });
    }
    if index_offset >= len - 16 {
        return Err(WireError::BadFooter {
            reason: format!("footer points at byte {index_offset}, past the index"),
        });
    }
    r.seek(SeekFrom::Start(index_offset))?;
    let corrupt = |reason: String| WireError::IndexCorrupt { reason };
    let mut buf = vec![0u8; (len - 16 - index_offset) as usize];
    r.read_exact(&mut buf)?;
    if buf[0] != INDEX_TAG {
        return Err(WireError::BadFooter {
            reason: "footer does not point at an index record".into(),
        });
    }
    let body = &buf[1..];
    if body.len() < 20 {
        return Err(corrupt("index record too short".into()));
    }
    let count = u32::from_le_bytes(body[..4].try_into().unwrap());
    if count > MAX_INDEX_ENTRIES {
        return Err(corrupt(format!("implausible index entry count {count}")));
    }
    let expected = 4 + count as usize * 20 + 12 + 4;
    if body.len() != expected {
        return Err(corrupt(format!(
            "index record is {} bytes, {count} entries need {expected}",
            body.len()
        )));
    }
    let (payload, crc_bytes) = body.split_at(body.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(payload) != stored_crc {
        return Err(corrupt("index crc mismatch".into()));
    }
    let mut entries = Vec::with_capacity(count as usize);
    let mut pos = 4;
    let field_u32 = |pos: &mut usize| {
        let v = u32::from_le_bytes(payload[*pos..*pos + 4].try_into().unwrap());
        *pos += 4;
        v
    };
    for _ in 0..count {
        let offset = u64::from_le_bytes(payload[pos..pos + 8].try_into().unwrap());
        pos += 8;
        entries.push(ChunkEntry {
            offset,
            payload_len: field_u32(&mut pos),
            events: field_u32(&mut pos),
            crc: field_u32(&mut pos),
        });
    }
    let total_events = u64::from_le_bytes(payload[pos..pos + 8].try_into().unwrap());
    pos += 8;
    let thread_count = field_u32(&mut pos);
    Ok(WireIndex { entries, total_events, thread_count })
}

/// Decodes the single chunk described by `entry` from a seekable wire
/// file, appending its events to `out` (cleared first).
///
/// `ordinal` is the chunk's position in [`WireIndex::entries`], used only
/// for error reporting. This is the unit of parallel decode: each worker
/// opens its own handle and decodes a disjoint slice of the index.
///
/// # Errors
///
/// [`WireError::ChunkCorrupt`] when the payload fails its CRC or decodes
/// inconsistently; [`WireError::IndexCorrupt`] when the framing on disk
/// disagrees with `entry`.
pub fn read_chunk<R: Read + Seek>(
    r: &mut R,
    ordinal: u32,
    entry: &ChunkEntry,
    out: &mut Vec<(ThreadId, Event)>,
) -> Result<(), WireError> {
    let mut scratch = Vec::new();
    read_chunk_with(r, ordinal, entry, &mut scratch, out)
}

/// [`read_chunk`] with a caller-provided payload scratch buffer, so a loop
/// decoding many chunks (or a parallel-decode worker) allocates the payload
/// buffer once instead of per chunk.
pub(crate) fn read_chunk_with<R: Read + Seek>(
    r: &mut R,
    ordinal: u32,
    entry: &ChunkEntry,
    scratch: &mut Vec<u8>,
    out: &mut Vec<(ThreadId, Event)>,
) -> Result<(), WireError> {
    r.seek(SeekFrom::Start(entry.offset))?;
    let mut framing = [0u8; 13];
    r.read_exact(&mut framing)?;
    let events = u32::from_le_bytes(framing[1..5].try_into().unwrap());
    let payload_len = u32::from_le_bytes(framing[5..9].try_into().unwrap());
    let crc = u32::from_le_bytes(framing[9..13].try_into().unwrap());
    if framing[0] != CHUNK_TAG
        || events != entry.events
        || payload_len != entry.payload_len
        || crc != entry.crc
    {
        return Err(WireError::IndexCorrupt {
            reason: format!("chunk {ordinal} framing disagrees with the index entry"),
        });
    }
    scratch.resize(payload_len as usize, 0);
    r.read_exact(scratch)?;
    let computed = crc32(scratch);
    if computed != crc {
        return Err(WireError::ChunkCorrupt {
            index: ordinal,
            reason: format!("payload crc mismatch (stored {crc:#010x}, computed {computed:#010x})"),
        });
    }
    decode_chunk_into(ordinal, scratch, events, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{WireOptions, WireWriter};
    use aprof_trace::Addr;
    use std::io::Cursor;

    fn sample_bytes(chunk_bytes: usize) -> (Vec<u8>, Vec<(ThreadId, Event)>) {
        let events: Vec<(ThreadId, Event)> = (0..100)
            .map(|i| {
                let t = ThreadId::new(i % 3);
                match i % 4 {
                    0 => (t, Event::Read { addr: Addr::new(u64::from(i) * 17) }),
                    1 => (t, Event::Write { addr: Addr::new(u64::from(i)) }),
                    2 => (t, Event::BasicBlock { cost: u64::from(i) }),
                    _ => (t, Event::ThreadSwitch),
                }
            })
            .collect();
        let mut names = RoutineTable::new();
        names.intern("alpha");
        names.intern("beta");
        let opts = WireOptions { chunk_bytes, ..Default::default() };
        let mut w = WireWriter::create(Vec::new(), &names, opts).unwrap();
        for &(t, e) in &events {
            w.push(t, e).unwrap();
        }
        let (bytes, _) = w.finish().unwrap();
        (bytes, events)
    }

    #[test]
    fn sequential_roundtrip_and_metadata() {
        let (bytes, events) = sample_bytes(32);
        let mut reader = WireReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.version(), VERSION);
        assert_eq!(reader.routines().len(), 2);
        assert_eq!(reader.routines().name(aprof_trace::RoutineId::new(1)), "beta");
        let decoded: Vec<_> = reader.by_ref().collect::<Result<_, _>>().unwrap();
        assert_eq!(decoded, events);
        let stats = reader.stats();
        assert_eq!(stats.events, events.len() as u64);
        assert_eq!(stats.chunks_skipped, 0);
        assert!(stats.chunks > 1, "multiple chunks expected");
        assert_eq!(stats.bytes_read, bytes.len() as u64);
        let index = reader.index().expect("index is validated at EOF");
        assert_eq!(index.total_events, events.len() as u64);
        assert_eq!(index.thread_count, 3);
    }

    #[test]
    fn index_enables_seek_and_chunk_decode() {
        let (bytes, events) = sample_bytes(64);
        let mut cursor = Cursor::new(&bytes);
        let index = read_index(&mut cursor).unwrap();
        assert_eq!(index.total_events, events.len() as u64);
        let mut decoded = Vec::new();
        let mut chunk = Vec::new();
        for (i, entry) in index.entries.iter().enumerate() {
            read_chunk(&mut cursor, i as u32, entry, &mut chunk).unwrap();
            decoded.extend_from_slice(&chunk);
        }
        assert_eq!(decoded, events);
    }

    #[test]
    fn corrupt_chunk_is_skipped_and_reported() {
        let (mut bytes, events) = sample_bytes(32);
        let index = read_index(&mut Cursor::new(&bytes)).unwrap();
        // Damage the middle of chunk 1's payload.
        let victim = &index.entries[1];
        let hit = (victim.offset + 13 + u64::from(victim.payload_len) / 2) as usize;
        bytes[hit] ^= 0xff;
        let mut reader = WireReader::new(&bytes[..]).unwrap();
        let decoded: Vec<_> = reader.by_ref().collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(reader.skipped().len(), 1);
        assert_eq!(reader.skipped()[0].index, 1);
        assert!(reader.skipped()[0].reason.contains("crc mismatch"));
        assert_eq!(
            decoded.len() as u64,
            events.len() as u64 - u64::from(victim.events)
        );
        // Strict mode turns the same damage into a hard error.
        let err = WireReader::new(&bytes[..])
            .unwrap()
            .strict()
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(matches!(err, WireError::ChunkCorrupt { index: 1, .. }));
    }

    #[test]
    fn version_skew_is_rejected() {
        let (mut bytes, _) = sample_bytes(64);
        bytes[8] = 0x2; // bump the little-endian version field
        match WireReader::new(&bytes[..]) {
            Err(WireError::UnsupportedVersion { found: 2, supported }) => {
                assert_eq!(supported, VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = WireReader::new(&b"not a wire trace"[..]).unwrap_err();
        assert!(matches!(err, WireError::BadMagic { .. }));
        let err = WireReader::new(&b"apr"[..]).unwrap_err();
        assert!(matches!(err, WireError::UnexpectedEof { .. }));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (mut bytes, _) = sample_bytes(64);
        bytes.push(0);
        let err = WireReader::new(&bytes[..]).unwrap().collect::<Result<Vec<_>, _>>().unwrap_err();
        assert!(matches!(err, WireError::TrailingGarbage));
    }

    #[test]
    fn iterator_is_fused_after_error() {
        let (bytes, _) = sample_bytes(64);
        let mut reader = WireReader::new(&bytes[..bytes.len() - 1]).unwrap();
        let mut saw_err = false;
        for item in reader.by_ref() {
            if item.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err);
        assert!(reader.next().is_none(), "fused after error");
    }
}
