//! `aprof-wire`: chunked binary trace format with streaming capture and
//! O(1)-memory replay.
//!
//! Text traces ([`aprof_trace::textio`]) are convenient but balloon to many
//! bytes per event and must be parsed whole. This crate defines a compact,
//! versioned on-disk format — magic, self-describing header, CRC-guarded
//! chunks of varint/delta-encoded events, and a trailing chunk index — so
//! that traces can be
//!
//! * **captured** as they happen ([`WireWriter`] appends events and seals
//!   fixed-size chunks; a crash loses at most the open chunk),
//! * **replayed** in bounded memory ([`WireReader`] iterates
//!   `(thread, event)` pairs holding one chunk at a time, so a
//!   multi-gigabyte trace replays without materializing a
//!   [`Trace`](aprof_trace::Trace)), and
//! * **sliced** for random or parallel access ([`read_index`] +
//!   [`read_chunk`] decode any chunk independently, since delta state
//!   resets at chunk boundaries).
//!
//! Corruption is a first-class citizen: every structure is covered by a
//! CRC-32 or a cross-check, malformed input always yields a typed
//! [`WireError`] (never a panic, never a silently wrong profile), and a
//! damaged chunk *payload* is recovered by skip-and-report
//! ([`WireReader::skipped`]) rather than aborting the replay.
//!
//! The byte-level layout is documented in [`mod@format`].
//!
//! # Example
//!
//! ```
//! use aprof_trace::{Addr, Event, RoutineTable, ThreadId};
//! use aprof_wire::{WireOptions, WireReader, WireWriter};
//!
//! let mut routines = RoutineTable::new();
//! let main = routines.intern("main");
//!
//! let mut writer =
//!     WireWriter::create(Vec::new(), &routines, WireOptions::default()).unwrap();
//! let t0 = ThreadId::new(0);
//! writer.push(t0, Event::Call { routine: main }).unwrap();
//! writer.push(t0, Event::Read { addr: Addr::new(0x10) }).unwrap();
//! writer.push(t0, Event::Return { routine: main }).unwrap();
//! let (bytes, summary) = writer.finish().unwrap();
//! assert_eq!(summary.events, 3);
//!
//! let mut reader = WireReader::new(&bytes[..]).unwrap();
//! assert_eq!(reader.routines().name(main), "main");
//! let replayed: Vec<_> = reader.by_ref().collect::<Result<_, _>>().unwrap();
//! assert_eq!(replayed.len(), 3);
//! assert_eq!(replayed[1], (t0, Event::Read { addr: Addr::new(0x10) }));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crc32;
mod error;
pub mod format;
mod parallel;
mod reader;
mod recover;
pub mod varint;
mod writer;

pub use error::{SkippedChunk, WireError};
pub use format::{ChunkEntry, WireIndex, MAX_CHUNK_BYTES, VERSION};
pub use parallel::{decode_chunks, decode_chunks_with, PARALLEL_MIN_BYTES};
pub use reader::{read_chunk, read_index, ReaderStats, WireReader};
pub use recover::{recover, RecoverSummary, StopReason};
pub use writer::{
    DurableFile, FlushPolicy, WireOptions, WireSummary, WireWriter, DEFAULT_CHUNK_BYTES,
};
