//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), the checksum guarding the
//! header, every chunk payload, and the trailing index.
//!
//! Table-driven with a compile-time table; dependency-free, matching the
//! `crc32` used by gzip/zlib so wire files can be cross-checked with
//! standard tooling.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Computes the CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let reference = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
