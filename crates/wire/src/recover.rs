//! Salvage of damaged wire captures.
//!
//! A capture that died mid-run — `kill -9`, power loss, a full disk — has a
//! valid header, a run of intact chunks, and then either nothing (no index,
//! no footer) or a torn chunk. Because chunk payloads are self-contained
//! (delta state resets per chunk) and individually CRC-guarded, the longest
//! decodable prefix is well defined: [`recover`] re-scans the file ignoring
//! any index, keeps exactly the leading run of CRC-valid, structurally
//! decodable chunks, and writes a fresh capture with a rebuilt index and
//! footer. The result is a fully valid wire file that strict readers accept.
//!
//! Combined with [`FlushPolicy::Durable`](crate::FlushPolicy::Durable), this
//! bounds data loss to the one chunk that was open when the process died.

use crate::crc32::crc32;
use crate::error::WireError;
use crate::format::{
    decode_chunk_into, ChunkEntry, WireIndex, CHUNK_TAG, FOOTER_MAGIC, INDEX_TAG, MAGIC,
    MAX_CHUNK_BYTES, MAX_HEADER_BYTES, VERSION,
};
use crate::varint;
use std::io::{Read, Write};

/// Why [`recover`]'s forward scan stopped accepting chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The index record was reached: every chunk in the file was intact.
    IndexReached,
    /// Input ended exactly at a record boundary — a footer-less capture
    /// whose last chunk is whole (the `Durable` crash shape).
    CleanEof,
    /// Input ended inside a record (torn framing or payload).
    Truncated {
        /// The structure being read when the bytes ran out.
        context: &'static str,
    },
    /// A chunk was structurally present but invalid (CRC mismatch, bad
    /// payload, oversized framing).
    BadChunk {
        /// Zero-based index of the rejected chunk.
        index: u32,
        /// What the validation found.
        reason: String,
    },
    /// A byte that is neither a chunk nor an index tag — the stream cannot
    /// be trusted past this point.
    BadTag {
        /// Offset of the unrecognized tag byte.
        offset: u64,
        /// The tag byte found.
        found: u8,
    },
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::IndexReached => write!(f, "reached the chunk index (file was intact)"),
            StopReason::CleanEof => write!(f, "input ended at a chunk boundary (missing index)"),
            StopReason::Truncated { context } => {
                write!(f, "input truncated while reading {context}")
            }
            StopReason::BadChunk { index, reason } => {
                write!(f, "chunk {index} rejected: {reason}")
            }
            StopReason::BadTag { offset, found } => {
                write!(f, "unrecognized record tag 0x{found:02x} at byte {offset}")
            }
        }
    }
}

/// What [`recover`] salvaged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverSummary {
    /// Intact chunks copied to the output.
    pub chunks: u32,
    /// Events contained in those chunks.
    pub events: u64,
    /// Observed thread count (highest thread index + 1; 0 if no events).
    pub threads: u32,
    /// Bytes of the input prefix that were kept (header plus intact
    /// chunks). Everything past this offset was dropped.
    pub salvaged_bytes: u64,
    /// Total size of the rewritten output file.
    pub output_bytes: u64,
    /// Why the forward scan stopped.
    pub stopped: StopReason,
}

impl RecoverSummary {
    /// Whether the input needed no repair (scan reached the index record).
    pub fn was_intact(&self) -> bool {
        self.stopped == StopReason::IndexReached
    }
}

/// Reads `buf.len()` bytes, distinguishing "clean EOF before the first
/// byte" (`Ok(false)`) from truncation mid-structure (`Err(Truncated)`).
fn read_exact_or_eof<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<bool, ScanStop> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(ScanStop::Stop(StopReason::Truncated { context })),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ScanStop::Fatal(WireError::Io(e))),
        }
    }
    Ok(true)
}

/// Internal control flow of the chunk scan: stop salvaging (keep what we
/// have) vs. a real I/O failure that aborts recovery.
enum ScanStop {
    Stop(StopReason),
    Fatal(WireError),
}

/// Salvages the longest valid prefix of a damaged wire capture.
///
/// Validates the header (a capture with a corrupt header is unrecoverable —
/// the routine table is gone), then scans forward chunk by chunk, verifying
/// each chunk's framing, CRC-32 and payload decode, ignoring any index the
/// input may carry. The header and every intact chunk are copied to
/// `output` byte-for-byte, followed by a freshly built index and footer, so
/// the output is a complete, strict-reader-valid wire file.
///
/// Reading a salvaged file replays exactly the events of the intact chunk
/// prefix — the same events a lossless reader would have produced from the
/// undamaged capture, truncated at a chunk boundary.
///
/// # Errors
///
/// [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`] /
/// [`WireError::HeaderCorrupt`] / [`WireError::UnexpectedEof`] when the
/// header itself is unusable, and [`WireError::Io`] for real I/O failures
/// on either side. Damage *after* the header is not an error — it
/// determines where salvage stops, reported in
/// [`RecoverSummary::stopped`].
pub fn recover<R: Read, W: Write>(
    mut input: R,
    mut output: W,
) -> Result<RecoverSummary, WireError> {
    // --- Header: validate fully, then copy verbatim. ---
    let mut fixed = [0u8; 16];
    read_header_bytes(&mut input, &mut fixed[..8], "file magic")?;
    if &fixed[..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&fixed[..8]);
        return Err(WireError::BadMagic { found });
    }
    read_header_bytes(&mut input, &mut fixed[8..12], "header version")?;
    let version = u32::from_le_bytes(fixed[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(WireError::UnsupportedVersion { found: version, supported: VERSION });
    }
    read_header_bytes(&mut input, &mut fixed[12..16], "header length")?;
    let payload_len = u32::from_le_bytes(fixed[12..16].try_into().unwrap());
    let corrupt = |reason: &str| WireError::HeaderCorrupt { reason: reason.to_owned() };
    if u64::from(payload_len) > MAX_HEADER_BYTES {
        return Err(corrupt("declared header length exceeds the format maximum"));
    }
    let mut payload = vec![0u8; payload_len as usize];
    read_header_bytes(&mut input, &mut payload, "header payload")?;
    let mut crc_bytes = [0u8; 4];
    read_header_bytes(&mut input, &mut crc_bytes, "header crc")?;
    if crc32(&payload) != u32::from_le_bytes(crc_bytes) {
        return Err(corrupt("header crc mismatch"));
    }
    validate_routine_table(&payload)?;

    output.write_all(&fixed)?;
    output.write_all(&payload)?;
    output.write_all(&crc_bytes)?;
    let header_len = 16 + payload.len() as u64 + 4;

    // --- Chunks: keep the leading run that validates end to end. ---
    let mut offset = header_len; // input offset of the next record tag
    let mut entries: Vec<ChunkEntry> = Vec::new();
    let mut total_events: u64 = 0;
    let mut threads: u32 = 0;
    let mut decoded = Vec::new();
    let stopped = loop {
        let mut tag = [0u8; 1];
        match read_exact_or_eof(&mut input, &mut tag, "record tag") {
            Ok(false) => break StopReason::CleanEof,
            Ok(true) => {}
            Err(ScanStop::Stop(r)) => break r,
            Err(ScanStop::Fatal(e)) => return Err(e),
        }
        match tag[0] {
            INDEX_TAG => break StopReason::IndexReached,
            CHUNK_TAG => {}
            found => break StopReason::BadTag { offset, found },
        }
        let index = entries.len() as u32;
        let mut framing = [0u8; 12];
        match read_exact_or_eof(&mut input, &mut framing, "chunk framing") {
            Ok(true) => {}
            Ok(false) => break StopReason::Truncated { context: "chunk framing" },
            Err(ScanStop::Stop(r)) => break r,
            Err(ScanStop::Fatal(e)) => return Err(e),
        }
        let events = u32::from_le_bytes(framing[0..4].try_into().unwrap());
        let payload_len = u32::from_le_bytes(framing[4..8].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(framing[8..12].try_into().unwrap());
        if u64::from(payload_len) > MAX_CHUNK_BYTES {
            break StopReason::BadChunk {
                index,
                reason: format!("declared payload of {payload_len} bytes exceeds the maximum"),
            };
        }
        let mut chunk = vec![0u8; payload_len as usize];
        match read_exact_or_eof(&mut input, &mut chunk, "chunk payload") {
            Ok(true) => {}
            Ok(false) => break StopReason::Truncated { context: "chunk payload" },
            Err(ScanStop::Stop(r)) => break r,
            Err(ScanStop::Fatal(e)) => return Err(e),
        }
        if crc32(&chunk) != stored_crc {
            break StopReason::BadChunk { index, reason: "payload crc mismatch".to_owned() };
        }
        if let Err(e) = decode_chunk_into(index, &chunk, events, &mut decoded) {
            break StopReason::BadChunk { index, reason: e.to_string() };
        }
        for (thread, _) in &decoded {
            threads = threads.max(thread.index() as u32 + 1);
        }
        // The chunk is good: copy it through and index it.
        output.write_all(&tag)?;
        output.write_all(&framing)?;
        output.write_all(&chunk)?;
        entries.push(ChunkEntry { offset, payload_len, events, crc: stored_crc });
        offset += 13 + u64::from(payload_len);
        total_events += u64::from(events);
    };

    // --- Fresh index + footer over exactly what was kept. ---
    let chunks = entries.len() as u32;
    let index = WireIndex { entries, total_events, thread_count: threads };
    let mut tail = Vec::new();
    index.encode(&mut tail);
    tail.extend_from_slice(&offset.to_le_bytes());
    tail.extend_from_slice(FOOTER_MAGIC);
    output.write_all(&tail)?;
    output.flush()?;

    aprof_obs::counters::WIRE_RECOVERED_CHUNKS.add(u64::from(chunks));
    aprof_obs::counters::WIRE_RECOVERED_EVENTS.add(total_events);

    Ok(RecoverSummary {
        chunks,
        events: total_events,
        threads,
        salvaged_bytes: offset,
        output_bytes: offset + tail.len() as u64,
        stopped,
    })
}

/// `read_exact` for the header region, where truncation is fatal (typed as
/// [`WireError::UnexpectedEof`]) rather than a salvage boundary.
fn read_header_bytes<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), WireError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::UnexpectedEof { context }
        } else {
            WireError::Io(e)
        }
    })
}

/// Structural validation of the header's routine-table payload, mirroring
/// the reader: a CRC-valid but malformed table must not be copied into a
/// "recovered" file that readers then reject.
fn validate_routine_table(payload: &[u8]) -> Result<(), WireError> {
    let corrupt = |reason: &str| WireError::HeaderCorrupt { reason: reason.to_owned() };
    let mut pos = 0;
    let count =
        varint::read_u64(payload, &mut pos).ok_or_else(|| corrupt("bad routine count"))?;
    if count > u64::from(u32::MAX) {
        return Err(corrupt("routine count exceeds u32"));
    }
    for _ in 0..count {
        let len = varint::read_u64(payload, &mut pos)
            .ok_or_else(|| corrupt("bad routine name length"))?;
        let len = usize::try_from(len)
            .ok()
            .filter(|l| pos + l <= payload.len())
            .ok_or_else(|| corrupt("routine name past header end"))?;
        std::str::from_utf8(&payload[pos..pos + len])
            .map_err(|_| corrupt("routine name is not utf-8"))?;
        pos += len;
    }
    if pos != payload.len() {
        return Err(corrupt("trailing bytes after the routine table"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WireOptions, WireReader, WireWriter};
    use aprof_trace::{Addr, Event, RoutineTable, ThreadId};

    fn capture(events: &[(ThreadId, Event)], chunk_bytes: usize) -> Vec<u8> {
        let opts = WireOptions { chunk_bytes, ..Default::default() };
        let mut w = WireWriter::create(Vec::new(), &RoutineTable::new(), opts).unwrap();
        for &(t, e) in events {
            w.push(t, e).unwrap();
        }
        w.finish().unwrap().0
    }

    fn sample_events(n: u64) -> Vec<(ThreadId, Event)> {
        (0..n)
            .map(|i| {
                let t = ThreadId::new((i % 3) as u32);
                (t, Event::Read { addr: Addr::new(i * 17) })
            })
            .collect()
    }

    fn replay(bytes: &[u8]) -> Vec<(ThreadId, Event)> {
        WireReader::new(bytes).unwrap().strict().collect::<Result<Vec<_>, _>>().unwrap()
    }

    #[test]
    fn intact_file_round_trips_unchanged() {
        let events = sample_events(100);
        let bytes = capture(&events, 64);
        let mut out = Vec::new();
        let summary = recover(&bytes[..], &mut out).unwrap();
        assert!(summary.was_intact());
        assert_eq!(summary.events, 100);
        assert_eq!(out, bytes, "recovering an intact file must be byte-identical");
    }

    #[test]
    fn footerless_capture_is_fully_salvaged() {
        let events = sample_events(60);
        let bytes = capture(&events, 64);
        // Chop at the index tag: the Durable crash shape.
        let index_offset =
            u64::from_le_bytes(bytes[bytes.len() - 16..bytes.len() - 8].try_into().unwrap());
        let torn = &bytes[..index_offset as usize];
        let mut out = Vec::new();
        let summary = recover(torn, &mut out).unwrap();
        assert_eq!(summary.stopped, StopReason::CleanEof);
        assert_eq!(summary.events, 60);
        assert_eq!(replay(&out), events);
    }

    #[test]
    fn torn_chunk_is_dropped_prefix_survives() {
        let events = sample_events(60);
        let bytes = capture(&events, 64);
        let full = recover(&bytes[..], &mut Vec::new()).unwrap();
        assert!(full.chunks >= 3, "need several chunks, got {}", full.chunks);
        // Cut inside the *second* chunk's payload.
        let cut = {
            let mut r = WireReader::new(&bytes[..]).unwrap();
            for _ in r.by_ref() {}
            let idx = r.index().unwrap().clone();
            (idx.entries[1].offset + 13 + u64::from(idx.entries[1].payload_len) - 2) as usize
        };
        let mut out = Vec::new();
        let summary = recover(&bytes[..cut], &mut out).unwrap();
        assert_eq!(summary.stopped, StopReason::Truncated { context: "chunk payload" });
        assert_eq!(summary.chunks, 1);
        let salvaged = replay(&out);
        assert_eq!(salvaged[..], events[..salvaged.len()]);
    }

    #[test]
    fn corrupt_chunk_payload_stops_the_scan() {
        let events = sample_events(60);
        let mut bytes = capture(&events, 64);
        let idx = {
            let mut r = WireReader::new(&bytes[..]).unwrap();
            for _ in r.by_ref() {}
            r.index().unwrap().clone()
        };
        // Flip a payload byte of chunk 1; chunk 0 must still be salvaged.
        let victim = (idx.entries[1].offset + 13 + 1) as usize;
        bytes[victim] ^= 0xFF;
        let mut out = Vec::new();
        let summary = recover(&bytes[..], &mut out).unwrap();
        assert_eq!(summary.chunks, 1);
        assert!(matches!(summary.stopped, StopReason::BadChunk { index: 1, .. }));
        let salvaged = replay(&out);
        assert_eq!(salvaged.len() as u64, summary.events);
        assert_eq!(salvaged[..], events[..salvaged.len()]);
    }

    #[test]
    fn truncation_inside_header_is_a_typed_error() {
        let bytes = capture(&sample_events(10), 64);
        for cut in [0usize, 4, 8, 11, 15] {
            let err = recover(&bytes[..cut], &mut Vec::new()).unwrap_err();
            assert!(
                matches!(err, WireError::UnexpectedEof { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn empty_salvage_is_still_a_valid_file() {
        let bytes = capture(&[], 64);
        // Keep only the header.
        let header_len = {
            let footer_at = bytes.len() - 16;
            u64::from_le_bytes(bytes[footer_at..footer_at + 8].try_into().unwrap()) as usize
        };
        let mut out = Vec::new();
        let summary = recover(&bytes[..header_len], &mut out).unwrap();
        assert_eq!(summary.chunks, 0);
        assert_eq!(summary.threads, 0);
        assert!(replay(&out).is_empty());
    }
}
